//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the subset of proptest its tests use: the [`proptest!`] macro
//! (both `x: Type` and `x in strategy` parameter forms), [`Strategy`] with
//! `prop_map`/`boxed`, ranges and tuples as strategies, `any::<T>()`,
//! `Just`, `prop_oneof!`, `prop::collection::vec`, `prop::option::of`,
//! `ProptestConfig`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking** — a failing case panics with the generated values in
//!   scope, it is not minimized.
//! * **Deterministic seeding** — every test function walks the same
//!   SplitMix64 stream, so failures reproduce exactly across runs.
//! * `prop_assert*` panic (via `assert*`) instead of returning `Err`.

// ------------------------------------------------------------ test_runner

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64: tiny, seedable, and plenty random for property tests.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound == 0` yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

// --------------------------------------------------------------- strategy

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for producing values.  Unlike real proptest there is no
    /// value tree: `generate` returns the value directly, with no
    /// shrinking information.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strat: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (`Strategy::boxed`, `prop_oneof!` arms).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strat.generate(rng))
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
    }
}

// -------------------------------------------------------------- arbitrary

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy for a primitive.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    macro_rules! arbitrary_floats {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                // Finite values only: every consumer in this workspace does
                // arithmetic assertions that NaN/inf would vacuously break.
                fn generate(&self, rng: &mut TestRng) -> $t {
                    ((rng.next_f64() - 0.5) * 2e9) as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_floats!(f32, f64);
}

// ------------------------------------------------------------- collection

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted sizes for collections: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ----------------------------------------------------------------- option

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, like real proptest's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ----------------------------------------------------------------- macros

/// Defines `#[test]` functions whose arguments are generated from
/// strategies.  Supports `x: Type` (via [`arbitrary::Arbitrary`]) and
/// `[mut] x in strategy` parameters, plus an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { ($config) [] [] $($params)* ; $body }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run the cases.
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] ; $body:block) => {{
        let __config = $config;
        let __strategy = ($($strat,)*);
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        for _ in 0..__config.cases {
            let ($($pat)*) = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
            $body
        }
    }};
    // `mut x in strategy`
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] mut $v:ident in $s:expr ; $body:block) => {
        $crate::__proptest_case! { ($config) [$($pat)* mut $v,] [$($strat,)* $s,] ; $body }
    };
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] mut $v:ident in $s:expr , $($rest:tt)*) => {
        $crate::__proptest_case! { ($config) [$($pat)* mut $v,] [$($strat,)* $s,] $($rest)* }
    };
    // `x in strategy`
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] $v:ident in $s:expr ; $body:block) => {
        $crate::__proptest_case! { ($config) [$($pat)* $v,] [$($strat,)* $s,] ; $body }
    };
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] $v:ident in $s:expr , $($rest:tt)*) => {
        $crate::__proptest_case! { ($config) [$($pat)* $v,] [$($strat,)* $s,] $($rest)* }
    };
    // `x: Type`
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] $v:ident : $t:ty ; $body:block) => {
        $crate::__proptest_case! {
            ($config) [$($pat)* $v,] [$($strat,)* $crate::arbitrary::any::<$t>(),] ; $body
        }
    };
    (($config:expr) [$($pat:tt)*] [$($strat:expr,)*] $v:ident : $t:ty , $($rest:tt)*) => {
        $crate::__proptest_case! {
            ($config) [$($pat)* $v,] [$($strat,)* $crate::arbitrary::any::<$t>(),] $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Add(u8),
        Pop,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![(1u8..5).prop_map(Op::Add), Just(Op::Pop)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -4i32..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn typed_params_and_tuples(a: u16, b: bool, pair in (0u8..4, 10u32..14)) {
            let _ = (a, b);
            prop_assert!(pair.0 < 4 && (10..14).contains(&pair.1));
        }

        #[test]
        fn vec_sizes_and_oneof(mut ops in prop::collection::vec(arb_op(), 1..20)) {
            prop_assert!((1..20).contains(&ops.len()));
            ops.push(Op::Pop);
            for op in &ops {
                if let Op::Add(n) = op {
                    prop_assert!((1..5).contains(n));
                }
            }
        }

        #[test]
        fn exact_vec_size_and_option(mask in prop::collection::vec(any::<bool>(), 8),
                                     maybe in prop::option::of(0u8..9)) {
            prop_assert_eq!(mask.len(), 8);
            if let Some(v) = maybe {
                prop_assert!(v < 9);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..16).map(|_| s.generate(&mut TestRng::deterministic())).collect();
        let mut rng = TestRng::deterministic();
        let first = s.generate(&mut rng);
        assert!(a.iter().all(|&v| v == a[0]) && first == a[0]);
    }
}

//! Offline shim of the `syn` crate, scoped to what `xtask lint` needs.
//!
//! The real `syn` parses Rust into a typed AST.  The lint pass only needs a
//! faithful *token* view with line numbers: it matches short token sequences
//! (`std :: sync :: Mutex`, `. lock ( ) . unwrap`, match-arm patterns left of
//! `=>`) rather than full syntax.  So this shim is a lexer plus a delimiter
//! matcher: it understands everything that can hide tokens from a naive text
//! scan — comments, string/raw-string/char literals, lifetimes — and groups
//! the rest into nested [`TokenTree`]s.
//!
//! Divergences from real `syn`, on purpose:
//! - `parse_file` returns a flat [`File`] of token trees, not an AST.
//! - Every token carries the 1-based source line it starts on.
//! - Multi-character operators are emitted as adjacent single-char
//!   [`Punct`]s (like proc-macro2 without spacing info).

use std::fmt;

/// The delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    Parenthesis,
    Bracket,
    Brace,
}

/// An identifier, keyword, or lifetime (lifetimes keep their leading `'`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    pub text: String,
    pub line: usize,
}

/// A single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Punct {
    pub ch: char,
    pub line: usize,
}

/// A string, char, byte, or numeric literal (verbatim source text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    pub text: String,
    pub line: usize,
}

/// A delimited token sequence: `(...)`, `[...]`, or `{...}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    pub delimiter: Delimiter,
    pub tokens: Vec<TokenTree>,
    /// Line of the opening delimiter.
    pub line: usize,
}

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenTree {
    Ident(Ident),
    Punct(Punct),
    Literal(Literal),
    Group(Group),
}

impl TokenTree {
    /// The source line this token starts on.
    pub fn line(&self) -> usize {
        match self {
            TokenTree::Ident(i) => i.line,
            TokenTree::Punct(p) => p.line,
            TokenTree::Literal(l) => l.line,
            TokenTree::Group(g) => g.line,
        }
    }

    /// The identifier text, if this is an ident.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(&i.text),
            _ => None,
        }
    }

    /// The punctuation char, if this is a punct.
    pub fn punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(p) => Some(p.ch),
            _ => None,
        }
    }
}

/// A lexed source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct File {
    pub tokens: Vec<TokenTree>,
}

/// A lex error (unterminated literal/comment or unbalanced delimiter).
#[derive(Debug, Clone)]
pub struct Error {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// Lex `src` into a token tree.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1 };
    let tokens = lx.group_contents(None)?;
    Ok(File { tokens })
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error { line: self.line, message: message.into() }
    }

    /// Lex tokens until `closing` (consumed) or, when `closing` is `None`,
    /// end of input.
    fn group_contents(&mut self, closing: Option<char>) -> Result<Vec<TokenTree>, Error> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let Some(c) = self.peek(0) else {
                return match closing {
                    None => Ok(out),
                    Some(c) => Err(self.err(format!("unclosed delimiter, expected `{c}`"))),
                };
            };
            match c {
                ')' | ']' | '}' => {
                    if Some(c) == closing {
                        self.bump();
                        return Ok(out);
                    }
                    return Err(self.err(format!("unbalanced `{c}`")));
                }
                '(' | '[' | '{' => {
                    let line = self.line;
                    self.bump();
                    let (delimiter, close) = match c {
                        '(' => (Delimiter::Parenthesis, ')'),
                        '[' => (Delimiter::Bracket, ']'),
                        _ => (Delimiter::Brace, '}'),
                    };
                    let tokens = self.group_contents(Some(close))?;
                    out.push(TokenTree::Group(Group { delimiter, tokens, line }));
                }
                '"' => out.push(self.string_literal()?),
                '\'' => out.push(self.char_or_lifetime()?),
                'r' | 'b' if self.is_literal_prefix() => out.push(self.prefixed_literal()?),
                c if c.is_alphabetic() || c == '_' => out.push(self.ident()),
                c if c.is_ascii_digit() => out.push(self.number()),
                _ => {
                    let line = self.line;
                    self.bump();
                    out.push(TokenTree::Punct(Punct { ch: c, line }));
                }
            }
        }
    }

    /// Skip whitespace and comments (line, nested block, doc).
    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek(0) {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek(1) == Some('*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error {
                                    line: start,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// True when the `r`/`b` at the cursor starts a literal (`r"`, `r#"`,
    /// `b"`, `b'`, `br"`, `br#"`, `r#ident` is handled as a raw ident).
    fn is_literal_prefix(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        match self.peek(i) {
            Some('"') => true,
            Some('\'') => self.peek(0) == Some('b'),
            Some('#') => {
                // Distinguish raw string r#"..." from raw ident r#ident.
                let mut j = i;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                self.peek(j) == Some('"')
            }
            _ => false,
        }
    }

    fn prefixed_literal(&mut self) -> Result<TokenTree, Error> {
        let line = self.line;
        let start = self.pos;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            self.bump();
            self.bump();
        } else {
            self.bump(); // the `r` or `b`
        }
        match self.peek(0) {
            Some('\'') => {
                // b'x' byte literal: reuse the char scanner.
                let tok = self.char_or_lifetime()?;
                let text: String = self.chars[start..self.pos].iter().collect();
                let _ = tok;
                Ok(TokenTree::Literal(Literal { text, line }))
            }
            Some('"') => {
                self.string_literal()?;
                let text: String = self.chars[start..self.pos].iter().collect();
                Ok(TokenTree::Literal(Literal { text, line }))
            }
            Some('#') => {
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                if self.bump() != Some('"') {
                    return Err(self.err("expected `\"` after raw-string hashes"));
                }
                // Scan for `"` followed by `hashes` `#`s.
                loop {
                    match self.bump() {
                        Some('"') => {
                            let mut seen = 0usize;
                            while seen < hashes && self.peek(0) == Some('#') {
                                self.bump();
                                seen += 1;
                            }
                            if seen == hashes {
                                let text: String = self.chars[start..self.pos].iter().collect();
                                return Ok(TokenTree::Literal(Literal { text, line }));
                            }
                        }
                        Some(_) => {}
                        None => {
                            return Err(Error { line, message: "unterminated raw string".into() })
                        }
                    }
                }
            }
            _ => unreachable!("is_literal_prefix checked"),
        }
    }

    fn string_literal(&mut self) -> Result<TokenTree, Error> {
        let line = self.line;
        let start = self.pos;
        self.bump(); // opening `"`
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') => {
                    let text: String = self.chars[start..self.pos].iter().collect();
                    return Ok(TokenTree::Literal(Literal { text, line }));
                }
                Some(_) => {}
                None => return Err(Error { line, message: "unterminated string".into() }),
            }
        }
    }

    /// `'a` lifetime vs `'x'` / `'\n'` char literal.
    fn char_or_lifetime(&mut self) -> Result<TokenTree, Error> {
        let line = self.line;
        let start = self.pos;
        let next = self.peek(1);
        let is_lifetime = match next {
            Some('\\') => false,
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // `'`
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            return Ok(TokenTree::Ident(Ident { text, line }));
        }
        self.bump(); // `'`
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('\'') => {
                    let text: String = self.chars[start..self.pos].iter().collect();
                    return Ok(TokenTree::Literal(Literal { text, line }));
                }
                Some(_) => {}
                None => return Err(Error { line, message: "unterminated char literal".into() }),
            }
        }
    }

    fn ident(&mut self) -> TokenTree {
        let line = self.line;
        let start = self.pos;
        // Raw identifier r#name.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        TokenTree::Ident(Ident { text, line })
    }

    fn number(&mut self) -> TokenTree {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but not `..` (range) or `.method()`.
        if self.peek(0) == Some('.') {
            if let Some(c) = self.peek(1) {
                if c.is_ascii_digit() {
                    self.bump(); // `.`
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        TokenTree::Literal(Literal { text, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[TokenTree]) -> Vec<&str> {
        tokens.iter().filter_map(|t| t.ident()).collect()
    }

    #[test]
    fn lexes_idents_puncts_and_groups() {
        let f = parse_file("fn main() { let x = a.b; }").unwrap();
        assert_eq!(idents(&f.tokens), ["fn", "main"]);
        let TokenTree::Group(body) = &f.tokens[3] else { panic!("expected body group") };
        assert_eq!(body.delimiter, Delimiter::Brace);
        assert_eq!(idents(&body.tokens), ["let", "x", "a", "b"]);
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = "// Mutex in comment\nlet s = \"std::sync::Mutex\"; /* Mutex\n again */ real";
        let f = parse_file(src).unwrap();
        assert_eq!(idents(&f.tokens), ["let", "s", "real"]);
        // Line numbers survive comments and embedded newlines.
        assert_eq!(f.tokens.last().unwrap().line(), 3);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "let x = r#\"has \"quotes\" and }\"#; after";
        let f = parse_file(src).unwrap();
        assert_eq!(idents(&f.tokens), ["let", "x", "after"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '}'; let n = '\\n'; let u = '_'; }";
        let f = parse_file(src).unwrap();
        // The `'}'` char literal must not terminate the brace group early.
        let TokenTree::Group(body) = f.tokens.last().unwrap() else { panic!("expected body") };
        assert_eq!(idents(&body.tokens), ["let", "c", "let", "n", "let", "u"]);
        // Lifetimes lex as idents with a leading quote.
        assert!(f.tokens.iter().any(|t| t.ident() == Some("'a")));
    }

    #[test]
    fn byte_and_numeric_literals() {
        let f = parse_file(
            "let a = b'x'; let b = b\"bytes\"; let c = 0x1f; let d = 1.5e3; let r = 0..10;",
        )
        .unwrap();
        let lits: Vec<&str> = f
            .tokens
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => Some(l.text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, ["b'x'", "b\"bytes\"", "0x1f", "1.5e3", "0", "10"]);
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(parse_file("fn f() {").is_err());
        assert!(parse_file("fn f() }").is_err());
    }
}

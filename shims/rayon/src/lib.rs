//! Offline stand-in for the `rayon` crate.
//!
//! Only the slice entry points the workspace uses are provided
//! (`par_iter_mut`, `par_chunks_mut`).  They return the std sequential
//! iterators, which expose the same adapter surface (`enumerate`,
//! `for_each`, ...) that the callers rely on.  Wall-clock parallel speedup
//! is irrelevant here: all performance in this repo is *virtual-time*,
//! charged through `vphi-sim-core` timelines, never measured off the
//! host's actual thread count.

pub mod prelude {
    /// Mutable "parallel" slice iterators, sequential under the hood.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_visits_every_element() {
        let mut xs = [1u32; 8];
        xs.par_iter_mut().for_each(|x| *x *= 2);
        assert!(xs.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_enumerates_in_order() {
        let mut xs = vec![0usize; 9];
        xs.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i;
            }
        });
        assert_eq!(xs, [0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the slice of criterion it uses: `Criterion`, benchmark groups,
//! `Bencher::iter`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.  Measurement is a plain warm-up + timed-batch
//! loop printing mean wall time per iteration (and derived throughput);
//! there is no statistical analysis, plotting, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

#[derive(Debug, Default)]
pub struct Criterion {
    config: MeasureConfig,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, self.config, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup { _parent: self, name: name.into(), config, throughput: None }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.throughput, self.config, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    config: MeasureConfig,
    mean_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run at least once, then until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        let deadline = Instant::now() + self.config.measurement_time;
        let min_iters = self.config.sample_size as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= min_iters && Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    config: MeasureConfig,
    mut f: F,
) {
    let mut b = Bencher { config, mean_ns: None };
    f(&mut b);
    match b.mean_ns {
        Some(mean) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!(" ({:.3} GiB/s)", n as f64 / mean * 1e9 / (1u64 << 30) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!(" ({:.0} elem/s)", n as f64 / mean * 1e9)
                }
                None => String::new(),
            };
            println!("{label}: {mean:.0} ns/iter{extra}");
        }
        None => println!("{label}: no measurement (Bencher::iter never called)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        // warm-up + measurement each run the routine at least once
        assert!(ran >= 2);
    }

    #[test]
    fn group_builder_chain_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .throughput(Throughput::Bytes(1024));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}

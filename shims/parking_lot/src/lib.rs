//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin API slice it actually uses: [`Mutex`], [`RwLock`] and
//! [`Condvar`] (including `wait_for`).  Semantics follow parking_lot where
//! they differ from std: locks are not poisoned (a panic while holding a
//! guard simply releases it), and `Condvar::wait*` re-acquire through the
//! same guard passed in by `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Returns whether a thread was woken (parking_lot signature); std
    /// cannot tell, so this reports `true`.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Returns the number of woken threads in parking_lot; unknown here.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                c.wait(&mut ready);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}

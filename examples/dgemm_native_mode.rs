//! **Native mode** — the paper's §IV-C experiment: launch the MKL dgemm
//! sample on the card with micnativeloadex, from the host and from a VM,
//! and compare totals.
//!
//! ```text
//! cargo run --release -p vphi-examples --bin dgemm_native_mode [N] [threads]
//! ```

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, GuestEnv, NativeEnv};
use vphi_mic_tools::{micnativeloadex, MicBinary};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let threads: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(224);

    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).expect("coi_daemon");
    let binary = MicBinary::dgemm_sample(n);
    println!(
        "dgemm N={n} ({} of inputs), {threads} threads, shipping {} of binary+libs\n",
        vphi_sim_core::units::format_bytes(binary.workload.input_bytes()),
        vphi_sim_core::units::format_bytes(binary.total_transfer_bytes()),
    );

    // Host baseline.
    let native: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let host_report = micnativeloadex(&native, 0, &binary, threads).expect("native loadex");
    println!("[native] {}", host_report.stdout.trim());
    println!(
        "[native] total {} = launch {} + device {}",
        host_report.total_time, host_report.launch_time, host_report.device_time
    );

    // Same tool, same binary, inside a VM.
    let vm = host.spawn_vm(VmConfig::default());
    let guest: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    let vm_report = micnativeloadex(&guest, 0, &binary, threads).expect("vm loadex");
    println!("\n[vPHI]   {}", vm_report.stdout.trim());
    println!(
        "[vPHI]   total {} = launch {} + device {}",
        vm_report.total_time, vm_report.launch_time, vm_report.device_time
    );

    let ratio = vm_report.total_time.as_nanos() as f64 / host_report.total_time.as_nanos() as f64;
    println!("\nnormalized total (host = 1.0): {ratio:.3}");
    println!(
        "on-device time identical: {} — vPHI never touches the executing binary",
        vm_report.device_time
    );

    vm.shutdown();
    daemon.shutdown();
}

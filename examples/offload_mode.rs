//! **Offload mode** — the COI pipeline flow an OpenMP `target` runtime
//! performs: create a sink process on the card, allocate device buffers,
//! ship inputs, run kernels, read results back.  vPHI supports it
//! unmodified because COI is layered on SCIF (paper §II-B, §VI).
//!
//! ```text
//! cargo run --release -p vphi-examples --bin offload_mode
//! ```

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::pipeline::CoiPipeline;
use vphi_coi::process::LaunchSpec;
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, CoiEngine, CoiProcess, ComputeManifest, GuestEnv};
use vphi_sim_core::units::MIB;
use vphi_sim_core::Timeline;

fn main() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).expect("coi_daemon");

    // The offloading application runs inside a VM.
    let vm = host.spawn_vm(VmConfig::default());
    let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    let engine = CoiEngine::get(Arc::clone(&env), 0).expect("engine");

    let mut tl = Timeline::new();
    // 1. The sink process hosting the offloaded functions.
    let sink = LaunchSpec {
        name: "offload_main_mic".into(),
        binary_bytes: 512 << 10,
        lib_bytes: 20 * MIB,
        env_count: 1,
        manifest: ComputeManifest::new(0.0, 0, 1),
    };
    let process = CoiProcess::launch(&engine, &sink, &mut tl).expect("sink process");
    println!("sink process pid {} running on the card", process.pid());

    // 2. Device buffers for A, B, C.
    let n: u64 = 2048;
    let bytes = n * n * 8;
    let a = process.create_buffer(bytes, &mut tl).expect("A");
    let b = process.create_buffer(bytes, &mut tl).expect("B");
    let c = process.create_buffer(bytes, &mut tl).expect("C");
    process.write_buffer(&a, bytes, &mut tl).expect("ship A");
    process.write_buffer(&b, bytes, &mut tl).expect("ship B");
    println!("shipped 2 × {} of inputs", vphi_sim_core::units::format_bytes(bytes));

    // 3. Offload three dependent kernels through a pipeline.
    let mut pipeline = CoiPipeline::create(&process);
    for pass in 0..3 {
        let ret = pipeline
            .run_function(
                &format!("dgemm_pass{pass}"),
                &[&a, &b, &c],
                ComputeManifest::new(2.0 * (n as f64).powi(3), 3 * bytes, 224),
                &mut tl,
            )
            .expect("run_function");
        assert_eq!(ret, 0);
    }
    println!("3 kernels done; device time total {}", pipeline.device_time_total());

    // 4. Results back, teardown.
    process.read_buffer(&c, bytes, &mut tl).expect("read C");
    process.destroy_buffer(a, &mut tl).expect("free A");
    process.destroy_buffer(b, &mut tl).expect("free B");
    process.destroy_buffer(c, &mut tl).expect("free C");
    process.destroy();

    println!("\nwhole offload session cost {} of virtual time from the VM", tl.total());
    vm.shutdown();
    daemon.shutdown();
}

//! **Symmetric mode** — ranks of one parallel application on the VM *and*
//! on the card, communicating MPI-style over SCIF (paper §II-A).
//!
//! Rank 0 runs in a VM (through vPHI); ranks 1..3 run on the coprocessor.
//! They distribute a dot-product, allreduce the partials, and verify.
//!
//! ```text
//! cargo run --release -p vphi-examples --bin symmetric_mode
//! ```

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::transport::{CoiEnv, CoiListener, CoiTransport};
use vphi_coi::GuestEnv;
use vphi_mic_tools::mpilite::{establish_leaf, establish_root};
use vphi_scif::{NodeId, Port, ScifAddr, ScifResult, HOST_NODE};
use vphi_sim_core::Timeline;

/// Card-side environment (processes running on the coprocessor).
struct DeviceSideEnv {
    fabric: Arc<vphi_scif::ScifFabric>,
    node: NodeId,
}

impl CoiEnv for DeviceSideEnv {
    fn connect(
        &self,
        node: NodeId,
        port: Port,
        tl: &mut Timeline,
    ) -> ScifResult<Box<dyn CoiTransport>> {
        let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
        ep.connect(ScifAddr::new(node, port), tl)?;
        Ok(Box::new(ep))
    }

    fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>> {
        let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
        ep.bind(port, &mut *tl)?;
        ep.listen(16, &mut *tl)?;
        Ok(Box::new(ep))
    }

    fn device_count(&self) -> usize {
        1
    }

    fn card_usable(&self, _mic: u32, _tl: &mut Timeline) -> bool {
        true
    }

    fn label(&self) -> String {
        format!("{}", self.node)
    }
}

fn main() {
    const SIZE: usize = 4;
    const PORT: Port = Port(600);
    const ELEMS: usize = 1 << 16;

    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    println!("symmetric world: rank 0 in VM {}, ranks 1..{SIZE} on the card\n", vm.vm().id());

    let x: Vec<f64> = (0..ELEMS).map(|i| (i % 7) as f64).collect();
    let y: Vec<f64> = (0..ELEMS).map(|i| (i % 5) as f64).collect();
    let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

    let mut handles = Vec::new();
    for rank in 0..SIZE {
        let env: Arc<dyn CoiEnv> = if rank == 0 {
            Arc::new(GuestEnv::new(&vm))
        } else {
            Arc::new(DeviceSideEnv { fabric: Arc::clone(host.fabric()), node: host.device_node(0) })
        };
        let (x, y) = (x.clone(), y.clone());
        handles.push(std::thread::spawn(move || {
            let mut tl = Timeline::new();
            let comm = if rank == 0 {
                establish_root(env.as_ref(), PORT, SIZE, &mut tl).expect("root")
            } else {
                establish_leaf(env.as_ref(), HOST_NODE, PORT, rank, SIZE, &mut tl).expect("leaf")
            };
            // Each rank owns a contiguous slice of the vectors.
            let chunk = ELEMS / SIZE;
            let lo = rank * chunk;
            let hi = if rank == SIZE - 1 { ELEMS } else { lo + chunk };
            let partial: f64 = x[lo..hi].iter().zip(&y[lo..hi]).map(|(a, b)| a * b).sum();
            comm.barrier(&mut tl).expect("barrier");
            let total = comm.allreduce_sum(partial, &mut tl).expect("allreduce");
            (rank, env.label(), partial, total, tl.total())
        }));
    }

    for h in handles {
        let (rank, where_, partial, total, cost) = h.join().expect("rank");
        println!("rank {rank} on {where_:7}: partial {partial:12.1}, allreduce {total:12.1}, comm cost {cost}");
        assert!((total - expected).abs() < 1e-6, "allreduce mismatch");
    }
    println!("\nall ranks agree: dot(x,y) = {expected}");

    vm.shutdown();
}

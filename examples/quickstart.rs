//! **Quickstart** — boot a host with one Xeon Phi, spawn a VM with vPHI,
//! and exchange messages with a server running on the card.
//!
//! ```text
//! cargo run --release -p vphi-examples --bin quickstart
//! ```

use vphi::builder::{VmConfig, VphiHost};
use vphi_examples::spawn_echo_server;
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::Timeline;

fn main() {
    // 1. The physical machine: a host with one Xeon Phi 3120P, booted and
    //    registered as SCIF node 1.
    let host = VphiHost::new(1);
    println!("host up: SCIF nodes = {:?}", host.fabric().node_ids());
    println!("card: {} ({} cores)", host.board(0).spec().model, host.board(0).spec().cores);

    // 2. Something to talk to on the card: an echo server.
    let echo = spawn_echo_server(&host, Port(100));

    // 3. A virtual machine with the vPHI device attached.
    let vm = host.spawn_vm(VmConfig::default());
    println!("VM {} booted with a vPHI device", vm.vm().id());

    // 4. Guest user space opens a SCIF endpoint — the same libscif calls
    //    it would make on bare metal — and connects to the card.
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).expect("scif_open");
    let peer = ep.connect(ScifAddr::new(host.device_node(0), Port(100)), &mut tl).expect("connect");
    println!("guest connected to {peer}");

    // 5. Ping-pong a message and report the virtual-time cost.
    let msg = b"hello coprocessor";
    let mut ping_tl = Timeline::new();
    ep.send(&(msg.len() as u32).to_le_bytes(), &mut ping_tl).expect("send len");
    ep.send(msg, &mut ping_tl).expect("send");
    let mut len = [0u8; 4];
    ep.recv(&mut len, &mut ping_tl).expect("recv len");
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    ep.recv(&mut reply, &mut ping_tl).expect("recv");
    assert_eq!(reply, msg);
    println!("echoed {:?} in {} of virtual time", String::from_utf8_lossy(&reply), ping_tl.total());

    // 6. Where did the time go?  The timeline knows.
    println!("\nbreakdown of the round trip:\n{ping_tl}");

    // Dropping `ep` closes the endpoint (RAII) — no explicit close needed.
    drop(ep);
    vm.shutdown();
    let _ = echo.join();
    println!("done.");
}

//! **scif_mmap from a VM** — the trickiest vPHI path: a guest maps Xeon
//! Phi GDDR into its address space and dereferences it directly.  Guest
//! touches fault into KVM, which resolves the `VM_PFNPHI`-tagged VMA to
//! the device frame (the paper's <10-LoC KVM patch).  We also boot an
//! *unpatched* VM to show exactly why the patch is needed.
//!
//! ```text
//! cargo run --release -p vphi-examples --bin mmap_device_memory
//! ```

use vphi::builder::{VmConfig, VphiHost};
use vphi_examples::spawn_window_server;
use vphi_scif::{Port, Prot, ScifAddr};
use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sim_core::{SpanLabel, Timeline};
use vphi_vmm::kvm::KvmPatch;

fn main() {
    let host = VphiHost::new(1);
    // A device-side server exposing 4 pages of GDDR, pre-filled.
    let server = spawn_window_server(&host, Port(300), 4 * PAGE_SIZE, |region| {
        region.write(0, b"GDDR page zero").expect("fill");
        region.write(PAGE_SIZE, b"GDDR page one").expect("fill");
    });

    // --- a patched VM: mmap works ---
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).expect("open");
    ep.connect(ScifAddr::new(host.device_node(0), Port(300)), &mut tl).expect("connect");
    // (window registration rendezvous)
    let map = loop {
        match ep.mmap(vm.vm().kvm(), 0, 2 * PAGE_SIZE, Prot::READ_WRITE, &mut tl) {
            Ok(m) => break m,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    };
    println!("guest mapped 2 pages of device memory at {:#x}", map.vaddr());

    // Plain dereferences — no SCIF calls — served through the fault path.
    let mut deref_tl = Timeline::new();
    let mut buf = [0u8; 14];
    map.load(0, &mut buf, &mut deref_tl).expect("load");
    println!("page 0 reads: {:?}", String::from_utf8_lossy(&buf));
    map.store(64, b"written from the VM", &mut deref_tl).expect("store");
    let mut check = [0u8; 19];
    map.load(64, &mut check, &mut deref_tl).expect("load back");
    assert_eq!(&check, b"written from the VM");
    println!(
        "first touches took {} of fault-resolution time; {} faults total",
        deref_tl.total_for(SpanLabel::PfnFaultResolve),
        vm.vm().kvm().fault_count()
    );
    map.munmap(&mut tl).expect("munmap");
    drop(ep); // RAII close
    vm.shutdown();
    let _ = server.join();

    // --- an UNPATCHED VM: the dereference fails, as the paper explains ---
    let server = spawn_window_server(&host, Port(301), 2 * PAGE_SIZE, |_| {});
    let vm = host.spawn_vm(VmConfig::builder().patch(KvmPatch::Unpatched).build());
    let ep = vm.open_scif(&mut tl).expect("open");
    ep.connect(ScifAddr::new(host.device_node(0), Port(301)), &mut tl).expect("connect");
    let map = loop {
        match ep.mmap(vm.vm().kvm(), 0, PAGE_SIZE, Prot::READ_WRITE, &mut tl) {
            Ok(m) => break m,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    };
    let mut b = [0u8; 1];
    let mut t2 = Timeline::new();
    match map.load(0, &mut b, &mut t2) {
        Err(e) => println!(
            "\nwithout the VM_PFNPHI patch, the same dereference fails: {e} \
             (\"this address will be interpreted by the host driver as a \
             reference to its own address space leading to an invalid \
             memory area\" — paper §III)"
        ),
        Ok(_) => unreachable!("unpatched KVM must not resolve device faults"),
    }
    drop(ep); // RAII close
    vm.shutdown();
    let _ = server.join();
}

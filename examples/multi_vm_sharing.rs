//! **Multi-VM sharing** — the paper's headline capability: several VMs
//! drive one Xeon Phi concurrently.  Each VM launches its own dgemm on
//! the card; the uOS spreads and (beyond 224 threads total) timeslices.
//!
//! ```text
//! cargo run --release -p vphi-examples --bin multi_vm_sharing [n_vms]
//! ```

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, GuestEnv};
use vphi_mic_tools::{micnativeloadex, MicBinary};

fn main() {
    let n_vms: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);

    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).expect("coi_daemon");
    println!("one card, {n_vms} VMs, each launching dgemm N=2048 with 112 threads\n");

    let vms: Vec<_> = (0..n_vms).map(|_| host.spawn_vm(VmConfig::default())).collect();

    let mut handles = Vec::new();
    for vm in &vms {
        let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(vm));
        handles.push(std::thread::spawn(move || {
            let binary = MicBinary::dgemm_sample(2048);
            let report = micnativeloadex(&env, 0, &binary, 112).expect("loadex");
            (env.label(), report)
        }));
    }

    for h in handles {
        let (label, report) = h.join().expect("vm thread");
        println!(
            "[{label}] exit {}, total {}, device {}",
            report.exit_code, report.total_time, report.device_time
        );
    }

    println!(
        "\ncoi_daemon served {} process launches — every VM is just another \
         host process doing SCIF ioctls (paper §III)",
        daemon.launch_count()
    );
    assert_eq!(daemon.launch_count(), n_vms as u64);

    for vm in &vms {
        vm.shutdown();
    }
    daemon.shutdown();
}

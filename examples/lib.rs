//! Shared helpers for the vPHI examples.
//!
//! Each example is a standalone binary; run them with
//! `cargo run --release -p vphi-examples --bin <name>`.

use vphi::builder::VphiHost;
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, ScifEndpoint};
use vphi_sim_core::Timeline;

/// Start a device-side echo server: accepts one connection, then echoes
/// every length-prefixed message back.  Returns once the peer closes.
pub fn spawn_echo_server(host: &VphiHost, port: Port) -> std::thread::JoinHandle<u64> {
    let server = host.device_endpoint(0).expect("device endpoint");
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).expect("bind");
        server.listen(4, &mut tl).expect("listen");
        tx.send(()).expect("ready");
        let conn = server.accept(&mut tl).expect("accept");
        let mut echoed = 0u64;
        loop {
            let mut len = [0u8; 4];
            match conn.core().recv(&mut len, &mut tl) {
                Ok(4) => {}
                _ => break,
            }
            let n = u32::from_le_bytes(len) as usize;
            let mut payload = vec![0u8; n];
            if conn.core().recv(&mut payload, &mut tl) != Ok(n) {
                break;
            }
            if conn.core().send(&len, &mut tl).is_err()
                || conn.core().send(&payload, &mut tl).is_err()
            {
                break;
            }
            echoed += n as u64;
        }
        echoed
    });
    rx.recv().expect("echo server ready");
    h
}

/// Start a device-side server exposing a GDDR window of `len` bytes at
/// registered offset 0, pre-filled via the closure.
pub fn spawn_window_server(
    host: &VphiHost,
    port: Port,
    len: u64,
    fill: impl FnOnce(&vphi_phi::DeviceRegion) + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let board = std::sync::Arc::clone(host.board(0));
    let server = host.device_endpoint(0).expect("device endpoint");
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).expect("bind");
        server.listen(4, &mut tl).expect("listen");
        tx.send(()).expect("ready");
        let conn: ScifEndpoint = server.accept(&mut tl).expect("accept");
        let region = board.memory().alloc(len).expect("gddr");
        fill(&region);
        let offset = region.offset();
        conn.register(Some(0), len, Prot::READ_WRITE, WindowBacking::Device(region), &mut tl)
            .expect("register");
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
        let _ = board.memory().free(offset);
    });
    rx.recv().expect("window server ready");
    h
}

//! The KVM-side fault path for vPHI-mmap'ed device memory.
//!
//! Without the paper's patch, a guest dereference of a `scif_mmap`'d
//! buffer faults into KVM, which misinterprets the host-VA and resolves an
//! *invalid* memory area.  The patch (<10 LoC in kvm, <15 in the host SCIF
//! driver): faults landing in a `VM_PFNPHI`-tagged VMA are resolved using
//! the stored device frame number instead.
//!
//! [`KvmModule`] models exactly that dispatch: `access` looks up the VMA,
//! rejects untagged device access (the unpatched behaviour, kept around so
//! tests can demonstrate *why* the patch is needed), charges a
//! `PfnFaultResolve` on the first touch of each page, and serves the bytes
//! through the VMA backing.

use std::collections::HashSet;
use std::sync::Arc;

use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sim_core::{CostModel, SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

use crate::vma::{VmaError, VmaTable};

/// Whether the paper's `VM_PFNPHI` patch is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvmPatch {
    /// Stock KVM: faults on device-backed VMAs fail (invalid area).
    Unpatched,
    /// vPHI's patched KVM: faults resolve through the stored PFN.
    PfnPhi,
}

/// The per-VM KVM state for mmap fault handling.
pub struct KvmModule {
    cost: Arc<CostModel>,
    patch: KvmPatch,
    pub vmas: TrackedMutex<VmaTable>,
    /// Pages already faulted in (VMA start, page index).
    resolved: TrackedMutex<HashSet<(u64, u64)>>,
    faults: TrackedMutex<u64>,
}

impl std::fmt::Debug for KvmModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvmModule").field("patch", &self.patch).finish()
    }
}

impl KvmModule {
    pub fn new(cost: Arc<CostModel>, patch: KvmPatch) -> Self {
        KvmModule {
            cost,
            patch,
            vmas: TrackedMutex::new(LockClass::KvmVmas, VmaTable::new()),
            resolved: TrackedMutex::new(LockClass::KvmResolved, HashSet::new()),
            faults: TrackedMutex::new(LockClass::KvmFaults, 0),
        }
    }

    pub fn patch(&self) -> KvmPatch {
        self.patch
    }

    /// A guest load at virtual address `addr`.
    pub fn load(&self, addr: u64, out: &mut [u8], tl: &mut Timeline) -> Result<(), VmaError> {
        let vma = self.vmas.lock().find(addr)?;
        if !vma.flags.read {
            return Err(VmaError::Access);
        }
        self.fault_in(vma.start, addr, out.len() as u64, vma.flags.pfn_phi, tl)?;
        vma.backing.read(addr - vma.start, out)
    }

    /// A guest store at virtual address `addr`.
    pub fn store(&self, addr: u64, data: &[u8], tl: &mut Timeline) -> Result<(), VmaError> {
        let vma = self.vmas.lock().find(addr)?;
        if !vma.flags.write {
            return Err(VmaError::Access);
        }
        self.fault_in(vma.start, addr, data.len() as u64, vma.flags.pfn_phi, tl)?;
        vma.backing.write(addr - vma.start, data)
    }

    /// Resolve first-touch faults for every page the access covers.
    fn fault_in(
        &self,
        vma_start: u64,
        addr: u64,
        len: u64,
        pfn_phi: bool,
        tl: &mut Timeline,
    ) -> Result<(), VmaError> {
        let first_page = (addr - vma_start) / PAGE_SIZE;
        let last_page = (addr - vma_start + len.max(1) - 1) / PAGE_SIZE;
        let mut resolved = self.resolved.lock();
        for page in first_page..=last_page {
            if resolved.contains(&(vma_start, page)) {
                continue;
            }
            // This is the fault: it exits to KVM.
            *self.faults.lock() += 1;
            if pfn_phi {
                if self.patch == KvmPatch::Unpatched {
                    // Stock KVM interprets the faulting address in its own
                    // address space — an invalid area.  This is the failure
                    // the paper's patch exists to fix.
                    return Err(VmaError::BadBacking);
                }
                tl.charge(SpanLabel::PfnFaultResolve, self.cost.pfn_fault_resolve);
            }
            resolved.insert((vma_start, page));
        }
        Ok(())
    }

    /// Total page faults taken (first touches).
    pub fn fault_count(&self) -> u64 {
        *self.faults.lock()
    }

    /// Drop all resolved-page state for a VMA (on munmap).
    pub fn forget_vma(&self, vma_start: u64) {
        self.resolved.lock().retain(|(s, _)| *s != vma_start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vma::test_support::VecBacking;
    use crate::vma::VmaFlags;

    fn module(patch: KvmPatch) -> KvmModule {
        KvmModule::new(Arc::new(CostModel::paper_calibrated()), patch)
    }

    fn phi_backing(pages: u64) -> Arc<VecBacking> {
        Arc::new(VecBacking {
            data: vphi_sync::TrackedMutex::new(
                vphi_sync::LockClass::VmaData,
                vec![0u8; (pages * PAGE_SIZE) as usize],
            ),
            pfn_base: Some(0x4000),
        })
    }

    #[test]
    fn patched_kvm_serves_device_faults() {
        let kvm = module(KvmPatch::PfnPhi);
        let addr = kvm
            .vmas
            .lock()
            .map(None, 2 * PAGE_SIZE, VmaFlags::PHI_RW, Some(0x4000), phi_backing(2))
            .unwrap();
        let mut tl = Timeline::new();
        kvm.store(addr + 8, b"phi", &mut tl).unwrap();
        let mut out = [0u8; 3];
        kvm.load(addr + 8, &mut out, &mut tl).unwrap();
        assert_eq!(&out, b"phi");
        // One fault for the first touch of page 0; the load hit the same
        // page without faulting again.
        assert_eq!(kvm.fault_count(), 1);
        assert_eq!(
            tl.total_for(SpanLabel::PfnFaultResolve),
            CostModel::paper_calibrated().pfn_fault_resolve
        );
    }

    #[test]
    fn unpatched_kvm_fails_on_device_vmas() {
        let kvm = module(KvmPatch::Unpatched);
        let addr = kvm
            .vmas
            .lock()
            .map(None, PAGE_SIZE, VmaFlags::PHI_RW, Some(0x4000), phi_backing(1))
            .unwrap();
        let mut tl = Timeline::new();
        assert_eq!(kvm.store(addr, &[1], &mut tl).err(), Some(VmaError::BadBacking));
    }

    #[test]
    fn each_page_faults_once() {
        let kvm = module(KvmPatch::PfnPhi);
        let addr = kvm
            .vmas
            .lock()
            .map(None, 4 * PAGE_SIZE, VmaFlags::PHI_RW, Some(0x4000), phi_backing(4))
            .unwrap();
        let mut tl = Timeline::new();
        // A write spanning pages 1-2 takes two faults.
        kvm.store(addr + PAGE_SIZE + 100, &vec![0u8; (PAGE_SIZE + 200) as usize], &mut tl).unwrap();
        assert_eq!(kvm.fault_count(), 2);
        // Touching them again is free.
        kvm.store(addr + PAGE_SIZE, &[1], &mut tl).unwrap();
        assert_eq!(kvm.fault_count(), 2);
        // A fresh page faults.
        kvm.load(addr, &mut [0u8; 1], &mut tl).unwrap();
        assert_eq!(kvm.fault_count(), 3);
    }

    #[test]
    fn protection_checked_before_fault() {
        let kvm = module(KvmPatch::PfnPhi);
        let addr = kvm
            .vmas
            .lock()
            .map(None, PAGE_SIZE, VmaFlags::PHI_RO, Some(0x4000), phi_backing(1))
            .unwrap();
        let mut tl = Timeline::new();
        assert_eq!(kvm.store(addr, &[1], &mut tl).err(), Some(VmaError::Access));
        assert_eq!(kvm.fault_count(), 0);
    }

    #[test]
    fn segv_outside_vmas() {
        let kvm = module(KvmPatch::PfnPhi);
        let mut tl = Timeline::new();
        assert_eq!(kvm.load(0xdead_0000, &mut [0u8; 1], &mut tl).err(), Some(VmaError::Segv));
    }

    #[test]
    fn forget_vma_allows_refault() {
        let kvm = module(KvmPatch::PfnPhi);
        let addr = kvm
            .vmas
            .lock()
            .map(None, PAGE_SIZE, VmaFlags::PHI_RW, Some(0x4000), phi_backing(1))
            .unwrap();
        let mut tl = Timeline::new();
        kvm.load(addr, &mut [0u8; 1], &mut tl).unwrap();
        assert_eq!(kvm.fault_count(), 1);
        kvm.forget_vma(addr);
        kvm.load(addr, &mut [0u8; 1], &mut tl).unwrap();
        assert_eq!(kvm.fault_count(), 2);
    }
}

//! The assembled virtual machine.
//!
//! One [`Vm`] is one QEMU process: guest memory, a guest kernel, an IRQ
//! chip (inside the kernel), a KVM module and a QEMU event loop.  Virtual
//! PCI devices (the vPHI backend) attach via [`VirtualPciDevice`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use vphi_sim_core::CostModel;
use vphi_sync::{LockClass, TrackedMutex};
use vphi_virtio::VirtQueue;

use crate::event_loop::QemuEventLoop;
use crate::guest_mem::GuestMemory;
use crate::kernel::GuestKernel;
use crate::kvm::{KvmModule, KvmPatch};

/// A paravirtual PCI device plugged into a VM.
pub trait VirtualPciDevice: Send + Sync {
    fn name(&self) -> &str;
    /// The device's primary virtqueue (queue 0).
    fn queue(&self) -> Arc<VirtQueue>;
    /// Every virtqueue the device exposes, in queue-index order.  Single
    /// queue devices get the default.
    fn queues(&self) -> Vec<Arc<VirtQueue>> {
        vec![self.queue()]
    }
    /// Begin servicing the queues (spawn the backend service threads).
    fn start(&self);
    /// Stop servicing and release resources.
    fn stop(&self);
}

static NEXT_VM_ID: AtomicU32 = AtomicU32::new(0);

/// One virtual machine (QEMU process + guest).
pub struct Vm {
    id: u32,
    mem: Arc<GuestMemory>,
    kernel: Arc<GuestKernel>,
    kvm: Arc<KvmModule>,
    event_loop: Arc<QemuEventLoop>,
    devices: TrackedMutex<Vec<Arc<dyn VirtualPciDevice>>>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("mem", &self.mem.size())
            .field("devices", &self.devices.lock().len())
            .finish()
    }
}

impl Vm {
    /// Boot a VM with `mem_size` bytes of guest memory.  `patch` selects
    /// whether the host kernel carries the vPHI `VM_PFNPHI` patch.
    pub fn new(mem_size: u64, cost: Arc<CostModel>, patch: KvmPatch) -> Arc<Self> {
        let mem = Arc::new(GuestMemory::new(mem_size));
        let kernel = Arc::new(GuestKernel::new(Arc::clone(&mem), Arc::clone(&cost)));
        let kvm = Arc::new(KvmModule::new(Arc::clone(&cost), patch));
        let event_loop = Arc::new(QemuEventLoop::new(cost));
        Arc::new(Vm {
            id: NEXT_VM_ID.fetch_add(1, Ordering::Relaxed),
            mem,
            kernel,
            kvm,
            event_loop,
            devices: TrackedMutex::new(LockClass::VmDevices, Vec::new()),
        })
    }

    pub fn id(&self) -> u32 {
        self.id
    }

    pub fn mem(&self) -> &Arc<GuestMemory> {
        &self.mem
    }

    pub fn kernel(&self) -> &Arc<GuestKernel> {
        &self.kernel
    }

    pub fn kvm(&self) -> &Arc<KvmModule> {
        &self.kvm
    }

    pub fn event_loop(&self) -> &Arc<QemuEventLoop> {
        &self.event_loop
    }

    /// Plug in and start a device.
    pub fn attach(&self, dev: Arc<dyn VirtualPciDevice>) {
        dev.start();
        self.devices.lock().push(dev);
    }

    pub fn device_count(&self) -> usize {
        self.devices.lock().len()
    }

    pub fn device(&self, name: &str) -> Option<Arc<dyn VirtualPciDevice>> {
        self.devices.lock().iter().find(|d| d.name() == name).map(Arc::clone)
    }

    /// Power the VM off: stop all devices.
    pub fn shutdown(&self) {
        for d in self.devices.lock().drain(..) {
            d.stop();
        }
    }
}

impl Drop for Vm {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use vphi_sim_core::units::MIB;

    struct DummyDev {
        q: Arc<VirtQueue>,
        running: AtomicBool,
    }

    impl VirtualPciDevice for DummyDev {
        fn name(&self) -> &str {
            "dummy"
        }
        fn queue(&self) -> Arc<VirtQueue> {
            Arc::clone(&self.q)
        }
        fn start(&self) {
            self.running.store(true, Ordering::Release);
        }
        fn stop(&self) {
            self.running.store(false, Ordering::Release);
        }
    }

    #[test]
    fn vm_ids_are_unique() {
        let cost = Arc::new(CostModel::paper_calibrated());
        let a = Vm::new(16 * MIB, Arc::clone(&cost), KvmPatch::PfnPhi);
        let b = Vm::new(16 * MIB, cost, KvmPatch::PfnPhi);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn attach_start_stop_lifecycle() {
        let cost = Arc::new(CostModel::paper_calibrated());
        let vm = Vm::new(16 * MIB, cost, KvmPatch::PfnPhi);
        let dev = Arc::new(DummyDev { q: VirtQueue::new(8), running: AtomicBool::new(false) });
        vm.attach(Arc::clone(&dev) as Arc<dyn VirtualPciDevice>);
        assert!(dev.running.load(Ordering::Acquire));
        assert_eq!(vm.device_count(), 1);
        assert!(vm.device("dummy").is_some());
        assert!(vm.device("nope").is_none());
        vm.shutdown();
        assert!(!dev.running.load(Ordering::Acquire));
        assert_eq!(vm.device_count(), 0);
    }

    #[test]
    fn components_are_wired() {
        let cost = Arc::new(CostModel::paper_calibrated());
        let vm = Vm::new(16 * MIB, cost, KvmPatch::Unpatched);
        assert_eq!(vm.mem().size(), 16 * MIB);
        assert_eq!(vm.kvm().patch(), KvmPatch::Unpatched);
        assert!(Arc::ptr_eq(vm.kernel().mem(), vm.mem()));
    }
}

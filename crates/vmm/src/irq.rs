//! The virtual interrupt controller.
//!
//! The vPHI backend "notifies the guest via a virtual interrupt" (paper
//! §III).  We reuse the MSI vector model from the PCIe crate: QEMU raising
//! a vector charges the injection latency and synchronously runs the
//! guest's registered handler (which typically wakes a wait queue).

use std::collections::HashMap;
use std::sync::Arc;

use vphi_pcie::{InterruptHandler, MsiVector};
use vphi_sim_core::{CostModel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

/// A per-VM interrupt controller.
pub struct IrqChip {
    cost: Arc<CostModel>,
    vectors: TrackedMutex<HashMap<u32, Arc<MsiVector>>>,
}

impl std::fmt::Debug for IrqChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IrqChip").field("vectors", &self.vectors.lock().len()).finish()
    }
}

impl IrqChip {
    pub fn new(cost: Arc<CostModel>) -> Self {
        IrqChip { cost, vectors: TrackedMutex::new(LockClass::IrqVectors, HashMap::new()) }
    }

    /// Get (or create) a vector.
    pub fn vector(&self, n: u32) -> Arc<MsiVector> {
        Arc::clone(self.vectors.lock().entry(n).or_insert_with(|| Arc::new(MsiVector::new(n))))
    }

    /// Register a guest handler on vector `n`.
    pub fn register(&self, n: u32, handler: Arc<dyn InterruptHandler>) {
        self.vector(n).register(handler);
    }

    /// Inject vector `n` into the guest, charging the injection cost.
    pub fn inject(&self, n: u32, tl: &mut Timeline) {
        let v = self.vector(n);
        v.raise(tl, self.cost.irq_inject);
    }

    /// Times vector `n` has fired.
    pub fn inject_count(&self, n: u32) -> u64 {
        self.vector(n).raise_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use vphi_sim_core::SpanLabel;

    #[test]
    fn inject_charges_cost_and_runs_handler() {
        let cost = Arc::new(CostModel::paper_calibrated());
        let chip = IrqChip::new(Arc::clone(&cost));
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        chip.register(
            3,
            Arc::new(move |_: u32, _: &mut Timeline| {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let mut tl = Timeline::new();
        chip.inject(3, &mut tl);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(tl.total_for(SpanLabel::IrqInject), cost.irq_inject);
        assert_eq!(chip.inject_count(3), 1);
    }

    #[test]
    fn vectors_are_independent_and_stable() {
        let chip = IrqChip::new(Arc::new(CostModel::paper_calibrated()));
        let v1 = chip.vector(1);
        let v1_again = chip.vector(1);
        assert!(Arc::ptr_eq(&v1, &v1_again));
        let mut tl = Timeline::new();
        chip.inject(1, &mut tl);
        assert_eq!(chip.inject_count(1), 1);
        assert_eq!(chip.inject_count(2), 0);
    }
}

//! Guest physical memory.
//!
//! One contiguous arena per VM with a page-granular first-fit allocator.
//! The host (QEMU backend) gets zero-copy views — closures over slices of
//! the arena — which is exactly the mapping trick the paper uses to avoid
//! copies between the guest and QEMU.

use std::collections::BTreeMap;

use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sync::{LockClass, TrackedMutex};

/// A guest-physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpa(pub u64);

impl Gpa {
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    pub fn offset(self, delta: u64) -> Gpa {
        Gpa(self.0 + delta)
    }
}

impl std::fmt::Display for Gpa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpa:{:#x}", self.0)
    }
}

/// Guest memory errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMemError {
    OutOfMemory,
    OutOfBounds,
    BadFree,
    EmptyRequest,
}

impl std::fmt::Display for GuestMemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestMemError::OutOfMemory => write!(f, "guest out of physical memory"),
            GuestMemError::OutOfBounds => write!(f, "guest-physical access out of bounds"),
            GuestMemError::BadFree => write!(f, "free of an unallocated guest region"),
            GuestMemError::EmptyRequest => write!(f, "zero-length guest allocation"),
        }
    }
}

impl std::error::Error for GuestMemError {}

#[derive(Debug)]
struct MemState {
    arena: Vec<u8>,
    /// start → len of free spans.
    free: BTreeMap<u64, u64>,
    /// start → len of live allocations.
    live: BTreeMap<u64, u64>,
}

/// The VM's physical memory.
#[derive(Debug)]
pub struct GuestMemory {
    size: u64,
    state: TrackedMutex<MemState>,
}

impl GuestMemory {
    pub fn new(size: u64) -> Self {
        assert!(size > 0 && size.is_multiple_of(PAGE_SIZE), "guest memory must be whole pages");
        let mut free = BTreeMap::new();
        free.insert(0, size);
        GuestMemory {
            size,
            state: TrackedMutex::new(
                LockClass::GuestMemState,
                MemState { arena: vec![0u8; size as usize], free, live: BTreeMap::new() },
            ),
        }
    }

    pub fn size(&self) -> u64 {
        self.size
    }

    pub fn allocated(&self) -> u64 {
        self.state.lock().live.values().sum()
    }

    /// Allocate `len` bytes of guest-physically-contiguous memory
    /// (page-rounded).  This is what backs both guest kmalloc and the
    /// virtio rings.
    pub fn alloc(&self, len: u64) -> Result<Gpa, GuestMemError> {
        if len == 0 {
            return Err(GuestMemError::EmptyRequest);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut st = self.state.lock();
        let slot = st
            .free
            .iter()
            .find(|(_, &flen)| flen >= len)
            .map(|(&off, &flen)| (off, flen))
            .ok_or(GuestMemError::OutOfMemory)?;
        let (off, flen) = slot;
        st.free.remove(&off);
        if flen > len {
            st.free.insert(off + len, flen - len);
        }
        st.live.insert(off, len);
        Ok(Gpa(off))
    }

    /// Free a previous allocation (by its exact base).
    pub fn free(&self, gpa: Gpa) -> Result<(), GuestMemError> {
        let mut st = self.state.lock();
        let len = st.live.remove(&gpa.0).ok_or(GuestMemError::BadFree)?;
        let mut start = gpa.0;
        let mut flen = len;
        if let Some(&next_len) = st.free.get(&(start + flen)) {
            st.free.remove(&(start + flen));
            flen += next_len;
        }
        if let Some((&prev_off, &prev_len)) = st.free.range(..start).next_back() {
            if prev_off + prev_len == start {
                st.free.remove(&prev_off);
                start = prev_off;
                flen += prev_len;
            }
        }
        st.free.insert(start, flen);
        Ok(())
    }

    fn check(&self, gpa: Gpa, len: usize) -> Result<(), GuestMemError> {
        let end = gpa.0.checked_add(len as u64).ok_or(GuestMemError::OutOfBounds)?;
        if end > self.size {
            return Err(GuestMemError::OutOfBounds);
        }
        Ok(())
    }

    /// Guest/host read of physical memory.
    pub fn read(&self, gpa: Gpa, out: &mut [u8]) -> Result<(), GuestMemError> {
        self.check(gpa, out.len())?;
        let st = self.state.lock();
        out.copy_from_slice(&st.arena[gpa.0 as usize..gpa.0 as usize + out.len()]);
        Ok(())
    }

    /// Guest/host write of physical memory.
    pub fn write(&self, gpa: Gpa, data: &[u8]) -> Result<(), GuestMemError> {
        self.check(gpa, data.len())?;
        let mut st = self.state.lock();
        st.arena[gpa.0 as usize..gpa.0 as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Zero-copy host view: run `f` over the guest bytes in place — the
    /// backend's "maps the buffer to its address space avoiding again any
    /// copies" (paper §III).
    pub fn with_slice<R>(
        &self,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, GuestMemError> {
        self.check(gpa, len as usize)?;
        let st = self.state.lock();
        Ok(f(&st.arena[gpa.0 as usize..(gpa.0 + len) as usize]))
    }

    /// Zero-copy mutable host view.
    pub fn with_slice_mut<R>(
        &self,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, GuestMemError> {
        self.check(gpa, len as usize)?;
        let mut st = self.state.lock();
        Ok(f(&mut st.arena[gpa.0 as usize..(gpa.0 + len) as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::units::MIB;

    #[test]
    fn alloc_free_cycle() {
        let m = GuestMemory::new(MIB);
        let a = m.alloc(PAGE_SIZE).unwrap();
        let b = m.alloc(PAGE_SIZE).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.allocated(), 2 * PAGE_SIZE);
        m.free(a).unwrap();
        m.free(b).unwrap();
        assert_eq!(m.allocated(), 0);
        // Full arena reusable after coalescing.
        assert!(m.alloc(MIB).is_ok());
    }

    #[test]
    fn rw_round_trip_and_bounds() {
        let m = GuestMemory::new(MIB);
        let gpa = m.alloc(PAGE_SIZE).unwrap();
        m.write(gpa.offset(10), b"guest").unwrap();
        let mut out = [0u8; 5];
        m.read(gpa.offset(10), &mut out).unwrap();
        assert_eq!(&out, b"guest");
        assert_eq!(m.read(Gpa(MIB), &mut out), Err(GuestMemError::OutOfBounds));
        assert_eq!(m.write(Gpa(u64::MAX), &[1]), Err(GuestMemError::OutOfBounds));
    }

    #[test]
    fn zero_copy_views_alias_the_arena() {
        let m = GuestMemory::new(MIB);
        let gpa = m.alloc(PAGE_SIZE).unwrap();
        m.with_slice_mut(gpa, 4, |s| s.copy_from_slice(b"abcd")).unwrap();
        let v = m.with_slice(gpa, 4, |s| s.to_vec()).unwrap();
        assert_eq!(v, b"abcd");
    }

    #[test]
    fn oom_and_bad_free() {
        let m = GuestMemory::new(4 * PAGE_SIZE);
        assert_eq!(m.alloc(0), Err(GuestMemError::EmptyRequest));
        let _a = m.alloc(4 * PAGE_SIZE).unwrap();
        assert_eq!(m.alloc(PAGE_SIZE), Err(GuestMemError::OutOfMemory));
        assert_eq!(m.free(Gpa(PAGE_SIZE)), Err(GuestMemError::BadFree));
    }

    #[test]
    fn allocations_are_page_rounded_and_contiguous() {
        let m = GuestMemory::new(MIB);
        let gpa = m.alloc(PAGE_SIZE + 1).unwrap();
        // Next allocation must start 2 pages later (rounding).
        let next = m.alloc(PAGE_SIZE).unwrap();
        assert_eq!(next.0 - gpa.0, 2 * PAGE_SIZE);
    }

    #[test]
    fn gpa_helpers() {
        let g = Gpa(2 * PAGE_SIZE + 5);
        assert_eq!(g.page(), 2);
        assert_eq!(g.offset(3).0, 2 * PAGE_SIZE + 8);
        assert!(g.to_string().starts_with("gpa:0x"));
    }
}

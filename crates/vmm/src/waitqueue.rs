//! Guest-kernel wait queues.
//!
//! Two flavors.  [`WaitQueue`] is the paper's baseline: the frontend
//! places each requesting process on one queue and the interrupt handler
//! "wakes up **all** sleeping processes, which check the shared ring to
//! determine if the reply is for them" (paper §IV-B) — the wake-all
//! thundering herd whose cost the paper measures.  [`TokenWaitQueue`] is
//! the fixed scheme (DESIGN.md #16): each sleeper registers a per-token
//! slot and completion delivery wakes exactly the slot(s) it completed, so
//! an N-sleeper lane no longer pays N−1 spurious wakeups per completion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex};

/// Wall-clock bound so deadlocked tests fail loudly.
const WALL_TIMEOUT: Duration = Duration::from_secs(30);

/// A wake-all wait queue.
#[derive(Debug)]
pub struct WaitQueue {
    generation: TrackedMutex<u64>,
    cond: TrackedCondvar,
    wakeups: AtomicU64,
    sleeps: AtomicU64,
}

impl Default for WaitQueue {
    fn default() -> Self {
        WaitQueue {
            generation: TrackedMutex::new(LockClass::WaitQueue, 0),
            cond: TrackedCondvar::new(),
            wakeups: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
        }
    }
}

impl WaitQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sleep until `pred` returns `Some(T)`.  The predicate is evaluated
    /// once immediately, then after every [`wake_all`](WaitQueue::wake_all).
    /// Returns `None` only on wall-clock timeout (a bug guard, not a
    /// semantic timeout).
    pub fn wait_until<T>(&self, mut pred: impl FnMut() -> Option<T>) -> Option<T> {
        let mut generation = self.generation.lock();
        loop {
            if let Some(v) = pred() {
                return Some(v);
            }
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            let g = *generation;
            while *generation == g {
                if self.cond.wait_for(&mut generation, WALL_TIMEOUT).timed_out() {
                    return None;
                }
            }
        }
    }

    /// Like [`wait_until`](WaitQueue::wait_until) but bounded by `timeout`
    /// of wall time.  On timeout the predicate gets one final check (a
    /// wake racing the deadline must not lose its completion) and its
    /// result — usually `None` — is returned.  The remaining budget is
    /// recomputed after every wake-all, so spurious wake-ups cannot extend
    /// the deadline.
    pub fn wait_until_for<T>(
        &self,
        timeout: Duration,
        mut pred: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut generation = self.generation.lock();
        loop {
            if let Some(v) = pred() {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return pred();
            }
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            let g = *generation;
            while *generation == g {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return pred();
                }
                if self.cond.wait_for(&mut generation, remaining).timed_out() {
                    return pred();
                }
            }
        }
    }

    /// Wake every sleeper (they all re-check their predicates).
    pub fn wake_all(&self) {
        let mut generation = self.generation.lock();
        *generation += 1;
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.cond.notify_all();
    }

    /// Total wake-all events (for the breakdown diagnostics).
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Total times any sleeper actually went to sleep (i.e. its predicate
    /// failed and it blocked) — measures spurious-wakeup pressure.
    pub fn sleep_count(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------- per-token wait queue

/// One sleeping requester's parking slot: a signal count (wakes delivered
/// before the sleeper parked must not be lost) and its private condvar.
#[derive(Debug)]
struct TokenSlot {
    signals: TrackedMutex<u64>,
    cond: TrackedCondvar,
}

impl TokenSlot {
    fn new() -> Self {
        TokenSlot {
            signals: TrackedMutex::new(LockClass::TokenSlot, 0),
            cond: TrackedCondvar::new(),
        }
    }
}

/// A wait queue with per-token wakers.
///
/// A waiter registers a slot keyed by its request token before sleeping;
/// [`wake`](TokenWaitQueue::wake) signals exactly that slot.  Signals are
/// counted, not flagged: a wake delivered between the waiter's failed
/// predicate check and its park is consumed on the next loop iteration, so
/// the lost-wakeup race of a naive flag cannot happen.
/// [`wake_all`](TokenWaitQueue::wake_all) remains for broadcast events
/// (shutdown) that must unblock every sleeper regardless of token.
#[derive(Debug)]
pub struct TokenWaitQueue {
    slots: TrackedMutex<HashMap<u64, Arc<TokenSlot>>>,
    wakeups: AtomicU64,
    sleeps: AtomicU64,
    spurious: AtomicU64,
    broadcasts: AtomicU64,
}

impl Default for TokenWaitQueue {
    fn default() -> Self {
        TokenWaitQueue {
            slots: TrackedMutex::new(LockClass::TokenWaiters, HashMap::new()),
            wakeups: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
            spurious: AtomicU64::new(0),
            broadcasts: AtomicU64::new(0),
        }
    }
}

impl TokenWaitQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sleep until `pred` returns `Some(T)` or `timeout` of wall time
    /// elapses, waking on [`wake`](TokenWaitQueue::wake)`(token)` and on
    /// broadcasts.  On timeout the predicate gets one final check (a wake
    /// racing the deadline must not lose its completion) and its result is
    /// returned.
    pub fn wait_for<T>(
        &self,
        token: u64,
        timeout: Duration,
        mut pred: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        if let Some(v) = pred() {
            return Some(v);
        }
        let slot = Arc::clone(
            self.slots.lock().entry(token).or_insert_with(|| Arc::new(TokenSlot::new())),
        );
        let got = self.wait_on(&slot, timeout, &mut pred);
        let mut slots = self.slots.lock();
        if slots.get(&token).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
            slots.remove(&token);
        }
        got
    }

    fn wait_on<T>(
        &self,
        slot: &TokenSlot,
        timeout: Duration,
        pred: &mut impl FnMut() -> Option<T>,
    ) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut signals = slot.signals.lock();
        let mut signalled = false;
        loop {
            if let Some(v) = pred() {
                return Some(v);
            }
            if signalled {
                // A directed wake whose completion the predicate could not
                // see is the pathology this queue exists to eliminate.
                self.spurious.fetch_add(1, Ordering::Relaxed);
                signalled = false;
            }
            if *signals > 0 {
                // Consume a wake that landed before (or while) we parked
                // and re-check — never park over a pending signal.
                *signals -= 1;
                signalled = true;
                continue;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return pred();
            }
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            if slot.cond.wait_for(&mut signals, remaining).timed_out() {
                return pred();
            }
        }
    }

    /// Wake the sleeper registered for `token` (if any).  The signal is
    /// recorded even if the sleeper has not parked yet; a wake with no
    /// registered slot is a no-op (the completion is already in the
    /// completed table and the fast path takes it).
    pub fn wake(&self, token: u64) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let slot = self.slots.lock().get(&token).map(Arc::clone);
        if let Some(slot) = slot {
            *slot.signals.lock() += 1;
            slot.cond.notify_one();
        }
    }

    /// Broadcast to every registered sleeper (shutdown, card reset).
    pub fn wake_all(&self) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        let slots: Vec<Arc<TokenSlot>> = self.slots.lock().values().map(Arc::clone).collect();
        for slot in slots {
            *slot.signals.lock() += 1;
            slot.cond.notify_all();
        }
    }

    /// Directed wakes delivered.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Times a waiter actually parked.
    pub fn sleep_count(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }

    /// Directed wakes after which the woken waiter's predicate was still
    /// false.  With per-token delivery this stays ~0 (a nonzero value
    /// means a wake outran its completion's visibility, which the
    /// completed-table insert ordering forbids, or a broadcast raced in).
    pub fn spurious_count(&self) -> u64 {
        self.spurious.load(Ordering::Relaxed)
    }

    /// Broadcast wake-alls delivered.
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn immediate_predicate_never_sleeps() {
        let wq = WaitQueue::new();
        let v = wq.wait_until(|| Some(42));
        assert_eq!(v, Some(42));
        assert_eq!(wq.sleep_count(), 0);
    }

    #[test]
    fn sleeper_wakes_when_condition_set() {
        let wq = Arc::new(WaitQueue::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (wq2, flag2) = (Arc::clone(&wq), Arc::clone(&flag));
        let sleeper = std::thread::spawn(move || {
            wq2.wait_until(|| flag2.load(Ordering::Acquire).then_some("done"))
        });
        std::thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::Release);
        wq.wake_all();
        assert_eq!(sleeper.join().unwrap(), Some("done"));
        assert!(wq.sleep_count() >= 1);
        assert_eq!(wq.wakeup_count(), 1);
    }

    #[test]
    fn wake_all_wakes_every_sleeper_and_they_recheck() {
        // The paper's scheme: N sleepers, one reply — everyone wakes, one
        // wins, the rest go back to sleep.
        let wq = Arc::new(WaitQueue::new());
        let ready: Arc<TrackedMutex<Vec<u32>>> =
            Arc::new(TrackedMutex::new(LockClass::TestInner, Vec::new()));
        let mut handles = Vec::new();
        for id in 0..4u32 {
            let wq = Arc::clone(&wq);
            let ready = Arc::clone(&ready);
            handles.push(std::thread::spawn(move || {
                wq.wait_until(|| {
                    let mut r = ready.lock();
                    r.iter().position(|&x| x == id).map(|i| {
                        r.remove(i);
                        id
                    })
                })
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        // Deliver replies one at a time, waking everyone each time.
        for id in 0..4u32 {
            ready.lock().push(id);
            wq.wake_all();
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(wq.wakeup_count(), 4);
        // Spurious wakeups happened: more sleeps than threads.
        assert!(wq.sleep_count() >= 4);
    }

    #[test]
    fn bounded_wait_times_out_with_a_final_check() {
        let wq = Arc::new(WaitQueue::new());
        // Nothing ever becomes ready: the bounded wait returns None at the
        // deadline instead of hanging until the 30 s bug guard.
        let start = std::time::Instant::now();
        assert_eq!(wq.wait_until_for(Duration::from_millis(30), || None::<u32>), None);
        assert!(start.elapsed() < Duration::from_secs(5));

        // A completion that lands exactly as the deadline expires is still
        // taken by the final predicate check.
        let flag = Arc::new(AtomicBool::new(false));
        let (wq2, flag2) = (Arc::clone(&wq), Arc::clone(&flag));
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            flag2.store(true, Ordering::Release);
            wq2.wake_all();
        });
        let got =
            wq.wait_until_for(Duration::from_secs(5), || flag.load(Ordering::Acquire).then_some(7));
        assert_eq!(got, Some(7));
        setter.join().unwrap();
    }

    #[test]
    fn spurious_wakeups_do_not_extend_bounded_wait() {
        let wq = Arc::new(WaitQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (wq2, stop2) = (Arc::clone(&wq), Arc::clone(&stop));
        let bumper = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                wq2.wake_all();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let start = std::time::Instant::now();
        assert_eq!(wq.wait_until_for(Duration::from_millis(60), || None::<u32>), None);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        bumper.join().unwrap();
        assert!(elapsed < Duration::from_millis(500), "overstayed: {elapsed:?}");
    }

    #[test]
    fn wake_before_wait_is_not_lost_if_condition_holds() {
        let wq = WaitQueue::new();
        wq.wake_all(); // nobody listening
                       // A waiter whose predicate is already true returns instantly.
        assert_eq!(wq.wait_until(|| Some(1)), Some(1));
    }

    #[test]
    fn token_wake_reaches_only_its_sleeper() {
        let wq = Arc::new(TokenWaitQueue::new());
        let ready = Arc::new(AtomicU64::new(0)); // bitmask of completed tokens
        let mut handles = Vec::new();
        for token in 0..4u64 {
            let wq = Arc::clone(&wq);
            let ready = Arc::clone(&ready);
            handles.push(std::thread::spawn(move || {
                wq.wait_for(token, Duration::from_secs(10), || {
                    (ready.load(Ordering::Acquire) & (1 << token) != 0).then_some(token)
                })
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        for token in 0..4u64 {
            ready.fetch_or(1 << token, Ordering::Release);
            wq.wake(token);
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(wq.wakeup_count(), 4);
        // Directed delivery: nobody woke for someone else's completion.
        assert_eq!(wq.spurious_count(), 0);
    }

    #[test]
    fn token_wake_racing_the_park_is_not_lost() {
        // The classic lost-wakeup shape: the completion lands between the
        // waiter's failed predicate check and its park.  The signal count
        // absorbs it.
        for _ in 0..50 {
            let wq = Arc::new(TokenWaitQueue::new());
            let flag = Arc::new(AtomicBool::new(false));
            let (wq2, flag2) = (Arc::clone(&wq), Arc::clone(&flag));
            let waker = std::thread::spawn(move || {
                flag2.store(true, Ordering::Release);
                wq2.wake(7);
            });
            let got = wq.wait_for(7, Duration::from_secs(10), || {
                flag.load(Ordering::Acquire).then_some(())
            });
            assert_eq!(got, Some(()));
            waker.join().unwrap();
        }
    }

    #[test]
    fn token_timeout_gets_a_final_check_and_broadcast_unblocks_everyone() {
        let wq = Arc::new(TokenWaitQueue::new());
        let start = std::time::Instant::now();
        assert_eq!(wq.wait_for(1, Duration::from_millis(30), || None::<u32>), None);
        assert!(start.elapsed() < Duration::from_secs(5));

        // Broadcast (shutdown path) reaches sleepers regardless of token.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for token in 10..13u64 {
            let (wq, stop) = (Arc::clone(&wq), Arc::clone(&stop));
            handles.push(std::thread::spawn(move || {
                wq.wait_for(token, Duration::from_secs(10), || {
                    stop.load(Ordering::Acquire).then_some(())
                })
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Release);
        wq.wake_all();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(()));
        }
        assert_eq!(wq.broadcast_count(), 1);
    }

    #[test]
    fn wake_with_no_registered_slot_is_a_noop() {
        let wq = TokenWaitQueue::new();
        wq.wake(99);
        assert_eq!(wq.wakeup_count(), 1);
        // A later waiter on the same token with a true predicate returns
        // on the fast path without sleeping.
        assert_eq!(wq.wait_for(99, Duration::from_secs(1), || Some(5)), Some(5));
        assert_eq!(wq.sleep_count(), 0);
    }
}

//! Guest-kernel wait queues with wake-all semantics.
//!
//! The vPHI frontend places each requesting process on a wait queue; the
//! interrupt handler "wakes up **all** sleeping processes, which check the
//! shared ring to determine if the reply is for them" (paper §IV-B).  That
//! wake-all-recheck scheme is the dominant latency cost the paper
//! measures, so we model it explicitly: sleepers wait on a condvar and
//! re-evaluate their predicate on every wake-all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex};

/// Wall-clock bound so deadlocked tests fail loudly.
const WALL_TIMEOUT: Duration = Duration::from_secs(30);

/// A wake-all wait queue.
#[derive(Debug)]
pub struct WaitQueue {
    generation: TrackedMutex<u64>,
    cond: TrackedCondvar,
    wakeups: AtomicU64,
    sleeps: AtomicU64,
}

impl Default for WaitQueue {
    fn default() -> Self {
        WaitQueue {
            generation: TrackedMutex::new(LockClass::WaitQueue, 0),
            cond: TrackedCondvar::new(),
            wakeups: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
        }
    }
}

impl WaitQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sleep until `pred` returns `Some(T)`.  The predicate is evaluated
    /// once immediately, then after every [`wake_all`](WaitQueue::wake_all).
    /// Returns `None` only on wall-clock timeout (a bug guard, not a
    /// semantic timeout).
    pub fn wait_until<T>(&self, mut pred: impl FnMut() -> Option<T>) -> Option<T> {
        let mut generation = self.generation.lock();
        loop {
            if let Some(v) = pred() {
                return Some(v);
            }
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            let g = *generation;
            while *generation == g {
                if self.cond.wait_for(&mut generation, WALL_TIMEOUT).timed_out() {
                    return None;
                }
            }
        }
    }

    /// Like [`wait_until`](WaitQueue::wait_until) but bounded by `timeout`
    /// of wall time.  On timeout the predicate gets one final check (a
    /// wake racing the deadline must not lose its completion) and its
    /// result — usually `None` — is returned.  The remaining budget is
    /// recomputed after every wake-all, so spurious wake-ups cannot extend
    /// the deadline.
    pub fn wait_until_for<T>(
        &self,
        timeout: Duration,
        mut pred: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut generation = self.generation.lock();
        loop {
            if let Some(v) = pred() {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return pred();
            }
            self.sleeps.fetch_add(1, Ordering::Relaxed);
            let g = *generation;
            while *generation == g {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return pred();
                }
                if self.cond.wait_for(&mut generation, remaining).timed_out() {
                    return pred();
                }
            }
        }
    }

    /// Wake every sleeper (they all re-check their predicates).
    pub fn wake_all(&self) {
        let mut generation = self.generation.lock();
        *generation += 1;
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.cond.notify_all();
    }

    /// Total wake-all events (for the breakdown diagnostics).
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Total times any sleeper actually went to sleep (i.e. its predicate
    /// failed and it blocked) — measures spurious-wakeup pressure.
    pub fn sleep_count(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn immediate_predicate_never_sleeps() {
        let wq = WaitQueue::new();
        let v = wq.wait_until(|| Some(42));
        assert_eq!(v, Some(42));
        assert_eq!(wq.sleep_count(), 0);
    }

    #[test]
    fn sleeper_wakes_when_condition_set() {
        let wq = Arc::new(WaitQueue::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (wq2, flag2) = (Arc::clone(&wq), Arc::clone(&flag));
        let sleeper = std::thread::spawn(move || {
            wq2.wait_until(|| flag2.load(Ordering::Acquire).then_some("done"))
        });
        std::thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::Release);
        wq.wake_all();
        assert_eq!(sleeper.join().unwrap(), Some("done"));
        assert!(wq.sleep_count() >= 1);
        assert_eq!(wq.wakeup_count(), 1);
    }

    #[test]
    fn wake_all_wakes_every_sleeper_and_they_recheck() {
        // The paper's scheme: N sleepers, one reply — everyone wakes, one
        // wins, the rest go back to sleep.
        let wq = Arc::new(WaitQueue::new());
        let ready: Arc<TrackedMutex<Vec<u32>>> =
            Arc::new(TrackedMutex::new(LockClass::TestInner, Vec::new()));
        let mut handles = Vec::new();
        for id in 0..4u32 {
            let wq = Arc::clone(&wq);
            let ready = Arc::clone(&ready);
            handles.push(std::thread::spawn(move || {
                wq.wait_until(|| {
                    let mut r = ready.lock();
                    r.iter().position(|&x| x == id).map(|i| {
                        r.remove(i);
                        id
                    })
                })
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        // Deliver replies one at a time, waking everyone each time.
        for id in 0..4u32 {
            ready.lock().push(id);
            wq.wake_all();
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(wq.wakeup_count(), 4);
        // Spurious wakeups happened: more sleeps than threads.
        assert!(wq.sleep_count() >= 4);
    }

    #[test]
    fn bounded_wait_times_out_with_a_final_check() {
        let wq = Arc::new(WaitQueue::new());
        // Nothing ever becomes ready: the bounded wait returns None at the
        // deadline instead of hanging until the 30 s bug guard.
        let start = std::time::Instant::now();
        assert_eq!(wq.wait_until_for(Duration::from_millis(30), || None::<u32>), None);
        assert!(start.elapsed() < Duration::from_secs(5));

        // A completion that lands exactly as the deadline expires is still
        // taken by the final predicate check.
        let flag = Arc::new(AtomicBool::new(false));
        let (wq2, flag2) = (Arc::clone(&wq), Arc::clone(&flag));
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            flag2.store(true, Ordering::Release);
            wq2.wake_all();
        });
        let got =
            wq.wait_until_for(Duration::from_secs(5), || flag.load(Ordering::Acquire).then_some(7));
        assert_eq!(got, Some(7));
        setter.join().unwrap();
    }

    #[test]
    fn spurious_wakeups_do_not_extend_bounded_wait() {
        let wq = Arc::new(WaitQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (wq2, stop2) = (Arc::clone(&wq), Arc::clone(&stop));
        let bumper = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                wq2.wake_all();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let start = std::time::Instant::now();
        assert_eq!(wq.wait_until_for(Duration::from_millis(60), || None::<u32>), None);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        bumper.join().unwrap();
        assert!(elapsed < Duration::from_millis(500), "overstayed: {elapsed:?}");
    }

    #[test]
    fn wake_before_wait_is_not_lost_if_condition_holds() {
        let wq = WaitQueue::new();
        wq.wake_all(); // nobody listening
                       // A waiter whose predicate is already true returns instantly.
        assert_eq!(wq.wait_until(|| Some(1)), Some(1));
    }
}

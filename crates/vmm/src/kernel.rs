//! The guest-kernel environment the vPHI frontend driver runs in.
//!
//! Provides the three kernel services the paper's frontend uses:
//! `kmalloc` (physically-contiguous, capped at `KMALLOC_MAX_SIZE`),
//! user↔kernel copies (the *only* data copies on the vPHI path, §III),
//! and wait queues + IRQ registration.

use std::sync::Arc;

use vphi_sim_core::cost::{CostModel, KMALLOC_MAX_SIZE};
use vphi_sim_core::{SpanLabel, Timeline};

use crate::guest_mem::{Gpa, GuestMemError, GuestMemory};
use crate::irq::IrqChip;
use crate::waitqueue::WaitQueue;

/// A kmalloc'd physically-contiguous kernel buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmallocBuf {
    pub gpa: Gpa,
    pub len: u64,
}

/// The guest kernel.
pub struct GuestKernel {
    mem: Arc<GuestMemory>,
    cost: Arc<CostModel>,
    irq: Arc<IrqChip>,
}

impl std::fmt::Debug for GuestKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestKernel").field("mem_size", &self.mem.size()).finish()
    }
}

impl GuestKernel {
    pub fn new(mem: Arc<GuestMemory>, cost: Arc<CostModel>) -> Self {
        let irq = Arc::new(IrqChip::new(Arc::clone(&cost)));
        GuestKernel { mem, cost, irq }
    }

    pub fn mem(&self) -> &Arc<GuestMemory> {
        &self.mem
    }

    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    pub fn irq(&self) -> &Arc<IrqChip> {
        &self.irq
    }

    /// `kmalloc`: allocate up to `KMALLOC_MAX_SIZE` physically-contiguous
    /// bytes, charging the allocation cost.  Larger requests fail — that
    /// limit is why the frontend chunks big transfers (paper §III,
    /// implementation details).
    pub fn kmalloc(&self, len: u64, tl: &mut Timeline) -> Result<KmallocBuf, GuestMemError> {
        if len == 0 {
            return Err(GuestMemError::EmptyRequest);
        }
        if len > KMALLOC_MAX_SIZE {
            return Err(GuestMemError::OutOfMemory);
        }
        tl.charge(SpanLabel::GuestKmalloc, self.cost.guest_kmalloc);
        let gpa = self.mem.alloc(len)?;
        Ok(KmallocBuf { gpa, len })
    }

    /// `kfree`.
    pub fn kfree(&self, buf: KmallocBuf) -> Result<(), GuestMemError> {
        self.mem.free(buf.gpa)
    }

    /// `copy_from_user`: user buffer → kernel buffer, charged as a guest
    /// copy.
    pub fn copy_from_user(
        &self,
        dst: KmallocBuf,
        src: &[u8],
        tl: &mut Timeline,
    ) -> Result<(), GuestMemError> {
        if src.len() as u64 > dst.len {
            return Err(GuestMemError::OutOfBounds);
        }
        tl.charge(SpanLabel::GuestCopy, self.cost.cpu_copy(src.len() as u64));
        self.mem.write(dst.gpa, src)
    }

    /// `copy_to_user`: kernel buffer → user buffer.
    pub fn copy_to_user(
        &self,
        dst: &mut [u8],
        src: KmallocBuf,
        tl: &mut Timeline,
    ) -> Result<(), GuestMemError> {
        if dst.len() as u64 > src.len {
            return Err(GuestMemError::OutOfBounds);
        }
        tl.charge(SpanLabel::GuestCopy, self.cost.cpu_copy(dst.len() as u64));
        self.mem.read(src.gpa, dst)
    }

    /// A new wait queue (one per frontend device in vPHI).
    pub fn new_waitqueue(&self) -> Arc<WaitQueue> {
        Arc::new(WaitQueue::new())
    }

    /// Charge a guest syscall entry/exit.
    pub fn charge_syscall(&self, tl: &mut Timeline) {
        tl.charge(SpanLabel::GuestSyscall, self.cost.guest_syscall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::units::MIB;
    use vphi_sim_core::SimDuration;

    fn kernel() -> GuestKernel {
        GuestKernel::new(
            Arc::new(GuestMemory::new(64 * MIB)),
            Arc::new(CostModel::paper_calibrated()),
        )
    }

    #[test]
    fn kmalloc_respects_the_4mib_limit() {
        let k = kernel();
        let mut tl = Timeline::new();
        assert!(k.kmalloc(KMALLOC_MAX_SIZE, &mut tl).is_ok());
        assert_eq!(k.kmalloc(KMALLOC_MAX_SIZE + 1, &mut tl), Err(GuestMemError::OutOfMemory));
        assert_eq!(k.kmalloc(0, &mut tl), Err(GuestMemError::EmptyRequest));
        assert!(tl.total_for(SpanLabel::GuestKmalloc) > SimDuration::ZERO);
    }

    #[test]
    fn user_kernel_copies_round_trip_and_charge() {
        let k = kernel();
        let mut tl = Timeline::new();
        let buf = k.kmalloc(4096, &mut tl).unwrap();
        k.copy_from_user(buf, b"from-user", &mut tl).unwrap();
        let mut out = [0u8; 9];
        k.copy_to_user(&mut out, buf, &mut tl).unwrap();
        assert_eq!(&out, b"from-user");
        assert!(tl.total_for(SpanLabel::GuestCopy) > SimDuration::ZERO);
        k.kfree(buf).unwrap();
    }

    #[test]
    fn copies_are_bounds_checked() {
        let k = kernel();
        let mut tl = Timeline::new();
        let buf = k.kmalloc(4096, &mut tl).unwrap();
        let big = vec![0u8; 8192];
        assert_eq!(k.copy_from_user(buf, &big, &mut tl), Err(GuestMemError::OutOfBounds));
        let mut big_out = vec![0u8; 8192];
        assert_eq!(k.copy_to_user(&mut big_out, buf, &mut tl), Err(GuestMemError::OutOfBounds));
    }

    #[test]
    fn syscall_charge() {
        let k = kernel();
        let mut tl = Timeline::new();
        k.charge_syscall(&mut tl);
        assert_eq!(
            tl.total_for(SpanLabel::GuestSyscall),
            CostModel::paper_calibrated().guest_syscall
        );
    }
}

//! Guest virtual memory areas and the `VM_PFNPHI` tag.
//!
//! The paper's host-kernel patch: "we … tag every vma that has been
//! created by vPHI during scif_mmap() using a new label (VM_PFNPHI) and
//! store the relevant physical frame number.  Then, in every fault that is
//! triggered by a vPHI mmap'ed area, kvm spots the frame number that
//! corresponds to the respective Xeon Phi memory region." (§III)
//!
//! Here a [`Vma`] spans a range of guest-virtual addresses; a
//! `VM_PFNPHI`-tagged VMA carries the device base PFN *and* a
//! [`PfnBacking`] that actually serves the bytes (wired to the SCIF mapped
//! region by the `vphi` crate, keeping this crate SCIF-agnostic).

use std::collections::BTreeMap;
use std::sync::Arc;

use vphi_sim_core::cost::PAGE_SIZE;

/// How a tagged VMA's pages are served.  Implemented by `vphi` over
/// `vphi_scif::MappedRegion`.
pub trait PfnBacking: Send + Sync {
    /// Read `out.len()` bytes at byte offset `at` within the VMA.
    fn read(&self, at: u64, out: &mut [u8]) -> Result<(), VmaError>;
    /// Write `data` at byte offset `at` within the VMA.
    fn write(&self, at: u64, data: &[u8]) -> Result<(), VmaError>;
    /// Device PFN for VMA page `page_index`, if device-backed.
    fn device_pfn(&self, page_index: u64) -> Option<u64>;
}

/// VMA-layer errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaError {
    /// No VMA covers the address (SIGSEGV in a real guest).
    Segv,
    /// Access violates the VMA's protection.
    Access,
    /// The backing rejected the access.
    BadBacking,
    /// Overlapping or malformed mapping request.
    Inval,
}

impl std::fmt::Display for VmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmaError::Segv => write!(f, "fault outside any VMA (SIGSEGV)"),
            VmaError::Access => write!(f, "VMA protection violation"),
            VmaError::BadBacking => write!(f, "VMA backing rejected the access"),
            VmaError::Inval => write!(f, "invalid mapping request"),
        }
    }
}

impl std::error::Error for VmaError {}

/// VMA flags; the interesting one is the paper's new label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaFlags {
    pub read: bool,
    pub write: bool,
    /// The `VM_PFNPHI` tag: this VMA maps Xeon Phi device memory.
    pub pfn_phi: bool,
}

impl VmaFlags {
    pub const PHI_RW: VmaFlags = VmaFlags { read: true, write: true, pfn_phi: true };
    pub const PHI_RO: VmaFlags = VmaFlags { read: true, write: false, pfn_phi: true };
}

/// One virtual memory area.
pub struct Vma {
    pub start: u64,
    pub len: u64,
    pub flags: VmaFlags,
    /// Base device PFN stored at mmap time (what the kvm patch reads).
    pub base_pfn: Option<u64>,
    pub backing: Arc<dyn PfnBacking>,
}

impl std::fmt::Debug for Vma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vma")
            .field("start", &format_args!("{:#x}", self.start))
            .field("len", &self.len)
            .field("flags", &self.flags)
            .field("base_pfn", &self.base_pfn)
            .finish()
    }
}

/// A process's sorted VMA list.
#[derive(Debug, Default)]
pub struct VmaTable {
    vmas: BTreeMap<u64, Arc<Vma>>,
    next_addr: u64,
}

impl VmaTable {
    pub fn new() -> Self {
        // Userspace mmap area starts somewhere high.
        VmaTable { vmas: BTreeMap::new(), next_addr: 0x7f00_0000_0000 }
    }

    /// Install a VMA; `None` address lets the kernel pick.
    pub fn map(
        &mut self,
        addr: Option<u64>,
        len: u64,
        flags: VmaFlags,
        base_pfn: Option<u64>,
        backing: Arc<dyn PfnBacking>,
    ) -> Result<u64, VmaError> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmaError::Inval);
        }
        let start = match addr {
            Some(a) => {
                if a % PAGE_SIZE != 0 {
                    return Err(VmaError::Inval);
                }
                a
            }
            None => {
                let a = self.next_addr;
                self.next_addr += len + PAGE_SIZE; // guard page gap
                a
            }
        };
        if self.overlaps(start, len) {
            return Err(VmaError::Inval);
        }
        self.vmas.insert(start, Arc::new(Vma { start, len, flags, base_pfn, backing }));
        Ok(start)
    }

    fn overlaps(&self, start: u64, len: u64) -> bool {
        let end = start + len;
        if self.vmas.range(start..end).next().is_some() {
            return true;
        }
        if let Some((_, v)) = self.vmas.range(..start).next_back() {
            if v.start + v.len > start {
                return true;
            }
        }
        false
    }

    /// Remove the VMA starting at `start` (munmap of the whole area).
    pub fn unmap(&mut self, start: u64) -> Result<(), VmaError> {
        self.vmas.remove(&start).map(|_| ()).ok_or(VmaError::Segv)
    }

    /// The VMA covering `addr`.
    pub fn find(&self, addr: u64) -> Result<Arc<Vma>, VmaError> {
        self.vmas
            .range(..=addr)
            .next_back()
            .filter(|(_, v)| addr < v.start + v.len)
            .map(|(_, v)| Arc::clone(v))
            .ok_or(VmaError::Segv)
    }

    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use vphi_sync::TrackedMutex;

    /// A simple in-memory backing for tests.
    pub struct VecBacking {
        pub data: TrackedMutex<Vec<u8>>,
        pub pfn_base: Option<u64>,
    }

    impl PfnBacking for VecBacking {
        fn read(&self, at: u64, out: &mut [u8]) -> Result<(), VmaError> {
            let d = self.data.lock();
            let end = at as usize + out.len();
            if end > d.len() {
                return Err(VmaError::BadBacking);
            }
            out.copy_from_slice(&d[at as usize..end]);
            Ok(())
        }

        fn write(&self, at: u64, data: &[u8]) -> Result<(), VmaError> {
            let mut d = self.data.lock();
            let end = at as usize + data.len();
            if end > d.len() {
                return Err(VmaError::BadBacking);
            }
            d[at as usize..end].copy_from_slice(data);
            Ok(())
        }

        fn device_pfn(&self, page_index: u64) -> Option<u64> {
            self.pfn_base.map(|b| b + page_index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::VecBacking;
    use super::*;
    use vphi_sync::{LockClass, TrackedMutex};

    fn backing(pages: u64, pfn: Option<u64>) -> Arc<VecBacking> {
        Arc::new(VecBacking {
            data: TrackedMutex::new(LockClass::VmaData, vec![0u8; (pages * PAGE_SIZE) as usize]),
            pfn_base: pfn,
        })
    }

    #[test]
    fn map_find_unmap() {
        let mut t = VmaTable::new();
        let b = backing(2, Some(100));
        let addr = t.map(None, 2 * PAGE_SIZE, VmaFlags::PHI_RW, Some(100), b).unwrap();
        let vma = t.find(addr + PAGE_SIZE + 3).unwrap();
        assert_eq!(vma.start, addr);
        assert_eq!(vma.base_pfn, Some(100));
        assert!(vma.flags.pfn_phi);
        t.unmap(addr).unwrap();
        assert_eq!(t.find(addr).err(), Some(VmaError::Segv));
        assert_eq!(t.unmap(addr).err(), Some(VmaError::Segv));
    }

    #[test]
    fn kernel_picked_addresses_have_guard_gaps() {
        let mut t = VmaTable::new();
        let a = t.map(None, PAGE_SIZE, VmaFlags::PHI_RW, None, backing(1, None)).unwrap();
        let b = t.map(None, PAGE_SIZE, VmaFlags::PHI_RW, None, backing(1, None)).unwrap();
        assert!(b >= a + 2 * PAGE_SIZE, "expected a guard gap between {a:#x} and {b:#x}");
    }

    #[test]
    fn fixed_mapping_overlap_rejected() {
        let mut t = VmaTable::new();
        t.map(Some(0x10000), 2 * PAGE_SIZE, VmaFlags::PHI_RW, None, backing(2, None)).unwrap();
        assert_eq!(
            t.map(Some(0x10000 + PAGE_SIZE), PAGE_SIZE, VmaFlags::PHI_RW, None, backing(1, None))
                .err(),
            Some(VmaError::Inval)
        );
        assert_eq!(
            t.map(Some(0x10000), PAGE_SIZE, VmaFlags::PHI_RW, None, backing(1, None)).err(),
            Some(VmaError::Inval)
        );
    }

    #[test]
    fn malformed_requests_rejected() {
        let mut t = VmaTable::new();
        assert_eq!(
            t.map(None, 0, VmaFlags::PHI_RW, None, backing(1, None)).err(),
            Some(VmaError::Inval)
        );
        assert_eq!(
            t.map(None, 100, VmaFlags::PHI_RW, None, backing(1, None)).err(),
            Some(VmaError::Inval)
        );
        assert_eq!(
            t.map(Some(13), PAGE_SIZE, VmaFlags::PHI_RW, None, backing(1, None)).err(),
            Some(VmaError::Inval)
        );
    }
}

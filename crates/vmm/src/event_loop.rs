//! QEMU's event-driven execution model.
//!
//! "QEMU handles events as they are produced and during that time the
//! whole VM is in blocking mode … In a few cases … it spawns a worker
//! thread that executes the long-running handling of the event, and falls
//! back to the event-driven mode unfreezing the VM." (paper §III)
//!
//! vPHI picks blocking dispatch for most SCIF ops and worker dispatch for
//! indefinite waits (`scif_accept`).  We track both modes' virtual costs:
//! blocking handlers accumulate **VM pause time** (the guest can't run),
//! workers charge a spawn/retire overhead instead — the exact trade-off
//! the paper discusses and the ABL-BLOCK ablation sweeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vphi_sim_core::{CostModel, SimDuration, SpanLabel, Timeline};

/// Dispatch policy for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Run in the event loop; the whole VM pauses for the handler's
    /// duration.
    Blocking,
    /// Run on a worker thread; the VM keeps running, at a thread
    /// spawn/retire cost.
    Worker,
}

/// The per-VM (per-QEMU-process) event loop.
pub struct QemuEventLoop {
    cost: Arc<CostModel>,
    vm_paused_ns: AtomicU64,
    blocking_events: AtomicU64,
    worker_events: AtomicU64,
    live_workers: Arc<AtomicU64>,
}

impl std::fmt::Debug for QemuEventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QemuEventLoop")
            .field("blocking_events", &self.blocking_events.load(Ordering::Relaxed))
            .field("worker_events", &self.worker_events.load(Ordering::Relaxed))
            .finish()
    }
}

impl QemuEventLoop {
    pub fn new(cost: Arc<CostModel>) -> Self {
        QemuEventLoop {
            cost,
            vm_paused_ns: AtomicU64::new(0),
            blocking_events: AtomicU64::new(0),
            worker_events: AtomicU64::new(0),
            live_workers: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Run `handler` with the chosen dispatch.  The handler receives the
    /// timeline and returns its result; its charged spans between entry
    /// and exit are attributed as pause time when blocking.
    pub fn run<R>(
        &self,
        dispatch: Dispatch,
        tl: &mut Timeline,
        handler: impl FnOnce(&mut Timeline) -> R,
    ) -> R {
        match dispatch {
            Dispatch::Blocking => {
                self.blocking_events.fetch_add(1, Ordering::Relaxed);
                let before = tl.total();
                let r = handler(tl);
                let handler_time = tl.total().saturating_sub(before);
                self.vm_paused_ns.fetch_add(handler_time.as_nanos(), Ordering::Relaxed);
                r
            }
            Dispatch::Worker => {
                self.worker_events.fetch_add(1, Ordering::Relaxed);
                self.live_workers.fetch_add(1, Ordering::Relaxed);
                tl.charge(SpanLabel::WorkerSpawn, self.cost.worker_spawn);
                let r = handler(tl);
                self.live_workers.fetch_sub(1, Ordering::Relaxed);
                r
            }
        }
    }

    /// Run a long-lived detached worker on a real thread (used for the
    /// backend's `scif_accept` service loop).  The VM is not paused.
    pub fn spawn_worker<F>(&self, name: &str, f: F) -> std::thread::JoinHandle<()>
    where
        F: FnOnce() + Send + 'static,
    {
        self.worker_events.fetch_add(1, Ordering::Relaxed);
        self.live_workers.fetch_add(1, Ordering::Relaxed);
        let guard = WorkerGuard { live: Arc::clone(&self.live_workers) };
        std::thread::Builder::new()
            .name(format!("qemu-worker-{name}"))
            .spawn(move || {
                let _guard = guard;
                f();
            })
            .expect("spawn qemu worker")
    }

    /// Total virtual time the VM has been frozen by blocking handlers.
    pub fn vm_paused_total(&self) -> SimDuration {
        SimDuration::from_nanos(self.vm_paused_ns.load(Ordering::Relaxed))
    }

    pub fn blocking_event_count(&self) -> u64 {
        self.blocking_events.load(Ordering::Relaxed)
    }

    pub fn worker_event_count(&self) -> u64 {
        self.worker_events.load(Ordering::Relaxed)
    }

    pub fn live_worker_count(&self) -> u64 {
        self.live_workers.load(Ordering::Relaxed)
    }
}

struct WorkerGuard {
    live: Arc<AtomicU64>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el() -> QemuEventLoop {
        QemuEventLoop::new(Arc::new(CostModel::paper_calibrated()))
    }

    #[test]
    fn blocking_handler_accumulates_pause_time() {
        let e = el();
        let mut tl = Timeline::new();
        let r = e.run(Dispatch::Blocking, &mut tl, |tl| {
            tl.charge(SpanLabel::HostSyscall, SimDuration::from_micros(100));
            7
        });
        assert_eq!(r, 7);
        assert_eq!(e.vm_paused_total(), SimDuration::from_micros(100));
        assert_eq!(e.blocking_event_count(), 1);
        assert_eq!(e.worker_event_count(), 0);
    }

    #[test]
    fn worker_dispatch_charges_spawn_not_pause() {
        let e = el();
        let mut tl = Timeline::new();
        e.run(Dispatch::Worker, &mut tl, |tl| {
            tl.charge(SpanLabel::HostSyscall, SimDuration::from_micros(100));
        });
        assert_eq!(e.vm_paused_total(), SimDuration::ZERO);
        assert_eq!(
            tl.total_for(SpanLabel::WorkerSpawn),
            CostModel::paper_calibrated().worker_spawn
        );
        assert_eq!(e.worker_event_count(), 1);
    }

    #[test]
    fn pause_time_accumulates_across_events() {
        let e = el();
        let mut tl = Timeline::new();
        for _ in 0..3 {
            e.run(Dispatch::Blocking, &mut tl, |tl| {
                tl.charge(SpanLabel::LinkTransfer, SimDuration::from_micros(10));
            });
        }
        assert_eq!(e.vm_paused_total(), SimDuration::from_micros(30));
        assert_eq!(e.blocking_event_count(), 3);
    }

    #[test]
    fn detached_worker_runs_and_retires() {
        let e = el();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        let h = e.spawn_worker("test", move || {
            d2.store(true, Ordering::Release);
        });
        h.join().unwrap();
        assert!(done.load(Ordering::Acquire));
    }
}

//! # vphi-vmm — the QEMU-KVM substrate
//!
//! vPHI is a guest kernel module plus a QEMU device plus a tiny KVM patch.
//! This crate models the hypervisor-side structure those three pieces live
//! in:
//!
//! * [`guest_mem::GuestMemory`] — the VM's physical memory with a page
//!   allocator and host-side zero-copy views (the QEMU backend "registers
//!   guest memory when the VM boots" and then maps descriptor buffers
//!   straight into its address space — paper §III).
//! * [`kernel::GuestKernel`] — the guest-kernel environment the frontend
//!   driver runs in: `kmalloc` with the x86_64 `KMALLOC_MAX_SIZE` = 4 MiB
//!   contiguity limit, user↔kernel copies, wait queues and IRQ vectors.
//! * [`waitqueue::WaitQueue`] — the sleep/wake-all-recheck scheme whose
//!   cost dominates vPHI's small-message latency (93% of the 375 µs
//!   overhead).
//! * [`irq::IrqChip`] — virtual interrupt delivery into the guest.
//! * [`event_loop::QemuEventLoop`] — QEMU's event-driven core: blocking
//!   handlers pause the whole VM; worker threads keep it running at a
//!   spawn cost (the paper's blocking vs non-blocking design choice).
//! * [`kvm::KvmModule`] / [`vma::VmaTable`] — `VM_PFNPHI`-tagged VMAs and
//!   the page-fault redirection that makes guest dereferences of
//!   `scif_mmap`'d device memory work (the <10 LoC KVM patch).
//! * [`vm::Vm`] — the assembled virtual machine.

pub mod event_loop;
pub mod guest_mem;
pub mod irq;
pub mod kernel;
pub mod kvm;
pub mod vm;
pub mod vma;
pub mod waitqueue;

pub use event_loop::QemuEventLoop;
pub use guest_mem::{Gpa, GuestMemError, GuestMemory};
pub use irq::IrqChip;
pub use kernel::GuestKernel;
pub use kvm::KvmModule;
pub use vm::Vm;
pub use vma::{PfnBacking, Vma, VmaFlags, VmaTable};
pub use waitqueue::{TokenWaitQueue, WaitQueue};

//! Property-based tests of the PCIe link timing model.

use proptest::prelude::*;
use std::sync::Arc;

use vphi_pcie::{DmaEngine, LinkConfig, PcieLink};
use vphi_sim_core::{CostModel, SimTime, Timeline, VirtualClock};

fn link() -> Arc<PcieLink> {
    Arc::new(PcieLink::new(
        LinkConfig::default(),
        Arc::new(CostModel::paper_calibrated()),
        Arc::new(VirtualClock::new()),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transfer time is additive: t(a) + t(b) ≈ t(a+b) (within rounding).
    #[test]
    fn transfer_time_is_additive(a in 1u64..1 << 30, b in 1u64..1 << 30) {
        let l = link();
        let ta = l.transfer_time(a).as_nanos();
        let tb = l.transfer_time(b).as_nanos();
        let tab = l.transfer_time(a + b).as_nanos();
        prop_assert!(tab.abs_diff(ta + tb) <= 2, "{ta}+{tb} vs {tab}");
    }

    /// Serialized transmissions: total busy time equals the sum of holds
    /// and the completion times are strictly increasing.
    #[test]
    fn serialized_transmissions_accumulate(sizes in prop::collection::vec(1u64..1 << 24, 1..20)) {
        let l = link();
        let mut tl = Timeline::new();
        let mut last_end = SimTime::ZERO;
        for &s in &sizes {
            let end = l.transmit(s, &mut tl);
            prop_assert!(end > last_end);
            last_end = end;
        }
        let expected: u64 = sizes.iter().map(|&s| l.transfer_time(s).as_nanos()).sum();
        prop_assert_eq!(l.busy_total().as_nanos(), expected);
        prop_assert_eq!(l.transaction_count(), sizes.len() as u64);
    }

    /// DMA copies of arbitrary sizes are byte-exact and charge the same
    /// link time as a timed transfer of the same size.
    #[test]
    fn dma_copy_is_exact(data in prop::collection::vec(any::<u8>(), 1..50_000)) {
        let engine = DmaEngine::new(link(), 8);
        let mut dst = vec![0u8; data.len()];
        let mut tl_copy = Timeline::new();
        engine.copy(&data, &mut dst, &mut tl_copy);
        prop_assert_eq!(&dst, &data);
        let mut tl_timed = Timeline::new();
        engine.transfer_timed(data.len() as u64, &mut tl_timed);
        prop_assert_eq!(tl_copy.total(), tl_timed.total());
    }
}

//! MSI interrupt vectors.
//!
//! The device raises an MSI when DMA completes or a mailbox fills; the host
//! SCIF driver's handler runs and wakes blocked callers.  In the VM path,
//! the *QEMU backend* raises a virtual interrupt into the guest the same
//! way (the `vmm` crate builds its IRQ chip on the same abstraction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vphi_sync::{LockClass, TrackedMutex};

use vphi_sim_core::{SpanLabel, Timeline};

/// A handler invoked when the vector fires.  Handlers run synchronously on
/// the raising thread — the raise cost models hardware delivery latency,
/// and handlers are expected to do minimal work (wake a queue).
pub trait InterruptHandler: Send + Sync {
    fn handle(&self, vector: u32, tl: &mut Timeline);
}

impl<F: Fn(u32, &mut Timeline) + Send + Sync> InterruptHandler for F {
    fn handle(&self, vector: u32, tl: &mut Timeline) {
        self(vector, tl)
    }
}

/// One MSI vector with a registered handler chain.
pub struct MsiVector {
    vector: u32,
    handlers: TrackedMutex<Vec<Arc<dyn InterruptHandler>>>,
    raised: AtomicU64,
}

impl std::fmt::Debug for MsiVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsiVector")
            .field("vector", &self.vector)
            .field("raised", &self.raised.load(Ordering::Relaxed))
            .finish()
    }
}

impl MsiVector {
    pub fn new(vector: u32) -> Self {
        MsiVector {
            vector,
            handlers: TrackedMutex::new(LockClass::MsiHandlers, Vec::new()),
            raised: AtomicU64::new(0),
        }
    }

    pub fn vector(&self) -> u32 {
        self.vector
    }

    pub fn register(&self, handler: Arc<dyn InterruptHandler>) {
        self.handlers.lock().push(handler);
    }

    /// Fire the vector: charges delivery latency to `tl` (as
    /// [`SpanLabel::IrqInject`]) and runs all handlers.
    pub fn raise(&self, tl: &mut Timeline, delivery: vphi_sim_core::SimDuration) {
        tl.charge(SpanLabel::IrqInject, delivery);
        self.raised.fetch_add(1, Ordering::Relaxed);
        let handlers: Vec<Arc<dyn InterruptHandler>> = self.handlers.lock().clone();
        for h in handlers {
            h.handle(self.vector, tl);
        }
    }

    pub fn raise_count(&self) -> u64 {
        self.raised.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use vphi_sim_core::SimDuration;

    #[test]
    fn raise_runs_handlers_and_charges_delivery() {
        let v = MsiVector::new(5);
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        v.register(Arc::new(move |vec: u32, _tl: &mut Timeline| {
            assert_eq!(vec, 5);
            h.fetch_add(1, Ordering::Relaxed);
        }));
        let mut tl = Timeline::new();
        v.raise(&mut tl, SimDuration::from_micros(9));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(tl.total_for(SpanLabel::IrqInject), SimDuration::from_micros(9));
        assert_eq!(v.raise_count(), 1);
    }

    #[test]
    fn multiple_handlers_all_run() {
        let v = MsiVector::new(0);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let h = Arc::clone(&hits);
            v.register(Arc::new(move |_: u32, _: &mut Timeline| {
                h.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let mut tl = Timeline::new();
        v.raise(&mut tl, SimDuration::ZERO);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn handler_may_charge_spans() {
        let v = MsiVector::new(1);
        v.register(Arc::new(|_: u32, tl: &mut Timeline| {
            tl.charge(SpanLabel::GuestWakeup, SimDuration::from_micros(349));
        }));
        let mut tl = Timeline::new();
        v.raise(&mut tl, SimDuration::from_micros(9));
        assert_eq!(tl.total(), SimDuration::from_micros(358));
    }
}

//! Doorbell registers.
//!
//! The SCIF fabric rings a doorbell to tell the peer node "there is work in
//! your mailbox".  We model a doorbell as a counting register with blocking
//! wait — real threads block on a condvar, while the virtual-time cost of
//! the MMIO write is charged by the caller through the link's
//! `control_transaction`.

use std::time::Duration;
use vphi_faults::{FaultHook, FaultSite};
use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex};

/// A counting doorbell: `ring` increments, `wait` blocks until the count
/// exceeds what the waiter has already consumed.
#[derive(Debug)]
pub struct Doorbell {
    state: TrackedMutex<DoorbellState>,
    cond: TrackedCondvar,
    faults: FaultHook,
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell {
            state: TrackedMutex::new(LockClass::Doorbell, DoorbellState::default()),
            cond: TrackedCondvar::new(),
            faults: FaultHook::new(),
        }
    }
}

#[derive(Debug, Default)]
struct DoorbellState {
    rung: u64,
    consumed: u64,
    shutdown: bool,
}

impl Doorbell {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fault-injection arming point (dropped rings).
    pub fn fault_hook(&self) -> &FaultHook {
        &self.faults
    }

    /// Ring the doorbell once, waking all waiters.
    pub fn ring(&self) {
        // An injected drop loses the MMIO write on the wire: no count, no
        // wake.  Waiters recover via their own timeouts/retries.
        if self.faults.fire(FaultSite::PcieDoorbellDrop).is_some() {
            return;
        }
        let mut st = self.state.lock();
        st.rung += 1;
        self.cond.notify_all();
    }

    /// Block until at least one unconsumed ring is available (or shutdown).
    /// Returns `false` if the doorbell has been shut down.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.shutdown {
                return false;
            }
            if st.rung > st.consumed {
                st.consumed += 1;
                return true;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Like [`wait`](Doorbell::wait) but gives up after `timeout` of *wall*
    /// time (used only to keep tests from hanging on bugs).
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.shutdown {
                return false;
            }
            if st.rung > st.consumed {
                st.consumed += 1;
                return true;
            }
            if self.cond.wait_for(&mut st, timeout).timed_out() {
                return false;
            }
        }
    }

    /// Non-blocking check; consumes a ring if present.
    pub fn try_consume(&self) -> bool {
        let mut st = self.state.lock();
        if st.rung > st.consumed {
            st.consumed += 1;
            true
        } else {
            false
        }
    }

    /// Unconsumed rings.
    pub fn pending(&self) -> u64 {
        let st = self.state.lock();
        st.rung - st.consumed
    }

    /// Wake all waiters and make every future wait return `false`.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_then_wait_does_not_block() {
        let d = Doorbell::new();
        d.ring();
        assert!(d.wait());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn wait_blocks_until_ring() {
        let d = Arc::new(Doorbell::new());
        let d2 = Arc::clone(&d);
        let waiter = std::thread::spawn(move || d2.wait());
        std::thread::sleep(Duration::from_millis(20));
        d.ring();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn rings_are_counted_not_coalesced() {
        let d = Doorbell::new();
        d.ring();
        d.ring();
        d.ring();
        assert_eq!(d.pending(), 3);
        assert!(d.wait());
        assert!(d.wait());
        assert!(d.try_consume());
        assert!(!d.try_consume());
    }

    #[test]
    fn shutdown_unblocks_waiters() {
        let d = Arc::new(Doorbell::new());
        let d2 = Arc::clone(&d);
        let waiter = std::thread::spawn(move || d2.wait());
        std::thread::sleep(Duration::from_millis(10));
        d.shutdown();
        assert!(!waiter.join().unwrap());
        // Post-shutdown waits fail immediately.
        assert!(!d.wait());
    }

    #[test]
    fn wait_timeout_expires() {
        let d = Doorbell::new();
        assert!(!d.wait_timeout(Duration::from_millis(5)));
        d.ring();
        assert!(d.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn concurrent_waiters_each_get_one_ring() {
        let d = Arc::new(Doorbell::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || d.wait()));
        }
        for _ in 0..4 {
            d.ring();
        }
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert_eq!(d.pending(), 0);
    }
}

//! The PCIe link timing model.

use std::sync::Arc;

use vphi_faults::{FaultHook, FaultSite};
use vphi_sim_core::{
    BusyResource, CostModel, SimDuration, SimTime, SpanLabel, Timeline, VirtualClock,
};

/// Static link parameters.  The defaults describe the gen2 x16 link of the
/// paper's Xeon Phi 3120P testbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkConfig {
    pub generation: u8,
    pub lanes: u8,
    /// Maximum payload size per PCIe transaction (bytes).  Transfers are
    /// internally segmented at this size; the model charges one
    /// `link_latency` per *DMA transfer*, not per segment, matching how
    /// SCIF drives the Phi DMA engines.
    pub max_payload: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { generation: 2, lanes: 16, max_payload: 256 }
    }
}

/// A serially-shared PCIe link under virtual time.
///
/// All DMA traffic between the host and one coprocessor crosses this
/// object.  Bandwidth and latency come from the [`CostModel`]; concurrent
/// users queue on an internal [`BusyResource`], so aggregate throughput in
/// sharing experiments is capped by the link, exactly as on real hardware.
#[derive(Debug)]
pub struct PcieLink {
    config: LinkConfig,
    cost: Arc<CostModel>,
    clock: Arc<VirtualClock>,
    resource: BusyResource,
    faults: FaultHook,
}

impl PcieLink {
    pub fn new(config: LinkConfig, cost: Arc<CostModel>, clock: Arc<VirtualClock>) -> Self {
        PcieLink { config, cost, clock, resource: BusyResource::new(), faults: FaultHook::new() }
    }

    /// Fault-injection arming point (retrain stalls, DMA errors).
    pub fn fault_hook(&self) -> &FaultHook {
        &self.faults
    }

    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Time the link needs for `bytes` of payload (per-byte cost only).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.cost.link_transfer(bytes)
    }

    /// Occupy the link for a `bytes` payload starting no earlier than the
    /// current virtual time; charges latency, transfer and any queueing
    /// delay to `tl` and advances the global clock to the completion time.
    ///
    /// Returns the virtual completion time.
    pub fn transmit(&self, bytes: u64, tl: &mut Timeline) -> SimTime {
        self.transmit_from(self.clock.now(), bytes, tl)
    }

    /// Like [`transmit`](PcieLink::transmit) but with an explicit issue
    /// time, for callers that batch-issue work at a known virtual instant
    /// (the sharing experiments issue one request per VM "at once").
    pub fn transmit_from(&self, at: SimTime, bytes: u64, tl: &mut Timeline) -> SimTime {
        let hold = self.transfer_time(bytes);
        let grant = self.resource.acquire(at, hold);
        tl.charge(SpanLabel::LinkLatency, self.cost.link_latency);
        tl.charge(SpanLabel::LinkContention, grant.queued);
        tl.charge(SpanLabel::LinkTransfer, hold);
        let mut end = grant.end + self.cost.link_latency;
        // An injected link retrain stalls this transaction for `param` µs.
        if let Some(stall_us) = self.faults.fire(FaultSite::PcieRetrainStall) {
            let stall = SimDuration::from_micros(stall_us);
            tl.charge(SpanLabel::LinkLatency, stall);
            end += stall;
        }
        self.clock.observe(end)
    }

    /// A zero-payload control transaction (doorbell write, tiny message):
    /// charges only the transaction latency.
    pub fn control_transaction(&self, tl: &mut Timeline) -> SimTime {
        tl.charge(SpanLabel::LinkLatency, self.cost.link_latency);
        self.clock.advance(self.cost.link_latency)
    }

    /// Cumulative time the link has spent moving payload.
    pub fn busy_total(&self) -> SimDuration {
        self.resource.busy_total()
    }

    /// Number of payload transactions granted.
    pub fn transaction_count(&self) -> u64 {
        self.resource.grant_count()
    }

    /// Reset contention bookkeeping (between benchmark repetitions).
    pub fn reset_accounting(&self) {
        self.resource.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::units::GIB;

    fn link() -> PcieLink {
        PcieLink::new(
            LinkConfig::default(),
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        )
    }

    #[test]
    fn transfer_time_matches_configured_bandwidth() {
        let l = link();
        // 6.4 GB at 6.4 GB/s should take ~1 s.
        let t = l.transfer_time(6_400_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transmit_charges_latency_and_transfer() {
        let l = link();
        let mut tl = Timeline::new();
        l.transmit(GIB, &mut tl);
        assert!(tl.total_for(SpanLabel::LinkLatency) > SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::LinkTransfer) > SimDuration::ZERO);
        assert_eq!(tl.total_for(SpanLabel::LinkContention), SimDuration::ZERO);
        assert_eq!(l.transaction_count(), 1);
    }

    #[test]
    fn sequential_transmissions_accumulate_busy_time() {
        let l = link();
        let mut tl = Timeline::new();
        for _ in 0..4 {
            l.transmit(1 << 20, &mut tl);
        }
        assert_eq!(l.busy_total(), l.transfer_time(1 << 20) * 4);
        assert_eq!(l.transaction_count(), 4);
    }

    #[test]
    fn concurrent_users_contend() {
        let l = Arc::new(link());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                // All four issue at virtual t=0, as the sharing harness does.
                l.transmit_from(SimTime::ZERO, 64 << 20, &mut tl);
                tl
            }));
        }
        let timelines: Vec<Timeline> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All four started "at once" on an idle clock; at least one must
        // have queued behind another.
        let queued: SimDuration =
            timelines.iter().map(|t| t.total_for(SpanLabel::LinkContention)).sum();
        assert!(queued > SimDuration::ZERO, "expected link contention");
        assert_eq!(l.busy_total(), l.transfer_time(64 << 20) * 4);
    }

    #[test]
    fn control_transaction_is_latency_only() {
        let l = link();
        let mut tl = Timeline::new();
        l.control_transaction(&mut tl);
        assert_eq!(tl.total(), CostModel::paper_calibrated().link_latency);
    }
}

//! MMIO apertures.
//!
//! The host maps regions of Xeon Phi GDDR through a PCIe BAR aperture;
//! `scif_mmap` ultimately hands user space a pointer into such a window.
//! An [`Aperture`] is a handle to a `(base, len)` window of device memory
//! identified by a *device page frame number* range.  Actual byte access
//! goes through the owner of the device memory (the `phi-device` crate);
//! the aperture's job is address arithmetic and bounds discipline, which is
//! where the paper's `VM_PFNPHI` two-level mapping plugs in.

use vphi_sim_core::cost::PAGE_SIZE;

/// A host-visible window into device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aperture {
    /// Byte offset of the window within device memory.
    base: u64,
    /// Window length in bytes (page-aligned).
    len: u64,
}

impl Aperture {
    /// Create a window.  `base` and `len` must be page-aligned and `len`
    /// nonzero.
    pub fn new(base: u64, len: u64) -> Self {
        assert_eq!(base % PAGE_SIZE, 0, "aperture base must be page-aligned");
        assert_eq!(len % PAGE_SIZE, 0, "aperture length must be page-aligned");
        assert!(len > 0, "aperture cannot be empty");
        Aperture { base, len }
    }

    pub fn base(&self) -> u64 {
        self.base
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        false // construction forbids empty windows
    }

    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Device byte address for an offset within the window, if in bounds.
    pub fn resolve(&self, offset: u64) -> Option<u64> {
        if offset < self.len {
            Some(self.base + offset)
        } else {
            None
        }
    }

    /// Device *page frame number* backing a window offset — what the
    /// host/KVM fault path stores in a `VM_PFNPHI`-tagged VMA.
    pub fn pfn_of(&self, offset: u64) -> Option<u64> {
        self.resolve(offset).map(|addr| addr / PAGE_SIZE)
    }

    /// Split off a page-aligned sub-window.
    pub fn subwindow(&self, offset: u64, len: u64) -> Option<Aperture> {
        if !offset.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return None;
        }
        if offset.checked_add(len)? > self.len {
            return None;
        }
        Some(Aperture { base: self.base + offset, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_in_and_out_of_bounds() {
        let a = Aperture::new(0x10000, 4 * PAGE_SIZE);
        assert_eq!(a.resolve(0), Some(0x10000));
        assert_eq!(a.resolve(4 * PAGE_SIZE - 1), Some(0x10000 + 4 * PAGE_SIZE - 1));
        assert_eq!(a.resolve(4 * PAGE_SIZE), None);
        assert_eq!(a.pages(), 4);
    }

    #[test]
    fn pfn_mapping() {
        let a = Aperture::new(8 * PAGE_SIZE, 2 * PAGE_SIZE);
        assert_eq!(a.pfn_of(0), Some(8));
        assert_eq!(a.pfn_of(PAGE_SIZE), Some(9));
        assert_eq!(a.pfn_of(2 * PAGE_SIZE), None);
    }

    #[test]
    fn subwindow_bounds() {
        let a = Aperture::new(0, 8 * PAGE_SIZE);
        let s = a.subwindow(2 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        assert_eq!(s.base(), 2 * PAGE_SIZE);
        assert_eq!(s.len(), 4 * PAGE_SIZE);
        assert!(a.subwindow(6 * PAGE_SIZE, 4 * PAGE_SIZE).is_none());
        assert!(a.subwindow(1, PAGE_SIZE).is_none()); // unaligned offset
        assert!(a.subwindow(0, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_base_rejected() {
        Aperture::new(3, PAGE_SIZE);
    }
}

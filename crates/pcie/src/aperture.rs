//! MMIO apertures.
//!
//! The host maps regions of Xeon Phi GDDR through a PCIe BAR aperture;
//! `scif_mmap` ultimately hands user space a pointer into such a window.
//! An [`Aperture`] is a handle to a `(base, len)` window of device memory
//! identified by a *device page frame number* range.  Actual byte access
//! goes through the owner of the device memory (the `phi-device` crate);
//! the aperture's job is address arithmetic and bounds discipline, which is
//! where the paper's `VM_PFNPHI` two-level mapping plugs in.
//!
//! [`ApertureMap`] extends the single-window handle with a *window-mapping
//! table* for zero-copy RMA (DESIGN.md #19): registered guest windows are
//! pinned and assigned huge-page-granular subwindows of one large device
//! aperture, so a large `vreadfrom`/`vwriteto` resolves straight to device
//! addresses instead of bouncing through a backend staging buffer.

use std::collections::HashMap;
use std::time::Duration;

use vphi_sim_core::cost::{HUGE_PAGE_SIZE, PAGE_SIZE};
use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex};

/// A host-visible window into device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aperture {
    /// Byte offset of the window within device memory.
    base: u64,
    /// Window length in bytes (page-aligned).
    len: u64,
}

impl Aperture {
    /// Create a window.  `base` and `len` must be page-aligned and `len`
    /// nonzero.
    pub fn new(base: u64, len: u64) -> Self {
        assert_eq!(base % PAGE_SIZE, 0, "aperture base must be page-aligned");
        assert_eq!(len % PAGE_SIZE, 0, "aperture length must be page-aligned");
        assert!(len > 0, "aperture cannot be empty");
        Aperture { base, len }
    }

    pub fn base(&self) -> u64 {
        self.base
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        false // construction forbids empty windows
    }

    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Device byte address for an offset within the window, if in bounds.
    pub fn resolve(&self, offset: u64) -> Option<u64> {
        if offset < self.len {
            Some(self.base + offset)
        } else {
            None
        }
    }

    /// Device *page frame number* backing a window offset — what the
    /// host/KVM fault path stores in a `VM_PFNPHI`-tagged VMA.
    pub fn pfn_of(&self, offset: u64) -> Option<u64> {
        self.resolve(offset).map(|addr| addr / PAGE_SIZE)
    }

    /// Split off a page-aligned sub-window.
    pub fn subwindow(&self, offset: u64, len: u64) -> Option<Aperture> {
        if !offset.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return None;
        }
        if offset.checked_add(len)? > self.len {
            return None;
        }
        Some(Aperture { base: self.base + offset, len })
    }
}

/// Key a mapped window is filed under: the caller picks the pair (the vPHI
/// backend uses `(guest endpoint descriptor, registered offset)`).
pub type MapKey = (u64, u64);

#[derive(Debug)]
struct Mapped {
    sub: Aperture,
    /// DMA descriptors currently gathering from this mapping.  Unmap
    /// quiesces to zero before tearing the mapping down.
    inflight: u32,
}

#[derive(Debug, Default)]
struct MapInner {
    windows: HashMap<MapKey, Mapped>,
    /// Bump allocator over the device aperture, huge-page granular.
    next_free: u64,
    /// Reclaimed `(offset, len)` spans, first-fit reused.
    free: Vec<(u64, u64)>,
}

/// How long [`ApertureMap::unmap_window`] waits for in-flight descriptor
/// lists to drain before force-removing the mapping (a safety valve so a
/// leaked [`IoGuard`] in a test cannot hang teardown forever).
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(2);

/// Window-mapping table over one device aperture.
///
/// Mappings are huge-page granular: `map_window` rounds the requested
/// length up to [`HUGE_PAGE_SIZE`] and carves a subwindow out of the
/// backing aperture (bump allocation with a first-fit free list).
/// `unmap_window` *quiesces* first — it blocks until every
/// [`IoGuard`]-tracked descriptor list over the mapping has completed —
/// so a concurrent munmap can never yank device addresses out from under
/// an in-flight gather.
#[derive(Debug)]
pub struct ApertureMap {
    device: Aperture,
    inner: TrackedMutex<MapInner>,
    drained: TrackedCondvar,
}

impl ApertureMap {
    pub fn new(device: Aperture) -> Self {
        ApertureMap {
            device,
            inner: TrackedMutex::new(LockClass::ApertureWindows, MapInner::default()),
            drained: TrackedCondvar::new(),
        }
    }

    /// The backing device aperture.
    pub fn device(&self) -> Aperture {
        self.device
    }

    /// Map `len` bytes under `key`, rounding up to huge pages.  Returns
    /// the device subwindow, or `None` if the aperture is exhausted or
    /// `len` is zero.  Mapping an already-mapped key returns the existing
    /// subwindow (idempotent, like re-registering a window).
    pub fn map_window(&self, key: MapKey, len: u64) -> Option<Aperture> {
        if len == 0 {
            return None;
        }
        let rounded = len.div_ceil(HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE;
        let mut inner = self.inner.lock();
        if let Some(m) = inner.windows.get(&key) {
            return Some(m.sub);
        }
        let offset = match inner.free.iter().position(|&(_, flen)| flen >= rounded) {
            Some(i) => {
                let (foff, flen) = inner.free[i];
                if flen == rounded {
                    inner.free.swap_remove(i);
                } else {
                    inner.free[i] = (foff + rounded, flen - rounded);
                }
                foff
            }
            None => {
                let off = inner.next_free;
                if off.checked_add(rounded)? > self.device.len() {
                    return None;
                }
                inner.next_free = off + rounded;
                off
            }
        };
        let sub = self.device.subwindow(offset, rounded)?;
        inner.windows.insert(key, Mapped { sub, inflight: 0 });
        Some(sub)
    }

    /// Look up an existing mapping without creating one.
    pub fn lookup(&self, key: MapKey) -> Option<Aperture> {
        self.inner.lock().windows.get(&key).map(|m| m.sub)
    }

    /// Tear down the mapping under `key`, quiescing in-flight descriptor
    /// lists first.  Returns whether a mapping existed.
    pub fn unmap_window(&self, key: MapKey) -> bool {
        let mut inner = self.inner.lock();
        if !inner.windows.contains_key(&key) {
            return false;
        }
        let mut waited = Duration::ZERO;
        while inner.windows.get(&key).is_some_and(|m| m.inflight > 0) {
            if waited >= QUIESCE_TIMEOUT {
                break; // safety valve: force-remove rather than hang
            }
            let slice = Duration::from_millis(50);
            self.drained.wait_for(&mut inner, slice);
            waited += slice;
        }
        match inner.windows.remove(&key) {
            Some(m) => {
                let span = (m.sub.base() - self.device.base(), m.sub.len());
                inner.free.push(span);
                true
            }
            None => false,
        }
    }

    /// Mark a descriptor list in flight over `key`'s mapping.  Returns
    /// `None` if the key is not mapped.  Hold the guard for the duration
    /// of the gather; dropping it signals unmap waiters.
    pub fn begin_io(&self, key: MapKey) -> Option<IoGuard<'_>> {
        let mut inner = self.inner.lock();
        let m = inner.windows.get_mut(&key)?;
        m.inflight += 1;
        Some(IoGuard { map: self, key })
    }

    /// Tear down every mapping whose key's first element is `epd` —
    /// endpoint close/munmap/death teardown.  Quiesces each mapping like
    /// [`Self::unmap_window`].  Returns how many mappings were removed.
    pub fn unmap_endpoint(&self, epd: u64) -> usize {
        let keys: Vec<MapKey> = {
            let inner = self.inner.lock();
            inner.windows.keys().filter(|k| k.0 == epd).copied().collect()
        };
        keys.into_iter().filter(|&k| self.unmap_window(k)).count()
    }

    /// Number of live mappings (zero-leak audits).
    pub fn mapped_windows(&self) -> usize {
        self.inner.lock().windows.len()
    }

    /// Total device bytes consumed by live mappings.
    pub fn mapped_bytes(&self) -> u64 {
        self.inner.lock().windows.values().map(|m| m.sub.len()).sum()
    }

    /// Descriptor lists currently in flight across all mappings.
    pub fn inflight_total(&self) -> u64 {
        self.inner.lock().windows.values().map(|m| m.inflight as u64).sum()
    }
}

/// RAII token for one in-flight descriptor list (see
/// [`ApertureMap::begin_io`]).
#[derive(Debug)]
pub struct IoGuard<'a> {
    map: &'a ApertureMap,
    key: MapKey,
}

impl Drop for IoGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.map.inner.lock();
        if let Some(m) = inner.windows.get_mut(&self.key) {
            m.inflight = m.inflight.saturating_sub(1);
        }
        drop(inner);
        self.map.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_in_and_out_of_bounds() {
        let a = Aperture::new(0x10000, 4 * PAGE_SIZE);
        assert_eq!(a.resolve(0), Some(0x10000));
        assert_eq!(a.resolve(4 * PAGE_SIZE - 1), Some(0x10000 + 4 * PAGE_SIZE - 1));
        assert_eq!(a.resolve(4 * PAGE_SIZE), None);
        assert_eq!(a.pages(), 4);
    }

    #[test]
    fn pfn_mapping() {
        let a = Aperture::new(8 * PAGE_SIZE, 2 * PAGE_SIZE);
        assert_eq!(a.pfn_of(0), Some(8));
        assert_eq!(a.pfn_of(PAGE_SIZE), Some(9));
        assert_eq!(a.pfn_of(2 * PAGE_SIZE), None);
    }

    #[test]
    fn subwindow_bounds() {
        let a = Aperture::new(0, 8 * PAGE_SIZE);
        let s = a.subwindow(2 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        assert_eq!(s.base(), 2 * PAGE_SIZE);
        assert_eq!(s.len(), 4 * PAGE_SIZE);
        assert!(a.subwindow(6 * PAGE_SIZE, 4 * PAGE_SIZE).is_none());
        assert!(a.subwindow(1, PAGE_SIZE).is_none()); // unaligned offset
        assert!(a.subwindow(0, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_base_rejected() {
        Aperture::new(3, PAGE_SIZE);
    }

    #[test]
    fn map_unmap_roundtrip_and_reuse() {
        let map = ApertureMap::new(Aperture::new(0, 8 * HUGE_PAGE_SIZE));
        let a = map.map_window((1, 0), HUGE_PAGE_SIZE + 1).unwrap();
        assert_eq!(a.len(), 2 * HUGE_PAGE_SIZE, "length rounds up to huge pages");
        let again = map.map_window((1, 0), HUGE_PAGE_SIZE + 1).unwrap();
        assert_eq!(a, again, "re-mapping the same key is idempotent");
        assert_eq!(map.mapped_windows(), 1);
        assert_eq!(map.mapped_bytes(), 2 * HUGE_PAGE_SIZE);
        let b = map.map_window((1, 4096), HUGE_PAGE_SIZE).unwrap();
        assert_ne!(a.base(), b.base(), "distinct keys get distinct subwindows");
        assert!(map.unmap_window((1, 0)));
        assert!(!map.unmap_window((1, 0)), "double unmap reports absent");
        // The freed span is reused for a fitting request.
        let c = map.map_window((2, 0), 2 * HUGE_PAGE_SIZE).unwrap();
        assert_eq!(c.base(), a.base(), "first-fit reuses the freed span");
        assert_eq!(map.mapped_windows(), 2);
    }

    #[test]
    fn map_exhaustion_returns_none() {
        let map = ApertureMap::new(Aperture::new(0, 2 * HUGE_PAGE_SIZE));
        assert!(map.map_window((0, 0), 2 * HUGE_PAGE_SIZE).is_some());
        assert!(map.map_window((0, 1), 1).is_none(), "aperture exhausted");
        assert!(map.map_window((0, 2), 0).is_none(), "zero-length rejected");
    }

    #[test]
    fn unmap_quiesces_inflight_io() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let map = Arc::new(ApertureMap::new(Aperture::new(0, 4 * HUGE_PAGE_SIZE)));
        map.map_window((7, 0), HUGE_PAGE_SIZE).unwrap();
        let guard = map.begin_io((7, 0)).unwrap();
        assert_eq!(map.inflight_total(), 1);

        let unmapped = Arc::new(AtomicBool::new(false));
        let t = {
            let (map, unmapped) = (Arc::clone(&map), Arc::clone(&unmapped));
            std::thread::spawn(move || {
                assert!(map.unmap_window((7, 0)));
                unmapped.store(true, Ordering::SeqCst);
            })
        };
        // The unmapper must block while the descriptor list is in flight.
        std::thread::sleep(Duration::from_millis(100));
        assert!(!unmapped.load(Ordering::SeqCst), "unmap must wait for inflight IO");
        drop(guard);
        t.join().unwrap();
        assert!(unmapped.load(Ordering::SeqCst));
        assert_eq!(map.mapped_windows(), 0);
        assert_eq!(map.inflight_total(), 0);
    }

    #[test]
    fn unmap_endpoint_sweeps_all_keys_for_that_endpoint() {
        let map = ApertureMap::new(Aperture::new(0, 8 * HUGE_PAGE_SIZE));
        map.map_window((3, 0), HUGE_PAGE_SIZE).unwrap();
        map.map_window((3, 4096), HUGE_PAGE_SIZE).unwrap();
        map.map_window((4, 0), HUGE_PAGE_SIZE).unwrap();
        assert_eq!(map.unmap_endpoint(3), 2);
        assert_eq!(map.mapped_windows(), 1);
        assert!(map.lookup((4, 0)).is_some());
        assert_eq!(map.unmap_endpoint(3), 0);
    }

    #[test]
    fn begin_io_requires_a_mapping() {
        let map = ApertureMap::new(Aperture::new(0, HUGE_PAGE_SIZE));
        assert!(map.begin_io((9, 9)).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Huge-page-aligned bases: every in-bounds offset resolves to
        /// base+offset and its PFN is exactly (base+offset)/PAGE_SIZE;
        /// the first out-of-bounds offset fails.
        #[test]
        fn pfn_of_is_linear_over_huge_aligned_windows(
            base_hp in 0u64..512,
            len_hp in 1u64..64,
            page in 0u64..2048,
        ) {
            let base = base_hp * HUGE_PAGE_SIZE;
            let len = len_hp * HUGE_PAGE_SIZE;
            let a = Aperture::new(base, len);
            let offset = page * PAGE_SIZE;
            if offset < len {
                prop_assert_eq!(a.resolve(offset), Some(base + offset));
                prop_assert_eq!(a.pfn_of(offset), Some((base + offset) / PAGE_SIZE));
            } else {
                prop_assert_eq!(a.resolve(offset), None);
                prop_assert_eq!(a.pfn_of(offset), None);
            }
            // Boundary offsets: last byte in, first byte out.
            prop_assert_eq!(a.pfn_of(len - 1), Some((base + len - 1) / PAGE_SIZE));
            prop_assert_eq!(a.pfn_of(len), None);
        }

        /// Subwindows of huge-aligned windows: aligned in-bounds carves
        /// succeed and inherit correct bases; unaligned or overflowing
        /// carves are rejected.
        #[test]
        fn subwindow_carves_respect_bounds_and_alignment(
            base_hp in 0u64..512,
            len_hp in 1u64..64,
            off_pages in 0u64..2048,
            sub_pages in 0u64..2048,
            misalign in 1u64..PAGE_SIZE,
        ) {
            let base = base_hp * HUGE_PAGE_SIZE;
            let len = len_hp * HUGE_PAGE_SIZE;
            let a = Aperture::new(base, len);
            let off = off_pages * PAGE_SIZE;
            let sublen = sub_pages * PAGE_SIZE;
            match a.subwindow(off, sublen) {
                Some(s) => {
                    prop_assert!(sublen > 0 && off + sublen <= len);
                    prop_assert_eq!(s.base(), base + off);
                    prop_assert_eq!(s.len(), sublen);
                    // Subwindow PFNs line up with the parent's.
                    prop_assert_eq!(s.pfn_of(0), a.pfn_of(off));
                }
                None => prop_assert!(sublen == 0 || off + sublen > len),
            }
            // The unaligned-offset rejection path, exhaustively off-grid.
            prop_assert_eq!(a.subwindow(off + misalign, PAGE_SIZE), None);
            prop_assert_eq!(a.subwindow(0, misalign), None);
        }

        /// Unaligned bases are rejected at construction.
        #[test]
        fn unaligned_bases_panic(base_hp in 0u64..512, misalign in 1u64..PAGE_SIZE) {
            let r = std::panic::catch_unwind(|| {
                Aperture::new(base_hp * HUGE_PAGE_SIZE + misalign, PAGE_SIZE)
            });
            prop_assert!(r.is_err());
        }
    }
}

//! # vphi-pcie — the PCIe substrate of the vPHI reproduction
//!
//! Xeon Phi coprocessors attach over a PCIe gen2 x16 link; SCIF (and thus
//! vPHI) is a software layer over that link's DMA engines, doorbell
//! registers and MSI interrupts.  This crate models exactly the properties
//! the upper layers depend on:
//!
//! * [`link::PcieLink`] — a serially-shared link with per-transaction
//!   latency and per-byte bandwidth from the [`vphi_sim_core::CostModel`],
//!   including queueing (contention) when several VMs or DMA channels
//!   compete — the mechanism behind the multi-VM sharing experiments.
//! * [`dma::DmaEngine`] — multi-channel DMA that *actually copies bytes*
//!   between host and device memory while charging virtual time.
//! * [`doorbell::Doorbell`] — blocking notification registers used by the
//!   SCIF fabric for connection handshakes and message arrival.
//! * [`interrupt::MsiVector`] — edge-triggered interrupt delivery with
//!   registered handlers.
//! * [`aperture::Aperture`] — host-visible MMIO windows into device
//!   memory, the substrate for `scif_mmap`.

pub mod aperture;
pub mod dma;
pub mod doorbell;
pub mod interrupt;
pub mod link;

pub use aperture::{Aperture, ApertureMap, IoGuard, MapKey};
pub use dma::{gather_copy, DmaEngine, DmaOutcome, SgEntry, SgList};
pub use doorbell::Doorbell;
pub use interrupt::{InterruptHandler, MsiVector};
pub use link::{LinkConfig, PcieLink};

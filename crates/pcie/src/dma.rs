//! Multi-channel DMA engine.
//!
//! Xeon Phi KNC exposes 8 DMA channels; SCIF RMA operations are performed
//! by programming descriptor rings on these channels.  Our engine really
//! copies the bytes (so upper layers are functionally exact) and charges
//! `dma_setup` + link time per transfer.  Channels are selected round-robin
//! like the MPSS driver does for independent transfers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use vphi_sim_core::{SimTime, SpanLabel, Timeline};

use crate::link::PcieLink;

/// Result of a completed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaOutcome {
    /// Virtual time at which the transfer completed.
    pub completed_at: SimTime,
    /// Channel the transfer ran on.
    pub channel: usize,
    /// Bytes moved.
    pub bytes: u64,
}

/// The device's DMA engine: `channels` independent engines sharing one
/// [`PcieLink`].
#[derive(Debug)]
pub struct DmaEngine {
    link: Arc<PcieLink>,
    channels: usize,
    next_channel: AtomicUsize,
    bytes_total: AtomicU64,
    transfers: AtomicU64,
}

impl DmaEngine {
    pub fn new(link: Arc<PcieLink>, channels: usize) -> Self {
        assert!(channels > 0, "a DMA engine needs at least one channel");
        DmaEngine {
            link,
            channels,
            next_channel: AtomicUsize::new(0),
            bytes_total: AtomicU64::new(0),
            transfers: AtomicU64::new(0),
        }
    }

    pub fn channels(&self) -> usize {
        self.channels
    }

    pub fn link(&self) -> &Arc<PcieLink> {
        &self.link
    }

    fn pick_channel(&self) -> usize {
        self.next_channel.fetch_add(1, Ordering::Relaxed) % self.channels
    }

    /// Copy `src` into `dst` over the link.  Lengths must match.  Charges
    /// `DmaSetup` plus the link's latency/transfer/contention spans.
    pub fn copy(&self, src: &[u8], dst: &mut [u8], tl: &mut Timeline) -> DmaOutcome {
        assert_eq!(src.len(), dst.len(), "DMA source/destination length mismatch");
        let channel = self.pick_channel();
        tl.charge(SpanLabel::DmaSetup, self.link.cost().dma_setup);
        dst.copy_from_slice(src);
        let completed_at = self.link.transmit(src.len() as u64, tl);
        self.bytes_total.fetch_add(src.len() as u64, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        DmaOutcome { completed_at, channel, bytes: src.len() as u64 }
    }

    /// A pure timing transfer for data that is produced/consumed in place
    /// (e.g. device-initiated prefetch): charges the same costs as [`copy`]
    /// without touching memory.
    ///
    /// [`copy`]: DmaEngine::copy
    pub fn transfer_timed(&self, bytes: u64, tl: &mut Timeline) -> DmaOutcome {
        let channel = self.pick_channel();
        tl.charge(SpanLabel::DmaSetup, self.link.cost().dma_setup);
        let completed_at = self.link.transmit(bytes, tl);
        self.bytes_total.fetch_add(bytes, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        DmaOutcome { completed_at, channel, bytes }
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    pub fn transfer_count(&self) -> u64 {
        self.transfers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::{CostModel, VirtualClock};

    use crate::link::LinkConfig;

    fn engine(channels: usize) -> DmaEngine {
        let link = Arc::new(PcieLink::new(
            LinkConfig::default(),
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        ));
        DmaEngine::new(link, channels)
    }

    #[test]
    fn copy_moves_bytes_exactly() {
        let e = engine(8);
        let src: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut dst = vec![0u8; 10_000];
        let mut tl = Timeline::new();
        let out = e.copy(&src, &mut dst, &mut tl);
        assert_eq!(src, dst);
        assert_eq!(out.bytes, 10_000);
        assert!(tl.total_for(SpanLabel::DmaSetup) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::LinkTransfer) > vphi_sim_core::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let e = engine(1);
        let mut tl = Timeline::new();
        e.copy(&[1, 2, 3], &mut [0; 2], &mut tl);
    }

    #[test]
    fn channels_round_robin() {
        let e = engine(4);
        let mut tl = Timeline::new();
        let chans: Vec<usize> =
            (0..8).map(|_| e.copy(&[0u8; 8], &mut [0u8; 8], &mut tl).channel).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn accounting_accumulates() {
        let e = engine(2);
        let mut tl = Timeline::new();
        e.copy(&[0u8; 100], &mut [0u8; 100], &mut tl);
        e.transfer_timed(900, &mut tl);
        assert_eq!(e.bytes_total(), 1_000);
        assert_eq!(e.transfer_count(), 2);
    }

    #[test]
    fn timed_transfer_matches_copy_timing() {
        let e = engine(1);
        let mut tl_copy = Timeline::new();
        let mut tl_timed = Timeline::new();
        e.copy(&[7u8; 4096], &mut [0u8; 4096], &mut tl_copy);
        e.transfer_timed(4096, &mut tl_timed);
        assert_eq!(
            tl_copy.total_for(SpanLabel::LinkTransfer),
            tl_timed.total_for(SpanLabel::LinkTransfer)
        );
        assert_eq!(tl_copy.total_for(SpanLabel::DmaSetup), tl_timed.total_for(SpanLabel::DmaSetup));
    }
}

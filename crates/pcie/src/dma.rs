//! Multi-channel DMA engine.
//!
//! Xeon Phi KNC exposes 8 DMA channels; SCIF RMA operations are performed
//! by programming descriptor rings on these channels.  Our engine really
//! copies the bytes (so upper layers are functionally exact) and charges
//! `dma_setup` + link time per transfer.  Channels are selected round-robin
//! like the MPSS driver does for independent transfers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use vphi_sim_core::cost::HUGE_PAGE_SIZE;
use vphi_sim_core::{SimTime, SpanLabel, Timeline};

use crate::link::PcieLink;

/// Size of the fixed bounce block used by [`gather_copy`].  O(1) memory
/// regardless of transfer size — this is the *only* sanctioned staging
/// allocation on the data path (xtask lint rule 9 bans repeat-vec staging
/// buffers everywhere else).
const BOUNCE_BLOCK: usize = 16 * 1024;

/// Move `len` bytes from a reader to a writer through a fixed-size bounce
/// block, without materializing the payload.  `read(offset, buf)` fills
/// `buf` from source offset `offset`; `write(offset, buf)` stores it at
/// the same destination offset.  Used by the zero-copy RMA path to move
/// bytes between pinned windows: functional effect only — the wire cost is
/// charged separately by the caller (staging is never charged virtual
/// time; see DESIGN.md #19).
pub fn gather_copy<E>(
    len: u64,
    mut read: impl FnMut(u64, &mut [u8]) -> Result<(), E>,
    mut write: impl FnMut(u64, &[u8]) -> Result<(), E>,
) -> Result<(), E> {
    let mut block = [0u8; BOUNCE_BLOCK];
    let mut off = 0u64;
    while off < len {
        let n = ((len - off) as usize).min(BOUNCE_BLOCK);
        read(off, &mut block[..n])?;
        write(off, &block[..n])?;
        off += n as u64;
    }
    Ok(())
}

/// One scatter-gather descriptor: a contiguous device-address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgEntry {
    /// Device byte address the entry starts at.
    pub device_addr: u64,
    /// Entry length in bytes (at most one huge page).
    pub len: u64,
}

/// A descriptor list covering one RMA transfer: huge-page-granular entries
/// over mapped subwindows.  The engine charges ONE `DmaSetup` and one wire
/// transit for the whole list — the hardware walks the descriptors without
/// host round-trips, so per-entry cost is descriptor *construction*
/// (`SpanLabel::SgBuild`, charged by the builder), not per-entry setup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SgList {
    entries: Vec<SgEntry>,
}

impl SgList {
    pub fn new() -> Self {
        SgList::default()
    }

    /// Build a list covering `[window_offset, window_offset + len)` of a
    /// device subwindow starting at `device_base`, split at huge-page
    /// granularity.  Returns `None` for a zero-length transfer.
    pub fn for_range(device_base: u64, window_offset: u64, len: u64) -> Option<SgList> {
        if len == 0 {
            return None;
        }
        let mut entries = Vec::with_capacity(len.div_ceil(HUGE_PAGE_SIZE) as usize);
        let mut off = window_offset;
        let end = window_offset.checked_add(len)?;
        while off < end {
            // Split at huge-page boundaries of the *window* so each entry
            // stays inside one pinned huge page.
            let page_end = (off / HUGE_PAGE_SIZE + 1) * HUGE_PAGE_SIZE;
            let entry_end = end.min(page_end);
            entries.push(SgEntry { device_addr: device_base + off, len: entry_end - off });
            off = entry_end;
        }
        Some(SgList { entries })
    }

    pub fn entries(&self) -> &[SgEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes across the gather list.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }
}

/// Result of a completed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaOutcome {
    /// Virtual time at which the transfer completed.
    pub completed_at: SimTime,
    /// Channel the transfer ran on.
    pub channel: usize,
    /// Bytes moved.
    pub bytes: u64,
}

/// The device's DMA engine: `channels` independent engines sharing one
/// [`PcieLink`].
#[derive(Debug)]
pub struct DmaEngine {
    link: Arc<PcieLink>,
    channels: usize,
    next_channel: AtomicUsize,
    bytes_total: AtomicU64,
    transfers: AtomicU64,
}

impl DmaEngine {
    pub fn new(link: Arc<PcieLink>, channels: usize) -> Self {
        assert!(channels > 0, "a DMA engine needs at least one channel");
        DmaEngine {
            link,
            channels,
            next_channel: AtomicUsize::new(0),
            bytes_total: AtomicU64::new(0),
            transfers: AtomicU64::new(0),
        }
    }

    pub fn channels(&self) -> usize {
        self.channels
    }

    pub fn link(&self) -> &Arc<PcieLink> {
        &self.link
    }

    fn pick_channel(&self) -> usize {
        self.next_channel.fetch_add(1, Ordering::Relaxed) % self.channels
    }

    /// Copy `src` into `dst` over the link.  Lengths must match.  Charges
    /// `DmaSetup` plus the link's latency/transfer/contention spans.
    pub fn copy(&self, src: &[u8], dst: &mut [u8], tl: &mut Timeline) -> DmaOutcome {
        assert_eq!(src.len(), dst.len(), "DMA source/destination length mismatch");
        let channel = self.pick_channel();
        tl.charge(SpanLabel::DmaSetup, self.link.cost().dma_setup);
        dst.copy_from_slice(src);
        let completed_at = self.link.transmit(src.len() as u64, tl);
        self.bytes_total.fetch_add(src.len() as u64, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        DmaOutcome { completed_at, channel, bytes: src.len() as u64 }
    }

    /// A pure timing transfer for data that is produced/consumed in place
    /// (e.g. device-initiated prefetch): charges the same costs as [`copy`]
    /// without touching memory.
    ///
    /// [`copy`]: DmaEngine::copy
    pub fn transfer_timed(&self, bytes: u64, tl: &mut Timeline) -> DmaOutcome {
        let channel = self.pick_channel();
        tl.charge(SpanLabel::DmaSetup, self.link.cost().dma_setup);
        let completed_at = self.link.transmit(bytes, tl);
        self.bytes_total.fetch_add(bytes, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        DmaOutcome { completed_at, channel, bytes }
    }

    /// Run a whole scatter-gather descriptor list as ONE transfer: a
    /// single `DmaSetup` charge plus one wire transit over the list's
    /// total bytes — no per-entry setup and no staging exposure.  This is
    /// the timing contract the zero-copy RMA path depends on: cost is
    /// independent of how many descriptors the gather splits into.
    pub fn transfer_sg(&self, sg: &SgList, tl: &mut Timeline) -> DmaOutcome {
        let channel = self.pick_channel();
        tl.charge(SpanLabel::DmaSetup, self.link.cost().dma_setup);
        let bytes = sg.bytes();
        let completed_at = self.link.transmit(bytes, tl);
        self.bytes_total.fetch_add(bytes, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        DmaOutcome { completed_at, channel, bytes }
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    pub fn transfer_count(&self) -> u64 {
        self.transfers.load(Ordering::Relaxed)
    }
}

/// Makespan of a two-stage, double-buffered chunk pipeline.
///
/// Large RMA transfers are split into chunks; each chunk is first *staged*
/// (pinned/translated and bounce-copied, time `s_i`) and then moved by a
/// DMA channel (time `d_i`).  With two staging buffers, the engine stages
/// chunk `i+1` while chunk `i` is on the wire, so staging cost hides behind
/// DMA time instead of serializing with it.  The recurrence mirrors the
/// MPSS driver's ping-pong descriptor rings:
///
/// ```text
/// stage[i] = max(stage[i-1], dma[i-2]) + s_i   // buffer reuse: 2 in flight
/// dma[i]   = max(dma[i-1],   stage[i]) + d_i   // the link is serial
/// ```
///
/// Returns `dma[n-1]`, the virtual time until the last chunk leaves the
/// wire.  An empty slice is zero; a single chunk degenerates to `s_0 + d_0`
/// (no overlap possible).
pub fn double_buffered_makespan(
    chunks: &[(vphi_sim_core::SimDuration, vphi_sim_core::SimDuration)],
) -> vphi_sim_core::SimDuration {
    use vphi_sim_core::SimDuration;
    // dma_done[i % 2] holds dma[i-2] when chunk i starts staging: the chunk
    // two back used the same ping-pong buffer.
    let mut dma_done = [SimDuration::ZERO; 2];
    let mut last_stage = SimDuration::ZERO;
    let mut last_dma = SimDuration::ZERO;
    for (i, &(s, d)) in chunks.iter().enumerate() {
        let buffer_free = if i >= 2 { dma_done[i % 2] } else { SimDuration::ZERO };
        let stage = last_stage.max(buffer_free) + s;
        let dma = last_dma.max(stage) + d;
        dma_done[i % 2] = dma;
        last_stage = stage;
        last_dma = dma;
    }
    last_dma
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::{CostModel, VirtualClock};

    use crate::link::LinkConfig;

    fn engine(channels: usize) -> DmaEngine {
        let link = Arc::new(PcieLink::new(
            LinkConfig::default(),
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        ));
        DmaEngine::new(link, channels)
    }

    #[test]
    fn copy_moves_bytes_exactly() {
        let e = engine(8);
        let src: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut dst = vec![0u8; 10_000];
        let mut tl = Timeline::new();
        let out = e.copy(&src, &mut dst, &mut tl);
        assert_eq!(src, dst);
        assert_eq!(out.bytes, 10_000);
        assert!(tl.total_for(SpanLabel::DmaSetup) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::LinkTransfer) > vphi_sim_core::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let e = engine(1);
        let mut tl = Timeline::new();
        e.copy(&[1, 2, 3], &mut [0; 2], &mut tl);
    }

    #[test]
    fn channels_round_robin() {
        let e = engine(4);
        let mut tl = Timeline::new();
        let chans: Vec<usize> =
            (0..8).map(|_| e.copy(&[0u8; 8], &mut [0u8; 8], &mut tl).channel).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn accounting_accumulates() {
        let e = engine(2);
        let mut tl = Timeline::new();
        e.copy(&[0u8; 100], &mut [0u8; 100], &mut tl);
        e.transfer_timed(900, &mut tl);
        assert_eq!(e.bytes_total(), 1_000);
        assert_eq!(e.transfer_count(), 2);
    }

    #[test]
    fn makespan_degenerate_cases() {
        use vphi_sim_core::SimDuration;
        let us = SimDuration::from_micros;
        assert_eq!(double_buffered_makespan(&[]), SimDuration::ZERO);
        // One chunk: staging and DMA serialize — no overlap possible.
        assert_eq!(double_buffered_makespan(&[(us(3), us(10))]), us(13));
    }

    #[test]
    fn makespan_hides_staging_behind_dma() {
        use vphi_sim_core::SimDuration;
        let us = SimDuration::from_micros;
        // 4 chunks, staging 3 µs each, DMA 10 µs each.  Monolithic staging
        // would cost 4*3 + 4*10 = 52 µs; double-buffered only the first
        // staging is exposed: 3 + 40 = 43 µs.
        let chunks = [(us(3), us(10)); 4];
        assert_eq!(double_buffered_makespan(&chunks), us(43));
        // Staging-bound pipeline: DMA hides behind staging instead.
        // stage finishes at 4*10 = 40, last DMA tacks on 3 µs.
        let chunks = [(us(10), us(3)); 4];
        assert_eq!(double_buffered_makespan(&chunks), us(43));
    }

    #[test]
    fn makespan_respects_two_buffer_limit() {
        use vphi_sim_core::SimDuration;
        let us = SimDuration::from_micros;
        // Staging is instant, DMA slow: with unlimited buffers all staging
        // would finish at t=1*n, but with two bounce buffers chunk i can't
        // stage before chunk i-2's DMA frees its buffer.  The wire is the
        // bottleneck either way: makespan = s_0 + sum(d).
        let chunks = [(us(1), us(100)); 8];
        assert_eq!(double_buffered_makespan(&chunks), us(801));
        // Never better than the wire alone, never worse than full serial.
        let wire: SimDuration = us(800);
        let serial = us(808);
        let got = double_buffered_makespan(&chunks);
        assert!(got >= wire && got <= serial);
    }

    #[test]
    fn gather_copy_is_exact_and_bounded() {
        let src: Vec<u8> = (0..=255).cycle().take(3 * BOUNCE_BLOCK + 17).collect();
        let mut dst = vec![0u8; src.len()];
        let mut max_chunk = 0usize;
        gather_copy::<()>(
            src.len() as u64,
            |off, buf| {
                max_chunk = max_chunk.max(buf.len());
                buf.copy_from_slice(&src[off as usize..off as usize + buf.len()]);
                Ok(())
            },
            |off, buf| {
                dst[off as usize..off as usize + buf.len()].copy_from_slice(buf);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(src, dst);
        assert!(max_chunk <= BOUNCE_BLOCK, "bounce block bounds every chunk");
        // Errors short-circuit.
        let r = gather_copy(10, |_, _| Err("boom"), |_, _| Ok(()));
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn sg_list_splits_at_huge_page_boundaries() {
        // A transfer straddling two huge pages with unaligned start.
        let sg = SgList::for_range(0x4000_0000, HUGE_PAGE_SIZE - 4096, 8192).unwrap();
        assert_eq!(sg.len(), 2);
        assert_eq!(sg.bytes(), 8192);
        assert_eq!(
            sg.entries()[0],
            SgEntry { device_addr: 0x4000_0000 + HUGE_PAGE_SIZE - 4096, len: 4096 }
        );
        assert_eq!(
            sg.entries()[1],
            SgEntry { device_addr: 0x4000_0000 + HUGE_PAGE_SIZE, len: 4096 }
        );
        // 256 MiB from offset 0: exactly 128 full huge pages.
        let big = SgList::for_range(0, 0, 256 * 1024 * 1024).unwrap();
        assert_eq!(big.len(), 128);
        assert!(big.entries().iter().all(|e| e.len == HUGE_PAGE_SIZE));
        assert!(SgList::for_range(0, 0, 0).is_none());
    }

    #[test]
    fn sg_transfer_charges_one_setup_regardless_of_entries() {
        let e = engine(8);
        let bytes = 8 * HUGE_PAGE_SIZE;
        // One SG list over 8 huge pages...
        let sg = SgList::for_range(0, 0, bytes).unwrap();
        assert_eq!(sg.len(), 8);
        let mut tl_sg = Timeline::new();
        let out = e.transfer_sg(&sg, &mut tl_sg);
        assert_eq!(out.bytes, bytes);
        // ...vs 8 separate timed transfers of one huge page each.
        let mut tl_n = Timeline::new();
        for _ in 0..8 {
            e.transfer_timed(HUGE_PAGE_SIZE, &mut tl_n);
        }
        let setup = e.link().cost().dma_setup;
        assert_eq!(tl_sg.total_for(SpanLabel::DmaSetup), setup, "one setup for the whole list");
        assert_eq!(tl_n.total_for(SpanLabel::DmaSetup), setup * 8);
        // Same wire bytes → SG is strictly cheaper end-to-end.
        assert!(tl_sg.total() < tl_n.total());
        assert_eq!(e.transfer_count(), 9);
    }

    #[test]
    fn timed_transfer_matches_copy_timing() {
        let e = engine(1);
        let mut tl_copy = Timeline::new();
        let mut tl_timed = Timeline::new();
        e.copy(&[7u8; 4096], &mut [0u8; 4096], &mut tl_copy);
        e.transfer_timed(4096, &mut tl_timed);
        assert_eq!(
            tl_copy.total_for(SpanLabel::LinkTransfer),
            tl_timed.total_for(SpanLabel::LinkTransfer)
        );
        assert_eq!(tl_copy.total_for(SpanLabel::DmaSetup), tl_timed.total_for(SpanLabel::DmaSetup));
    }
}

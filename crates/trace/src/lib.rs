//! End-to-end request tracing for the vPHI stack.
//!
//! The paper's Fig. 4/5 analysis attributes the virtualization overhead to
//! specific path segments (guest syscall interception, virtio ring transit,
//! backend replay, host SCIF, DMA, completion delivery).  This crate makes
//! that attribution measurable per request: a [`TraceCtx`] rides inside the
//! [`OpCtx`] parameter of every SCIF operation, following the request from
//! the guest `scif_*` call through the virtio descriptor, the backend
//! dispatch, the host SCIF endpoint op, the PCIe/DMA transfer, and back
//! through the used ring to the guest wakeup.  Each layer opens structured
//! spans with parent/child links; the [`Tracer`] collects them into per-VM
//! ring buffers, folds per-stage latency histograms keyed by op kind and
//! payload-size bucket, and can export everything as `chrome://tracing`
//! JSON.
//!
//! Like `vphi-faults`, the instrumentation stays compiled into production
//! paths: a disarmed [`TraceHook`] is a single `OnceLock` load and a
//! disarmed [`OpCtx`] span is a branch on an `Option` — well under the 1%
//! overhead budget on the 1-byte anchor (see `figures --fig
//! trace-breakdown`).
//!
//! See DESIGN.md #14 for the span taxonomy and the propagation map.

use std::sync::{Arc, OnceLock};

use vphi_sim_core::SpanLabel;

mod ctx;
mod tracer;

pub use ctx::{OpCtx, OpenSpan, RootSpan, TraceCtx};
pub use tracer::{size_bucket, HistRow, SpanRec, TraceConfig, TraceCounters, TraceSummary, Tracer};

/// Number of pipeline stages a request's virtual time is decomposed into.
pub const STAGE_COUNT: usize = 7;

/// The seven pipeline stages of a virtualized SCIF request — the rows of
/// the Fig. 5 gap decomposition.  Every [`SpanLabel`] maps to exactly one
/// stage (see [`Stage::of`]), so the per-stage sums reconcile with the
/// end-to-end latency by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Guest-side syscall interception: trap, argument marshalling, copies
    /// between guest user and kernel space.
    GuestSyscall,
    /// Virtio transit: descriptor-chain push and the VM-exit kick.
    VirtioRing,
    /// Backend replay: request decode, guest-buffer mapping, page
    /// translation, registration-cache probes, worker handoff.
    BackendReplay,
    /// Zero-copy RMA mapping: huge-page window pinning and scatter-gather
    /// descriptor construction over the device aperture.  Sits alongside
    /// backend replay so the staged and mapped paths stay separable in
    /// the breakdown.
    DmaMap,
    /// The host-side SCIF operation the backend replays, including the
    /// device's share of servicing it.
    HostScif,
    /// PCIe/DMA transfer: descriptor setup, link latency, wire time,
    /// contention stalls.
    Dma,
    /// Completion delivery: used-ring push, interrupt injection, guest
    /// wakeup (or polling wait).
    Completion,
}

impl Stage {
    /// All stages, in decomposition (pipeline) order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::GuestSyscall,
        Stage::VirtioRing,
        Stage::BackendReplay,
        Stage::DmaMap,
        Stage::HostScif,
        Stage::Dma,
        Stage::Completion,
    ];

    /// Stable display name (also the `cat` field of chrome-trace events).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::GuestSyscall => "guest-syscall",
            Stage::VirtioRing => "virtio-ring",
            Stage::BackendReplay => "backend-replay",
            Stage::DmaMap => "dma-map",
            Stage::HostScif => "host-scif",
            Stage::Dma => "dma",
            Stage::Completion => "completion",
        }
    }

    /// Index into a `[_; STAGE_COUNT]` decomposition array.
    pub const fn index(self) -> usize {
        match self {
            Stage::GuestSyscall => 0,
            Stage::VirtioRing => 1,
            Stage::BackendReplay => 2,
            Stage::DmaMap => 3,
            Stage::HostScif => 4,
            Stage::Dma => 5,
            Stage::Completion => 6,
        }
    }

    /// Classify a timeline charge into its pipeline stage.  Exhaustive on
    /// purpose: adding a `SpanLabel` without deciding its stage is a
    /// compile error, so the decomposition can never silently leak time.
    pub const fn of(label: SpanLabel) -> Stage {
        match label {
            SpanLabel::GuestSyscall | SpanLabel::GuestKmalloc | SpanLabel::GuestCopy => {
                Stage::GuestSyscall
            }
            SpanLabel::RingPush | SpanLabel::VmExitKick => Stage::VirtioRing,
            SpanLabel::BackendDecode
            | SpanLabel::GuestBufMap
            | SpanLabel::PageTranslate
            | SpanLabel::RegCacheLookup
            | SpanLabel::WorkerSpawn
            | SpanLabel::PfnFaultResolve => Stage::BackendReplay,
            SpanLabel::WindowPin | SpanLabel::SgBuild => Stage::DmaMap,
            SpanLabel::HostSyscall
            | SpanLabel::ScifPost
            | SpanLabel::RmaSetup
            | SpanLabel::CopyUserKernel
            | SpanLabel::DeviceDeliver
            | SpanLabel::UosSchedule
            | SpanLabel::UosContextSwitch
            | SpanLabel::CoiControl
            | SpanLabel::DeviceSpawn
            | SpanLabel::DeviceCompute
            | SpanLabel::Other(_) => Stage::HostScif,
            SpanLabel::DmaSetup
            | SpanLabel::LinkLatency
            | SpanLabel::LinkTransfer
            | SpanLabel::LinkContention => Stage::Dma,
            SpanLabel::Completion
            | SpanLabel::UsedPush
            | SpanLabel::IrqInject
            | SpanLabel::GuestWakeup
            | SpanLabel::PollWait => Stage::Completion,
        }
    }
}

/// What an armed [`TraceHook`] hands out: the tracer plus the VM identity
/// the hook's channel belongs to.
#[derive(Debug, Clone)]
pub struct TraceArm {
    pub tracer: Arc<Tracer>,
    pub vm: u32,
}

/// Per-channel tracing hook, mirroring `vphi_faults::FaultHook`: a
/// `OnceLock` that is empty (disarmed) by default and can be armed exactly
/// once with a tracer + VM id.  The disarmed fast path — the common
/// production case — is a single load.
#[derive(Debug)]
pub struct TraceHook {
    slot: OnceLock<TraceArm>,
}

impl TraceHook {
    pub const fn new() -> Self {
        TraceHook { slot: OnceLock::new() }
    }

    /// Arm the hook.  The first arm wins; returns whether this call won.
    pub fn arm(&self, tracer: Arc<Tracer>, vm: u32) -> bool {
        self.slot.set(TraceArm { tracer, vm }).is_ok()
    }

    pub fn armed(&self) -> bool {
        self.slot.get().is_some()
    }

    /// The fast path: `None` means tracing is off for this channel.
    #[inline]
    pub fn get(&self) -> Option<&TraceArm> {
        self.slot.get()
    }

    /// The armed tracer, if any (for counter collection in debugfs).
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.slot.get().map(|a| Arc::clone(&a.tracer))
    }
}

impl Default for TraceHook {
    fn default() -> Self {
        TraceHook::new()
    }
}

/// Host-level tracer slot: holds the process-wide tracer so VMs spawned
/// *after* `arm_tracing` inherit it at channel creation.
#[derive(Debug, Default)]
pub struct TraceSlot {
    slot: OnceLock<Arc<Tracer>>,
}

impl TraceSlot {
    pub const fn new() -> Self {
        TraceSlot { slot: OnceLock::new() }
    }

    pub fn arm(&self, tracer: Arc<Tracer>) -> bool {
        self.slot.set(tracer).is_ok()
    }

    pub fn get(&self) -> Option<&Arc<Tracer>> {
        self.slot.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_label_classifies_and_stage_names_are_stable() {
        // A sample from each stage; Stage::of is exhaustive so the compiler
        // guarantees total coverage — this pins the *assignments*.
        assert_eq!(Stage::of(SpanLabel::GuestCopy), Stage::GuestSyscall);
        assert_eq!(Stage::of(SpanLabel::VmExitKick), Stage::VirtioRing);
        assert_eq!(Stage::of(SpanLabel::RegCacheLookup), Stage::BackendReplay);
        assert_eq!(Stage::of(SpanLabel::WindowPin), Stage::DmaMap);
        assert_eq!(Stage::of(SpanLabel::SgBuild), Stage::DmaMap);
        assert_eq!(Stage::of(SpanLabel::HostSyscall), Stage::HostScif);
        assert_eq!(Stage::of(SpanLabel::DeviceCompute), Stage::HostScif);
        assert_eq!(Stage::of(SpanLabel::LinkTransfer), Stage::Dma);
        assert_eq!(Stage::of(SpanLabel::IrqInject), Stage::Completion);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "guest-syscall",
                "virtio-ring",
                "backend-replay",
                "dma-map",
                "host-scif",
                "dma",
                "completion"
            ]
        );
    }

    #[test]
    fn hook_arms_once() {
        let hook = TraceHook::new();
        assert!(hook.get().is_none());
        let t = Arc::new(Tracer::new(TraceConfig::default()));
        assert!(hook.arm(Arc::clone(&t), 3));
        assert!(!hook.arm(t, 4), "second arm must lose");
        assert_eq!(hook.get().unwrap().vm, 3);
    }
}

//! The [`OpCtx`] operation context and the [`TraceCtx`] it carries.
//!
//! `OpCtx` is the single threaded parameter of every SCIF-path operation:
//! the virtual-time [`Timeline`] the op charges into, plus the trace
//! context that links its spans to the request's root.  Untraced callers
//! build one implicitly from `&mut Timeline` (the pre-redesign calling
//! convention still compiles everywhere); traced layers pass `&mut ctx`
//! down, which reborrows the timeline and clones the trace linkage.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use vphi_sim_core::{SimDuration, Timeline};

use crate::tracer::{SpanRec, Tracer};
use crate::{Stage, TraceHook};

/// Trace linkage carried by an [`OpCtx`].  `Default` (and conversion from a
/// bare `&mut Timeline`) gives the untraced state, where every span
/// operation is a branch on `None`.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    pub(crate) inner: Option<TraceInner>,
}

impl TraceCtx {
    /// Whether this context is attached to a live trace.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone whose next spans parent directly to the trace root — for
    /// stages (e.g. completion delivery) that are siblings of the subtree
    /// this context currently sits in, not children of it.
    pub fn at_root(&self) -> TraceCtx {
        let mut c = self.clone();
        if let Some(inner) = c.inner.as_mut() {
            inner.parent = inner.root;
        }
        c
    }

    /// Tag every span this context records from now on with the virtqueue
    /// the request was routed to.  The frontend calls this right after the
    /// queue router picks a lane; forks inherit the tag, so backend spans
    /// carry it too.  No-op when disarmed.
    pub fn set_queue(&mut self, queue: u16) {
        if let Some(inner) = self.inner.as_mut() {
            inner.queue = queue;
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct TraceInner {
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) vm: u32,
    pub(crate) trace_id: u64,
    pub(crate) root: u32,
    pub(crate) parent: u32,
    /// Shared across forks/clones so span ids stay unique per trace.
    pub(crate) next_span: Arc<AtomicU32>,
    /// Virtual offset of this context's timeline zero within the trace.
    /// The frontend's context has `base = 0`; a backend fork sets `base`
    /// to the frontend's elapsed time at submit, so backend spans land
    /// after the ring transit on the shared trace clock.
    pub(crate) base: SimDuration,
    /// `tl.total()` at the moment this context attached to the trace;
    /// span offsets are measured relative to it.
    pub(crate) zero: SimDuration,
    /// Virtqueue the request rode (set by the frontend's queue router;
    /// stays 0 for endpoint-less ops and single-queue configs).
    pub(crate) queue: u16,
}

/// Operation context: the timeline an op charges plus its trace linkage.
///
/// APIs take `ctx: impl Into<OpCtx<'_>>` so callers can pass either a bare
/// `&mut Timeline` (untraced) or `&mut OpCtx` (propagating a trace).
#[derive(Debug)]
pub struct OpCtx<'a> {
    pub tl: &'a mut Timeline,
    pub trace: TraceCtx,
}

impl<'a> From<&'a mut Timeline> for OpCtx<'a> {
    fn from(tl: &'a mut Timeline) -> Self {
        OpCtx { tl, trace: TraceCtx::default() }
    }
}

impl<'a, 'b> From<&'a mut OpCtx<'b>> for OpCtx<'a> {
    fn from(ctx: &'a mut OpCtx<'b>) -> Self {
        OpCtx { tl: &mut *ctx.tl, trace: ctx.trace.clone() }
    }
}

/// Token for an open child span; every [`OpCtx::begin`] must be matched by
/// an [`OpCtx::end`] (use [`OpCtx::in_span`] where control flow allows —
/// the closure shape makes orphans impossible).
#[must_use = "an open span must be ended or the trace reports an orphan"]
#[derive(Debug)]
pub struct OpenSpan {
    armed: bool,
    id: u32,
    prev_parent: u32,
    name: &'static str,
    stage: Stage,
    start_total: SimDuration,
}

impl OpenSpan {
    const DISARMED: OpenSpan = OpenSpan {
        armed: false,
        id: 0,
        prev_parent: 0,
        name: "",
        stage: Stage::GuestSyscall,
        start_total: SimDuration::ZERO,
    };
}

/// Token for a request root adopted via [`OpCtx::adopt_root`]; closed by
/// [`OpCtx::finish_root`], which also decomposes the request's timeline
/// slice into per-stage sums for the histograms.
#[must_use = "a root span must be finished or the trace reports an orphan"]
#[derive(Debug)]
pub struct RootSpan {
    armed: bool,
    name: &'static str,
    start_total: SimDuration,
    /// `tl.spans().len()` at adoption — the start of this request's slice.
    tl_start: usize,
}

impl RootSpan {
    const DISARMED: RootSpan =
        RootSpan { armed: false, name: "", start_total: SimDuration::ZERO, tl_start: 0 };
}

/// Root spans get id 1; their `parent` field is 0 ("no parent").
const ROOT_SPAN_ID: u32 = 1;

impl<'a> OpCtx<'a> {
    pub fn new(tl: &'a mut Timeline, trace: TraceCtx) -> Self {
        OpCtx { tl, trace }
    }

    /// Open a child span under the current parent.  Disarmed contexts pay
    /// one branch.
    #[inline]
    pub fn begin(&mut self, name: &'static str, stage: Stage) -> OpenSpan {
        let start_total = self.tl.total();
        match self.trace.inner.as_mut() {
            None => OpenSpan::DISARMED,
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let prev_parent = inner.parent;
                inner.parent = id;
                inner.tracer.span_opened();
                OpenSpan { armed: true, id, prev_parent, name, stage, start_total }
            }
        }
    }

    /// Close a span opened by [`begin`](Self::begin): record it and restore
    /// the previous parent.
    #[inline]
    pub fn end(&mut self, span: OpenSpan) {
        if !span.armed {
            return;
        }
        let total = self.tl.total();
        if let Some(inner) = self.trace.inner.as_mut() {
            inner.parent = span.prev_parent;
            inner.tracer.record(SpanRec {
                vm: inner.vm,
                trace_id: inner.trace_id,
                id: span.id,
                parent: span.prev_parent,
                name: span.name,
                stage: span.stage,
                queue: inner.queue,
                start: inner.base + (span.start_total - inner.zero),
                dur: total - span.start_total,
            });
        }
    }

    /// Run `f` inside a span.  The closure shape guarantees the span closes
    /// on every exit path, so traces built this way cannot orphan.
    #[inline]
    pub fn in_span<R>(
        &mut self,
        name: &'static str,
        stage: Stage,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let span = self.begin(name, stage);
        let r = f(self);
        self.end(span);
        r
    }

    /// Become the root of a new trace if (a) this context is not already
    /// inside one and (b) `hook` is armed.  Otherwise returns a disarmed
    /// token and [`finish_root`](Self::finish_root) is a no-op — so every
    /// request entry point can adopt unconditionally and nesting resolves
    /// to one trace per outermost guest operation.
    pub fn adopt_root(&mut self, hook: &TraceHook, op: &'static str) -> RootSpan {
        if self.trace.inner.is_some() {
            return RootSpan::DISARMED;
        }
        let Some(arm) = hook.get() else {
            return RootSpan::DISARMED;
        };
        let tracer = Arc::clone(&arm.tracer);
        let trace_id = tracer.alloc_trace();
        tracer.span_opened();
        let zero = self.tl.total();
        self.trace.inner = Some(TraceInner {
            tracer,
            vm: arm.vm,
            trace_id,
            root: ROOT_SPAN_ID,
            parent: ROOT_SPAN_ID,
            next_span: Arc::new(AtomicU32::new(ROOT_SPAN_ID + 1)),
            base: SimDuration::ZERO,
            zero,
            queue: 0,
        });
        RootSpan { armed: true, name: op, start_total: zero, tl_start: self.tl.spans().len() }
    }

    /// Close a root adopted by [`adopt_root`](Self::adopt_root): record the
    /// root span, decompose the request's timeline slice into per-stage
    /// sums (total by construction — see [`Stage::of`]), feed the
    /// histograms, and detach this context from the trace.
    pub fn finish_root(&mut self, root: RootSpan, payload: u64) {
        if !root.armed {
            return;
        }
        let Some(inner) = self.trace.inner.take() else {
            return;
        };
        let total = self.tl.total();
        let mut stages = [SimDuration::ZERO; crate::STAGE_COUNT];
        for span in &self.tl.spans()[root.tl_start.min(self.tl.spans().len())..] {
            stages[Stage::of(span.label).index()] += span.duration;
        }
        inner.tracer.record(SpanRec {
            vm: inner.vm,
            trace_id: inner.trace_id,
            id: ROOT_SPAN_ID,
            parent: 0,
            name: root.name,
            stage: Stage::GuestSyscall,
            queue: inner.queue,
            start: SimDuration::ZERO,
            dur: total - root.start_total,
        });
        inner.tracer.finish_request(
            inner.vm,
            inner.trace_id,
            root.name,
            payload,
            stages,
            total - root.start_total,
        );
    }

    /// Tag the trace with the virtqueue the request was routed to (see
    /// [`TraceCtx::set_queue`]).
    pub fn set_queue(&mut self, queue: u16) {
        self.trace.set_queue(queue);
    }

    /// Fork a context for the backend half of the request.  The fork's
    /// spans parent to the root (the backend is a sibling subtree, not a
    /// child of whichever frontend span happens to be open at submit), and
    /// its `base` pins the backend's fresh timeline zero to the frontend's
    /// elapsed time, so both halves share one trace clock.
    pub fn fork(&self) -> TraceCtx {
        match &self.trace.inner {
            None => TraceCtx::default(),
            Some(inner) => TraceCtx {
                inner: Some(TraceInner {
                    tracer: Arc::clone(&inner.tracer),
                    vm: inner.vm,
                    trace_id: inner.trace_id,
                    root: inner.root,
                    parent: inner.root,
                    next_span: Arc::clone(&inner.next_span),
                    base: inner.base + (self.tl.total() - inner.zero),
                    zero: SimDuration::ZERO,
                    queue: inner.queue,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;
    use vphi_sim_core::SpanLabel;

    #[test]
    fn untraced_ctx_spans_are_free_noops() {
        let mut tl = Timeline::new();
        let mut ctx = OpCtx::from(&mut tl);
        let hook = TraceHook::new(); // disarmed
        let root = ctx.adopt_root(&hook, "op");
        let r = ctx.in_span("child", Stage::HostScif, |c| {
            c.tl.charge(SpanLabel::HostSyscall, SimDuration::from_micros(2));
            7
        });
        ctx.finish_root(root, 1);
        assert_eq!(r, 7);
        assert_eq!(tl.total(), SimDuration::from_micros(2));
    }

    #[test]
    fn root_children_and_stage_sums_line_up() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let hook = TraceHook::new();
        hook.arm(Arc::clone(&tracer), 0);

        let mut tl = Timeline::new();
        let mut ctx = OpCtx::from(&mut tl);
        let root = ctx.adopt_root(&hook, "send");
        ctx.in_span("guest-syscall", Stage::GuestSyscall, |c| {
            c.tl.charge(SpanLabel::GuestSyscall, SimDuration::from_micros(3));
            c.in_span("nested", Stage::GuestSyscall, |c2| {
                c2.tl.charge(SpanLabel::GuestCopy, SimDuration::from_micros(1));
            });
        });
        ctx.in_span("virtio-ring", Stage::VirtioRing, |c| {
            c.tl.charge(SpanLabel::RingPush, SimDuration::from_micros(2));
        });
        ctx.finish_root(root, 64);

        let spans = tracer.spans(0);
        assert_eq!(spans.len(), 4);
        let root_rec = spans.iter().find(|s| s.parent == 0).unwrap();
        assert_eq!(root_rec.name, "send");
        assert_eq!(root_rec.dur, SimDuration::from_micros(6));
        let nested = spans.iter().find(|s| s.name == "nested").unwrap();
        let parent = spans.iter().find(|s| s.id == nested.parent).unwrap();
        assert_eq!(parent.name, "guest-syscall");
        assert_eq!(parent.parent, root_rec.id);

        let sum = tracer.last_summary(0).unwrap();
        assert_eq!(sum.op, "send");
        assert_eq!(sum.payload, 64);
        assert_eq!(sum.total, SimDuration::from_micros(6));
        assert_eq!(sum.stages[Stage::GuestSyscall.index()], SimDuration::from_micros(4));
        assert_eq!(sum.stages[Stage::VirtioRing.index()], SimDuration::from_micros(2));
        assert_eq!(sum.stages.iter().copied().sum::<SimDuration>(), sum.total);
        assert_eq!(tracer.counters().open_spans, 0);
    }

    #[test]
    fn nested_adoption_yields_one_trace() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let hook = TraceHook::new();
        hook.arm(Arc::clone(&tracer), 0);

        let mut tl = Timeline::new();
        let mut ctx = OpCtx::from(&mut tl);
        let outer = ctx.adopt_root(&hook, "outer");
        {
            // An inner layer converting `&mut ctx` back into an OpCtx (the
            // generic-call shape) must not start a second trace.
            let mut inner: OpCtx<'_> = (&mut ctx).into();
            let nested = inner.adopt_root(&hook, "inner");
            inner.in_span("work", Stage::HostScif, |c| {
                c.tl.charge(SpanLabel::HostSyscall, SimDuration::from_micros(1));
            });
            inner.finish_root(nested, 0);
        }
        ctx.finish_root(outer, 0);
        let c = tracer.counters();
        assert_eq!(c.traces_started, 1);
        assert_eq!(c.traces_finished, 1);
        assert_eq!(c.open_spans, 0);
    }

    #[test]
    fn queue_tag_reaches_spans_and_survives_fork() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let hook = TraceHook::new();
        hook.arm(Arc::clone(&tracer), 0);

        let mut tl = Timeline::new();
        let mut ctx = OpCtx::from(&mut tl);
        let root = ctx.adopt_root(&hook, "send");
        ctx.set_queue(3);
        ctx.in_span("virtio-ring", Stage::VirtioRing, |c| {
            c.tl.charge(SpanLabel::RingPush, SimDuration::from_micros(1));
        });
        let forked = ctx.fork();
        let mut be_tl = Timeline::new();
        let mut be = OpCtx::new(&mut be_tl, forked);
        be.in_span("backend-replay", Stage::BackendReplay, |c| {
            c.tl.charge(SpanLabel::BackendDecode, SimDuration::from_micros(1));
        });
        ctx.tl.absorb(&be_tl);
        ctx.finish_root(root, 1);

        let spans = tracer.spans(0);
        assert!(!spans.is_empty());
        for s in &spans {
            assert_eq!(s.queue, 3, "span {} must carry the queue tag", s.name);
        }
        // A disarmed context ignores the tag without panicking.
        let mut tl2 = Timeline::new();
        let mut untraced = OpCtx::from(&mut tl2);
        untraced.set_queue(9);
        assert!(!untraced.trace.is_armed());
    }

    #[test]
    fn fork_places_backend_spans_on_the_shared_trace_clock() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let hook = TraceHook::new();
        hook.arm(Arc::clone(&tracer), 0);

        let mut fe_tl = Timeline::new();
        let mut fe = OpCtx::from(&mut fe_tl);
        let root = fe.adopt_root(&hook, "send");
        fe.tl.charge(SpanLabel::RingPush, SimDuration::from_micros(5));
        let forked = fe.fork();

        let mut be_tl = Timeline::new();
        let mut be = OpCtx::new(&mut be_tl, forked);
        be.in_span("backend-replay", Stage::BackendReplay, |c| {
            c.tl.charge(SpanLabel::BackendDecode, SimDuration::from_micros(2));
        });

        fe.tl.absorb(&be_tl);
        fe.finish_root(root, 1);

        let spans = tracer.spans(0);
        let replay = spans.iter().find(|s| s.name == "backend-replay").unwrap();
        assert_eq!(replay.start, SimDuration::from_micros(5));
        assert_eq!(replay.dur, SimDuration::from_micros(2));
        let root_rec = spans.iter().find(|s| s.parent == 0).unwrap();
        assert_eq!(replay.parent, root_rec.id);
        assert_eq!(root_rec.dur, SimDuration::from_micros(7));
    }
}

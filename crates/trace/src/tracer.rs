//! The [`Tracer`]: per-VM span ring buffers, per-request stage summaries,
//! per-stage latency histograms, and the exporters.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use vphi_sim_core::{SimDuration, SimTime, VirtualClock};
use vphi_sync::{LockClass, TrackedMutex};

use crate::{Stage, STAGE_COUNT};

/// Sizing knobs.  The rings overwrite oldest-first, so a long-running VM
/// keeps its most recent requests without unbounded memory.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Max retained spans per VM.
    pub ring_capacity: usize,
    /// Max retained per-request summaries (across all VMs).
    pub summary_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring_capacity: 4096, summary_capacity: 1024 }
    }
}

/// One recorded span.  `start`/`dur` are virtual-time offsets on the
/// trace's shared clock (the root starts at 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub vm: u32,
    pub trace_id: u64,
    pub id: u32,
    /// 0 for the root span.
    pub parent: u32,
    pub name: &'static str,
    pub stage: Stage,
    /// Virtqueue the request rode (0 for endpoint-less ops and untraced
    /// single-queue paths) — lets per-queue breakdowns fall out of the
    /// existing stage taxonomy.
    pub queue: u16,
    pub start: SimDuration,
    pub dur: SimDuration,
}

/// Per-request stage decomposition, produced at root finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub vm: u32,
    pub trace_id: u64,
    pub op: &'static str,
    pub payload: u64,
    /// End-to-end virtual latency; equals `stages.iter().sum()` by
    /// construction (every timeline charge maps to exactly one stage).
    pub total: SimDuration,
    pub stages: [SimDuration; STAGE_COUNT],
    /// Virtual clock reading when the request finished (ZERO if the
    /// tracer has no clock attached).
    pub at: SimTime,
}

/// Monotonic tracer counters (for debugfs and orphan detection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    pub traces_started: u64,
    pub traces_finished: u64,
    pub spans_recorded: u64,
    pub spans_dropped: u64,
    /// Spans begun but not yet ended.  Zero at quiesce means no orphans.
    pub open_spans: i64,
}

/// Histogram key: op kind × stage (6 = end-to-end) × payload pow2 bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HistKey {
    op: &'static str,
    stage: u8,
    bucket: u8,
}

const E2E_STAGE: u8 = STAGE_COUNT as u8;

/// Payload pow2 bucket: number of significant bits, so bucket `b` covers
/// `[2^(b-1), 2^b)` and 0 bytes is bucket 0.
pub fn size_bucket(payload: u64) -> u8 {
    (64 - payload.leading_zeros()) as u8
}

/// Upper edge of a payload bucket, for display.
fn bucket_hi(bucket: u8) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u64 << bucket) - 1
    }
}

/// Log2-bucketed latency histogram (nanosecond resolution, 64 buckets
/// cover the full u64 range).
#[derive(Debug, Clone)]
struct Hist {
    count: u64,
    max_ns: u64,
    buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, max_ns: 0, buckets: [0; 64] }
    }
}

impl Hist {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.buckets[(64 - ns.leading_zeros()) as usize % 64] += 1;
    }

    /// Quantile as the upper edge of the bucket holding it — a log2
    /// histogram answers "within 2×", which is what a breakdown needs.
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { ((1u128 << i) - 1).min(u64::MAX as u128) as u64 };
            }
        }
        self.max_ns
    }
}

/// One rendered histogram row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRow {
    pub op: &'static str,
    /// `None` = end-to-end.
    pub stage: Option<Stage>,
    /// Upper edge of the payload-size bucket, in bytes.
    pub payload_hi: u64,
    pub count: u64,
    pub p50: SimDuration,
    pub p99: SimDuration,
    pub max: SimDuration,
}

#[derive(Debug, Default)]
struct Store {
    rings: BTreeMap<u32, VecDeque<SpanRec>>,
    summaries: VecDeque<TraceSummary>,
}

/// Collects spans and summaries from every [`OpCtx`](crate::OpCtx) whose
/// hook was armed with this tracer.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    clock: Option<Arc<VirtualClock>>,
    store: TrackedMutex<Store>,
    hists: TrackedMutex<BTreeMap<HistKey, Hist>>,
    next_trace: AtomicU64,
    open_spans: AtomicI64,
    spans_recorded: AtomicU64,
    spans_dropped: AtomicU64,
    traces_started: AtomicU64,
    traces_finished: AtomicU64,
}

impl Tracer {
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            clock: None,
            store: TrackedMutex::new(LockClass::TraceRings, Store::default()),
            hists: TrackedMutex::new(LockClass::TraceHists, BTreeMap::new()),
            next_trace: AtomicU64::new(1),
            open_spans: AtomicI64::new(0),
            spans_recorded: AtomicU64::new(0),
            spans_dropped: AtomicU64::new(0),
            traces_started: AtomicU64::new(0),
            traces_finished: AtomicU64::new(0),
        }
    }

    /// A tracer that stamps summaries with the host's virtual clock.
    pub fn with_clock(config: TraceConfig, clock: Arc<VirtualClock>) -> Self {
        let mut t = Tracer::new(config);
        t.clock = Some(clock);
        t
    }

    pub(crate) fn alloc_trace(&self) -> u64 {
        self.traces_started.fetch_add(1, Ordering::Relaxed);
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn span_opened(&self) {
        self.open_spans.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, rec: SpanRec) {
        self.open_spans.fetch_sub(1, Ordering::Relaxed);
        self.spans_recorded.fetch_add(1, Ordering::Relaxed);
        let mut store = self.store.lock();
        let ring = store.rings.entry(rec.vm).or_default();
        if ring.len() >= self.config.ring_capacity {
            ring.pop_front();
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    pub(crate) fn finish_request(
        &self,
        vm: u32,
        trace_id: u64,
        op: &'static str,
        payload: u64,
        stages: [SimDuration; STAGE_COUNT],
        total: SimDuration,
    ) {
        self.traces_finished.fetch_add(1, Ordering::Relaxed);
        let at = self.clock.as_ref().map(|c| c.now()).unwrap_or(SimTime::ZERO);
        {
            let mut store = self.store.lock();
            if store.summaries.len() >= self.config.summary_capacity {
                store.summaries.pop_front();
            }
            store.summaries.push_back(TraceSummary {
                vm,
                trace_id,
                op,
                payload,
                total,
                stages,
                at,
            });
        }
        let bucket = size_bucket(payload);
        let mut hists = self.hists.lock();
        for (i, d) in stages.iter().enumerate() {
            if !d.is_zero() {
                hists
                    .entry(HistKey { op, stage: i as u8, bucket })
                    .or_default()
                    .record(d.as_nanos());
            }
        }
        hists.entry(HistKey { op, stage: E2E_STAGE, bucket }).or_default().record(total.as_nanos());
    }

    pub fn counters(&self) -> TraceCounters {
        TraceCounters {
            traces_started: self.traces_started.load(Ordering::Relaxed),
            traces_finished: self.traces_finished.load(Ordering::Relaxed),
            spans_recorded: self.spans_recorded.load(Ordering::Relaxed),
            spans_dropped: self.spans_dropped.load(Ordering::Relaxed),
            open_spans: self.open_spans.load(Ordering::Relaxed),
        }
    }

    /// VMs that have recorded at least one span.
    pub fn vms(&self) -> Vec<u32> {
        self.store.lock().rings.keys().copied().collect()
    }

    /// Snapshot of one VM's span ring, oldest first.
    pub fn spans(&self, vm: u32) -> Vec<SpanRec> {
        self.store.lock().rings.get(&vm).map(|r| r.iter().cloned().collect()).unwrap_or_default()
    }

    /// Snapshot of the retained request summaries for one VM.
    pub fn summaries(&self, vm: u32) -> Vec<TraceSummary> {
        self.store.lock().summaries.iter().filter(|s| s.vm == vm).cloned().collect()
    }

    /// The most recent finished request for a VM.
    pub fn last_summary(&self, vm: u32) -> Option<TraceSummary> {
        self.store.lock().summaries.iter().rev().find(|s| s.vm == vm).cloned()
    }

    /// Histogram rows, deterministically ordered (op, stage, bucket).
    pub fn hist_rows(&self) -> Vec<HistRow> {
        self.hists
            .lock()
            .iter()
            .map(|(k, h)| HistRow {
                op: k.op,
                stage: (k.stage != E2E_STAGE).then(|| Stage::ALL[k.stage as usize]),
                payload_hi: bucket_hi(k.bucket),
                count: h.count,
                p50: SimDuration::from_nanos(h.quantile_ns(0.50)),
                p99: SimDuration::from_nanos(h.quantile_ns(0.99)),
                max: SimDuration::from_nanos(h.max_ns),
            })
            .collect()
    }

    /// Canonical byte-stable text form: spans (per VM, ring order) then
    /// summaries (arrival order).  Two runs on the same virtual-clock
    /// schedule encode identically — pinned by `tests/trace.rs`.
    ///
    /// Only trace-local quantities are emitted.  [`TraceSummary::at`] is
    /// deliberately excluded: the global clock folds concurrent threads'
    /// progress (`observe` is a monotonic max), so a finish stamp depends
    /// on how far *other* threads happened to get — per-trace starts and
    /// durations do not.
    pub fn encode(&self) -> String {
        let store = self.store.lock();
        let mut out = String::from("vphi-trace v1\n");
        for (vm, ring) in &store.rings {
            for s in ring {
                let _ = writeln!(
                    out,
                    "span vm={vm} queue={} trace={} id={} parent={} stage={} name={} start_ns={} dur_ns={}",
                    s.queue,
                    s.trace_id,
                    s.id,
                    s.parent,
                    s.stage.name(),
                    s.name,
                    s.start.as_nanos(),
                    s.dur.as_nanos(),
                );
            }
        }
        for s in &store.summaries {
            let _ = write!(
                out,
                "summary vm={} trace={} op={} payload={} total_ns={}",
                s.vm,
                s.trace_id,
                s.op,
                s.payload,
                s.total.as_nanos(),
            );
            for (i, stage) in Stage::ALL.iter().enumerate() {
                let _ = write!(out, " {}={}", stage.name(), s.stages[i].as_nanos());
            }
            out.push('\n');
        }
        out
    }

    /// Export every retained span as a `chrome://tracing` /
    /// [Perfetto](https://ui.perfetto.dev) JSON document: complete ("X")
    /// events, microsecond timestamps, one process per VM, one track per
    /// trace.  Write it to a file and load it in the trace viewer.
    pub fn chrome_trace_json(&self) -> String {
        let store = self.store.lock();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        for ring in store.rings.values() {
            for s in ring {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{}.{:03},\"dur\":{}.{:03},\
                     \"args\":{{\"span\":{},\"parent\":{},\"queue\":{}}}}}",
                    s.vm,
                    s.trace_id,
                    s.name,
                    s.stage.name(),
                    s.start.as_nanos() / 1_000,
                    s.start.as_nanos() % 1_000,
                    s.dur.as_nanos() / 1_000,
                    s.dur.as_nanos() % 1_000,
                    s.id,
                    s.parent,
                    s.queue,
                )
                .map_err(|_| ())
                .ok();
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_buckets_are_pow2_ranges() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 1);
        assert_eq!(size_bucket(2), 2);
        assert_eq!(size_bucket(3), 2);
        assert_eq!(size_bucket(4), 3);
        assert_eq!(size_bucket(65536), 17);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(2), 3);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(TraceConfig { ring_capacity: 2, summary_capacity: 2 });
        for i in 0..3u32 {
            t.span_opened();
            t.record(SpanRec {
                vm: 0,
                trace_id: 1,
                id: i + 1,
                parent: 0,
                name: "s",
                stage: Stage::HostScif,
                queue: 0,
                start: SimDuration::ZERO,
                dur: SimDuration::from_nanos(i as u64),
            });
        }
        let spans = t.spans(0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 2, "oldest span must be overwritten");
        let c = t.counters();
        assert_eq!(c.spans_recorded, 3);
        assert_eq!(c.spans_dropped, 1);
        assert_eq!(c.open_spans, 0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let mut h = Hist::default();
        for _ in 0..99 {
            h.record(1_000); // ~1µs
        }
        h.record(1_000_000); // one 1ms outlier
        assert_eq!(h.count, 100);
        assert_eq!(h.max_ns, 1_000_000);
        let p50 = h.quantile_ns(0.50);
        assert!((1_000..4_000).contains(&p50), "p50 {p50} should bracket 1µs");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 < 1_000_000, "p99 {p99} excludes the single outlier");
    }

    #[test]
    fn encode_and_chrome_export_are_deterministic() {
        let mk = || {
            let t = Tracer::new(TraceConfig::default());
            t.span_opened();
            t.record(SpanRec {
                vm: 1,
                trace_id: 1,
                id: 1,
                parent: 0,
                name: "send",
                stage: Stage::GuestSyscall,
                queue: 0,
                start: SimDuration::ZERO,
                dur: SimDuration::from_micros(382),
            });
            t.finish_request(
                1,
                1,
                "send",
                1,
                [
                    SimDuration::from_micros(382),
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                ],
                SimDuration::from_micros(382),
            );
            t
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.encode(), b.encode());
        assert!(a.encode().contains("summary vm=1 trace=1 op=send payload=1 total_ns=382000"));
        let json = a.chrome_trace_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":382.000"));
        assert!(json.ends_with("]}\n"));
    }
}

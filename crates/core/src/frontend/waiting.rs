//! The frontend's waiting schemes.
//!
//! The paper implements the **interrupt-based** scheme ("we choose the
//! interrupt-based approach, adding up some extra overhead when the driver
//! sets up the sleeping mechanism, in favor of better performance when the
//! number of parallel requests increases") and measures it at 93% of the
//! 375 µs small-message overhead.  It proposes a **hybrid** model as
//! future work: "near-native latency for small data sizes, while retaining
//! acceptable transfer rate for larger ones."  We generalize that hybrid
//! into [`WaitScheme::Adaptive`]: every requester spins up to a budget,
//! then arms the used-ring interrupt threshold and sleeps.  The paper's
//! static size cut-off is recovered as the fixed-budget special case
//! ([`WaitScheme::STATIC_HYBRID`]); the default budget is learned per
//! (op, payload-bucket) from an EWMA of recent service times (DESIGN.md
//! #16).  All four arms are compared in the ABL-WAIT ablation.

use vphi_sim_core::SimDuration;

/// How the spin budget of an [`Adaptive`](WaitScheme::Adaptive) waiter is
/// chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinBudget {
    /// Learned: 1.5× the per-(op, payload-bucket) EWMA of recent backend
    /// service times, seeded from the calibrated fast-path floor.
    Ewma,
    /// Fixed: spin exactly this long for every request regardless of op
    /// or size — the paper's proposed static hybrid, expressed as a time
    /// budget instead of a byte threshold.
    Fixed(SimDuration),
}

/// How a requesting guest thread waits for its reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitScheme {
    /// Sleep immediately; the backend interrupts on every completion (the
    /// paper's implementation, the calibrated 382 µs anchor).
    Interrupt,
    /// Busy-wait on the shared ring: minimal latency, burns the vCPU, and
    /// never arms an interrupt (the backend suppresses every MSI).
    Polling,
    /// Spin up to a budget, then arm `used_event` and sleep.
    Adaptive(SpinBudget),
}

impl WaitScheme {
    /// The adaptive default: EWMA-derived budgets.
    pub const ADAPTIVE: WaitScheme = WaitScheme::Adaptive(SpinBudget::Ewma);

    /// The paper's static hybrid as a fixed budget: 22 µs is just above
    /// the calibrated no-wait fast path, so short ops are caught spinning
    /// and bulk transfers sleep.
    pub const STATIC_HYBRID: WaitScheme =
        WaitScheme::Adaptive(SpinBudget::Fixed(SimDuration::from_micros(22)));

    /// Ablation-row label.
    pub fn label(self) -> &'static str {
        match self {
            WaitScheme::Interrupt => "interrupt",
            WaitScheme::Polling => "busy-poll",
            WaitScheme::Adaptive(SpinBudget::Ewma) => "adaptive",
            WaitScheme::Adaptive(SpinBudget::Fixed(_)) => "static-hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(WaitScheme::Interrupt.label(), "interrupt");
        assert_eq!(WaitScheme::Polling.label(), "busy-poll");
        assert_eq!(WaitScheme::ADAPTIVE.label(), "adaptive");
        assert_eq!(WaitScheme::STATIC_HYBRID.label(), "static-hybrid");
        assert_eq!(
            WaitScheme::Adaptive(SpinBudget::Fixed(SimDuration::from_micros(5))).label(),
            "static-hybrid"
        );
    }

    #[test]
    fn static_hybrid_budget_catches_the_minimal_backend_service() {
        // The fixed budget must exceed the smallest possible backend
        // service time (decode + buffer map + used push), so a 1-byte op
        // is caught spinning, and must sit far below the wake-up cost, so
        // sleeping for bulk transfers still wins.
        let cost = vphi_sim_core::CostModel::paper_calibrated();
        let WaitScheme::Adaptive(SpinBudget::Fixed(budget)) = WaitScheme::STATIC_HYBRID else {
            panic!("static hybrid must be a fixed budget");
        };
        assert!(budget > cost.backend_decode + cost.guest_buf_map + cost.used_push);
        assert!(budget < cost.guest_wakeup);
    }
}

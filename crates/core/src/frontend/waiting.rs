//! The frontend's waiting schemes.
//!
//! The paper implements the **interrupt-based** scheme ("we choose the
//! interrupt-based approach, adding up some extra overhead when the driver
//! sets up the sleeping mechanism, in favor of better performance when the
//! number of parallel requests increases") and measures it at 93% of the
//! 375 µs small-message overhead.  It proposes a **hybrid** model as
//! future work: "near-native latency for small data sizes, while retaining
//! acceptable transfer rate for larger ones."  All three are implemented
//! and compared in the ABL-WAIT ablation.

/// How a requesting guest thread waits for its reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitScheme {
    /// Sleep on the driver wait queue; the ISR wake-alls on every virtual
    /// interrupt (the paper's implementation).
    Interrupt,
    /// Busy-wait on the shared ring: minimal latency, burns the vCPU.
    Polling,
    /// Poll for payloads strictly below `poll_below` bytes, sleep
    /// otherwise (the paper's proposed future work).
    Hybrid { poll_below: u64 },
}

impl WaitScheme {
    /// The hybrid threshold the ablation found reasonable: poll below
    /// 64 KiB, where the wake-up cost dwarfs the transfer itself.
    pub const DEFAULT_HYBRID: WaitScheme = WaitScheme::Hybrid { poll_below: 64 * 1024 };

    /// Does a request with `payload_bytes` of data busy-wait?
    pub fn polls_for(self, payload_bytes: u64) -> bool {
        match self {
            WaitScheme::Interrupt => false,
            WaitScheme::Polling => true,
            WaitScheme::Hybrid { poll_below } => payload_bytes < poll_below,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            WaitScheme::Interrupt => "interrupt",
            WaitScheme::Polling => "polling",
            WaitScheme::Hybrid { .. } => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_choices() {
        assert!(!WaitScheme::Interrupt.polls_for(0));
        assert!(!WaitScheme::Interrupt.polls_for(u64::MAX));
        assert!(WaitScheme::Polling.polls_for(0));
        assert!(WaitScheme::Polling.polls_for(u64::MAX));
        let h = WaitScheme::Hybrid { poll_below: 1000 };
        assert!(h.polls_for(0));
        assert!(h.polls_for(999));
        assert!(!h.polls_for(1000));
        assert!(!h.polls_for(1 << 30));
    }

    #[test]
    fn names() {
        assert_eq!(WaitScheme::Interrupt.name(), "interrupt");
        assert_eq!(WaitScheme::Polling.name(), "polling");
        assert_eq!(WaitScheme::DEFAULT_HYBRID.name(), "hybrid");
    }
}

//! The vPHI **frontend driver** — the guest kernel module.
//!
//! "The driver acts as a 'glue' between virtualization-unaware libscif and
//! the rest of the stack by forwarding the operations requested to vPHI
//! backend device through virtio communication channels." (paper §III)
//!
//! Responsibilities reproduced here:
//!
//! * marshal each intercepted SCIF call into a [`crate::protocol`] header
//!   in a kmalloc'd buffer and post it on the virtio ring;
//! * stage large send/recv payloads through `KMALLOC_MAX_SIZE` chunks
//!   (the x86_64 contiguous-allocation limit — paper §III);
//! * multiplex concurrent guest requests and orchestrate the waiting
//!   user-space threads via the chosen [`WaitScheme`];
//! * the interrupt handler wakes *all* sleepers, each of which re-checks
//!   the shared ring for its own reply — the scheme the paper's breakdown
//!   attributes 93% of the virtualization overhead to.

mod waiting;

pub use waiting::WaitScheme;

use std::collections::HashMap;
use std::sync::Arc;

use vphi_scif::{ScifError, ScifResult};
use vphi_sim_core::cost::KMALLOC_MAX_SIZE;
use vphi_sim_core::{SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};
use vphi_trace::{OpCtx, Stage, TraceCtx, TraceHook};
use vphi_virtio::{Descriptor, VirtQueue};
use vphi_vmm::kernel::KmallocBuf;
use vphi_vmm::{GuestKernel, WaitQueue};

use crate::protocol::{GuestEpd, VphiRequest, VphiResponse, REQ_SIZE, RESP_SIZE};

/// The vPHI interrupt vector on the guest's IRQ chip.
pub const VPHI_IRQ_VECTOR: u32 = 11;

/// Wall-clock budget per completion-wait attempt.  When it expires without
/// a completion or a shutdown, the frontend re-kicks the device: a lost
/// kick or lost completion interrupt only costs one deadline, not a hang.
const REQUEST_DEADLINE: std::time::Duration = std::time::Duration::from_millis(200);

/// Re-kick attempts before the frontend declares the request lost.
const MAX_DEADLINE_RETRIES: u32 = 50;

/// A unique per-request completion token.
///
/// Virtqueue head ids are *recycled* as soon as any thread drains the used
/// ring, so two concurrent requesters could otherwise collide on the same
/// head and steal each other's completion.  The token is bound to the head
/// at submit time and unbound when the backend pops the chain — the window
/// in which the head cannot be reused.
pub type ReqToken = u64;

/// The shared state both halves of the split driver touch: the virtio
/// queue plus the request-routing tables.
pub struct VphiChannel {
    pub queue: Arc<VirtQueue>,
    /// head → (token, request timeline, trace fork), travelling
    /// frontend → backend.
    inflight: TrackedMutex<HashMap<u16, (ReqToken, Timeline, TraceCtx)>>,
    /// token → completed timeline, travelling backend → frontend.
    completed: TrackedMutex<HashMap<ReqToken, Timeline>>,
    next_token: std::sync::atomic::AtomicU64,
    /// Set when the backend stops servicing (VM shutdown): guest calls
    /// fail fast with `ENODEV` instead of waiting on a dead ring.
    shutdown: std::sync::atomic::AtomicBool,
    /// The frontend's sleeping requesters.
    pub waitq: Arc<WaitQueue>,
    /// Tracing hook shared by both halves of the split driver: armed once
    /// by `VphiHost::arm_tracing`, disarmed (a single `OnceLock` load) in
    /// production.
    pub trace: TraceHook,
}

impl VphiChannel {
    pub fn new(queue_size: u16) -> Arc<Self> {
        Arc::new(VphiChannel {
            queue: VirtQueue::new(queue_size),
            inflight: TrackedMutex::new(LockClass::FrontendInflight, HashMap::new()),
            completed: TrackedMutex::new(LockClass::FrontendCompleted, HashMap::new()),
            next_token: std::sync::atomic::AtomicU64::new(1),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            waitq: Arc::new(WaitQueue::new()),
            trace: TraceHook::new(),
        })
    }

    /// Mark the device gone and wake every sleeper so it can fail fast.
    pub fn mark_shutdown(&self) {
        self.mark_shutdown_quiet();
        self.waitq.wake_all();
    }

    /// Set the shutdown flag *without* waking sleepers.  The dead-guest GC
    /// uses this to fail-fast new requests while it drains, then wakes
    /// everyone only once the teardown is complete — so a waiter that
    /// observes `ENODEV` can rely on the GC having already finished.
    pub fn mark_shutdown_quiet(&self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::Release);
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Frontend: stash the request timeline (and the trace fork the
    /// backend's spans attach to) before kicking; returns the token the
    /// requester waits on.
    pub fn submit(&self, head: u16, tl: Timeline, trace: TraceCtx) -> ReqToken {
        let token = self.next_token.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inflight.lock().insert(head, (token, tl, trace));
        token
    }

    /// Backend: claim the request's token, timeline, and trace fork after
    /// popping.
    pub fn claim(&self, head: u16) -> (ReqToken, Timeline, TraceCtx) {
        self.inflight.lock().remove(&head).unwrap_or((0, Timeline::new(), TraceCtx::default()))
    }

    /// Backend: deliver the finished timeline and wake the sleepers.
    pub fn complete(&self, token: ReqToken, tl: Timeline) {
        self.completed.lock().insert(token, tl);
        self.waitq.wake_all();
    }

    /// Deliver a completion *without* waking anyone — models a lost
    /// completion MSI: the reply sits on the ring until the requester's
    /// deadline expires and its re-check finds it.
    pub fn complete_quiet(&self, token: ReqToken, tl: Timeline) {
        self.completed.lock().insert(token, tl);
    }

    /// Frontend: non-blocking check for a specific completion.
    pub fn try_take(&self, token: ReqToken) -> Option<Timeline> {
        self.completed.lock().remove(&token)
    }

    pub fn inflight_count(&self) -> usize {
        self.inflight.lock().len()
    }
}

impl std::fmt::Debug for VphiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VphiChannel")
            .field("inflight", &self.inflight.lock().len())
            .field("completed", &self.completed.lock().len())
            .finish()
    }
}

/// Per-driver counters for the waiting-scheme diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    pub requests: u64,
    pub interrupt_waits: u64,
    pub polling_waits: u64,
    pub chunks_sent: u64,
    /// Kicks the device declined (`VRING_USED_F_NO_NOTIFY`): the backend
    /// was already draining, so no vm-exit was charged.
    pub kicks_suppressed: u64,
    /// Kicks that actually caused a vm-exit.
    pub kicks_delivered: u64,
    /// Times a request's completion deadline expired and the frontend
    /// re-kicked the device (recovers lost kicks and lost MSIs).
    pub deadline_retries: u64,
}

/// The guest kernel module.
pub struct FrontendDriver {
    kernel: Arc<GuestKernel>,
    channel: Arc<VphiChannel>,
    scheme: WaitScheme,
    /// Staging chunk size for large transfers — `KMALLOC_MAX_SIZE` in the
    /// paper; configurable for the ABL-CHUNK ablation.
    chunk_size: u64,
    stats: TrackedMutex<FrontendStats>,
    /// Preallocated request/response header slots (a slab, allocated once
    /// at module insertion — per-request kmalloc is only paid for payload
    /// staging, as in the real driver).
    slots: TrackedMutex<Vec<(KmallocBuf, KmallocBuf)>>,
}

impl std::fmt::Debug for FrontendDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendDriver").field("scheme", &self.scheme).finish()
    }
}

impl FrontendDriver {
    /// Insert the module: registers the interrupt handler on the guest
    /// IRQ chip (interrupt and hybrid schemes) and returns the driver.
    pub fn insert(
        kernel: Arc<GuestKernel>,
        channel: Arc<VphiChannel>,
        scheme: WaitScheme,
    ) -> Arc<Self> {
        Self::insert_with_chunk(kernel, channel, scheme, KMALLOC_MAX_SIZE)
    }

    /// Like [`insert`](FrontendDriver::insert) with an explicit staging
    /// chunk size (must be a positive multiple of a page and at most
    /// `KMALLOC_MAX_SIZE` — the kernel cannot allocate larger contiguous
    /// buffers).
    pub fn insert_with_chunk(
        kernel: Arc<GuestKernel>,
        channel: Arc<VphiChannel>,
        scheme: WaitScheme,
        chunk_size: u64,
    ) -> Arc<Self> {
        assert!(
            chunk_size > 0
                && chunk_size <= KMALLOC_MAX_SIZE
                && chunk_size.is_multiple_of(vphi_sim_core::cost::PAGE_SIZE),
            "invalid staging chunk size {chunk_size}"
        );
        // The ISR: wake every sleeping requester; each re-checks the ring.
        let waitq = Arc::clone(&channel.waitq);
        kernel.irq().register(
            VPHI_IRQ_VECTOR,
            Arc::new(move |_vec: u32, _tl: &mut Timeline| {
                waitq.wake_all();
            }),
        );
        // Preallocate the header slab (module-init cost, not charged to
        // any request).
        let mut init_tl = Timeline::new();
        let mut slots = Vec::new();
        for _ in 0..64 {
            if let (Ok(req), Ok(resp)) = (
                kernel.kmalloc(REQ_SIZE as u64, &mut init_tl),
                kernel.kmalloc(RESP_SIZE as u64, &mut init_tl),
            ) {
                slots.push((req, resp));
            }
        }
        Arc::new(FrontendDriver {
            kernel,
            channel,
            scheme,
            chunk_size,
            stats: TrackedMutex::new(LockClass::FrontendStats, FrontendStats::default()),
            slots: TrackedMutex::new(LockClass::FrontendSlots, slots),
        })
    }

    /// The staging chunk size used for large transfers.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Grab a header slot, falling back to a charged kmalloc pair when the
    /// slab is exhausted (more than 64 concurrent requests).
    fn take_slot(&self, tl: &mut Timeline) -> ScifResult<(KmallocBuf, KmallocBuf, bool)> {
        if let Some((req, resp)) = self.slots.lock().pop() {
            return Ok((req, resp, true));
        }
        let req = self.kernel.kmalloc(REQ_SIZE as u64, tl).map_err(|_| ScifError::NoMem)?;
        let resp = self.kernel.kmalloc(RESP_SIZE as u64, tl).map_err(|_| ScifError::NoMem)?;
        Ok((req, resp, false))
    }

    fn return_slot(&self, req: KmallocBuf, resp: KmallocBuf, pooled: bool) {
        if pooled {
            self.slots.lock().push((req, resp));
        } else {
            let _ = self.kernel.kfree(req);
            let _ = self.kernel.kfree(resp);
        }
    }

    pub fn scheme(&self) -> WaitScheme {
        self.scheme
    }

    pub fn channel(&self) -> &Arc<VphiChannel> {
        &self.channel
    }

    pub fn kernel(&self) -> &Arc<GuestKernel> {
        &self.kernel
    }

    pub fn stats(&self) -> FrontendStats {
        *self.stats.lock()
    }

    /// The core request cycle: marshal → ring → kick → wait → demarshal.
    ///
    /// `extra` descriptors sit between the request header and the response
    /// header (payload staging buffers, pinned guest pages).
    /// `payload_bytes` drives the hybrid scheme's threshold choice.
    ///
    /// If the channel's trace hook is armed and the caller's context is
    /// not already inside a trace (multi-chunk ops root at the `GuestScif`
    /// layer), this request becomes a trace root, with child spans for the
    /// guest-syscall, virtio-ring, and completion-wait phases and a forked
    /// context riding the inflight table to the backend.
    pub fn transact<'a>(
        &self,
        req: &VphiRequest,
        extra: &[Descriptor],
        payload_bytes: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<VphiResponse> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.channel.trace, req.name());
        let r = self.transact_inner(req, extra, payload_bytes, &mut ctx);
        ctx.finish_root(root, payload_bytes);
        r
    }

    fn transact_inner(
        &self,
        req: &VphiRequest,
        extra: &[Descriptor],
        payload_bytes: u64,
        ctx: &mut OpCtx<'_>,
    ) -> ScifResult<VphiResponse> {
        if self.channel.is_shutdown() {
            return Err(ScifError::NoDev);
        }
        let cost = self.kernel.cost();

        // Marshal the request header into a preallocated slot.
        let marshal = ctx.begin("guest-syscall", Stage::GuestSyscall);
        self.kernel.charge_syscall(ctx.tl);
        let (req_buf, resp_buf, pooled) = match self.take_slot(ctx.tl) {
            Ok(slot) => slot,
            Err(e) => {
                ctx.end(marshal);
                return Err(e);
            }
        };
        if self.kernel.mem().write(req_buf.gpa, &req.encode()).is_err() {
            ctx.end(marshal);
            self.return_slot(req_buf, resp_buf, pooled);
            return Err(ScifError::Inval);
        }
        ctx.end(marshal);

        // Build the chain: header, payload descriptors, response header.
        let mut chain = Vec::with_capacity(extra.len() + 2);
        chain.push(Descriptor::readable(req_buf.gpa.0, REQ_SIZE as u32));
        chain.extend_from_slice(extra);
        chain.push(Descriptor::writable(resp_buf.gpa.0, RESP_SIZE as u32));

        // Post, stash the cross-boundary timeline, and kick.
        let ring = ctx.begin("virtio-ring", Stage::VirtioRing);
        let head = match self.channel.queue.prepare_chain(&chain) {
            Ok(h) => h,
            Err(_) => {
                ctx.end(ring);
                self.return_slot(req_buf, resp_buf, pooled);
                return Err(ScifError::NoMem);
            }
        };
        // The inflight entry must exist before the head is visible on the
        // avail ring: the backend may pop and claim the chain the instant
        // it is published (another requester's kick can have woken it),
        // and a claim that finds no entry falls back to the token-0
        // sentinel — completing to nobody and stranding this requester
        // until its deadline retries exhaust.
        let token = self.channel.submit(head, Timeline::with_capacity(16), ctx.fork());
        self.channel.queue.publish_avail(head, cost.ring_push, ctx.tl);
        ctx.end(ring);

        // Kick inside the wait span, not before it: the kick is what wakes
        // the backend thread, so allocating the wait span's id first keeps
        // span numbering single-threaded — and traces byte-stable.  The
        // span then covers the handoff vmexit plus the scheme's wait, and
        // in a trace view brackets the backend subtree it waited on.
        let wait = ctx.begin("wait-complete", Stage::Completion);
        let delivered = self.channel.queue.kick(cost.vmexit_kick, ctx.tl);
        {
            let mut stats = self.stats.lock();
            stats.requests += 1;
            if delivered {
                stats.kicks_delivered += 1;
            } else {
                stats.kicks_suppressed += 1;
            }
        }
        let backend_tl = match self.wait_for(token, payload_bytes, ctx.tl) {
            Ok(b) => b,
            Err(e) => {
                ctx.end(wait);
                self.return_slot(req_buf, resp_buf, pooled);
                return Err(e);
            }
        };
        ctx.tl.absorb(&backend_tl);
        ctx.end(wait);
        // Release our descriptors (and any other finished chains).
        self.channel.queue.take_used();

        // Demarshal.
        let mut resp_bytes = [0u8; RESP_SIZE];
        let read = self.kernel.mem().read(resp_buf.gpa, &mut resp_bytes);
        self.return_slot(req_buf, resp_buf, pooled);
        read.map_err(|_| ScifError::Inval)?;
        VphiResponse::decode(&resp_bytes).ok_or(ScifError::Inval)
    }

    /// Block until `token` completes, charging the chosen scheme's costs.
    fn wait_for(
        &self,
        token: ReqToken,
        payload_bytes: u64,
        tl: &mut Timeline,
    ) -> ScifResult<Timeline> {
        let cost = self.kernel.cost();
        let poll = self.scheme.polls_for(payload_bytes);
        {
            let mut stats = self.stats.lock();
            if poll {
                stats.polling_waits += 1;
            } else {
                stats.interrupt_waits += 1;
            }
        }
        let channel = &self.channel;
        let pred = || {
            if let Some(done) = channel.try_take(token) {
                return Some(Ok(done));
            }
            if channel.is_shutdown() {
                return Some(Err(ScifError::NoDev));
            }
            None
        };
        let mut outcome = None;
        for _attempt in 0..=MAX_DEADLINE_RETRIES {
            if let Some(r) = channel.waitq.wait_until_for(REQUEST_DEADLINE, pred) {
                outcome = Some(r);
                break;
            }
            // Deadline expired with no completion and no shutdown: the
            // kick or the completion interrupt may have been lost.
            // Re-kick so the backend re-scans the avail ring, and if the
            // reply already sits in `completed` (quiet completion), the
            // next attempt's immediate predicate check takes it.
            self.stats.lock().deadline_retries += 1;
            self.channel.queue.kick(cost.vmexit_kick, tl);
        }
        let backend_tl = outcome.unwrap_or(Err(ScifError::Again))?;
        if poll {
            // Busy-wait: near-zero latency to observe the completion, but
            // the vCPU burned the whole service time spinning.
            tl.charge(SpanLabel::PollWait, cost.poll_observe);
        } else {
            // Interrupt scheme: sleep, be woken by the ISR's wake-all,
            // re-check the ring, get rescheduled — the paper's dominant
            // overhead term.
            tl.charge(SpanLabel::GuestWakeup, cost.guest_wakeup);
        }
        Ok(backend_tl)
    }

    /// Stage `data` into kmalloc chunks (≤ `KMALLOC_MAX_SIZE` each),
    /// returning the buffers and their descriptors.  Charges the
    /// user→kernel copy.
    pub fn stage_out(
        &self,
        data: &[u8],
        tl: &mut Timeline,
    ) -> ScifResult<(Vec<KmallocBuf>, Vec<Descriptor>)> {
        let mut bufs = Vec::new();
        let mut descs = Vec::new();
        for chunk in data.chunks(self.chunk_size as usize) {
            let buf = self.kernel.kmalloc(chunk.len() as u64, tl).map_err(|_| ScifError::NoMem)?;
            self.kernel.copy_from_user(buf, chunk, tl).map_err(|_| ScifError::Inval)?;
            descs.push(Descriptor::readable(buf.gpa.0, chunk.len() as u32));
            bufs.push(buf);
            self.stats.lock().chunks_sent += 1;
        }
        Ok((bufs, descs))
    }

    /// Allocate writable staging for an inbound transfer of `len` bytes.
    pub fn stage_in(
        &self,
        len: u64,
        tl: &mut Timeline,
    ) -> ScifResult<(Vec<KmallocBuf>, Vec<Descriptor>)> {
        let mut bufs = Vec::new();
        let mut descs = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(self.chunk_size);
            let buf = self.kernel.kmalloc(take, tl).map_err(|_| ScifError::NoMem)?;
            descs.push(Descriptor::writable(buf.gpa.0, take as u32));
            bufs.push(buf);
            remaining -= take;
        }
        Ok((bufs, descs))
    }

    /// Copy staged inbound data back to the user buffer and free staging.
    pub fn unstage(
        &self,
        bufs: Vec<KmallocBuf>,
        out: &mut [u8],
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        let mut at = 0usize;
        for buf in &bufs {
            let take = (buf.len as usize).min(out.len() - at);
            if take > 0 {
                self.kernel
                    .copy_to_user(&mut out[at..at + take], *buf, tl)
                    .map_err(|_| ScifError::Inval)?;
                at += take;
            }
        }
        for buf in bufs {
            let _ = self.kernel.kfree(buf);
        }
        Ok(())
    }

    /// Free outbound staging after the backend consumed it.
    pub fn free_staging(&self, bufs: Vec<KmallocBuf>) {
        for buf in bufs {
            let _ = self.kernel.kfree(buf);
        }
    }

    /// Convenience wrappers used by [`crate::guest::GuestScif`].
    pub fn simple<'a>(
        &self,
        req: VphiRequest,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<(u64, u64)> {
        self.transact(&req, &[], 0, ctx)?.into_result()
    }
}

/// Re-exported for the guest API: a user-visible guest epd.
pub type FrontendEpd = GuestEpd;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vphi_sim_core::units::MIB;
    use vphi_sim_core::CostModel;
    use vphi_vmm::GuestMemory;

    fn driver(scheme: WaitScheme) -> Arc<FrontendDriver> {
        let mem = Arc::new(GuestMemory::new(64 * MIB));
        let kernel = Arc::new(GuestKernel::new(mem, Arc::new(CostModel::paper_calibrated())));
        let channel = VphiChannel::new(64);
        FrontendDriver::insert(kernel, channel, scheme)
    }

    /// A minimal fake backend: answers every request with ok(7, 8).
    fn fake_backend(
        channel: Arc<VphiChannel>,
        kernel: Arc<GuestKernel>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while channel.queue.wait_kick() {
                while let Ok(Some(chain)) = channel.queue.pop_avail() {
                    let (token, mut tl, _trace) = channel.claim(chain.head);
                    let resp_desc = *chain.descriptors.last().unwrap();
                    kernel
                        .mem()
                        .write(vphi_vmm::Gpa(resp_desc.addr), &VphiResponse::ok(7, 8).encode())
                        .unwrap();
                    channel.queue.push_used(
                        vphi_virtio::UsedElem { id: chain.head, len: RESP_SIZE as u32 },
                        kernel.cost().used_push,
                        &mut tl,
                    );
                    kernel.irq().inject(VPHI_IRQ_VECTOR, &mut tl);
                    channel.complete(token, tl);
                }
            }
        })
    }

    #[test]
    fn transact_round_trips_through_a_backend() {
        let d = driver(WaitScheme::Interrupt);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl = Timeline::new();
        let resp = d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap();
        assert_eq!(resp, VphiResponse::ok(7, 8));
        d.channel().queue.shutdown();
        backend.join().unwrap();
        // The full paravirtual cost structure appears on the timeline.
        assert!(tl.total_for(SpanLabel::GuestSyscall) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::RingPush) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::VmExitKick) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::UsedPush) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::IrqInject) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        assert_eq!(d.stats().interrupt_waits, 1);
    }

    #[test]
    fn polling_scheme_skips_the_wakeup_cost() {
        let d = driver(WaitScheme::Polling);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl = Timeline::new();
        d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap();
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert_eq!(tl.total_for(SpanLabel::GuestWakeup), vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::PollWait) > vphi_sim_core::SimDuration::ZERO);
        assert_eq!(d.stats().polling_waits, 1);
    }

    #[test]
    fn hybrid_picks_by_payload_size() {
        let d = driver(WaitScheme::Hybrid { poll_below: 64 * 1024 });
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl_small = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 8 }, &[], 8, &mut tl_small).unwrap();
        let mut tl_big = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 1 << 20 }, &[], 1 << 20, &mut tl_big).unwrap();
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert!(tl_small.total_for(SpanLabel::PollWait) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl_big.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        let s = d.stats();
        assert_eq!(s.polling_waits, 1);
        assert_eq!(s.interrupt_waits, 1);
    }

    #[test]
    fn staging_chunks_at_kmalloc_max() {
        let d = driver(WaitScheme::Interrupt);
        let mut tl = Timeline::new();
        let data = vec![0xABu8; (KMALLOC_MAX_SIZE + 123) as usize];
        let (bufs, descs) = d.stage_out(&data, &mut tl).unwrap();
        assert_eq!(bufs.len(), 2);
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].len as u64, KMALLOC_MAX_SIZE);
        assert_eq!(descs[1].len, 123);
        assert_eq!(d.stats().chunks_sent, 2);
        // Round-trip through staging.
        let mut out = vec![0u8; data.len()];
        d.unstage(bufs, &mut out, &mut tl).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn stage_in_allocates_writable_chunks() {
        let d = driver(WaitScheme::Interrupt);
        let mut tl = Timeline::new();
        let (bufs, descs) = d.stage_in(KMALLOC_MAX_SIZE * 2 + 1, &mut tl).unwrap();
        assert_eq!(bufs.len(), 3);
        assert!(descs.iter().all(|d| d.flags.write));
        d.free_staging(bufs);
    }

    #[test]
    fn concurrent_requesters_each_get_their_reply() {
        let d = driver(WaitScheme::Interrupt);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), VphiResponse::ok(7, 8));
        }
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert_eq!(d.stats().requests, 8);
        assert_eq!(d.channel().inflight_count(), 0);
    }
}

//! The vPHI **frontend driver** — the guest kernel module.
//!
//! "The driver acts as a 'glue' between virtualization-unaware libscif and
//! the rest of the stack by forwarding the operations requested to vPHI
//! backend device through virtio communication channels." (paper §III)
//!
//! Responsibilities reproduced here:
//!
//! * marshal each intercepted SCIF call into a [`crate::protocol`] header
//!   in a kmalloc'd buffer and post it on the virtio ring;
//! * stage large send/recv payloads through `KMALLOC_MAX_SIZE` chunks
//!   (the x86_64 contiguous-allocation limit — paper §III);
//! * multiplex concurrent guest requests and orchestrate the waiting
//!   user-space threads via the chosen [`WaitScheme`];
//! * adaptive completion notification (DESIGN.md #16): each requester
//!   spins up to a per-(op, payload-bucket) budget, then publishes a
//!   `used_event` threshold and sleeps on a **per-token** waiter — the
//!   backend's lane notifier injects an MSI only when a completion
//!   crosses an armed threshold, and delivery wakes exactly the token it
//!   completed (no wake-all thundering herd, no spurious re-checks).

mod waiting;

pub use waiting::{SpinBudget, WaitScheme};

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vphi_scif::{ScifError, ScifResult, SqFlags};
use vphi_sim_core::cost::KMALLOC_MAX_SIZE;
use vphi_sim_core::{SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};
use vphi_trace::{size_bucket, OpCtx, Stage, TraceCtx, TraceHook};
use vphi_virtio::{Descriptor, VirtQueue};
use vphi_vmm::kernel::KmallocBuf;
use vphi_vmm::{GuestKernel, TokenWaitQueue};

use crate::protocol::{GuestEpd, VphiRequest, VphiResponse, REQ_SIZE, RESP_SIZE};

/// The vPHI interrupt vector of queue 0 on the guest's IRQ chip.  Queue
/// `q` injects on `VPHI_IRQ_VECTOR + q` — one MSI vector per virtqueue,
/// all registered to the same wake-all ISR.
pub const VPHI_IRQ_VECTOR: u32 = 11;

/// First completion-wait deadline.  When it expires without a completion
/// or a shutdown, the frontend re-kicks the device: a lost kick or lost
/// completion interrupt only costs one deadline, not a hang.  Kept at the
/// seed's 200 ms so single-fault recovery latency is unchanged; repeated
/// expiries back off exponentially from here to [`BACKOFF_CAP`], each
/// wait jittered so concurrent requesters that lost the same kick don't
/// re-kick in lockstep.
const BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(200);

/// Ceiling the exponential re-kick backoff saturates at.
const BACKOFF_CAP: std::time::Duration = std::time::Duration::from_millis(800);

/// Seed for the shared re-kick jitter RNG — fixed so runs are repeatable.
const BACKOFF_SEED: u64 = 0x05EE_DBAC_C0FF_5EED;

/// Re-kick attempts before the frontend declares the request lost.
const MAX_DEADLINE_RETRIES: u32 = 50;

/// A unique per-request completion token.
///
/// Virtqueue head ids are *recycled* as soon as any thread drains the used
/// ring, so two concurrent requesters could otherwise collide on the same
/// head and steal each other's completion.  The token is bound to the head
/// at submit time and unbound when the backend pops the chain — the window
/// in which the head cannot be reused.
pub type ReqToken = u64;

/// The waiter's pre-kick declaration of how it will wait, riding the
/// inflight table to the backend's lane notifier.  The budget is in
/// *virtual* nanoseconds: the backend compares its own service time
/// against it to learn deterministically whether the requester was still
/// spinning or had gone to sleep when the completion landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyHint {
    /// Spin budget: `0` = sleeps immediately (the interrupt scheme),
    /// `u64::MAX` = spins forever (busy-poll, never arms an interrupt).
    pub budget_ns: u64,
}

impl NotifyHint {
    /// Sleep immediately.
    pub const SLEEP: NotifyHint = NotifyHint { budget_ns: 0 };
    /// Spin forever.
    pub const SPIN: NotifyHint = NotifyHint { budget_ns: u64::MAX };

    /// Whether a waiter with this hint has given up spinning and gone to
    /// sleep by the time the backend's service has taken `svc_ns`.
    pub fn sleeping_after(self, svc_ns: u64) -> bool {
        svc_ns > self.budget_ns
    }
}

/// A finished request as delivered by the backend: the cross-boundary
/// timeline plus the notifier's verdict, so the frontend charges exactly
/// the wait cost the backend's inject/suppress decision implies.
#[derive(Debug)]
pub struct Completion {
    /// The backend's service timeline (absorbed into the requester's).
    pub tl: Timeline,
    /// Whether the requester was asleep when the completion landed
    /// (its spin budget was smaller than the service time).
    pub slept: bool,
    /// The backend service time at the moment the completion was pushed,
    /// before any interrupt-injection charge — what the spin-budget EWMA
    /// learns from.
    pub svc_ns: u64,
}

/// One virtqueue lane: the ring plus its private head→request routing
/// table.  Head ids are per-queue, so each lane keeps its own inflight
/// map — two lanes can recycle the same head without colliding.
pub struct QueueLane {
    pub queue: Arc<VirtQueue>,
    /// head → (token, request timeline, trace fork, notify hint),
    /// travelling frontend → backend.
    inflight: TrackedMutex<HashMap<u16, (ReqToken, Timeline, TraceCtx, NotifyHint)>>,
}

/// The shared state both halves of the split driver touch: the virtio
/// queue lanes plus the request-routing tables.
pub struct VphiChannel {
    /// Lane 0's ring, aliased as a named field so single-queue call sites
    /// (tests, benches, control-plane ops) read naturally.
    pub queue: Arc<VirtQueue>,
    lanes: Vec<QueueLane>,
    /// token → completion, travelling backend → frontend.
    completed: TrackedMutex<HashMap<ReqToken, Completion>>,
    next_token: std::sync::atomic::AtomicU64,
    /// Set when the backend stops servicing (VM shutdown): guest calls
    /// fail fast with `ENODEV` instead of waiting on a dead ring.
    shutdown: std::sync::atomic::AtomicBool,
    /// The frontend's sleeping requesters, parked per token: completion
    /// delivery wakes exactly the requester it completed (broadcast is
    /// reserved for shutdown).
    pub waitq: Arc<TokenWaitQueue>,
    /// Tracing hook shared by both halves of the split driver: armed once
    /// by `VphiHost::arm_tracing`, disarmed (a single `OnceLock` load) in
    /// production.
    pub trace: TraceHook,
}

impl VphiChannel {
    pub fn new(queue_size: u16) -> Arc<Self> {
        Self::with_queues(queue_size, 1)
    }

    /// A channel with `num_queues` independent virtqueue lanes of
    /// `queue_size` descriptors each.
    pub fn with_queues(queue_size: u16, num_queues: u16) -> Arc<Self> {
        assert!(num_queues > 0, "a vPHI device needs at least one virtqueue");
        let lanes: Vec<QueueLane> = (0..num_queues)
            .map(|_| QueueLane {
                queue: VirtQueue::new(queue_size),
                inflight: TrackedMutex::new(LockClass::FrontendInflight, HashMap::new()),
            })
            .collect();
        Arc::new(VphiChannel {
            queue: Arc::clone(&lanes[0].queue),
            lanes,
            completed: TrackedMutex::new(LockClass::FrontendCompleted, HashMap::new()),
            next_token: std::sync::atomic::AtomicU64::new(1),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            waitq: Arc::new(TokenWaitQueue::new()),
            trace: TraceHook::new(),
        })
    }

    pub fn queue_count(&self) -> usize {
        self.lanes.len()
    }

    pub fn lanes(&self) -> &[QueueLane] {
        &self.lanes
    }

    /// Lane `q`'s ring.
    pub fn lane_queue(&self, q: usize) -> &Arc<VirtQueue> {
        &self.lanes[q].queue
    }

    /// The queue routing rule.  Requests that carry an endpoint hash it
    /// through a SplitMix64 finalizer onto a lane; endpoint-less control
    /// ops ([`VphiRequest::routing_epd`] is `None`) ride lane 0.  The hash
    /// is a pure function of the epd, so every request for one endpoint
    /// lands on the same lane — per-endpoint FIFO order survives any
    /// queue count.
    pub fn route(&self, req: &VphiRequest) -> usize {
        match req.routing_epd() {
            None => 0,
            Some(epd) => {
                let h = vphi_sim_core::rng::SplitMix64::new(epd).next_u64();
                (h % self.lanes.len() as u64) as usize
            }
        }
    }

    /// Mark the device gone and wake every sleeper so it can fail fast.
    pub fn mark_shutdown(&self) {
        self.mark_shutdown_quiet();
        self.waitq.wake_all();
    }

    /// Set the shutdown flag *without* waking sleepers.  The dead-guest GC
    /// uses this to fail-fast new requests while it drains, then wakes
    /// everyone only once the teardown is complete — so a waiter that
    /// observes `ENODEV` can rely on the GC having already finished.
    pub fn mark_shutdown_quiet(&self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::Release);
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Frontend: stash the request timeline, the trace fork the backend's
    /// spans attach to, and the notify hint before kicking lane `q`;
    /// returns the token the requester waits on.
    pub fn submit(
        &self,
        q: usize,
        head: u16,
        tl: Timeline,
        trace: TraceCtx,
        hint: NotifyHint,
    ) -> ReqToken {
        let token = self.next_token.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.lanes[q].inflight.lock().insert(head, (token, tl, trace, hint));
        token
    }

    /// Backend: claim the request's token, timeline, trace fork, and
    /// notify hint after popping lane `q`.
    pub fn claim(&self, q: usize, head: u16) -> (ReqToken, Timeline, TraceCtx, NotifyHint) {
        self.lanes[q].inflight.lock().remove(&head).unwrap_or((
            0,
            Timeline::new(),
            TraceCtx::default(),
            NotifyHint::SLEEP,
        ))
    }

    /// Backend: deliver the completion and wake exactly its requester.
    /// The completed-table insert happens-before the directed wake, so a
    /// woken waiter's re-check always finds its reply.
    pub fn complete(&self, token: ReqToken, completion: Completion) {
        self.completed.lock().insert(token, completion);
        self.waitq.wake(token);
    }

    /// Deliver a completion *without* waking anyone — models a lost
    /// completion MSI: the reply sits on the ring until the requester's
    /// deadline expires and its re-check finds it.
    pub fn complete_quiet(&self, token: ReqToken, completion: Completion) {
        self.completed.lock().insert(token, completion);
    }

    /// Frontend: non-blocking check for a specific completion.
    pub fn try_take(&self, token: ReqToken) -> Option<Completion> {
        self.completed.lock().remove(&token)
    }

    pub fn inflight_count(&self) -> usize {
        self.lanes.iter().map(|l| l.inflight.lock().len()).sum()
    }
}

impl std::fmt::Debug for VphiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VphiChannel")
            .field("queues", &self.lanes.len())
            .field("inflight", &self.inflight_count())
            .field("completed", &self.completed.lock().len())
            .finish()
    }
}

/// Per-driver counters for the waiting-scheme diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    pub requests: u64,
    pub interrupt_waits: u64,
    pub polling_waits: u64,
    pub chunks_sent: u64,
    /// Kicks the device declined (`VRING_USED_F_NO_NOTIFY`): the backend
    /// was already draining, so no vm-exit was charged.
    pub kicks_suppressed: u64,
    /// Kicks that actually caused a vm-exit.
    pub kicks_delivered: u64,
    /// Times a request's completion deadline expired and the frontend
    /// re-kicked the device (recovers lost kicks and lost MSIs).
    pub deadline_retries: u64,
    /// Async batches flushed by [`FrontendDriver::submit_batch`].
    pub batches_submitted: u64,
    /// Entries carried by those batches — the doorbell-amortization
    /// ledger's numerator.
    pub batch_entries: u64,
    /// Doorbells actually delivered for those batches (one per touched
    /// lane per flush): `batch_kicks / batch_entries` is the
    /// kicks-per-submission ratio the OPEN-LOOP figure asserts on.
    pub batch_kicks: u64,
    /// Tokens reaped (each exactly once).
    pub tokens_reaped: u64,
    /// Tokens reaped as [`ScifError::Canceled`] after endpoint close or
    /// card reset.
    pub tokens_canceled: u64,
}

/// The spin-budget learning state (DESIGN.md #16).  One lock, taken
/// briefly at submit (budget lookup) and at completion (EWMA update +
/// burn accounting) — never held across a wait.
#[derive(Debug, Default)]
struct NotifyPolicy {
    /// (op, payload pow2 bucket) → EWMA of backend service ns.
    ewma: HashMap<(&'static str, u8), u64>,
    /// Endpoints pinned to busy-poll by [`FrontendDriver::set_busy_poll`].
    busy_poll: HashSet<GuestEpd>,
    /// payload bucket → (virtual ns burned spinning, true service ns):
    /// the ABL-WAIT spin-cycles-burned vs latency trade-off.
    burn: HashMap<u8, (u64, u64)>,
}

/// EWMA smoothing: `est ← est·3/4 + sample/4`.
const EWMA_SHIFT: u32 = 2;

/// Budget = EWMA × 3/2: enough headroom that jitter around the learned
/// service time is still caught spinning.
fn budget_from_estimate(est_ns: u64) -> u64 {
    est_ns.saturating_add(est_ns / 2)
}

/// One payload bucket's spin-burn accounting (see
/// [`FrontendDriver::wait_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitBucketProfile {
    /// Payload pow2 bucket (`vphi_trace::size_bucket`).
    pub bucket: u8,
    /// Virtual ns this bucket's requesters burned spinning.
    pub spin_burn_ns: u64,
    /// True backend service ns accumulated by this bucket's requests.
    pub svc_ns: u64,
}

/// One entry of an async batch, as handed to
/// [`FrontendDriver::submit_batch`]: the wire request plus its staged
/// payload.  Staging ownership transfers to the driver's pending table
/// and is released when the entry's token is reaped.
pub struct BatchEntry {
    /// The wire request (its `routing_epd` picks the lane).
    pub req: VphiRequest,
    /// Staged payload buffers, owned until reap.
    pub staging: Vec<KmallocBuf>,
    /// Payload descriptors, placed between the two headers.
    pub descs: Vec<Descriptor>,
    /// Payload size, for the adaptive waiter's bucket choice.
    pub payload_bytes: u64,
    /// `Some(len)` for inbound ops: unstage up to `len` bytes into the
    /// reaped entry's data at completion.
    pub inbound: Option<u64>,
    /// Per-entry flags (busy-poll override, first re-kick deadline).
    pub flags: SqFlags,
}

/// A token's frontend-side state between submit and reap: everything the
/// blocking path keeps on its stack, parked in the pending table instead.
struct PendingOp {
    lane_queue: Arc<VirtQueue>,
    hint: NotifyHint,
    op: &'static str,
    payload_bytes: u64,
    req_buf: KmallocBuf,
    resp_buf: KmallocBuf,
    pooled: bool,
    staging: Vec<KmallocBuf>,
    inbound: Option<u64>,
    deadline_ms: Option<u32>,
    epd: Option<GuestEpd>,
    /// Set by [`FrontendDriver::cancel_epd`]: the reap drains the backend
    /// completion (nothing leaks) but reports `ECANCELED`.
    canceled: bool,
}

/// A published-but-not-awaited operation — what [`FrontendDriver::submit_one`]
/// hands back for the blocking path to kick, wait on, and demarshal.
struct SubmittedOp {
    lane_queue: Arc<VirtQueue>,
    token: ReqToken,
    hint: NotifyHint,
    op: &'static str,
    payload_bytes: u64,
    req_buf: KmallocBuf,
    resp_buf: KmallocBuf,
    pooled: bool,
}

/// One reaped token: its wire result and any unstaged inbound payload.
#[derive(Debug)]
pub struct ReapedOp {
    pub token: ReqToken,
    pub result: ScifResult<(u64, u64)>,
    pub data: Option<Vec<u8>>,
}

/// The guest kernel module.
pub struct FrontendDriver {
    kernel: Arc<GuestKernel>,
    channel: Arc<VphiChannel>,
    scheme: WaitScheme,
    /// Staging chunk size for large transfers — `KMALLOC_MAX_SIZE` in the
    /// paper; configurable for the ABL-CHUNK ablation.
    chunk_size: u64,
    stats: TrackedMutex<FrontendStats>,
    /// Shared RNG jittering the re-kick backoff so requesters that lost
    /// the same kick don't hammer the doorbell in lockstep.
    backoff_rng: TrackedMutex<vphi_sim_core::rng::SplitMix64>,
    /// Preallocated request/response header slots (a slab, allocated once
    /// at module insertion — per-request kmalloc is only paid for payload
    /// staging, as in the real driver).
    slots: TrackedMutex<Vec<(KmallocBuf, KmallocBuf)>>,
    /// Spin-budget EWMA table, busy-poll overrides, burn accounting.
    policy: TrackedMutex<NotifyPolicy>,
    /// token → submitted-but-unreaped state (the SQ/CQ bookkeeping).
    /// Locked briefly at submit, cancel and reap — never across a wait.
    pending: TrackedMutex<HashMap<ReqToken, PendingOp>>,
}

impl std::fmt::Debug for FrontendDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendDriver").field("scheme", &self.scheme).finish()
    }
}

impl FrontendDriver {
    /// Insert the module and return the driver.  No ISR is registered:
    /// completion delivery wakes its requester's per-token waiter
    /// directly, so the MSI vectors carry only their injection cost and
    /// raise counts (the paper's wake-all-recheck handler is gone).
    pub fn insert(
        kernel: Arc<GuestKernel>,
        channel: Arc<VphiChannel>,
        scheme: WaitScheme,
    ) -> Arc<Self> {
        Self::insert_with_chunk(kernel, channel, scheme, KMALLOC_MAX_SIZE)
    }

    /// Like [`insert`](FrontendDriver::insert) with an explicit staging
    /// chunk size (must be a positive multiple of a page and at most
    /// `KMALLOC_MAX_SIZE` — the kernel cannot allocate larger contiguous
    /// buffers).
    pub fn insert_with_chunk(
        kernel: Arc<GuestKernel>,
        channel: Arc<VphiChannel>,
        scheme: WaitScheme,
        chunk_size: u64,
    ) -> Arc<Self> {
        assert!(
            chunk_size > 0
                && chunk_size <= KMALLOC_MAX_SIZE
                && chunk_size.is_multiple_of(vphi_sim_core::cost::PAGE_SIZE),
            "invalid staging chunk size {chunk_size}"
        );
        // Preallocate the header slab (module-init cost, not charged to
        // any request).
        let mut init_tl = Timeline::new();
        let mut slots = Vec::new();
        for _ in 0..64 {
            if let (Ok(req), Ok(resp)) = (
                kernel.kmalloc(REQ_SIZE as u64, &mut init_tl),
                kernel.kmalloc(RESP_SIZE as u64, &mut init_tl),
            ) {
                slots.push((req, resp));
            }
        }
        Arc::new(FrontendDriver {
            kernel,
            channel,
            scheme,
            chunk_size,
            stats: TrackedMutex::new(LockClass::FrontendStats, FrontendStats::default()),
            backoff_rng: TrackedMutex::new(
                LockClass::FrontendBackoff,
                vphi_sim_core::rng::SplitMix64::new(BACKOFF_SEED),
            ),
            slots: TrackedMutex::new(LockClass::FrontendSlots, slots),
            policy: TrackedMutex::new(LockClass::NotifyPolicy, NotifyPolicy::default()),
            pending: TrackedMutex::new(LockClass::FrontendPending, HashMap::new()),
        })
    }

    /// Pin (or unpin) endpoint `epd` to busy-poll waiting: its requests
    /// spin regardless of the learned budget and never arm an interrupt.
    /// The latency-critical-endpoint override (README "Completion
    /// notification").
    pub fn set_busy_poll(&self, epd: GuestEpd, on: bool) {
        let mut policy = self.policy.lock();
        if on {
            policy.busy_poll.insert(epd);
        } else {
            policy.busy_poll.remove(&epd);
        }
    }

    /// Per-payload-bucket spin-burn vs true-service accounting, sorted by
    /// bucket — the ABL-WAIT CPU-cost column.
    pub fn wait_profile(&self) -> Vec<WaitBucketProfile> {
        let policy = self.policy.lock();
        let mut rows: Vec<WaitBucketProfile> = policy
            .burn
            .iter()
            .map(|(&bucket, &(spin_burn_ns, svc_ns))| WaitBucketProfile {
                bucket,
                spin_burn_ns,
                svc_ns,
            })
            .collect();
        rows.sort_by_key(|r| r.bucket);
        rows
    }

    /// The spin budget this request declares before its kick.
    ///
    /// Busy-poll endpoints always spin.  The interrupt scheme sleeps
    /// immediately; polling spins forever; a fixed-budget adaptive spins
    /// exactly its budget; the EWMA adaptive spins 1.5× the learned
    /// per-(op, bucket) service estimate — seeded from the calibrated
    /// no-wait floor — unless that budget already exceeds the wake-up
    /// cost, in which case spinning can never win and it sleeps at once.
    fn notify_hint(&self, req: &VphiRequest, payload_bytes: u64) -> NotifyHint {
        let cost = self.kernel.cost();
        if let Some(epd) = req.routing_epd() {
            if self.policy.lock().busy_poll.contains(&epd) {
                return NotifyHint::SPIN;
            }
        }
        match self.scheme {
            WaitScheme::Interrupt => NotifyHint::SLEEP,
            WaitScheme::Polling => NotifyHint::SPIN,
            WaitScheme::Adaptive(SpinBudget::Fixed(budget)) => {
                NotifyHint { budget_ns: budget.as_nanos() }
            }
            WaitScheme::Adaptive(SpinBudget::Ewma) => {
                let key = (req.name(), size_bucket(payload_bytes));
                let est = self
                    .policy
                    .lock()
                    .ewma
                    .get(&key)
                    .copied()
                    .unwrap_or_else(|| cost.paravirtual_floor_no_wait().as_nanos());
                let budget_ns = budget_from_estimate(est);
                if budget_ns >= cost.guest_wakeup.as_nanos() {
                    NotifyHint::SLEEP
                } else {
                    NotifyHint { budget_ns }
                }
            }
        }
    }

    /// Fold a finished request back into the policy: EWMA the service
    /// time and account the spin burn.  A spinner that caught its
    /// completion burned exactly the service time; a sleeper burned only
    /// its (smaller) budget before parking — so per bucket, reported burn
    /// never exceeds true service time.
    fn learn(&self, op: &'static str, payload_bytes: u64, hint: NotifyHint, done: &Completion) {
        let bucket = size_bucket(payload_bytes);
        let mut policy = self.policy.lock();
        let est = policy.ewma.entry((op, bucket)).or_insert(done.svc_ns);
        *est = *est - (*est >> EWMA_SHIFT) + (done.svc_ns >> EWMA_SHIFT);
        let burned = if done.slept { hint.budget_ns.min(done.svc_ns) } else { done.svc_ns };
        let (spin, svc) = policy.burn.entry(bucket).or_insert((0, 0));
        *spin += burned;
        *svc += done.svc_ns;
    }

    /// The staging chunk size used for large transfers.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Grab a header slot, falling back to a charged kmalloc pair when the
    /// slab is exhausted (more than 64 concurrent requests).
    fn take_slot(&self, tl: &mut Timeline) -> ScifResult<(KmallocBuf, KmallocBuf, bool)> {
        if let Some((req, resp)) = self.slots.lock().pop() {
            return Ok((req, resp, true));
        }
        let req = self.kernel.kmalloc(REQ_SIZE as u64, tl).map_err(|_| ScifError::NoMem)?;
        let resp = self.kernel.kmalloc(RESP_SIZE as u64, tl).map_err(|_| ScifError::NoMem)?;
        Ok((req, resp, false))
    }

    fn return_slot(&self, req: KmallocBuf, resp: KmallocBuf, pooled: bool) {
        if pooled {
            self.slots.lock().push((req, resp));
        } else {
            let _ = self.kernel.kfree(req);
            let _ = self.kernel.kfree(resp);
        }
    }

    pub fn scheme(&self) -> WaitScheme {
        self.scheme
    }

    pub fn channel(&self) -> &Arc<VphiChannel> {
        &self.channel
    }

    pub fn kernel(&self) -> &Arc<GuestKernel> {
        &self.kernel
    }

    pub fn stats(&self) -> FrontendStats {
        *self.stats.lock()
    }

    /// The core request cycle: marshal → ring → kick → wait → demarshal.
    ///
    /// `extra` descriptors sit between the request header and the response
    /// header (payload staging buffers, pinned guest pages).
    /// `payload_bytes` drives the hybrid scheme's threshold choice.
    ///
    /// If the channel's trace hook is armed and the caller's context is
    /// not already inside a trace (multi-chunk ops root at the `GuestScif`
    /// layer), this request becomes a trace root, with child spans for the
    /// guest-syscall, virtio-ring, and completion-wait phases and a forked
    /// context riding the inflight table to the backend.
    pub fn transact<'a>(
        &self,
        req: &VphiRequest,
        extra: &[Descriptor],
        payload_bytes: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<VphiResponse> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.channel.trace, req.name());
        let r = self.transact_inner(req, extra, payload_bytes, &mut ctx);
        ctx.finish_root(root, payload_bytes);
        r
    }

    fn transact_inner(
        &self,
        req: &VphiRequest,
        extra: &[Descriptor],
        payload_bytes: u64,
        ctx: &mut OpCtx<'_>,
    ) -> ScifResult<VphiResponse> {
        let sub = self.submit_one(req, extra, payload_bytes, ctx)?;
        let cost = self.kernel.cost();
        // Kick inside the wait span, not before it: the kick is what wakes
        // the backend thread, so allocating the wait span's id first keeps
        // span numbering single-threaded — and traces byte-stable.  The
        // span then covers the handoff vmexit plus the scheme's wait, and
        // in a trace view brackets the backend subtree it waited on.
        let wait = ctx.begin("wait-complete", Stage::Completion);
        let delivered = sub.lane_queue.kick(cost.vmexit_kick, ctx.tl);
        {
            let mut stats = self.stats.lock();
            stats.requests += 1;
            if delivered {
                stats.kicks_delivered += 1;
            } else {
                stats.kicks_suppressed += 1;
            }
        }
        let done = match self.wait_for_completion(&sub.lane_queue, sub.token, BACKOFF_BASE, ctx.tl)
        {
            Ok(d) => d,
            Err(e) => {
                ctx.end(wait);
                self.return_slot(sub.req_buf, sub.resp_buf, sub.pooled);
                return Err(e);
            }
        };
        self.account_wait(sub.op, sub.payload_bytes, sub.hint, &done, ctx.tl);
        ctx.tl.absorb(&done.tl);
        ctx.end(wait);
        self.demarshal(sub.lane_queue, sub.req_buf, sub.resp_buf, sub.pooled)
    }

    /// Marshal one request, prepare its chain, register its token, and
    /// publish it on its lane's avail ring — everything the blocking and
    /// batched paths share up to the doorbell.  The caller kicks: the
    /// blocking path immediately, the batch path once per touched lane.
    fn submit_one(
        &self,
        req: &VphiRequest,
        extra: &[Descriptor],
        payload_bytes: u64,
        ctx: &mut OpCtx<'_>,
    ) -> ScifResult<SubmittedOp> {
        if self.channel.is_shutdown() {
            return Err(ScifError::NoDev);
        }
        let cost = self.kernel.cost();

        // Pick the queue lane before anything is charged: the routing rule
        // is a pure function of the request's endpoint, so per-endpoint
        // FIFO order holds regardless of queue count.
        let q = self.channel.route(req);
        ctx.set_queue(q as u16);
        let lane_queue = Arc::clone(&self.channel.lanes[q].queue);

        // Marshal the request header into a preallocated slot.
        let marshal = ctx.begin("guest-syscall", Stage::GuestSyscall);
        self.kernel.charge_syscall(ctx.tl);
        let (req_buf, resp_buf, pooled) = match self.take_slot(ctx.tl) {
            Ok(slot) => slot,
            Err(e) => {
                ctx.end(marshal);
                return Err(e);
            }
        };
        if self.kernel.mem().write(req_buf.gpa, &req.encode()).is_err() {
            ctx.end(marshal);
            self.return_slot(req_buf, resp_buf, pooled);
            return Err(ScifError::Inval);
        }
        ctx.end(marshal);

        // Build the chain: header, payload descriptors, response header.
        let mut chain = Vec::with_capacity(extra.len() + 2);
        chain.push(Descriptor::readable(req_buf.gpa.0, REQ_SIZE as u32));
        chain.extend_from_slice(extra);
        chain.push(Descriptor::writable(resp_buf.gpa.0, RESP_SIZE as u32));

        // Post and stash the cross-boundary timeline.
        let ring = ctx.begin("virtio-ring", Stage::VirtioRing);
        let head = match lane_queue.prepare_chain(&chain) {
            Ok(h) => h,
            Err(_) => {
                ctx.end(ring);
                self.return_slot(req_buf, resp_buf, pooled);
                return Err(ScifError::NoMem);
            }
        };
        // The inflight entry must exist before the head is visible on the
        // avail ring: the backend may pop and claim the chain the instant
        // it is published (another requester's kick can have woken it),
        // and a claim that finds no entry falls back to the token-0
        // sentinel — completing to nobody and stranding this requester
        // until its deadline retries exhaust.
        //
        // The used-event threshold is armed *before* publish too — the
        // prepare/publish discipline again: once the head is visible the
        // backend can complete it instantly, and its inject-or-suppress
        // decision must see this waiter's threshold, never a stale one.
        // A pure spinner arms nothing (it needs no interrupt).
        let hint = self.notify_hint(req, payload_bytes);
        if hint != NotifyHint::SPIN {
            lane_queue.publish_used_event(lane_queue.used_seq());
        }
        let token = self.channel.submit(q, head, Timeline::with_capacity(16), ctx.fork(), hint);
        lane_queue.publish_avail(head, cost.ring_push, ctx.tl);
        ctx.end(ring);
        Ok(SubmittedOp {
            lane_queue,
            token,
            hint,
            op: req.name(),
            payload_bytes,
            req_buf,
            resp_buf,
            pooled,
        })
    }

    /// Drain the used ring and decode the response — the tail every
    /// completed token runs, blocking or reaped.  A corrupt used id means
    /// the device side scribbled on the ring; surface it after the slot
    /// is returned.
    fn demarshal(
        &self,
        lane_queue: Arc<VirtQueue>,
        req_buf: KmallocBuf,
        resp_buf: KmallocBuf,
        pooled: bool,
    ) -> ScifResult<VphiResponse> {
        let drained = lane_queue.take_used();
        let mut resp_bytes = [0u8; RESP_SIZE];
        let read = self.kernel.mem().read(resp_buf.gpa, &mut resp_bytes);
        self.return_slot(req_buf, resp_buf, pooled);
        drained.map_err(|_| ScifError::Inval)?;
        read.map_err(|_| ScifError::Inval)?;
        VphiResponse::decode(&resp_bytes).ok_or(ScifError::Inval)
    }

    /// Block until `token` completes or the device dies — the single wait
    /// primitive under both the blocking calls and token reaps.
    ///
    /// Deadlines grow exponentially from `base` (the blocking path's
    /// [`BACKOFF_BASE`], or an entry's own deadline flag) to the
    /// [`BACKOFF_CAP`], each jittered to 50–100% of its nominal length:
    /// a single lost kick still recovers within one seed-equivalent
    /// deadline, while a persistently slow backend sees re-kicks thin out
    /// instead of arriving as a synchronized 200 ms drumbeat.
    fn wait_for_completion(
        &self,
        lane_queue: &Arc<VirtQueue>,
        token: ReqToken,
        base: std::time::Duration,
        tl: &mut Timeline,
    ) -> ScifResult<Completion> {
        let cost = self.kernel.cost();
        let channel = &self.channel;
        let pred = || {
            if let Some(done) = channel.try_take(token) {
                return Some(Ok(done));
            }
            if channel.is_shutdown() {
                return Some(Err(ScifError::NoDev));
            }
            None
        };
        let mut outcome = None;
        let mut deadline = base;
        for _attempt in 0..=MAX_DEADLINE_RETRIES {
            let jittered = {
                let mut rng = self.backoff_rng.lock();
                deadline.mul_f64(0.5 + rng.next_f64() * 0.5)
            };
            if let Some(r) = channel.waitq.wait_for(token, jittered, pred) {
                outcome = Some(r);
                break;
            }
            // Deadline expired with no completion and no shutdown: the
            // kick or the completion interrupt may have been lost.
            // Re-kick so the backend re-scans the avail ring, and if the
            // reply already sits in `completed` (quiet completion), the
            // next attempt's immediate predicate check takes it.
            self.stats.lock().deadline_retries += 1;
            lane_queue.kick(cost.vmexit_kick, tl);
            deadline = (deadline * 2).min(BACKOFF_CAP);
        }
        outcome.unwrap_or(Err(ScifError::Again))
    }

    /// Charge the wait's virtual-time cost by *outcome* and feed the
    /// spin-budget policy.  The backend's notifier decided —
    /// deterministically, from the hint it was handed — whether this
    /// waiter was still spinning when the reply landed.
    fn account_wait(
        &self,
        op: &'static str,
        payload_bytes: u64,
        hint: NotifyHint,
        done: &Completion,
        tl: &mut Timeline,
    ) {
        let cost = self.kernel.cost();
        {
            let mut stats = self.stats.lock();
            if done.slept {
                stats.interrupt_waits += 1;
            } else {
                stats.polling_waits += 1;
            }
        }
        if done.slept {
            // Armed the interrupt and slept: wake-up, ring re-check,
            // reschedule — the paper's dominant overhead term.
            tl.charge(SpanLabel::GuestWakeup, cost.guest_wakeup);
        } else {
            // Caught it spinning: near-zero latency to observe the
            // completion, but the vCPU burned the service time.
            tl.charge(SpanLabel::PollWait, cost.poll_observe);
        }
        self.learn(op, payload_bytes, hint, done);
    }

    // ---- async submission (SQ/CQ) ------------------------------------------

    /// Submit a whole batch of operations, returning one token per entry
    /// in order.  Every entry is marshaled, prepared and *published*
    /// before any doorbell rings; then each touched lane gets exactly one
    /// kick — the vm-exit is amortized across the batch the same way the
    /// used ring already coalesces completion irqs.
    ///
    /// On per-entry resource exhaustion the batch is cut short: entries
    /// already prepared are still published and kicked, and the returned
    /// token count tells the caller how far the batch got (io_uring's
    /// short-submit convention).  A dead device fails the whole batch
    /// with `ENODEV` before anything is staged on a ring.
    pub fn submit_batch<'a>(
        &self,
        entries: Vec<BatchEntry>,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<Vec<ReqToken>> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.channel.trace, "submit-batch");
        let r = self.submit_batch_inner(entries, &mut ctx);
        ctx.finish_root(root, 0);
        r
    }

    fn submit_batch_inner(
        &self,
        entries: Vec<BatchEntry>,
        ctx: &mut OpCtx<'_>,
    ) -> ScifResult<Vec<ReqToken>> {
        if self.channel.is_shutdown() {
            for e in entries {
                self.free_staging(e.staging);
            }
            return Err(ScifError::NoDev);
        }
        let cost = self.kernel.cost();
        let mut lane_heads: Vec<Vec<u16>> = vec![Vec::new(); self.channel.queue_count()];
        let mut tokens = Vec::with_capacity(entries.len());
        let mut short = false;
        for entry in entries {
            if short {
                self.free_staging(entry.staging);
                continue;
            }
            match self.prepare_batch_entry(entry, ctx) {
                Ok((q, head, token)) => {
                    lane_heads[q].push(head);
                    tokens.push(token);
                }
                // The failed entry's resources were already released;
                // stop accepting, but still flush what was prepared.
                Err(_) => short = true,
            }
        }
        // One doorbell per touched lane covers every entry on it.  Each
        // entry's pending/inflight state and used-event threshold are
        // already registered, so the backend may claim the whole burst
        // the instant the batch publish lands.
        let (mut delivered, mut suppressed) = (0u64, 0u64);
        for (q, heads) in lane_heads.iter().enumerate() {
            if heads.is_empty() {
                continue;
            }
            let lane_queue = Arc::clone(self.channel.lane_queue(q));
            let ring = ctx.begin("virtio-ring", Stage::VirtioRing);
            lane_queue.publish_avail_batch(heads, cost.ring_push, ctx.tl);
            if lane_queue.kick(cost.vmexit_kick, ctx.tl) {
                delivered += 1;
            } else {
                suppressed += 1;
            }
            ctx.end(ring);
        }
        {
            let mut stats = self.stats.lock();
            stats.requests += tokens.len() as u64;
            stats.batches_submitted += 1;
            stats.batch_entries += tokens.len() as u64;
            stats.batch_kicks += delivered + suppressed;
            stats.kicks_delivered += delivered;
            stats.kicks_suppressed += suppressed;
        }
        Ok(tokens)
    }

    /// Marshal + prepare one batch entry and park its state in the
    /// pending table.  Publish happens at the batch flush; the pending
    /// and inflight entries must exist before that (the same
    /// inflight-before-publish discipline as the blocking path).
    fn prepare_batch_entry(
        &self,
        entry: BatchEntry,
        ctx: &mut OpCtx<'_>,
    ) -> ScifResult<(usize, u16, ReqToken)> {
        let BatchEntry { req, staging, descs, payload_bytes, inbound, flags } = entry;
        let q = self.channel.route(&req);
        ctx.set_queue(q as u16);
        let lane_queue = Arc::clone(&self.channel.lanes[q].queue);

        let marshal = ctx.begin("guest-syscall", Stage::GuestSyscall);
        self.kernel.charge_syscall(ctx.tl);
        let (req_buf, resp_buf, pooled) = match self.take_slot(ctx.tl) {
            Ok(slot) => slot,
            Err(e) => {
                ctx.end(marshal);
                self.free_staging(staging);
                return Err(e);
            }
        };
        if self.kernel.mem().write(req_buf.gpa, &req.encode()).is_err() {
            ctx.end(marshal);
            self.return_slot(req_buf, resp_buf, pooled);
            self.free_staging(staging);
            return Err(ScifError::Inval);
        }
        ctx.end(marshal);

        let mut chain = Vec::with_capacity(descs.len() + 2);
        chain.push(Descriptor::readable(req_buf.gpa.0, REQ_SIZE as u32));
        chain.extend_from_slice(&descs);
        chain.push(Descriptor::writable(resp_buf.gpa.0, RESP_SIZE as u32));
        let head = match lane_queue.prepare_chain(&chain) {
            Ok(h) => h,
            Err(_) => {
                self.return_slot(req_buf, resp_buf, pooled);
                self.free_staging(staging);
                return Err(ScifError::NoMem);
            }
        };
        let hint =
            if flags.busy_poll { NotifyHint::SPIN } else { self.notify_hint(&req, payload_bytes) };
        if hint != NotifyHint::SPIN {
            lane_queue.publish_used_event(lane_queue.used_seq());
        }
        let token = self.channel.submit(q, head, Timeline::with_capacity(16), ctx.fork(), hint);
        self.pending.lock().insert(
            token,
            PendingOp {
                lane_queue,
                hint,
                op: req.name(),
                payload_bytes,
                req_buf,
                resp_buf,
                pooled,
                staging,
                inbound,
                deadline_ms: flags.deadline_ms,
                epd: req.routing_epd(),
                canceled: false,
            },
        );
        Ok((q, head, token))
    }

    /// Reap completed tokens from `interest`, oldest-first: a
    /// non-blocking drain first, then blocking (through the same adaptive
    /// waiter and per-token wait queue as the blocking calls) until at
    /// least `min` tokens are reaped, never more than `budget`.  Unknown
    /// or already-reaped tokens are skipped — each token is reaped
    /// exactly once.
    pub fn reap_batch<'a>(
        &self,
        interest: &[ReqToken],
        min: usize,
        budget: usize,
        ctx: impl Into<OpCtx<'a>>,
    ) -> Vec<ReapedOp> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.channel.trace, "reap");
        let out = self.reap_inner(interest, min, budget, &mut ctx);
        ctx.finish_root(root, 0);
        out
    }

    fn reap_inner(
        &self,
        interest: &[ReqToken],
        min: usize,
        budget: usize,
        ctx: &mut OpCtx<'_>,
    ) -> Vec<ReapedOp> {
        let budget = budget.min(interest.len());
        let target = min.min(budget);
        let mut out: Vec<ReapedOp> = Vec::new();
        let mut reaped: HashSet<ReqToken> = HashSet::new();
        // Pass 1: everything already completed, no waiting.
        for &token in interest {
            if out.len() >= budget {
                break;
            }
            if let Some(done) = self.channel.try_take(token) {
                reaped.insert(token);
                out.push(self.finish_reaped(token, Some(done), ctx));
            }
        }
        // Pass 2: block oldest-first until the floor is met, opportunistic
        // drains between blocking waits (others complete while we sleep).
        for &token in interest {
            if out.len() >= target {
                break;
            }
            if reaped.contains(&token) || !self.pending.lock().contains_key(&token) {
                continue;
            }
            reaped.insert(token);
            out.push(self.block_on(token, ctx));
            for &t2 in interest {
                if out.len() >= budget {
                    break;
                }
                if reaped.contains(&t2) {
                    continue;
                }
                if let Some(done) = self.channel.try_take(t2) {
                    reaped.insert(t2);
                    out.push(self.finish_reaped(t2, Some(done), ctx));
                }
            }
        }
        out
    }

    /// Block on one pending token.  A canceled token still waits for the
    /// backend's completion when the device is alive — the response
    /// buffer cannot be recycled while the backend can still write it —
    /// but a dead device will never complete, so shutdown drains
    /// whatever already arrived and gives up waiting.
    fn block_on(&self, token: ReqToken, ctx: &mut OpCtx<'_>) -> ReapedOp {
        let (lane_queue, deadline_ms) = {
            let pending = self.pending.lock();
            let p = pending.get(&token).expect("block_on on a non-pending token");
            (Arc::clone(&p.lane_queue), p.deadline_ms)
        };
        let wait = ctx.begin("wait-complete", Stage::Completion);
        let done = if self.channel.is_shutdown() {
            self.channel.try_take(token)
        } else {
            let base = deadline_ms
                .map(|ms| std::time::Duration::from_millis(ms as u64))
                .unwrap_or(BACKOFF_BASE);
            self.wait_for_completion(&lane_queue, token, base, ctx.tl).ok()
        };
        ctx.end(wait);
        self.finish_reaped(token, done, ctx)
    }

    /// Retire one token: account the wait, drain the used ring, decode,
    /// unstage inbound data, release every buffer, and apply the canceled
    /// verdict.  This is the async twin of the blocking path's
    /// account/absorb/demarshal tail — same charges, same order.
    fn finish_reaped(
        &self,
        token: ReqToken,
        done: Option<Completion>,
        ctx: &mut OpCtx<'_>,
    ) -> ReapedOp {
        let Some(p) = self.pending.lock().remove(&token) else {
            return ReapedOp { token, result: Err(ScifError::Inval), data: None };
        };
        let PendingOp {
            lane_queue,
            hint,
            op,
            payload_bytes,
            req_buf,
            resp_buf,
            pooled,
            staging,
            inbound,
            deadline_ms: _,
            epd: _,
            canceled,
        } = p;
        let mut data = None;
        let mut result = match done {
            Some(done) => {
                self.account_wait(op, payload_bytes, hint, &done, ctx.tl);
                ctx.tl.absorb(&done.tl);
                self.demarshal(lane_queue, req_buf, resp_buf, pooled)
                    .and_then(|resp| resp.into_result())
            }
            None => {
                // No completion will ever arrive (dead device): the ring
                // is gone with it, so the headers can be released safely.
                self.return_slot(req_buf, resp_buf, pooled);
                Err(ScifError::Canceled)
            }
        };
        if canceled {
            // Drained on the caller's behalf, not run for it.
            result = Err(ScifError::Canceled);
        }
        match (inbound, &result) {
            (Some(len), Ok((got, _))) => {
                let take = (*got).min(len) as usize;
                let mut buf = vec![0u8; take];
                match self.unstage(staging, &mut buf, ctx.tl) {
                    Ok(()) => data = Some(buf),
                    Err(e) => result = Err(e),
                }
            }
            _ => self.free_staging(staging),
        }
        {
            let mut stats = self.stats.lock();
            stats.tokens_reaped += 1;
            if result == Err(ScifError::Canceled) {
                stats.tokens_canceled += 1;
            }
        }
        ReapedOp { token, result, data }
    }

    /// Mark every unreaped token of `epd` canceled: its reap still drains
    /// the backend completion (zero leaks) but reports `ECANCELED`.
    /// Returns how many tokens were marked.
    pub fn cancel_epd(&self, epd: GuestEpd) -> usize {
        let mut n = 0;
        for p in self.pending.lock().values_mut() {
            if p.epd == Some(epd) && !p.canceled {
                p.canceled = true;
                n += 1;
            }
        }
        n
    }

    /// Tokens submitted and not yet reaped (leak detector).
    pub fn pending_tokens(&self) -> usize {
        self.pending.lock().len()
    }

    /// Stage `data` into kmalloc chunks (≤ `KMALLOC_MAX_SIZE` each),
    /// returning the buffers and their descriptors.  Charges the
    /// user→kernel copy.
    pub fn stage_out(
        &self,
        data: &[u8],
        tl: &mut Timeline,
    ) -> ScifResult<(Vec<KmallocBuf>, Vec<Descriptor>)> {
        let mut bufs = Vec::new();
        let mut descs = Vec::new();
        for chunk in data.chunks(self.chunk_size as usize) {
            let buf = self.kernel.kmalloc(chunk.len() as u64, tl).map_err(|_| ScifError::NoMem)?;
            self.kernel.copy_from_user(buf, chunk, tl).map_err(|_| ScifError::Inval)?;
            descs.push(Descriptor::readable(buf.gpa.0, chunk.len() as u32));
            bufs.push(buf);
            self.stats.lock().chunks_sent += 1;
        }
        Ok((bufs, descs))
    }

    /// Allocate writable staging for an inbound transfer of `len` bytes.
    pub fn stage_in(
        &self,
        len: u64,
        tl: &mut Timeline,
    ) -> ScifResult<(Vec<KmallocBuf>, Vec<Descriptor>)> {
        let mut bufs = Vec::new();
        let mut descs = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(self.chunk_size);
            let buf = self.kernel.kmalloc(take, tl).map_err(|_| ScifError::NoMem)?;
            descs.push(Descriptor::writable(buf.gpa.0, take as u32));
            bufs.push(buf);
            remaining -= take;
        }
        Ok((bufs, descs))
    }

    /// Copy staged inbound data back to the user buffer and free staging.
    pub fn unstage(
        &self,
        bufs: Vec<KmallocBuf>,
        out: &mut [u8],
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        let mut at = 0usize;
        for buf in &bufs {
            let take = (buf.len as usize).min(out.len() - at);
            if take > 0 {
                self.kernel
                    .copy_to_user(&mut out[at..at + take], *buf, tl)
                    .map_err(|_| ScifError::Inval)?;
                at += take;
            }
        }
        for buf in bufs {
            let _ = self.kernel.kfree(buf);
        }
        Ok(())
    }

    /// Free outbound staging after the backend consumed it.
    pub fn free_staging(&self, bufs: Vec<KmallocBuf>) {
        for buf in bufs {
            let _ = self.kernel.kfree(buf);
        }
    }

    /// Convenience wrappers used by [`crate::guest::GuestScif`].
    pub fn simple<'a>(
        &self,
        req: VphiRequest,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<(u64, u64)> {
        self.transact(&req, &[], 0, ctx)?.into_result()
    }
}

/// Re-exported for the guest API: a user-visible guest epd.
pub type FrontendEpd = GuestEpd;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vphi_sim_core::units::MIB;
    use vphi_sim_core::CostModel;
    use vphi_vmm::GuestMemory;

    fn driver(scheme: WaitScheme) -> Arc<FrontendDriver> {
        let mem = Arc::new(GuestMemory::new(64 * MIB));
        let kernel = Arc::new(GuestKernel::new(mem, Arc::new(CostModel::paper_calibrated())));
        let channel = VphiChannel::new(64);
        FrontendDriver::insert(kernel, channel, scheme)
    }

    /// A minimal fake backend servicing lane `q`: answers every request
    /// with ok(7, 8), charging 1 ns of service per payload byte for
    /// send/recv so budget-based waiting has something to discriminate.
    /// Completion notification goes through a real [`LaneNotifier`], the
    /// same gate the production backend uses.
    fn fake_backend_lane(
        channel: Arc<VphiChannel>,
        kernel: Arc<GuestKernel>,
        q: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let queue = Arc::clone(channel.lane_queue(q));
            let notifier = crate::backend::LaneNotifier::new(
                VPHI_IRQ_VECTOR + q as u32,
                Arc::clone(kernel.irq()),
                Arc::clone(&queue),
            );
            while queue.wait_kick() {
                while let Ok(Some(chain)) = queue.pop_avail() {
                    let (token, mut tl, _trace, hint) = channel.claim(q, chain.head);
                    let head_desc = chain.descriptors[0];
                    let mut hdr = [0u8; REQ_SIZE];
                    kernel.mem().read(vphi_vmm::Gpa(head_desc.addr), &mut hdr).unwrap();
                    if let Some(VphiRequest::Send { len, .. } | VphiRequest::Recv { len, .. }) =
                        VphiRequest::decode(&hdr)
                    {
                        let svc = vphi_sim_core::SimDuration::from_nanos(len as u64);
                        tl.charge(SpanLabel::DeviceDeliver, svc);
                    }
                    let resp_desc = *chain.descriptors.last().unwrap();
                    kernel
                        .mem()
                        .write(vphi_vmm::Gpa(resp_desc.addr), &VphiResponse::ok(7, 8).encode())
                        .unwrap();
                    let new_seq = queue.push_used(
                        vphi_virtio::UsedElem { id: chain.head, len: RESP_SIZE as u32 },
                        kernel.cost().used_push,
                        &mut tl,
                    );
                    let svc_ns = tl.total().as_nanos();
                    let slept = hint.sleeping_after(svc_ns);
                    if notifier.would_inject(new_seq, hint, svc_ns) {
                        notifier.deliver_irq(&mut tl);
                    } else {
                        notifier.note_suppressed(slept);
                    }
                    channel.complete(token, Completion { tl, slept, svc_ns });
                }
            }
        })
    }

    /// Single-lane fake backend (the original single-queue shape).
    fn fake_backend(
        channel: Arc<VphiChannel>,
        kernel: Arc<GuestKernel>,
    ) -> std::thread::JoinHandle<()> {
        fake_backend_lane(channel, kernel, 0)
    }

    #[test]
    fn transact_round_trips_through_a_backend() {
        let d = driver(WaitScheme::Interrupt);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl = Timeline::new();
        let resp = d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap();
        assert_eq!(resp, VphiResponse::ok(7, 8));
        d.channel().queue.shutdown();
        backend.join().unwrap();
        // The full paravirtual cost structure appears on the timeline.
        assert!(tl.total_for(SpanLabel::GuestSyscall) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::RingPush) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::VmExitKick) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::UsedPush) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::IrqInject) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        assert_eq!(d.stats().interrupt_waits, 1);
    }

    #[test]
    fn polling_scheme_skips_the_wakeup_cost() {
        let d = driver(WaitScheme::Polling);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl = Timeline::new();
        d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap();
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert_eq!(tl.total_for(SpanLabel::GuestWakeup), vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::PollWait) > vphi_sim_core::SimDuration::ZERO);
        assert_eq!(d.stats().polling_waits, 1);
    }

    #[test]
    fn static_hybrid_budget_splits_small_from_bulk() {
        // Fixed 22 µs budget: an 8-byte send (~0.6 µs of service) is
        // caught spinning; a 1 MiB send (~1 ms of service at the fake
        // backend's 1 ns/byte) outlives the budget and sleeps.
        let d = driver(WaitScheme::STATIC_HYBRID);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut tl_small = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 8 }, &[], 8, &mut tl_small).unwrap();
        let mut tl_big = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 1 << 20 }, &[], 1 << 20, &mut tl_big).unwrap();
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert!(tl_small.total_for(SpanLabel::PollWait) > vphi_sim_core::SimDuration::ZERO);
        assert_eq!(tl_small.total_for(SpanLabel::IrqInject), vphi_sim_core::SimDuration::ZERO);
        assert!(tl_big.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        assert!(tl_big.total_for(SpanLabel::IrqInject) > vphi_sim_core::SimDuration::ZERO);
        let s = d.stats();
        assert_eq!(s.polling_waits, 1);
        assert_eq!(s.interrupt_waits, 1);
    }

    #[test]
    fn adaptive_learns_budgets_and_accounts_spin_burn() {
        let d = driver(WaitScheme::ADAPTIVE);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        // Small sends: the seeded budget (1.5× the calibrated no-wait
        // floor) already covers the ~0.6 µs service, so every one is
        // caught spinning from the first request on.
        for _ in 0..3 {
            let mut tl = Timeline::new();
            d.transact(&VphiRequest::Send { epd: 1, len: 8 }, &[], 8, &mut tl).unwrap();
            assert_eq!(tl.total_for(SpanLabel::GuestWakeup), vphi_sim_core::SimDuration::ZERO);
        }
        // Bulk sends (~1 ms of service): the first outlives its seeded
        // budget and sleeps; the EWMA then learns a service estimate whose
        // budget exceeds the wake-up cost, so the second sleeps *without
        // spinning at all* (hint = SLEEP, zero burn).
        for _ in 0..2 {
            let mut tl = Timeline::new();
            d.transact(&VphiRequest::Send { epd: 1, len: 1 << 20 }, &[], 1 << 20, &mut tl).unwrap();
            assert!(tl.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        }
        d.channel().queue.shutdown();
        backend.join().unwrap();
        let s = d.stats();
        assert_eq!(s.polling_waits, 3);
        assert_eq!(s.interrupt_waits, 2);
        // Burn accounting: spinners burn exactly the service time, a
        // sleeper at most its budget — never more than true service.
        let profile = d.wait_profile();
        assert_eq!(profile.len(), 2, "one small bucket, one bulk bucket");
        for row in &profile {
            assert!(
                row.spin_burn_ns <= row.svc_ns,
                "bucket {}: burned {} > served {}",
                row.bucket,
                row.spin_burn_ns,
                row.svc_ns
            );
        }
        let bulk = profile.iter().find(|r| r.bucket == size_bucket(1 << 20)).unwrap();
        let cost = d.kernel().cost();
        assert!(
            bulk.spin_burn_ns <= budget_from_estimate(cost.paravirtual_floor_no_wait().as_nanos()),
            "bulk burned only the first request's seeded budget"
        );
    }

    #[test]
    fn busy_poll_override_pins_an_endpoint_to_spinning() {
        let d = driver(WaitScheme::Interrupt);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        d.set_busy_poll(1, true);
        let mut tl = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 8 }, &[], 8, &mut tl).unwrap();
        // Despite the interrupt scheme, the pinned endpoint spun: no
        // wake-up, no injected MSI.
        assert_eq!(tl.total_for(SpanLabel::GuestWakeup), vphi_sim_core::SimDuration::ZERO);
        assert_eq!(tl.total_for(SpanLabel::IrqInject), vphi_sim_core::SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::PollWait) > vphi_sim_core::SimDuration::ZERO);
        d.set_busy_poll(1, false);
        let mut tl2 = Timeline::new();
        d.transact(&VphiRequest::Send { epd: 1, len: 8 }, &[], 8, &mut tl2).unwrap();
        assert!(tl2.total_for(SpanLabel::GuestWakeup) > vphi_sim_core::SimDuration::ZERO);
        d.channel().queue.shutdown();
        backend.join().unwrap();
    }

    #[test]
    fn staging_chunks_at_kmalloc_max() {
        let d = driver(WaitScheme::Interrupt);
        let mut tl = Timeline::new();
        let data = vec![0xABu8; (KMALLOC_MAX_SIZE + 123) as usize];
        let (bufs, descs) = d.stage_out(&data, &mut tl).unwrap();
        assert_eq!(bufs.len(), 2);
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].len as u64, KMALLOC_MAX_SIZE);
        assert_eq!(descs[1].len, 123);
        assert_eq!(d.stats().chunks_sent, 2);
        // Round-trip through staging.
        let mut out = vec![0u8; data.len()];
        d.unstage(bufs, &mut out, &mut tl).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn stage_in_allocates_writable_chunks() {
        let d = driver(WaitScheme::Interrupt);
        let mut tl = Timeline::new();
        let (bufs, descs) = d.stage_in(KMALLOC_MAX_SIZE * 2 + 1, &mut tl).unwrap();
        assert_eq!(bufs.len(), 3);
        assert!(descs.iter().all(|d| d.flags.write));
        d.free_staging(bufs);
    }

    #[test]
    fn concurrent_requesters_each_get_their_reply() {
        let d = driver(WaitScheme::Interrupt);
        let backend = fake_backend(Arc::clone(d.channel()), Arc::clone(d.kernel()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                d.transact(&VphiRequest::Open, &[], 0, &mut tl).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), VphiResponse::ok(7, 8));
        }
        d.channel().queue.shutdown();
        backend.join().unwrap();
        assert_eq!(d.stats().requests, 8);
        assert_eq!(d.channel().inflight_count(), 0);
    }

    #[test]
    fn routing_is_deterministic_and_keeps_control_ops_on_lane_zero() {
        let channel = VphiChannel::with_queues(64, 4);
        // Endpoint-less control ops ride lane 0.
        assert_eq!(channel.route(&VphiRequest::Open), 0);
        assert_eq!(channel.route(&VphiRequest::GetNodeIds), 0);
        for epd in 1..64u64 {
            let q = channel.route(&VphiRequest::Send { epd, len: 1 });
            assert!(q < 4);
            // Same endpoint, different op → same lane (FIFO preserved).
            assert_eq!(q, channel.route(&VphiRequest::Recv { epd, len: 9 }));
            assert_eq!(q, channel.route(&VphiRequest::Close { epd }));
        }
        // The hash actually spreads endpoints across lanes.
        let hit: std::collections::HashSet<usize> =
            (1..64u64).map(|epd| channel.route(&VphiRequest::Send { epd, len: 1 })).collect();
        assert_eq!(hit.len(), 4, "64 endpoints should cover all 4 lanes");
    }

    #[test]
    fn multi_queue_round_trips_across_all_lanes() {
        let mem = Arc::new(GuestMemory::new(64 * MIB));
        let kernel = Arc::new(GuestKernel::new(mem, Arc::new(CostModel::paper_calibrated())));
        let channel = VphiChannel::with_queues(64, 4);
        let d = FrontendDriver::insert(kernel, channel, WaitScheme::Interrupt);
        let backends: Vec<_> = (0..4)
            .map(|q| fake_backend_lane(Arc::clone(d.channel()), Arc::clone(d.kernel()), q))
            .collect();
        let mut handles = Vec::new();
        for epd in 1..=16u64 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                d.transact(&VphiRequest::Send { epd, len: 4 }, &[], 4, &mut tl).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), VphiResponse::ok(7, 8));
        }
        // Every chain was popped from the lane its endpoint hashed to.
        let popped: u64 =
            d.channel().lanes().iter().map(|l| l.queue.counters().chains_popped).sum();
        assert_eq!(popped, 16);
        let busy_lanes =
            d.channel().lanes().iter().filter(|l| l.queue.counters().chains_popped > 0).count();
        assert!(busy_lanes > 1, "16 endpoints should exercise more than one lane");
        for q in 0..4 {
            d.channel().lane_queue(q).shutdown();
        }
        for b in backends {
            b.join().unwrap();
        }
        assert_eq!(d.channel().inflight_count(), 0);
    }
}

//! Runtime counters — the `/sys/kernel/debug/vphi` surface.
//!
//! The real driver pair exposes operational counters for debugging and
//! capacity planning; operators of a sharing host need to see, per VM,
//! how many requests crossed the ring, how they were dispatched, how much
//! time the VM spent frozen, and how much memory the backend pinned.
//! [`VphiDebugReport::collect`] snapshots all of it from a running VM.

use std::sync::atomic::Ordering;

use vphi_sim_core::SimDuration;

use crate::builder::VphiVm;

/// A point-in-time snapshot of one VM's vPHI counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VphiDebugReport {
    pub vm_id: u32,
    // frontend
    pub requests: u64,
    pub interrupt_waits: u64,
    pub polling_waits: u64,
    pub chunks_staged: u64,
    pub wait_queue_wakeups: u64,
    pub wait_queue_sleeps: u64,
    // notification coalescing
    pub kicks_delivered: u64,
    pub kicks_suppressed: u64,
    pub irqs_coalesced: u64,
    // backend
    pub backend_requests: u64,
    pub worker_dispatches: u64,
    pub pages_translated: u64,
    pub open_endpoints: usize,
    // registration cache
    pub reg_cache_hits: u64,
    pub reg_cache_misses: u64,
    pub reg_cache_evictions: u64,
    pub reg_cache_invalidations: u64,
    // vmm
    pub vm_paused: SimDuration,
    pub blocking_events: u64,
    pub worker_events: u64,
    pub irq_injections: u64,
    pub mmap_faults: u64,
    // fault injection & recovery
    pub deadline_retries: u64,
    pub msi_lost: u64,
    pub guest_deaths: u64,
    pub endpoints_gced: u64,
    pub windows_gced: u64,
    pub endpoints_quarantined: u64,
    pub faults_fired: u64,
    // lock-order audit (process-wide, not per-VM; see vphi-sync)
    pub sync_acquisitions: u64,
    pub sync_max_hold_depth: u64,
    pub sync_order_edges: u64,
    pub sync_cycle_checks: u64,
}

impl VphiDebugReport {
    /// Snapshot the counters of a running VM.
    pub fn collect(vm: &VphiVm) -> Self {
        let fe = vm.frontend().stats();
        let be = vm.backend().inner();
        let el = vm.vm().event_loop();
        let cache = be.reg_cache.snapshot();
        let sync = vphi_sync::audit::stats();
        VphiDebugReport {
            vm_id: vm.vm().id(),
            requests: fe.requests,
            interrupt_waits: fe.interrupt_waits,
            polling_waits: fe.polling_waits,
            chunks_staged: fe.chunks_sent,
            wait_queue_wakeups: vm.frontend().channel().waitq.wakeup_count(),
            wait_queue_sleeps: vm.frontend().channel().waitq.sleep_count(),
            kicks_delivered: fe.kicks_delivered,
            kicks_suppressed: fe.kicks_suppressed,
            irqs_coalesced: be.stats.irqs_coalesced.load(Ordering::Relaxed),
            backend_requests: be.stats.requests.load(Ordering::Relaxed),
            worker_dispatches: be.stats.worker_dispatches.load(Ordering::Relaxed),
            pages_translated: be.stats.pages_translated.load(Ordering::Relaxed),
            open_endpoints: vm.backend().open_endpoints(),
            reg_cache_hits: cache.hits,
            reg_cache_misses: cache.misses,
            reg_cache_evictions: cache.evictions,
            reg_cache_invalidations: cache.invalidations,
            vm_paused: el.vm_paused_total(),
            blocking_events: el.blocking_event_count(),
            worker_events: el.worker_event_count(),
            irq_injections: vm.vm().kernel().irq().inject_count(crate::frontend::VPHI_IRQ_VECTOR),
            mmap_faults: vm.vm().kvm().fault_count(),
            deadline_retries: fe.deadline_retries,
            msi_lost: be.stats.msi_lost.load(Ordering::Relaxed),
            guest_deaths: be.stats.guest_deaths.load(Ordering::Relaxed),
            endpoints_gced: be.stats.endpoints_gced.load(Ordering::Relaxed),
            windows_gced: be.stats.windows_gced.load(Ordering::Relaxed),
            endpoints_quarantined: be.stats.endpoints_quarantined.load(Ordering::Relaxed),
            faults_fired: be.fault_hook().injector().map(|inj| inj.fired_total()).unwrap_or(0),
            sync_acquisitions: sync.acquisitions,
            sync_max_hold_depth: sync.max_hold_depth,
            sync_order_edges: sync.order_edges,
            sync_cycle_checks: sync.cycle_checks,
        }
    }

    /// Render as the debugfs file would print.
    pub fn render(&self) -> String {
        format!(
            "vphi{id}:\n\
             \x20 requests            {req}\n\
             \x20 waits (irq/poll)    {iw}/{pw}\n\
             \x20 staging chunks      {chunks}\n\
             \x20 waitq wake/sleep    {wk}/{sl}\n\
             \x20 kicks (sent/nonotf) {kd}/{ks}\n\
             \x20 irqs coalesced      {ic}\n\
             \x20 backend requests    {breq}\n\
             \x20 worker dispatches   {wd}\n\
             \x20 pages translated    {pt}\n\
             \x20 open endpoints      {oe}\n\
             \x20 regcache hit/miss   {rch}/{rcm}\n\
             \x20 regcache evict/inv  {rce}/{rci}\n\
             \x20 vm paused           {paused}\n\
             \x20 events (block/work) {bev}/{wev}\n\
             \x20 irq injections      {irq}\n\
             \x20 mmap faults         {flt}\n\
             \x20 deadline retries    {dr}\n\
             \x20 msi lost            {ml}\n\
             \x20 guest deaths        {gd}\n\
             \x20 gc eps/windows      {ge}/{gw}\n\
             \x20 eps quarantined     {eq}\n\
             \x20 faults fired        {ff}\n\
             \x20 lock acq/depth      {sacq}/{sdep}\n\
             \x20 lock edges/checks   {sedg}/{schk}\n",
            id = self.vm_id,
            req = self.requests,
            iw = self.interrupt_waits,
            pw = self.polling_waits,
            chunks = self.chunks_staged,
            wk = self.wait_queue_wakeups,
            sl = self.wait_queue_sleeps,
            kd = self.kicks_delivered,
            ks = self.kicks_suppressed,
            ic = self.irqs_coalesced,
            breq = self.backend_requests,
            wd = self.worker_dispatches,
            pt = self.pages_translated,
            oe = self.open_endpoints,
            rch = self.reg_cache_hits,
            rcm = self.reg_cache_misses,
            rce = self.reg_cache_evictions,
            rci = self.reg_cache_invalidations,
            paused = self.vm_paused,
            bev = self.blocking_events,
            wev = self.worker_events,
            irq = self.irq_injections,
            flt = self.mmap_faults,
            dr = self.deadline_retries,
            ml = self.msi_lost,
            gd = self.guest_deaths,
            ge = self.endpoints_gced,
            gw = self.windows_gced,
            eq = self.endpoints_quarantined,
            ff = self.faults_fired,
            sacq = self.sync_acquisitions,
            sdep = self.sync_max_hold_depth,
            sedg = self.sync_order_edges,
            schk = self.sync_cycle_checks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{VmConfig, VphiHost};
    use vphi_sim_core::Timeline;

    #[test]
    fn counters_track_a_simple_session() {
        let host = VphiHost::new(1);
        let vm = host.spawn_vm(VmConfig::default());
        let before = VphiDebugReport::collect(&vm);
        assert_eq!(before.requests, 0);
        assert_eq!(before.open_endpoints, 0);

        let mut tl = Timeline::new();
        let ep = vm.open_scif(&mut tl).unwrap();
        let after_open = VphiDebugReport::collect(&vm);
        assert_eq!(after_open.requests, 1);
        assert_eq!(after_open.backend_requests, 1);
        assert_eq!(after_open.open_endpoints, 1);
        assert_eq!(after_open.irq_injections, 1);
        assert_eq!(after_open.interrupt_waits, 1);
        // A lone request coalesces nothing: its kick is delivered and its
        // interrupt injected, exactly as without coalescing.
        assert_eq!(after_open.kicks_delivered, 1);
        assert_eq!(after_open.kicks_suppressed, 0);
        assert_eq!(after_open.irqs_coalesced, 0);
        // No RMA yet → the registration cache was never probed.
        assert_eq!(after_open.reg_cache_hits + after_open.reg_cache_misses, 0);

        ep.close(&mut tl).unwrap();
        let after_close = VphiDebugReport::collect(&vm);
        assert_eq!(after_close.requests, 2);
        assert_eq!(after_close.open_endpoints, 0);
        // Every request froze the VM briefly (blocking dispatch).
        assert!(after_close.vm_paused > SimDuration::ZERO);
        assert_eq!(after_close.blocking_events, 2);

        // The tracked locks fed the audit: the session above took dozens of
        // locks, some nested, and every nested acquisition was cycle-checked.
        // (In a plain release build the detector is compiled out and the
        // counters legitimately read zero.)
        if vphi_sync::audit::ENABLED {
            assert!(after_close.sync_acquisitions > 0);
            assert!(after_close.sync_max_hold_depth >= 2);
            assert!(after_close.sync_order_edges > 0);
            assert!(after_close.sync_cycle_checks > 0);
        }

        let text = after_close.render();
        assert!(text.contains("requests            2"));
        assert!(text.contains("vm paused"));
        assert!(text.contains("lock acq/depth"));
        vm.shutdown();
    }
}

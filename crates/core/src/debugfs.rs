//! Runtime counters — the `/sys/kernel/debug/vphi` surface.
//!
//! The real driver pair exposes operational counters for debugging and
//! capacity planning; operators of a sharing host need to see, per VM,
//! how many requests crossed the ring, how they were dispatched, how much
//! time the VM spent frozen, and how much memory the backend pinned.
//! [`VphiDebugReport::collect`] snapshots all of it from a running VM.

use std::sync::atomic::Ordering;

use vphi_sim_core::SimDuration;
use vphi_trace::TraceCounters;

use crate::backend::BATCH_BUCKETS;
use crate::builder::VphiVm;

/// Per-lane transport counters — one entry per virtqueue, index = lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueReport {
    /// Kicks delivered through this lane's doorbell.
    pub kicks: u64,
    /// Descriptor chains the backend shard popped from this lane.
    pub chains_popped: u64,
    /// Requests this lane's shard handed to a QEMU worker thread.
    pub worker_dispatches: u64,
    /// Kick-suppression windows (`VRING_USED_F_NO_NOTIFY`) this lane
    /// opened while its shard drained a burst.
    pub suppress_windows: u64,
    /// Completion MSIs this lane's notifier injected.
    pub irqs_injected: u64,
    /// Completions that injected nothing: reaped by a spinner, or batched
    /// behind an un-crossed `used_event` threshold.
    pub irqs_suppressed: u64,
}

/// A point-in-time snapshot of one VM's vPHI counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VphiDebugReport {
    pub vm_id: u32,
    // frontend
    pub requests: u64,
    pub interrupt_waits: u64,
    pub polling_waits: u64,
    pub chunks_staged: u64,
    pub wait_queue_wakeups: u64,
    pub wait_queue_sleeps: u64,
    /// Sleepers that woke without their completion being ready — with
    /// per-token waiters this stays ~0 (only a deadline-expiry re-check or
    /// a shutdown broadcast can produce one).
    pub spurious_wakeups: u64,
    // adaptive completion notification
    pub kicks_delivered: u64,
    pub kicks_suppressed: u64,
    /// Completion MSIs injected, summed over lanes.
    pub irqs_injected: u64,
    /// Completions suppressed (spinner-reaped or batched), summed over
    /// lanes.
    pub irqs_suppressed: u64,
    /// Log2 completions-per-irq histogram summed over lanes: bucket `b`
    /// counts injected irqs that delivered `[2^b, 2^(b+1))` completions.
    pub completions_per_irq: [u64; BATCH_BUCKETS],
    /// Per-lane transport counters, one entry per virtqueue.
    pub queues: Vec<QueueReport>,
    // backend
    pub backend_requests: u64,
    pub worker_dispatches: u64,
    pub pages_translated: u64,
    pub open_endpoints: usize,
    // registration cache
    pub reg_cache_hits: u64,
    pub reg_cache_misses: u64,
    pub reg_cache_evictions: u64,
    pub reg_cache_invalidations: u64,
    // zero-copy RMA (DESIGN.md #19)
    /// Windows pinned + mapped into the device aperture (cold maps).
    pub windows_mapped: u64,
    /// Large RMAs that found their window already mapped.
    pub map_hits: u64,
    /// Scatter-gather descriptors built for zero-copy transfers.
    pub sg_descriptors: u64,
    /// Bytes that skipped the backend staging bounce buffer.
    pub staging_bytes_avoided: u64,
    // vmm
    pub vm_paused: SimDuration,
    pub blocking_events: u64,
    pub worker_events: u64,
    pub irq_injections: u64,
    pub mmap_faults: u64,
    // fault injection & recovery
    pub deadline_retries: u64,
    pub msi_lost: u64,
    pub guest_deaths: u64,
    pub endpoints_gced: u64,
    pub windows_gced: u64,
    pub endpoints_quarantined: u64,
    pub faults_fired: u64,
    // request tracing (zero when the channel's tracer is disarmed)
    pub trace: TraceCounters,
    // lock-order audit (process-wide, not per-VM; see vphi-sync)
    pub sync_acquisitions: u64,
    pub sync_max_hold_depth: u64,
    pub sync_order_edges: u64,
    pub sync_cycle_checks: u64,
}

impl VphiDebugReport {
    /// Snapshot the counters of a running VM.
    pub fn collect(vm: &VphiVm) -> Self {
        let fe = vm.frontend().stats();
        let be = vm.backend().inner();
        let el = vm.vm().event_loop();
        let cache = be.reg_cache.snapshot();
        let sync = vphi_sync::audit::stats();
        let trace =
            vm.frontend().channel().trace.tracer().map(|t| t.counters()).unwrap_or_default();
        let channel = vm.frontend().channel();
        let notify = be.notify_counters();
        let queues: Vec<QueueReport> = channel
            .lanes()
            .iter()
            .enumerate()
            .map(|(q, lane)| {
                let c = lane.queue.counters();
                QueueReport {
                    kicks: c.kicks,
                    chains_popped: c.chains_popped,
                    worker_dispatches: be.queue_worker_dispatches(q),
                    suppress_windows: c.suppress_windows,
                    irqs_injected: notify[q].irqs_injected,
                    irqs_suppressed: notify[q].irqs_suppressed,
                }
            })
            .collect();
        let mut completions_per_irq = [0u64; BATCH_BUCKETS];
        for n in &notify {
            for (b, count) in n.batch_hist.iter().enumerate() {
                completions_per_irq[b] += count;
            }
        }
        // Completion MSIs spread across one vector per lane.
        let irq_injections = (0..channel.queue_count() as u32)
            .map(|q| vm.vm().kernel().irq().inject_count(crate::frontend::VPHI_IRQ_VECTOR + q))
            .sum();
        VphiDebugReport {
            vm_id: vm.vm().id(),
            requests: fe.requests,
            interrupt_waits: fe.interrupt_waits,
            polling_waits: fe.polling_waits,
            chunks_staged: fe.chunks_sent,
            wait_queue_wakeups: vm.frontend().channel().waitq.wakeup_count(),
            wait_queue_sleeps: vm.frontend().channel().waitq.sleep_count(),
            spurious_wakeups: vm.frontend().channel().waitq.spurious_count(),
            kicks_delivered: fe.kicks_delivered,
            kicks_suppressed: fe.kicks_suppressed,
            irqs_injected: notify.iter().map(|n| n.irqs_injected).sum(),
            irqs_suppressed: notify.iter().map(|n| n.irqs_suppressed).sum(),
            completions_per_irq,
            queues,
            backend_requests: be.stats.requests.load(Ordering::Relaxed),
            worker_dispatches: be.stats.worker_dispatches.load(Ordering::Relaxed),
            pages_translated: be.stats.pages_translated.load(Ordering::Relaxed),
            open_endpoints: vm.backend().open_endpoints(),
            reg_cache_hits: cache.hits,
            reg_cache_misses: cache.misses,
            reg_cache_evictions: cache.evictions,
            reg_cache_invalidations: cache.invalidations,
            windows_mapped: be.stats.windows_mapped.load(Ordering::Relaxed),
            map_hits: be.stats.map_hits.load(Ordering::Relaxed),
            sg_descriptors: be.stats.sg_descriptors.load(Ordering::Relaxed),
            staging_bytes_avoided: be.stats.staging_bytes_avoided.load(Ordering::Relaxed),
            vm_paused: el.vm_paused_total(),
            blocking_events: el.blocking_event_count(),
            worker_events: el.worker_event_count(),
            irq_injections,
            mmap_faults: vm.vm().kvm().fault_count(),
            deadline_retries: fe.deadline_retries,
            msi_lost: be.stats.msi_lost.load(Ordering::Relaxed),
            guest_deaths: be.stats.guest_deaths.load(Ordering::Relaxed),
            endpoints_gced: be.stats.endpoints_gced.load(Ordering::Relaxed),
            windows_gced: be.stats.windows_gced.load(Ordering::Relaxed),
            endpoints_quarantined: be.stats.endpoints_quarantined.load(Ordering::Relaxed),
            faults_fired: be.fault_hook().injector().map(|inj| inj.fired_total()).unwrap_or(0),
            trace,
            sync_acquisitions: sync.acquisitions,
            sync_max_hold_depth: sync.max_hold_depth,
            sync_order_edges: sync.order_edges,
            sync_cycle_checks: sync.cycle_checks,
        }
    }

    /// Render as the debugfs file would print: counters grouped by layer,
    /// every value in a single left-aligned column.  The format is pinned
    /// by a snapshot test — tools parse it, so keep it byte-stable.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("vphi{}:\n", self.vm_id));
        let mut group = |title: &str, rows: &[(&str, String)]| {
            out.push_str(&format!("  {title}:\n"));
            for (label, value) in rows {
                out.push_str(&format!("    {label:<24}{value}\n"));
            }
        };
        group(
            "frontend",
            &[
                ("requests", self.requests.to_string()),
                ("waits irq/poll", format!("{}/{}", self.interrupt_waits, self.polling_waits)),
                ("staging chunks", self.chunks_staged.to_string()),
                (
                    "waitq wake/sleep",
                    format!("{}/{}", self.wait_queue_wakeups, self.wait_queue_sleeps),
                ),
                ("spurious wakeups", self.spurious_wakeups.to_string()),
                ("deadline retries", self.deadline_retries.to_string()),
            ],
        );
        // Non-empty completions-per-irq buckets as "2^b:count" pairs; "-"
        // when no irq was ever injected.
        let hist = {
            let pairs: Vec<String> = self
                .completions_per_irq
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, c)| format!("2^{b}:{c}"))
                .collect();
            if pairs.is_empty() {
                "-".to_string()
            } else {
                pairs.join(" ")
            }
        };
        group(
            "virtio",
            &[
                (
                    "kicks sent/suppressed",
                    format!("{}/{}", self.kicks_delivered, self.kicks_suppressed),
                ),
                ("irqs inj/sup", format!("{}/{}", self.irqs_injected, self.irqs_suppressed)),
                ("irq injections", self.irq_injections.to_string()),
                ("cpl-per-irq hist", hist),
            ],
        );
        let queue_rows: Vec<(String, String)> = self
            .queues
            .iter()
            .enumerate()
            .flat_map(|(i, q)| {
                [
                    (
                        format!("q{i} kick/pop/disp/sup"),
                        format!(
                            "{}/{}/{}/{}",
                            q.kicks, q.chains_popped, q.worker_dispatches, q.suppress_windows
                        ),
                    ),
                    (
                        format!("q{i} irq inj/sup"),
                        format!("{}/{}", q.irqs_injected, q.irqs_suppressed),
                    ),
                ]
            })
            .collect();
        let queue_rows: Vec<(&str, String)> =
            queue_rows.iter().map(|(l, v)| (l.as_str(), v.clone())).collect();
        group("queues", &queue_rows);
        group(
            "backend",
            &[
                ("requests", self.backend_requests.to_string()),
                ("worker dispatches", self.worker_dispatches.to_string()),
                ("pages translated", self.pages_translated.to_string()),
                ("open endpoints", self.open_endpoints.to_string()),
                ("regcache hit/miss", format!("{}/{}", self.reg_cache_hits, self.reg_cache_misses)),
                (
                    "regcache evict/inval",
                    format!("{}/{}", self.reg_cache_evictions, self.reg_cache_invalidations),
                ),
                ("zc win map/hit", format!("{}/{}", self.windows_mapped, self.map_hits)),
                ("zc sg descriptors", self.sg_descriptors.to_string()),
                ("zc bytes unstaged", self.staging_bytes_avoided.to_string()),
            ],
        );
        group(
            "vmm",
            &[
                ("vm paused", self.vm_paused.to_string()),
                ("events block/worker", format!("{}/{}", self.blocking_events, self.worker_events)),
                ("mmap faults", self.mmap_faults.to_string()),
            ],
        );
        group(
            "faults",
            &[
                ("fired", self.faults_fired.to_string()),
                ("msi lost", self.msi_lost.to_string()),
                ("guest deaths", self.guest_deaths.to_string()),
                ("gc eps/windows", format!("{}/{}", self.endpoints_gced, self.windows_gced)),
                ("eps quarantined", self.endpoints_quarantined.to_string()),
            ],
        );
        group(
            "trace",
            &[
                (
                    "traces start/finish",
                    format!("{}/{}", self.trace.traces_started, self.trace.traces_finished),
                ),
                (
                    "spans recorded/dropped",
                    format!("{}/{}", self.trace.spans_recorded, self.trace.spans_dropped),
                ),
                ("spans open", self.trace.open_spans.to_string()),
            ],
        );
        group(
            "sync",
            &[
                (
                    "lock acq/depth",
                    format!("{}/{}", self.sync_acquisitions, self.sync_max_hold_depth),
                ),
                (
                    "lock edges/checks",
                    format!("{}/{}", self.sync_order_edges, self.sync_cycle_checks),
                ),
            ],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{VmConfig, VphiHost};
    use vphi_sim_core::Timeline;

    #[test]
    fn counters_track_a_simple_session() {
        let host = VphiHost::new(1);
        let vm = host.spawn_vm(VmConfig::default());
        let before = VphiDebugReport::collect(&vm);
        assert_eq!(before.requests, 0);
        assert_eq!(before.open_endpoints, 0);

        let mut tl = Timeline::new();
        let ep = vm.open_scif(&mut tl).unwrap();
        let after_open = VphiDebugReport::collect(&vm);
        assert_eq!(after_open.requests, 1);
        assert_eq!(after_open.backend_requests, 1);
        assert_eq!(after_open.open_endpoints, 1);
        assert_eq!(after_open.irq_injections, 1);
        assert_eq!(after_open.interrupt_waits, 1);
        // A lone interrupt-scheme request: kick delivered, its sleeping
        // waiter's threshold crossed, one MSI injected carrying exactly
        // one completion — and the directed wake was not spurious.
        assert_eq!(after_open.kicks_delivered, 1);
        assert_eq!(after_open.kicks_suppressed, 0);
        assert_eq!(after_open.irqs_injected, 1);
        assert_eq!(after_open.irqs_suppressed, 0);
        assert_eq!(after_open.completions_per_irq[0], 1);
        assert_eq!(after_open.spurious_wakeups, 0);
        assert_eq!(after_open.queues[0].irqs_injected, 1);
        // `scif_open` carries no endpoint, so it rides lane 0: exactly one
        // kick and one popped chain there, nothing on the other lanes.
        assert_eq!(after_open.queues.len(), 4);
        assert_eq!(after_open.queues[0].kicks, 1);
        assert_eq!(after_open.queues[0].chains_popped, 1);
        for q in &after_open.queues[1..] {
            assert_eq!((q.kicks, q.chains_popped), (0, 0));
        }
        // No RMA yet → the registration cache was never probed and the
        // zero-copy path (off by default anyway) never mapped a window.
        assert_eq!(after_open.reg_cache_hits + after_open.reg_cache_misses, 0);
        assert_eq!(after_open.windows_mapped + after_open.map_hits, 0);
        assert_eq!(after_open.staging_bytes_avoided, 0);
        // Tracing was never armed on this host.
        assert_eq!(after_open.trace, vphi_trace::TraceCounters::default());

        ep.close(&mut tl).unwrap();
        let after_close = VphiDebugReport::collect(&vm);
        assert_eq!(after_close.requests, 2);
        assert_eq!(after_close.open_endpoints, 0);
        assert_eq!(after_close.spurious_wakeups, 0, "per-token wakes are never spurious");
        // Every request froze the VM briefly (blocking dispatch).
        assert!(after_close.vm_paused > SimDuration::ZERO);
        assert_eq!(after_close.blocking_events, 2);

        // The tracked locks fed the audit: the session above took dozens of
        // locks, some nested, and every nested acquisition was cycle-checked.
        // (In a plain release build the detector is compiled out and the
        // counters legitimately read zero.)
        if vphi_sync::audit::ENABLED {
            assert!(after_close.sync_acquisitions > 0);
            assert!(after_close.sync_max_hold_depth >= 2);
            assert!(after_close.sync_order_edges > 0);
            assert!(after_close.sync_cycle_checks > 0);
        }

        let text = after_close.render();
        assert!(text.contains("requests                2"));
        assert!(text.contains("vm paused"));
        assert!(text.contains("lock acq/depth"));
        vm.shutdown();
    }

    #[test]
    fn armed_tracer_counters_reach_the_report() {
        let host = VphiHost::new(1);
        host.arm_tracing(vphi_trace::TraceConfig::default());
        let vm = host.spawn_vm(VmConfig::default());
        let mut tl = Timeline::new();
        let ep = vm.open_scif(&mut tl).unwrap();
        ep.close(&mut tl).unwrap();
        let report = VphiDebugReport::collect(&vm);
        assert_eq!(report.trace.traces_started, 2); // open + close
        assert_eq!(report.trace.traces_finished, 2);
        assert_eq!(report.trace.open_spans, 0);
        assert!(report.trace.spans_recorded > 0);
        vm.shutdown();
    }

    /// Snapshot of the full rendered format.  Every row is exercised with
    /// a distinct value so a column swap or alignment change fails loudly.
    #[test]
    fn render_format_is_stable() {
        let report = VphiDebugReport {
            vm_id: 7,
            requests: 1,
            interrupt_waits: 2,
            polling_waits: 3,
            chunks_staged: 4,
            wait_queue_wakeups: 5,
            wait_queue_sleeps: 6,
            spurious_wakeups: 47,
            kicks_delivered: 7,
            kicks_suppressed: 8,
            irqs_injected: 9,
            irqs_suppressed: 48,
            completions_per_irq: {
                let mut h = [0u64; BATCH_BUCKETS];
                h[0] = 49;
                h[2] = 50;
                h
            },
            queues: vec![
                QueueReport {
                    kicks: 39,
                    chains_popped: 40,
                    worker_dispatches: 41,
                    suppress_windows: 42,
                    irqs_injected: 51,
                    irqs_suppressed: 52,
                },
                QueueReport {
                    kicks: 43,
                    chains_popped: 44,
                    worker_dispatches: 45,
                    suppress_windows: 46,
                    irqs_injected: 53,
                    irqs_suppressed: 54,
                },
            ],
            backend_requests: 10,
            worker_dispatches: 11,
            pages_translated: 12,
            open_endpoints: 13,
            reg_cache_hits: 14,
            reg_cache_misses: 15,
            reg_cache_evictions: 16,
            reg_cache_invalidations: 17,
            windows_mapped: 55,
            map_hits: 56,
            sg_descriptors: 57,
            staging_bytes_avoided: 58,
            vm_paused: SimDuration::from_micros(18),
            blocking_events: 19,
            worker_events: 20,
            irq_injections: 21,
            mmap_faults: 22,
            deadline_retries: 23,
            msi_lost: 24,
            guest_deaths: 25,
            endpoints_gced: 26,
            windows_gced: 27,
            endpoints_quarantined: 28,
            faults_fired: 29,
            trace: TraceCounters {
                traces_started: 30,
                traces_finished: 31,
                spans_recorded: 32,
                spans_dropped: 33,
                open_spans: 34,
            },
            sync_acquisitions: 35,
            sync_max_hold_depth: 36,
            sync_order_edges: 37,
            sync_cycle_checks: 38,
        };
        let expected = "\
vphi7:
  frontend:
    requests                1
    waits irq/poll          2/3
    staging chunks          4
    waitq wake/sleep        5/6
    spurious wakeups        47
    deadline retries        23
  virtio:
    kicks sent/suppressed   7/8
    irqs inj/sup            9/48
    irq injections          21
    cpl-per-irq hist        2^0:49 2^2:50
  queues:
    q0 kick/pop/disp/sup    39/40/41/42
    q0 irq inj/sup          51/52
    q1 kick/pop/disp/sup    43/44/45/46
    q1 irq inj/sup          53/54
  backend:
    requests                10
    worker dispatches       11
    pages translated        12
    open endpoints          13
    regcache hit/miss       14/15
    regcache evict/inval    16/17
    zc win map/hit          55/56
    zc sg descriptors       57
    zc bytes unstaged       58
  vmm:
    vm paused               18.00us
    events block/worker     19/20
    mmap faults             22
  faults:
    fired                   29
    msi lost                24
    guest deaths            25
    gc eps/windows          26/27
    eps quarantined         28
  trace:
    traces start/finish     30/31
    spans recorded/dropped  32/33
    spans open              34
  sync:
    lock acq/depth          35/36
    lock edges/checks       37/38
";
        assert_eq!(report.render(), expected);
    }
}

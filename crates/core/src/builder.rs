//! Assembling hosts and VMs.
//!
//! [`VphiHost`] is the physical machine of the paper's testbed: a host
//! with one (or more) Xeon Phi cards, a SCIF fabric, and the ability to
//! spawn QEMU-KVM virtual machines that share the cards through vPHI.
//! Every VM gets its own QEMU process model (guest memory, event loop,
//! virtio channel, backend device) — which is precisely why sharing works:
//! each VM is just another host process issuing SCIF ioctls.

use std::sync::Arc;

use vphi_faults::{FaultHook, FaultInjector, FaultPlan};
use vphi_phi::{PhiBoard, PhiSpec};
use vphi_scif::{NodeId, ScifEndpoint, ScifFabric, ScifResult, HOST_NODE};
use vphi_sim_core::units::MIB;
use vphi_sim_core::{CostModel, SimDuration, Timeline, VirtualClock};
use vphi_sync::{LockClass, TrackedMutex};
use vphi_trace::{OpCtx, TraceConfig, TraceSlot, Tracer};
use vphi_vmm::kvm::KvmPatch;
use vphi_vmm::Vm;

use crate::backend::BackendDevice;
use crate::frontend::{FrontendDriver, VphiChannel, WaitScheme};
use crate::guest::GuestScif;
use crate::sysfs::GuestSysfs;

/// VM spawn parameters.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Guest RAM (default 256 MiB — enough for staging + RMA buffers in
    /// every experiment).
    pub mem_size: u64,
    /// The frontend's waiting scheme.
    pub scheme: WaitScheme,
    /// Virtqueue size (descriptors per queue).
    pub queue_size: u16,
    /// Number of virtqueue lanes.  The frontend hashes each request's
    /// endpoint onto a lane (per-endpoint FIFO preserved) and the backend
    /// runs one service thread per lane — the MQ-SCALE axis.
    pub num_queues: u16,
    /// Host kernel patch state (`Unpatched` reproduces the mmap failure
    /// the paper's KVM patch fixes).
    pub patch: KvmPatch,
    /// Frontend staging chunk size (`KMALLOC_MAX_SIZE` in the paper;
    /// swept by ABL-CHUNK).
    pub chunk_size: u64,
    /// Backend dispatch policy (paper default: only `scif_accept` on a
    /// worker; ABL-BLOCK sweeps the size-hybrid).
    pub dispatch: crate::backend::DispatchPolicy,
    /// Backend RMA registration cache (disable to reproduce the seed's
    /// per-request translation charge — the Fig. 5 72% ceiling).
    pub reg_cache: crate::backend::RegCacheConfig,
    /// Pipeline large cold-path RMA staging through double-buffered
    /// chunks overlapped with device DMA.  Off by default so the
    /// calibrated figures stay byte-stable; MQ-SCALE turns it on.
    pub pipeline_rma: bool,
    /// Zero-copy large RMA: pin registered windows into the device
    /// aperture and scatter-gather straight between guest memory and the
    /// wire, retiring the backend staging copy (DESIGN.md #19).  Off by
    /// default so the calibrated figures stay byte-stable; ZERO-COPY
    /// turns it on.
    pub zero_copy_rma: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_size: 256 * MIB,
            scheme: WaitScheme::Interrupt,
            queue_size: 256,
            num_queues: 4,
            patch: KvmPatch::PfnPhi,
            chunk_size: vphi_sim_core::cost::KMALLOC_MAX_SIZE,
            dispatch: crate::backend::DispatchPolicy::PAPER,
            reg_cache: crate::backend::RegCacheConfig::default(),
            pipeline_rma: false,
            zero_copy_rma: false,
        }
    }
}

impl VmConfig {
    /// Start from the paper defaults and override selectively; the
    /// builder's [`build`](VmConfigBuilder::build) validates the combined
    /// result, so impossible topologies (zero lanes, non-power-of-two
    /// rings, a polling guest under pipelined RMA) fail at construction
    /// instead of as a hang or a skewed figure later.
    pub fn builder() -> VmConfigBuilder {
        VmConfigBuilder { config: VmConfig::default() }
    }
}

/// Validating builder for [`VmConfig`] — see [`VmConfig::builder`].
#[derive(Debug, Clone)]
pub struct VmConfigBuilder {
    config: VmConfig,
}

impl VmConfigBuilder {
    pub fn mem_size(mut self, bytes: u64) -> Self {
        self.config.mem_size = bytes;
        self
    }

    pub fn scheme(mut self, scheme: WaitScheme) -> Self {
        self.config.scheme = scheme;
        self
    }

    pub fn queue_size(mut self, descriptors: u16) -> Self {
        self.config.queue_size = descriptors;
        self
    }

    pub fn num_queues(mut self, lanes: u16) -> Self {
        self.config.num_queues = lanes;
        self
    }

    pub fn patch(mut self, patch: KvmPatch) -> Self {
        self.config.patch = patch;
        self
    }

    pub fn chunk_size(mut self, bytes: u64) -> Self {
        self.config.chunk_size = bytes;
        self
    }

    pub fn dispatch(mut self, policy: crate::backend::DispatchPolicy) -> Self {
        self.config.dispatch = policy;
        self
    }

    pub fn reg_cache(mut self, config: crate::backend::RegCacheConfig) -> Self {
        self.config.reg_cache = config;
        self
    }

    pub fn pipeline_rma(mut self, on: bool) -> Self {
        self.config.pipeline_rma = on;
        self
    }

    pub fn zero_copy_rma(mut self, on: bool) -> Self {
        self.config.zero_copy_rma = on;
        self
    }

    /// Validate and return the config, or a description of what's wrong.
    pub fn try_build(self) -> Result<VmConfig, String> {
        let c = &self.config;
        if c.num_queues < 1 {
            return Err("num_queues must be at least 1 (requests need a lane)".into());
        }
        if c.queue_size < 2 || !c.queue_size.is_power_of_two() {
            return Err(format!(
                "queue_size must be a power of two ≥ 2 (virtio ring indices wrap mod size), got {}",
                c.queue_size
            ));
        }
        if c.chunk_size == 0 || !c.chunk_size.is_multiple_of(4096) {
            return Err(format!(
                "chunk_size must be a positive multiple of the 4 KiB page size, got {}",
                c.chunk_size
            ));
        }
        if c.mem_size < 16 * MIB {
            return Err(format!(
                "mem_size must be at least 16 MiB (header slabs + staging), got {}",
                c.mem_size
            ));
        }
        if c.pipeline_rma && c.scheme == WaitScheme::Polling {
            return Err(
                "pipeline_rma with WaitScheme::Polling is rejected: the pipeline overlaps \
                 staging with DMA behind an interrupt-driven completion, while a pure-polling \
                 guest burns its vCPU through the whole overlap — the combination measures \
                 neither configuration faithfully"
                    .into(),
            );
        }
        if c.zero_copy_rma && c.chunk_size != vphi_sim_core::cost::KMALLOC_MAX_SIZE {
            return Err("zero_copy_rma with a non-default chunk_size is rejected: the zero-copy \
                 path never stages, so a tuned staging chunk cannot take effect — the \
                 sweep would silently measure the default configuration instead"
                .into());
        }
        if c.zero_copy_rma && c.pipeline_rma {
            return Err("zero_copy_rma with pipeline_rma is rejected: the pipeline overlaps the \
                 very staging copy zero-copy deletes — enable exactly one large-RMA \
                 optimization per VM"
                .into());
        }
        Ok(self.config)
    }

    /// Validate and return the config, panicking on an invalid combination
    /// (tests and examples; sweeps that compute fields use
    /// [`try_build`](Self::try_build)).
    pub fn build(self) -> VmConfig {
        self.try_build().expect("invalid VmConfig")
    }
}

/// The physical host: cards + fabric + clock + cost model.
///
/// ```
/// use vphi::builder::{VmConfig, VphiHost};
/// use vphi_sim_core::Timeline;
///
/// // A host with one Xeon Phi 3120P, and a VM sharing it through vPHI.
/// let host = VphiHost::new(1);
/// let vm = host.spawn_vm(VmConfig::default());
///
/// // Guest user space opens a SCIF endpoint — one paravirtual round trip.
/// let mut tl = Timeline::new();
/// let ep = vm.open_scif(&mut tl).unwrap();
/// assert_eq!(ep.node_count(&mut tl).unwrap(), 2); // host + 1 card
/// ep.close(&mut tl).unwrap();
/// vm.shutdown();
/// ```
pub struct VphiHost {
    cost: Arc<CostModel>,
    clock: Arc<VirtualClock>,
    fabric: Arc<ScifFabric>,
    boards: Vec<Arc<PhiBoard>>,
    /// Every backend device spawned on this host, keyed by VM id — walked
    /// by card-reset recovery to quarantine the affected endpoints and by
    /// trace arming to tag spans with their VM.
    attached: TrackedMutex<Vec<(u32, Arc<BackendDevice>)>>,
    /// Host-wide fault-injection arming point; propagated to boards,
    /// links, doorbells and every (existing and future) backend.
    faults: FaultHook,
    /// Host-wide tracer slot; propagated to every (existing and future)
    /// backend channel by [`VphiHost::arm_tracing`].
    trace: TraceSlot,
}

impl std::fmt::Debug for VphiHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VphiHost").field("boards", &self.boards.len()).finish()
    }
}

impl VphiHost {
    /// A host with `num_devices` booted 3120P cards, paper-calibrated.
    pub fn new(num_devices: usize) -> Self {
        Self::with_cost(CostModel::paper_calibrated(), num_devices)
    }

    /// A host with a custom cost model (ablations tweak single params).
    pub fn with_cost(cost: CostModel, num_devices: usize) -> Self {
        let cost = Arc::new(cost);
        let clock = Arc::new(VirtualClock::new());
        let fabric = Arc::new(ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock)));
        let mut boards = Vec::new();
        for i in 0..num_devices {
            let board = Arc::new(PhiBoard::new(
                PhiSpec::phi_3120p(),
                i as u32,
                Arc::clone(&cost),
                Arc::clone(&clock),
            ));
            board.boot();
            fabric.add_device(Arc::clone(&board));
            boards.push(board);
        }
        VphiHost {
            cost,
            clock,
            fabric,
            boards,
            attached: TrackedMutex::new(LockClass::HostAttached, Vec::new()),
            faults: FaultHook::new(),
            trace: TraceSlot::new(),
        }
    }

    /// Arm deterministic fault injection across the whole stack: every
    /// board (lockups, ECC, panics), PCIe link (retrain stalls, DMA
    /// errors), doorbell, and every attached backend (lost MSIs, guest
    /// death) plus its virtio queue (lost kicks, used-ring delays).  VMs
    /// spawned later inherit the plan.  First arm wins; returns the
    /// injector either way so callers can read its counters.
    pub fn arm_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        self.faults.arm(Arc::clone(&injector));
        let injector =
            Arc::clone(self.faults.injector().expect("arm_faults: hook armed just above"));
        for board in &self.boards {
            board.fault_hook().arm(Arc::clone(&injector));
            board.link().fault_hook().arm(Arc::clone(&injector));
            board.db_to_device.fault_hook().arm(Arc::clone(&injector));
            board.db_to_host.fault_hook().arm(Arc::clone(&injector));
        }
        for (_, backend) in self.attached.lock().iter() {
            backend.arm_faults(&injector);
        }
        injector
    }

    /// The armed injector, if [`arm_faults`](VphiHost::arm_faults) ran.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.injector()
    }

    /// Arm end-to-end request tracing on every attached backend channel.
    /// VMs spawned later inherit the tracer.  First arm wins; returns the
    /// tracer either way so callers can read rings and histograms.
    pub fn arm_tracing(&self, config: TraceConfig) -> Arc<Tracer> {
        let tracer = Arc::new(Tracer::with_clock(config, Arc::clone(&self.clock)));
        self.trace.arm(Arc::clone(&tracer));
        let tracer = Arc::clone(self.trace.get().expect("arm_tracing: slot armed just above"));
        for (vm, backend) in self.attached.lock().iter() {
            backend.arm_tracing(Arc::clone(&tracer), *vm);
        }
        tracer
    }

    /// The armed tracer, if [`arm_tracing`](VphiHost::arm_tracing) ran.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.trace.get()
    }

    /// Recover a failed card: reset and reboot the board, advance the
    /// virtual clock past the reboot, then quarantine every attached
    /// backend's endpoints that touched the card — other VMs' endpoints
    /// are untouched.  Returns the virtual recovery duration.
    pub fn reset_card(&self, i: usize) -> SimDuration {
        let board = &self.boards[i];
        let dur = board.reset();
        self.clock.advance(dur);
        let node = self.device_node(i);
        for (_, backend) in self.attached.lock().iter() {
            backend.inner().quarantine_node(node);
        }
        // Wake blocked fabric waiters so they observe the recovered state.
        self.fabric.shared().bump_activity();
        dur
    }

    pub fn cost(&self) -> &Arc<CostModel> {
        &self.cost
    }

    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    pub fn fabric(&self) -> &Arc<ScifFabric> {
        &self.fabric
    }

    pub fn boards(&self) -> &[Arc<PhiBoard>] {
        &self.boards
    }

    pub fn board(&self, i: usize) -> &Arc<PhiBoard> {
        &self.boards[i]
    }

    /// SCIF node id of card `i`.
    pub fn device_node(&self, i: usize) -> NodeId {
        NodeId(i as u16 + 1)
    }

    /// A native host endpoint — the paper's baseline path.
    pub fn native_endpoint(&self) -> ScifResult<ScifEndpoint> {
        ScifEndpoint::open(&self.fabric, HOST_NODE)
    }

    /// An endpoint on card `i` (code running on the coprocessor: servers,
    /// the coi_daemon).
    pub fn device_endpoint(&self, i: usize) -> ScifResult<ScifEndpoint> {
        ScifEndpoint::open(&self.fabric, self.device_node(i))
    }

    /// Boot a VM with a vPHI device attached.
    pub fn spawn_vm(&self, config: VmConfig) -> VphiVm {
        let vm = Vm::new(config.mem_size, Arc::clone(&self.cost), config.patch);
        let channel = VphiChannel::with_queues(config.queue_size, config.num_queues);
        let frontend = FrontendDriver::insert_with_chunk(
            Arc::clone(vm.kernel()),
            Arc::clone(&channel),
            config.scheme,
            config.chunk_size,
        );
        let backend = BackendDevice::with_options(
            format!("vphi{}", vm.id()),
            channel,
            Arc::clone(vm.mem()),
            Arc::clone(vm.kernel().irq()),
            Arc::clone(vm.kvm()),
            Arc::clone(vm.event_loop()),
            Arc::clone(&self.fabric),
            self.boards.clone(),
            config.dispatch,
            crate::backend::BackendOptions {
                reg_cache: config.reg_cache,
                pipeline_rma: config.pipeline_rma,
                zero_copy_rma: config.zero_copy_rma,
            },
        );
        vm.attach(Arc::clone(&backend) as Arc<dyn vphi_vmm::vm::VirtualPciDevice>);
        self.attached.lock().push((vm.id(), Arc::clone(&backend)));
        if let Some(injector) = self.faults.injector() {
            backend.arm_faults(injector);
        }
        if let Some(tracer) = self.trace.get() {
            backend.arm_tracing(Arc::clone(tracer), vm.id());
        }
        VphiVm { vm, frontend, backend }
    }
}

/// A running VM with vPHI attached.
pub struct VphiVm {
    vm: Arc<Vm>,
    frontend: Arc<FrontendDriver>,
    backend: Arc<BackendDevice>,
}

impl std::fmt::Debug for VphiVm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VphiVm").field("id", &self.vm.id()).finish()
    }
}

impl VphiVm {
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    pub fn frontend(&self) -> &Arc<FrontendDriver> {
        &self.frontend
    }

    pub fn backend(&self) -> &Arc<BackendDevice> {
        &self.backend
    }

    /// `scif_open` from guest user space.
    pub fn open_scif<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<GuestScif> {
        GuestScif::open(&self.frontend, ctx)
    }

    /// Allocate a guest user buffer (for RMA registration).
    pub fn alloc_buf(&self, len: u64) -> ScifResult<crate::guest::GuestBuf> {
        crate::guest::GuestBuf::alloc(self.vm.mem(), len)
    }

    /// Read the guest's view of `micN` sysfs.
    pub fn sysfs(&self, mic_index: u32, tl: &mut Timeline) -> ScifResult<GuestSysfs> {
        GuestSysfs::fetch(&self.frontend, mic_index, tl)
    }

    /// Total virtual time the VM spent frozen in blocking backend
    /// handlers (the ABL-BLOCK metric).
    pub fn vm_paused_total(&self) -> SimDuration {
        self.vm.event_loop().vm_paused_total()
    }

    pub fn shutdown(&self) {
        self.vm.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_config_default() {
        let built = VmConfig::builder().build();
        let def = VmConfig::default();
        assert_eq!(built.mem_size, def.mem_size);
        assert_eq!(built.scheme, def.scheme);
        assert_eq!(built.queue_size, def.queue_size);
        assert_eq!(built.num_queues, def.num_queues);
        assert_eq!(built.chunk_size, def.chunk_size);
        assert_eq!(built.pipeline_rma, def.pipeline_rma);
        assert_eq!(built.zero_copy_rma, def.zero_copy_rma);
        assert!(!def.zero_copy_rma, "zero-copy defaults off: anchors stay byte-stable");
    }

    #[test]
    fn builder_rejects_impossible_topologies() {
        assert!(VmConfig::builder().num_queues(0).try_build().is_err());
        assert!(VmConfig::builder().queue_size(0).try_build().is_err());
        assert!(VmConfig::builder().queue_size(100).try_build().is_err());
        assert!(VmConfig::builder().chunk_size(0).try_build().is_err());
        assert!(VmConfig::builder().chunk_size(4097).try_build().is_err());
        assert!(VmConfig::builder().mem_size(MIB).try_build().is_err());
        assert!(VmConfig::builder()
            .pipeline_rma(true)
            .scheme(WaitScheme::Polling)
            .try_build()
            .is_err());
        // The individually-valid pieces still compose.
        assert!(VmConfig::builder()
            .pipeline_rma(true)
            .scheme(WaitScheme::Interrupt)
            .num_queues(8)
            .queue_size(128)
            .try_build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_zero_copy_with_staging_knobs() {
        // Pinned message: sweeps match on it to explain skipped points.
        let err =
            VmConfig::builder().zero_copy_rma(true).chunk_size(64 * 4096).try_build().unwrap_err();
        assert_eq!(
            err,
            "zero_copy_rma with a non-default chunk_size is rejected: the zero-copy \
             path never stages, so a tuned staging chunk cannot take effect — the \
             sweep would silently measure the default configuration instead"
        );
        let err = VmConfig::builder().zero_copy_rma(true).pipeline_rma(true).try_build();
        assert!(err.unwrap_err().contains("exactly one large-RMA optimization"));
        // Alone, the flag composes with everything else.
        assert!(VmConfig::builder()
            .zero_copy_rma(true)
            .num_queues(8)
            .queue_size(128)
            .try_build()
            .is_ok());
        assert!(VmConfig::builder()
            .zero_copy_rma(true)
            .reg_cache(crate::backend::RegCacheConfig::disabled())
            .try_build()
            .is_ok());
    }

    #[test]
    fn host_boots_devices_onto_the_fabric() {
        let host = VphiHost::new(2);
        assert_eq!(host.boards().len(), 2);
        assert_eq!(host.fabric().node_ids().len(), 3); // host + 2 cards
        assert!(host.board(0).is_online());
        assert_eq!(host.device_node(1), NodeId(2));
    }

    #[test]
    fn spawn_vm_wires_the_device() {
        let host = VphiHost::new(1);
        let vm = host.spawn_vm(VmConfig::default());
        assert_eq!(vm.vm().device_count(), 1);
        assert!(vm.vm().device(&format!("vphi{}", vm.vm().id())).is_some());
        vm.shutdown();
    }

    #[test]
    fn guest_open_and_close_round_trip() {
        let host = VphiHost::new(1);
        let vm = host.spawn_vm(VmConfig::default());
        let mut tl = Timeline::new();
        let ep = vm.open_scif(&mut tl).unwrap();
        assert_eq!(vm.backend().open_endpoints(), 1);
        ep.close(&mut tl).unwrap();
        assert_eq!(vm.backend().open_endpoints(), 0);
        vm.shutdown();
    }

    #[test]
    fn guest_sysfs_matches_host_table() {
        let host = VphiHost::new(1);
        let vm = host.spawn_vm(VmConfig::default());
        let mut tl = Timeline::new();
        let sysfs = vm.sysfs(0, &mut tl).unwrap();
        assert!(sysfs.card_is_usable());
        assert_eq!(sysfs.get("sku"), Some("3120P"));
        assert_eq!(sysfs.get("active_cores"), Some("57"));
        // Matches the host-side table exactly.
        let host_table = host.board(0).sysfs();
        for (k, v) in host_table.iter() {
            assert_eq!(sysfs.get(k), Some(v), "mismatch on {k}");
        }
        vm.shutdown();
    }
}

//! Guest-side sysfs emulation.
//!
//! "Host Xeon Phi driver exposes a set of information related to the Xeon
//! Phi, such as the family codename of the accelerator, through the sysfs
//! filesystem.  Some of Intel's MPSS software runtimes and tools,
//! including micnativeloadex, rely on this information … we expose the
//! same information that is provided in the host." (paper §III)
//!
//! The frontend fetches the host table once over the ring and serves it to
//! guest tools as `/sys/class/mic/micN`.

use std::collections::BTreeMap;
use std::sync::Arc;

use vphi_scif::{ScifError, ScifResult};
use vphi_sim_core::Timeline;
use vphi_virtio::Descriptor;

use crate::frontend::FrontendDriver;
use crate::protocol::VphiRequest;

/// The guest's view of one card's sysfs attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestSysfs {
    mic_index: u32,
    attrs: BTreeMap<String, String>,
}

impl GuestSysfs {
    /// Fetch the host's table for `micN` through the paravirtual channel.
    pub fn fetch(
        driver: &Arc<FrontendDriver>,
        mic_index: u32,
        tl: &mut Timeline,
    ) -> ScifResult<GuestSysfs> {
        // Stage a 4 KiB response buffer for the serialized table.
        let buf = driver.kernel().kmalloc(4096, tl).map_err(|_| ScifError::NoMem)?;
        let desc = Descriptor::writable(buf.gpa.0, 4096);
        let resp = driver.transact(&VphiRequest::SysfsRead { mic_index }, &[desc], 0, tl)?;
        let (len, _) = resp.into_result()?;
        let mut bytes = vec![0u8; len as usize];
        driver.kernel().mem().read(buf.gpa, &mut bytes).map_err(|_| ScifError::Inval)?;
        let _ = driver.kernel().kfree(buf);
        let text = String::from_utf8(bytes).map_err(|_| ScifError::Inval)?;
        Ok(GuestSysfs { mic_index, attrs: parse_table(&text) })
    }

    pub fn mic_index(&self) -> u32 {
        self.mic_index
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The preflight micnativeloadex performs: an online x100 card.
    pub fn card_is_usable(&self) -> bool {
        self.get("state") == Some("online") && self.get("family") == Some("x100")
    }
}

fn parse_table(text: &str) -> BTreeMap<String, String> {
    text.lines()
        .filter_map(|line| {
            let (k, v) = line.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_parser_handles_noise() {
        let t = parse_table("a=1\nb = two \n\nmalformed-line\nc=3");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get("a").map(String::as_str), Some("1"));
        assert_eq!(t.get("b").map(String::as_str), Some("two"));
        assert_eq!(t.get("c").map(String::as_str), Some("3"));
    }

    #[test]
    fn usability_check() {
        let mut attrs = BTreeMap::new();
        attrs.insert("state".into(), "online".into());
        attrs.insert("family".into(), "x100".into());
        let s = GuestSysfs { mic_index: 0, attrs: attrs.clone() };
        assert!(s.card_is_usable());

        attrs.insert("state".into(), "offline".into());
        let s = GuestSysfs { mic_index: 0, attrs };
        assert!(!s.card_is_usable());
    }
}

//! The `scif_mmap` two-level mapping.
//!
//! "In vPHI, we perform a two-level mapping, one from the user-supplied
//! address to a guest physical frame and a second from the guest physical
//! frame to the host physical frame, which corresponds to Xeon Phi
//! memory." (paper §III)
//!
//! The backend installs a `VM_PFNPHI`-tagged VMA whose backing is the host
//! SCIF [`MappedRegion`]; guest dereferences fault through
//! [`vphi_vmm::KvmModule`], which resolves the stored device PFN and
//! serves the bytes from device memory.  This adapter is the bridge
//! between the VMM's SCIF-agnostic fault path and the SCIF mapping.

use vphi_scif::MappedRegion;
use vphi_vmm::vma::{PfnBacking, VmaError};

/// Adapts a host-side SCIF mapping into a VMA backing.
pub struct MappedRegionBacking {
    region: MappedRegion,
}

impl MappedRegionBacking {
    pub fn new(region: MappedRegion) -> Self {
        MappedRegionBacking { region }
    }

    pub fn region(&self) -> &MappedRegion {
        &self.region
    }
}

impl PfnBacking for MappedRegionBacking {
    fn read(&self, at: u64, out: &mut [u8]) -> Result<(), VmaError> {
        self.region.load(at, out).map_err(|_| VmaError::BadBacking)
    }

    fn write(&self, at: u64, data: &[u8]) -> Result<(), VmaError> {
        self.region.store(at, data).map_err(|_| VmaError::BadBacking)
    }

    fn device_pfn(&self, page_index: u64) -> Option<u64> {
        self.region.device_pfn(page_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_scif::window::WindowBacking;
    use vphi_scif::{Port, Prot, ScifAddr, ScifFabric, HOST_NODE};
    use vphi_sim_core::cost::PAGE_SIZE;
    use vphi_sim_core::{CostModel, Timeline, VirtualClock};

    /// Build a host-side mapping of a device-memory window.
    fn device_mapping() -> MappedRegion {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let dev = fabric.add_device(Arc::clone(&board));

        let server = fabric.open(dev).unwrap();
        server.bind(Port(33)).unwrap();
        server.listen(1).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acc = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        let mut tl = Timeline::new();
        client.connect(ScifAddr::new(dev, Port(33)), &mut tl).unwrap();
        let conn = acc.join().unwrap();

        let region = board.memory().alloc(2 * PAGE_SIZE).unwrap();
        let roff = conn
            .register(None, 2 * PAGE_SIZE, Prot::READ_WRITE, WindowBacking::Device(region))
            .unwrap();
        // Give the fabric a beat so nothing is torn down mid-test.
        std::thread::sleep(Duration::from_millis(1));
        client.mmap(roff, 2 * PAGE_SIZE, Prot::READ_WRITE).unwrap()
    }

    #[test]
    fn backing_round_trips_to_device_memory() {
        let backing = MappedRegionBacking::new(device_mapping());
        backing.write(100, b"two-level").unwrap();
        let mut out = [0u8; 9];
        backing.read(100, &mut out).unwrap();
        assert_eq!(&out, b"two-level");
    }

    #[test]
    fn backing_exposes_device_pfns() {
        let backing = MappedRegionBacking::new(device_mapping());
        let p0 = backing.device_pfn(0).expect("device-backed");
        let p1 = backing.device_pfn(1).expect("device-backed");
        assert_eq!(p1, p0 + 1);
    }

    #[test]
    fn out_of_bounds_becomes_vma_error() {
        let backing = MappedRegionBacking::new(device_mapping());
        let mut out = [0u8; 8];
        assert_eq!(backing.read(2 * PAGE_SIZE, &mut out).err(), Some(VmaError::BadBacking));
        assert_eq!(backing.write(2 * PAGE_SIZE - 1, &[0; 8]).err(), Some(VmaError::BadBacking));
    }
}

//! # vphi — paravirtualized SCIF for virtual machines
//!
//! This crate is the reproduction of the paper's contribution: **vPHI**, a
//! split-driver framework that lets multiple QEMU-KVM virtual machines
//! share one Intel Xeon Phi coprocessor by virtualizing Intel's SCIF
//! transport layer (Gerangelos & Koziris, *vPHI: Enabling Xeon Phi
//! Capabilities in Virtual Machines*, 2017).
//!
//! The architecture mirrors the paper's Figure 3:
//!
//! ```text
//!  guest user      libscif-shim (GuestScif)             ── binary-compatible API
//!  guest kernel    vPHI frontend driver (frontend::FrontendDriver)
//!       │            requests + staging chunks on the virtio ring
//!       ▼  kick (vm-exit)
//!  QEMU process    vPHI backend device (backend::BackendDevice)
//!       │            zero-copy guest-buffer mapping, host SCIF calls
//!       ▼  ioctl
//!  host kernel     host SCIF driver (vphi_scif) ── owns the physical card
//!       ▼  PCIe DMA
//!  Xeon Phi        uOS + coi_daemon + application threads
//! ```
//!
//! Key reproduced design points:
//!
//! * **Binary compatibility**: guest code uses [`guest::GuestScif`], whose
//!   surface mirrors libscif exactly; neither "libscif" nor the app change.
//! * **Interrupt-based waiting** (default), plus busy-polling and the
//!   *adaptive* spin-then-sleep generalization of the hybrid scheme the
//!   paper proposes as future work ([`frontend::WaitScheme`]), with
//!   EVENT_IDX-style interrupt suppression in the backend
//!   ([`backend::LaneNotifier`]).
//! * **`KMALLOC_MAX_SIZE` chunking** of large send/recv transfers
//!   (paper §III "implementation details").
//! * **Blocking vs worker dispatch** in the backend per opcode
//!   ([`backend::dispatch_policy`]): `scif_accept` must not freeze the VM.
//! * **Guest memory registration**: guest windows alias guest physical
//!   pages with zero copies ([`backend::GuestWindowBytes`]).
//! * **`scif_mmap` two-level mapping** through `VM_PFNPHI`-tagged VMAs
//!   ([`mmapping`]).
//! * **sysfs re-export** so MPSS tools run unmodified in the guest
//!   ([`sysfs`]).
//!
//! Use [`builder::VphiHost`] to stand up a host with one or more cards and
//! spawn sharing VMs; see the `examples/` directory for complete flows.

pub mod backend;
pub mod builder;
pub mod debugfs;
pub mod frontend;
pub mod guest;
pub mod mmapping;
pub mod protocol;
pub mod sysfs;

pub use builder::{VmConfig, VmConfigBuilder, VphiHost, VphiVm};
pub use frontend::{
    BatchEntry, FrontendDriver, ReapedOp, SpinBudget, WaitBucketProfile, WaitScheme,
};
pub use guest::{GuestScif, Sq, SqEntry};
pub use protocol::{VphiRequest, VphiResponse};
pub use vphi_scif::{Cq, CqEntry, SqFlags, SubmitToken};

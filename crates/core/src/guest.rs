//! The guest-side SCIF API — "libscif" inside the VM.
//!
//! Binary compatibility is the paper's headline property: applications and
//! libscif in the guest are unmodified; the frontend driver intercepts the
//! same `open/ioctl/mmap/poll` surface that the native driver exposes.
//! [`GuestScif`] mirrors [`vphi_scif::ScifEndpoint`] call-for-call, so the
//! benchmark and example code can run the *same* logic natively or inside
//! a VM by swapping the handle type.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vphi_scif::{
    Cq, CqEntry, NodeId, Port, RmaFlags, ScifAddr, ScifError, ScifResult, SqFlags, SubmitToken,
};
use vphi_sim_core::Timeline;
use vphi_trace::OpCtx;
use vphi_virtio::Descriptor;
use vphi_vmm::{Gpa, GuestMemory, KvmModule};

use crate::frontend::{BatchEntry, FrontendDriver};
use crate::protocol::{rma_flags_to_wire, GuestEpd, VphiRequest};

/// A guest user-space buffer in guest physical memory — what an
/// application would `malloc` and then pass to `scif_register`/
/// `scif_vreadfrom`.  Allocated from guest RAM so the backend can pin and
/// alias the real pages (zero-copy).
pub struct GuestBuf {
    mem: Arc<GuestMemory>,
    gpa: Gpa,
    len: u64,
}

impl GuestBuf {
    pub fn alloc(mem: &Arc<GuestMemory>, len: u64) -> ScifResult<Self> {
        let gpa = mem.alloc(len).map_err(|_| ScifError::NoMem)?;
        Ok(GuestBuf { mem: Arc::clone(mem), gpa, len })
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn gpa(&self) -> Gpa {
        self.gpa
    }

    /// Application write into its own buffer.
    pub fn fill(&self, at: u64, data: &[u8]) -> ScifResult<()> {
        if at + data.len() as u64 > self.len {
            return Err(ScifError::Inval);
        }
        self.mem.write(self.gpa.offset(at), data).map_err(|_| ScifError::Inval)
    }

    /// Application read of its own buffer.
    pub fn peek(&self, at: u64, out: &mut [u8]) -> ScifResult<()> {
        if at + out.len() as u64 > self.len {
            return Err(ScifError::Inval);
        }
        self.mem.read(self.gpa.offset(at), out).map_err(|_| ScifError::Inval)
    }

    fn read_desc(&self) -> Descriptor {
        Descriptor::readable(self.gpa.0, self.len as u32)
    }

    fn write_desc(&self) -> Descriptor {
        Descriptor::writable(self.gpa.0, self.len as u32)
    }
}

impl Drop for GuestBuf {
    fn drop(&mut self) {
        let _ = self.mem.free(self.gpa);
    }
}

/// A guest mapping of remote (device) memory created by `scif_mmap`.
/// Dereferences go through the KVM fault path (`VM_PFNPHI`).
pub struct GuestMapped {
    kvm: Arc<KvmModule>,
    driver: Arc<FrontendDriver>,
    vaddr: u64,
    len: u64,
    unmapped: AtomicBool,
}

impl GuestMapped {
    pub fn vaddr(&self) -> u64 {
        self.vaddr
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A guest load (pointer dereference) — no SCIF call involved.
    pub fn load(&self, at: u64, out: &mut [u8], tl: &mut Timeline) -> ScifResult<()> {
        self.kvm.load(self.vaddr + at, out, tl).map_err(|_| ScifError::OutOfRange)
    }

    /// A guest store.
    pub fn store(&self, at: u64, data: &[u8], tl: &mut Timeline) -> ScifResult<()> {
        self.kvm.store(self.vaddr + at, data, tl).map_err(|_| ScifError::OutOfRange)
    }

    pub fn load_u64(&self, at: u64, tl: &mut Timeline) -> ScifResult<u64> {
        let mut b = [0u8; 8];
        self.load(at, &mut b, tl)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn store_u64(&self, at: u64, v: u64, tl: &mut Timeline) -> ScifResult<()> {
        self.store(at, &v.to_le_bytes(), tl)
    }

    /// `scif_munmap`.
    pub fn munmap(&self, tl: &mut Timeline) -> ScifResult<()> {
        if self.unmapped.swap(true, Ordering::AcqRel) {
            return Err(ScifError::Inval);
        }
        self.driver.simple(VphiRequest::Munmap { vaddr: self.vaddr }, tl)?;
        Ok(())
    }
}

/// What one submission-queue entry asks the device to do.  Outbound
/// payloads are captured by value and descriptor targets are resolved at
/// construction, so an [`Sq`] owns everything it needs — no borrows held
/// across the submit call.
enum SqOp {
    /// `scif_send` of one chunk (≤ the driver's staging chunk size).
    Send(Vec<u8>),
    /// `scif_recv` of up to `len` bytes; the payload lands in the reaped
    /// entry's `data`.
    Recv(u64),
    /// `scif_vwriteto`: a guest buffer (already resolved to a descriptor)
    /// → remote window.
    VwriteTo { desc: Descriptor, len: u64, roffset: u64, flags: u8 },
    /// `scif_vreadfrom`: remote window → guest buffer.
    VreadFrom { desc: Descriptor, len: u64, roffset: u64, flags: u8 },
    /// `scif_readfrom` (window-to-window).
    ReadFrom { loffset: u64, len: u64, roffset: u64, flags: u8 },
    /// `scif_writeto` (window-to-window).
    WriteTo { loffset: u64, len: u64, roffset: u64, flags: u8 },
}

/// One submission-queue entry: an operation plus its per-entry flags.
/// Build with the constructors, tune with [`busy_poll`](Self::busy_poll)
/// and [`deadline_ms`](Self::deadline_ms), then push into an [`Sq`].
pub struct SqEntry {
    op: SqOp,
    flags: SqFlags,
}

impl SqEntry {
    /// Send `data` to the peer (one chunk — at most the driver's staging
    /// chunk size, or the submit fails with `EINVAL`).
    pub fn send(data: &[u8]) -> Self {
        SqEntry { op: SqOp::Send(data.to_vec()), flags: SqFlags::default() }
    }

    /// Receive up to `len` bytes; they arrive in the completion's `data`.
    pub fn recv(len: u64) -> Self {
        SqEntry { op: SqOp::Recv(len), flags: SqFlags::default() }
    }

    /// RMA write of `buf` into the peer's registered window at `roffset`.
    pub fn vwriteto(buf: &GuestBuf, roffset: u64, flags: RmaFlags) -> Self {
        SqEntry {
            op: SqOp::VwriteTo {
                desc: buf.read_desc(),
                len: buf.len(),
                roffset,
                flags: rma_flags_to_wire(flags),
            },
            flags: SqFlags::default(),
        }
    }

    /// RMA read of the peer's window at `roffset` into `buf`.
    pub fn vreadfrom(buf: &GuestBuf, roffset: u64, flags: RmaFlags) -> Self {
        SqEntry {
            op: SqOp::VreadFrom {
                desc: buf.write_desc(),
                len: buf.len(),
                roffset,
                flags: rma_flags_to_wire(flags),
            },
            flags: SqFlags::default(),
        }
    }

    /// Window-to-window RMA read.
    pub fn readfrom(loffset: u64, len: u64, roffset: u64, flags: RmaFlags) -> Self {
        SqEntry {
            op: SqOp::ReadFrom { loffset, len, roffset, flags: rma_flags_to_wire(flags) },
            flags: SqFlags::default(),
        }
    }

    /// Window-to-window RMA write.
    pub fn writeto(loffset: u64, len: u64, roffset: u64, flags: RmaFlags) -> Self {
        SqEntry {
            op: SqOp::WriteTo { loffset, len, roffset, flags: rma_flags_to_wire(flags) },
            flags: SqFlags::default(),
        }
    }

    /// Pin this entry's wait to pure busy-polling (latency-critical).
    pub fn busy_poll(mut self) -> Self {
        self.flags.busy_poll = true;
        self
    }

    /// First re-kick deadline for this entry's reap, in milliseconds.
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.flags.deadline_ms = Some(ms);
        self
    }
}

/// A submission queue: entries accumulated between doorbells.  One
/// [`GuestScif::submit`] publishes every entry and rings at most one
/// doorbell per queue lane.
#[derive(Default)]
pub struct Sq {
    entries: Vec<SqEntry>,
}

impl Sq {
    pub fn new() -> Self {
        Sq::default()
    }

    pub fn push(&mut self, entry: SqEntry) {
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A SCIF endpoint descriptor inside the guest.
pub struct GuestScif {
    driver: Arc<FrontendDriver>,
    epd: GuestEpd,
    closed: AtomicBool,
}

impl std::fmt::Debug for GuestScif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GuestScif(epd={})", self.epd)
    }
}

impl GuestScif {
    /// `scif_open` through the paravirtual path.
    pub fn open<'a>(driver: &Arc<FrontendDriver>, ctx: impl Into<OpCtx<'a>>) -> ScifResult<Self> {
        let (epd, _) = driver.simple(VphiRequest::Open, ctx)?;
        Ok(GuestScif { driver: Arc::clone(driver), epd, closed: AtomicBool::new(false) })
    }

    pub fn epd(&self) -> GuestEpd {
        self.epd
    }

    pub fn driver(&self) -> &Arc<FrontendDriver> {
        &self.driver
    }

    /// Pin (or unpin) this endpoint to busy-polling: with the override on,
    /// its requests never arm the used-ring threshold and never sleep,
    /// regardless of the VM-wide [`crate::frontend::WaitScheme`] — the
    /// latency-over-CPU knob for a hot endpoint.
    pub fn set_busy_poll(&self, on: bool) {
        self.driver.set_busy_poll(self.epd, on);
    }

    /// `scif_bind`.
    pub fn bind<'a>(&self, port: Port, ctx: impl Into<OpCtx<'a>>) -> ScifResult<Port> {
        let (p, _) = self.driver.simple(VphiRequest::Bind { epd: self.epd, port: port.0 }, ctx)?;
        Ok(Port(p as u16))
    }

    /// `scif_listen`.
    pub fn listen<'a>(&self, backlog: u32, ctx: impl Into<OpCtx<'a>>) -> ScifResult<()> {
        self.driver.simple(VphiRequest::Listen { epd: self.epd, backlog }, ctx)?;
        Ok(())
    }

    /// `scif_connect`.
    pub fn connect<'a>(&self, dst: ScifAddr, ctx: impl Into<OpCtx<'a>>) -> ScifResult<ScifAddr> {
        let (node, port) = self.driver.simple(
            VphiRequest::Connect { epd: self.epd, node: dst.node.0, port: dst.port.0 },
            ctx,
        )?;
        Ok(ScifAddr::new(NodeId(node as u16), Port(port as u16)))
    }

    /// `scif_accept` (blocking).
    pub fn accept<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<(GuestScif, ScifAddr)> {
        let (epd, packed) = self.driver.simple(VphiRequest::Accept { epd: self.epd }, ctx)?;
        let peer = ScifAddr::new(NodeId((packed >> 32) as u16), Port(packed as u16));
        Ok((
            GuestScif { driver: Arc::clone(&self.driver), epd, closed: AtomicBool::new(false) },
            peer,
        ))
    }

    /// `scif_send` — staged through kmalloc chunks, one ring transaction
    /// per chunk (paper §III).
    pub fn send<'a>(&self, data: &[u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> {
        // A multi-chunk send is one logical request: adopt the trace root
        // here so every per-chunk transaction lands under a single trace.
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.driver.channel().trace, "send");
        let r = (|ctx: &mut OpCtx<'_>| {
            let mut sent = 0usize;
            for chunk in data.chunks(self.driver.chunk_size() as usize) {
                let (bufs, descs) = self.driver.stage_out(chunk, ctx.tl)?;
                let resp = self.driver.transact(
                    &VphiRequest::Send { epd: self.epd, len: chunk.len() as u32 },
                    &descs,
                    chunk.len() as u64,
                    &mut *ctx,
                )?;
                self.driver.free_staging(bufs);
                let (n, _) = resp.into_result()?;
                sent += n as usize;
            }
            Ok(sent)
        })(&mut ctx);
        ctx.finish_root(root, data.len() as u64);
        r
    }

    /// `scif_recv` (blocking until `out` is full or the peer closed).
    pub fn recv<'a>(&self, out: &mut [u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.driver.channel().trace, "recv");
        let len = out.len() as u64;
        let r = (|ctx: &mut OpCtx<'_>| {
            let mut got = 0usize;
            while got < out.len() {
                let want = (out.len() - got).min(self.driver.chunk_size() as usize);
                let (bufs, descs) = self.driver.stage_in(want as u64, ctx.tl)?;
                let resp = self.driver.transact(
                    &VphiRequest::Recv { epd: self.epd, len: want as u32 },
                    &descs,
                    want as u64,
                    &mut *ctx,
                )?;
                let (n, _) = resp.into_result()?;
                self.driver.unstage(bufs, &mut out[got..got + n as usize], ctx.tl)?;
                got += n as usize;
                if (n as usize) < want {
                    break; // peer closed
                }
            }
            Ok(got)
        })(&mut ctx);
        ctx.finish_root(root, len);
        r
    }

    /// Timed-bulk-lane send: the same per-chunk staging costs as a real
    /// send of `len` bytes (kmalloc + copy + one ring transaction per
    /// `KMALLOC_MAX_SIZE`), with no payload bytes moved.
    pub fn send_timed<'a>(&self, len: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        if len == 0 {
            return Ok(0);
        }
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.driver.channel().trace, "send_timed");
        let r = (|ctx: &mut OpCtx<'_>| {
            let cost = Arc::clone(self.driver.kernel().cost());
            let mut sent = 0u64;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(self.driver.chunk_size());
                // Staging: one kmalloc'd chunk plus the user→kernel copy.
                let buf =
                    self.driver.kernel().kmalloc(chunk, ctx.tl).map_err(|_| ScifError::NoMem)?;
                ctx.tl.charge(vphi_sim_core::SpanLabel::GuestCopy, cost.cpu_copy(chunk));
                let resp = self.driver.transact(
                    &VphiRequest::SendTimed { epd: self.epd, len: chunk },
                    &[],
                    chunk,
                    &mut *ctx,
                );
                let _ = self.driver.kernel().kfree(buf);
                let (n, _) = resp?.into_result()?;
                sent += n;
                remaining -= chunk;
            }
            Ok(sent)
        })(&mut ctx);
        ctx.finish_root(root, len);
        r
    }

    /// Timed-bulk-lane receive.
    pub fn recv_timed<'a>(&self, len: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let mut ctx = ctx.into();
        let root = ctx.adopt_root(&self.driver.channel().trace, "recv_timed");
        let r = (|ctx: &mut OpCtx<'_>| {
            let cost = Arc::clone(self.driver.kernel().cost());
            let mut got = 0u64;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(self.driver.chunk_size());
                let buf =
                    self.driver.kernel().kmalloc(chunk, ctx.tl).map_err(|_| ScifError::NoMem)?;
                let resp = self.driver.transact(
                    &VphiRequest::RecvTimed { epd: self.epd, len: chunk },
                    &[],
                    chunk,
                    &mut *ctx,
                );
                ctx.tl.charge(vphi_sim_core::SpanLabel::GuestCopy, cost.cpu_copy(chunk));
                let _ = self.driver.kernel().kfree(buf);
                let (n, _) = resp?.into_result()?;
                got += n;
                remaining -= chunk;
            }
            Ok(got)
        })(&mut ctx);
        ctx.finish_root(root, len);
        r
    }

    /// `scif_register` of a guest buffer (the buffer's pages are pinned in
    /// the guest, then re-pinned/translated by the backend).
    pub fn register<'a>(
        &self,
        buf: &GuestBuf,
        prot: vphi_scif::Prot,
        fixed_offset: Option<u64>,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<u64> {
        let resp = self.driver.transact(
            &VphiRequest::Register {
                epd: self.epd,
                len: buf.len(),
                prot: prot_wire(prot),
                fixed_offset: fixed_offset.unwrap_or(0),
                has_fixed: fixed_offset.is_some(),
            },
            &[buf.read_desc()],
            0,
            ctx,
        )?;
        let (off, _) = resp.into_result()?;
        Ok(off)
    }

    /// `scif_unregister`.
    pub fn unregister<'a>(
        &self,
        offset: u64,
        len: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        self.driver.simple(VphiRequest::Unregister { epd: self.epd, offset, len }, ctx)?;
        Ok(())
    }

    /// `scif_vreadfrom`: remote window → guest buffer.
    pub fn vreadfrom<'a>(
        &self,
        buf: &GuestBuf,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let resp = self.driver.transact(
            &VphiRequest::VreadFrom {
                epd: self.epd,
                roffset,
                len: buf.len(),
                flags: rma_flags_to_wire(flags),
            },
            &[buf.write_desc()],
            buf.len(),
            ctx,
        )?;
        resp.into_result()?;
        Ok(())
    }

    /// `scif_vwriteto`: guest buffer → remote window.
    pub fn vwriteto<'a>(
        &self,
        buf: &GuestBuf,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let resp = self.driver.transact(
            &VphiRequest::VwriteTo {
                epd: self.epd,
                roffset,
                len: buf.len(),
                flags: rma_flags_to_wire(flags),
            },
            &[buf.read_desc()],
            buf.len(),
            ctx,
        )?;
        resp.into_result()?;
        Ok(())
    }

    /// `scif_readfrom` (window-to-window).
    pub fn readfrom<'a>(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        self.driver.simple(
            VphiRequest::ReadFrom {
                epd: self.epd,
                loffset,
                len,
                roffset,
                flags: rma_flags_to_wire(flags),
            },
            ctx,
        )?;
        Ok(())
    }

    /// `scif_writeto` (window-to-window).
    pub fn writeto<'a>(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        self.driver.simple(
            VphiRequest::WriteTo {
                epd: self.epd,
                loffset,
                len,
                roffset,
                flags: rma_flags_to_wire(flags),
            },
            ctx,
        )?;
        Ok(())
    }

    /// `scif_mmap`: returns a dereferenceable guest mapping.
    pub fn mmap<'a>(
        &self,
        kvm: &Arc<KvmModule>,
        offset: u64,
        len: u64,
        prot: vphi_scif::Prot,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<GuestMapped> {
        let (vaddr, _) = self
            .driver
            .simple(VphiRequest::Mmap { epd: self.epd, offset, len, prot: prot_wire(prot) }, ctx)?;
        Ok(GuestMapped {
            kvm: Arc::clone(kvm),
            driver: Arc::clone(&self.driver),
            vaddr,
            len,
            unmapped: AtomicBool::new(false),
        })
    }

    /// `scif_fence_mark`.
    pub fn fence_mark<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let (m, _) = self.driver.simple(VphiRequest::FenceMark { epd: self.epd }, ctx)?;
        Ok(m)
    }

    /// `scif_fence_wait`.
    pub fn fence_wait<'a>(&self, marker: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<()> {
        self.driver.simple(VphiRequest::FenceWait { epd: self.epd, marker }, ctx)?;
        Ok(())
    }

    /// `scif_fence_signal`.
    pub fn fence_signal<'a>(
        &self,
        loff: u64,
        lval: u64,
        roff: u64,
        rval: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        self.driver
            .simple(VphiRequest::FenceSignal { epd: self.epd, loff, lval, roff, rval }, ctx)?;
        Ok(())
    }

    /// `scif_poll` on this endpoint: returns the ready events, waiting up
    /// to `timeout_ms` of wall time.  A nonzero timeout is dispatched on a
    /// backend worker so the VM is not frozen while the poll parks.
    pub fn poll<'a>(
        &self,
        events: vphi_scif::PollEvents,
        timeout_ms: u32,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<vphi_scif::PollEvents> {
        let (re, _) = self.driver.simple(
            VphiRequest::Poll {
                epd: self.epd,
                events: crate::protocol::poll_events_to_wire(events),
                timeout_ms,
            },
            ctx,
        )?;
        Ok(crate::protocol::poll_events_from_wire(re as u8))
    }

    /// `scif_get_node_ids` — number of SCIF nodes visible to the guest.
    pub fn node_count<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let (count, _) = self.driver.simple(VphiRequest::GetNodeIds, ctx)?;
        Ok(count)
    }

    /// Submit every entry of `sq`, draining it, and return one token per
    /// entry in order.  All entries are marshaled and published before
    /// any doorbell rings; each queue lane the batch touched then gets
    /// exactly one kick — the vm-exit cost is amortized across the batch.
    ///
    /// Tokens are reaped with [`reap`](Self::reap); until then the driver
    /// owns the entries' staging.  An entry that cannot be staged fails
    /// the whole submit before anything reaches a ring.
    pub fn submit<'a>(
        &self,
        sq: &mut Sq,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<Vec<SubmitToken>> {
        let mut ctx = ctx.into();
        let entries = std::mem::take(&mut sq.entries);
        for e in &entries {
            if let SqOp::Send(data) = &e.op {
                if data.len() as u64 > self.driver.chunk_size() {
                    return Err(ScifError::Inval);
                }
            }
        }
        let mut batch = Vec::with_capacity(entries.len());
        let mut staged: Result<(), ScifError> = Ok(());
        for e in entries {
            let entry = match e.op {
                SqOp::Send(data) => {
                    let (bufs, descs) = match self.driver.stage_out(&data, ctx.tl) {
                        Ok(s) => s,
                        Err(err) => {
                            staged = Err(err);
                            break;
                        }
                    };
                    BatchEntry {
                        req: VphiRequest::Send { epd: self.epd, len: data.len() as u32 },
                        staging: bufs,
                        descs,
                        payload_bytes: data.len() as u64,
                        inbound: None,
                        flags: e.flags,
                    }
                }
                SqOp::Recv(len) => {
                    let want = len.min(self.driver.chunk_size());
                    let (bufs, descs) = match self.driver.stage_in(want, ctx.tl) {
                        Ok(s) => s,
                        Err(err) => {
                            staged = Err(err);
                            break;
                        }
                    };
                    BatchEntry {
                        req: VphiRequest::Recv { epd: self.epd, len: want as u32 },
                        staging: bufs,
                        descs,
                        payload_bytes: want,
                        inbound: Some(want),
                        flags: e.flags,
                    }
                }
                SqOp::VwriteTo { desc, len, roffset, flags } => BatchEntry {
                    req: VphiRequest::VwriteTo { epd: self.epd, roffset, len, flags },
                    staging: Vec::new(),
                    descs: vec![desc],
                    payload_bytes: len,
                    inbound: None,
                    flags: e.flags,
                },
                SqOp::VreadFrom { desc, len, roffset, flags } => BatchEntry {
                    req: VphiRequest::VreadFrom { epd: self.epd, roffset, len, flags },
                    staging: Vec::new(),
                    descs: vec![desc],
                    payload_bytes: len,
                    inbound: None,
                    flags: e.flags,
                },
                SqOp::ReadFrom { loffset, len, roffset, flags } => BatchEntry {
                    req: VphiRequest::ReadFrom { epd: self.epd, loffset, len, roffset, flags },
                    staging: Vec::new(),
                    descs: Vec::new(),
                    payload_bytes: 0,
                    inbound: None,
                    flags: e.flags,
                },
                SqOp::WriteTo { loffset, len, roffset, flags } => BatchEntry {
                    req: VphiRequest::WriteTo { epd: self.epd, loffset, len, roffset, flags },
                    staging: Vec::new(),
                    descs: Vec::new(),
                    payload_bytes: 0,
                    inbound: None,
                    flags: e.flags,
                },
            };
            batch.push(entry);
        }
        if let Err(err) = staged {
            for entry in batch {
                self.driver.free_staging(entry.staging);
            }
            return Err(err);
        }
        let tokens = self.driver.submit_batch(batch, &mut ctx)?;
        Ok(tokens.into_iter().map(SubmitToken::from_raw).collect())
    }

    /// Reap completions for the tokens `cq` is watching: everything
    /// already finished is taken without waiting, then the reap blocks —
    /// through the same adaptive spin-then-sleep waiter as the blocking
    /// calls — until at least `min` tokens land, never reaping more than
    /// `budget`.  Returns how many entries were added to `cq`.
    pub fn reap<'a>(
        &self,
        cq: &mut Cq,
        min: usize,
        budget: usize,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<usize> {
        let mut ctx = ctx.into();
        let interest: Vec<u64> = cq.outstanding().iter().map(|t| t.raw()).collect();
        let reaped = self.driver.reap_batch(&interest, min, budget, &mut ctx);
        let mut n = 0usize;
        for r in reaped {
            if cq.complete(CqEntry {
                token: SubmitToken::from_raw(r.token),
                result: r.result,
                data: r.data,
            }) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// `scif_close`.  Outstanding submission tokens on this endpoint are
    /// marked canceled: their reaps still drain the backend completions
    /// (nothing leaks) but report `ECANCELED`.
    pub fn close<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.driver.cancel_epd(self.epd);
        self.driver.simple(VphiRequest::Close { epd: self.epd }, ctx)?;
        Ok(())
    }
}

impl Drop for GuestScif {
    fn drop(&mut self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            let mut tl = Timeline::new();
            let _ = self.driver.simple(VphiRequest::Close { epd: self.epd }, &mut tl);
        }
    }
}

fn prot_wire(p: vphi_scif::Prot) -> u8 {
    (p.readable() as u8) | ((p.writable() as u8) << 1)
}

//! The vPHI wire protocol.
//!
//! One request = one descriptor chain on the virtio ring:
//!
//! ```text
//! [0] readable : 64-byte request header (this module's encoding)
//! [1..] readable : request payload (send data, staged in kmalloc chunks)
//!       writable : response payload (recv data / RMA read target)
//! [last] writable: 32-byte response header
//! ```
//!
//! The header encodings are fixed-size little-endian structs so the
//! backend can decode them from a zero-copy guest-memory view.  SCIF
//! errors travel as negative errno values, exactly as the real ioctl
//! interface reports them.

use vphi_scif::{ScifError, ScifResult};

/// Size of an encoded request header.
pub const REQ_SIZE: usize = 64;
/// Size of an encoded response header.
pub const RESP_SIZE: usize = 32;

/// Guest-side endpoint handle (index into the backend's endpoint table).
pub type GuestEpd = u64;

/// The SCIF operations vPHI forwards (paper §III: "Most of the SCIF
/// functionality is exposed to user space through different ioctl()
/// commands").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VphiRequest {
    /// `scif_open` → new guest endpoint handle.
    Open,
    /// `scif_bind(epd, port)`; port 0 = ephemeral.
    Bind { epd: GuestEpd, port: u16 },
    /// `scif_listen(epd, backlog)`.
    Listen { epd: GuestEpd, backlog: u32 },
    /// `scif_connect(epd, node:port)`.
    Connect { epd: GuestEpd, node: u16, port: u16 },
    /// `scif_accept(epd)` — dispatched on a worker (may wait forever).
    Accept { epd: GuestEpd },
    /// `scif_send(epd, …, len)`; data in the chain's readable payload.
    Send { epd: GuestEpd, len: u32 },
    /// `scif_recv(epd, …, len)`; data lands in the writable payload.
    Recv { epd: GuestEpd, len: u32 },
    /// `scif_register` of pinned guest pages (payload descriptor holds the
    /// guest-physical base).
    Register { epd: GuestEpd, len: u64, prot: u8, fixed_offset: u64, has_fixed: bool },
    /// `scif_unregister(epd, offset, len)`.
    Unregister { epd: GuestEpd, offset: u64, len: u64 },
    /// `scif_vreadfrom`: remote window → pinned guest buffer.
    VreadFrom { epd: GuestEpd, roffset: u64, len: u64, flags: u8 },
    /// `scif_vwriteto`: pinned guest buffer → remote window.
    VwriteTo { epd: GuestEpd, roffset: u64, len: u64, flags: u8 },
    /// `scif_readfrom` (window-to-window).
    ReadFrom { epd: GuestEpd, loffset: u64, len: u64, roffset: u64, flags: u8 },
    /// `scif_writeto` (window-to-window).
    WriteTo { epd: GuestEpd, loffset: u64, len: u64, roffset: u64, flags: u8 },
    /// `scif_mmap(epd, offset, len, prot)` → guest virtual address.
    Mmap { epd: GuestEpd, offset: u64, len: u64, prot: u8 },
    /// `scif_munmap(vaddr)`.
    Munmap { vaddr: u64 },
    /// `scif_fence_mark(epd)` → marker.
    FenceMark { epd: GuestEpd },
    /// `scif_fence_wait(epd, marker)`.
    FenceWait { epd: GuestEpd, marker: u64 },
    /// `scif_fence_signal(epd, loff, lval, roff, rval)`.
    FenceSignal { epd: GuestEpd, loff: u64, lval: u64, roff: u64, rval: u64 },
    /// `scif_close(epd)`.
    Close { epd: GuestEpd },
    /// Read one host sysfs attribute (value returned in the writable
    /// payload).
    SysfsRead { mic_index: u32 },
    /// `scif_get_node_ids`.
    GetNodeIds,
    /// Timed-bulk-lane send of `len` virtual bytes (one staging chunk).
    SendTimed { epd: GuestEpd, len: u64 },
    /// Timed-bulk-lane receive of `len` virtual bytes.
    RecvTimed { epd: GuestEpd, len: u64 },
    /// `scif_poll` on one endpoint: `events` is the interest mask
    /// (bit 0 = IN, bit 1 = OUT); waits up to `timeout_ms` of wall time.
    Poll { epd: GuestEpd, events: u8, timeout_ms: u32 },
}

impl VphiRequest {
    fn opcode(&self) -> u8 {
        match self {
            VphiRequest::Open => 1,
            VphiRequest::Bind { .. } => 2,
            VphiRequest::Listen { .. } => 3,
            VphiRequest::Connect { .. } => 4,
            VphiRequest::Accept { .. } => 5,
            VphiRequest::Send { .. } => 6,
            VphiRequest::Recv { .. } => 7,
            VphiRequest::Register { .. } => 8,
            VphiRequest::Unregister { .. } => 9,
            VphiRequest::VreadFrom { .. } => 10,
            VphiRequest::VwriteTo { .. } => 11,
            VphiRequest::ReadFrom { .. } => 12,
            VphiRequest::WriteTo { .. } => 13,
            VphiRequest::Mmap { .. } => 14,
            VphiRequest::Munmap { .. } => 15,
            VphiRequest::FenceMark { .. } => 16,
            VphiRequest::FenceWait { .. } => 17,
            VphiRequest::FenceSignal { .. } => 18,
            VphiRequest::Close { .. } => 19,
            VphiRequest::SysfsRead { .. } => 20,
            VphiRequest::GetNodeIds => 21,
            VphiRequest::SendTimed { .. } => 22,
            VphiRequest::RecvTimed { .. } => 23,
            VphiRequest::Poll { .. } => 24,
        }
    }

    /// The endpoint identity the frontend's queue router hashes: requests
    /// naming the same endpoint must stay FIFO with respect to each other,
    /// so they all map to the same virtqueue.  Endpoint-less operations
    /// return `None` and ride queue 0.  Exhaustive on purpose (and enforced
    /// by the `protocol-exhaustive` lint): a new opcode must decide its
    /// routing identity explicitly.
    pub fn routing_epd(&self) -> Option<GuestEpd> {
        match *self {
            VphiRequest::Open
            | VphiRequest::Munmap { .. }
            | VphiRequest::SysfsRead { .. }
            | VphiRequest::GetNodeIds => None,
            VphiRequest::Bind { epd, .. }
            | VphiRequest::Listen { epd, .. }
            | VphiRequest::Connect { epd, .. }
            | VphiRequest::Accept { epd }
            | VphiRequest::Send { epd, .. }
            | VphiRequest::Recv { epd, .. }
            | VphiRequest::Register { epd, .. }
            | VphiRequest::Unregister { epd, .. }
            | VphiRequest::VreadFrom { epd, .. }
            | VphiRequest::VwriteTo { epd, .. }
            | VphiRequest::ReadFrom { epd, .. }
            | VphiRequest::WriteTo { epd, .. }
            | VphiRequest::Mmap { epd, .. }
            | VphiRequest::FenceMark { epd }
            | VphiRequest::FenceWait { epd, .. }
            | VphiRequest::FenceSignal { epd, .. }
            | VphiRequest::Close { epd }
            | VphiRequest::SendTimed { epd, .. }
            | VphiRequest::RecvTimed { epd, .. }
            | VphiRequest::Poll { epd, .. } => Some(epd),
        }
    }

    /// Human-readable opcode name (for traces).
    pub fn name(&self) -> &'static str {
        match self {
            VphiRequest::Open => "open",
            VphiRequest::Bind { .. } => "bind",
            VphiRequest::Listen { .. } => "listen",
            VphiRequest::Connect { .. } => "connect",
            VphiRequest::Accept { .. } => "accept",
            VphiRequest::Send { .. } => "send",
            VphiRequest::Recv { .. } => "recv",
            VphiRequest::Register { .. } => "register",
            VphiRequest::Unregister { .. } => "unregister",
            VphiRequest::VreadFrom { .. } => "vreadfrom",
            VphiRequest::VwriteTo { .. } => "vwriteto",
            VphiRequest::ReadFrom { .. } => "readfrom",
            VphiRequest::WriteTo { .. } => "writeto",
            VphiRequest::Mmap { .. } => "mmap",
            VphiRequest::Munmap { .. } => "munmap",
            VphiRequest::FenceMark { .. } => "fence_mark",
            VphiRequest::FenceWait { .. } => "fence_wait",
            VphiRequest::FenceSignal { .. } => "fence_signal",
            VphiRequest::Close { .. } => "close",
            VphiRequest::SysfsRead { .. } => "sysfs_read",
            VphiRequest::GetNodeIds => "get_node_ids",
            VphiRequest::SendTimed { .. } => "send_timed",
            VphiRequest::RecvTimed { .. } => "recv_timed",
            VphiRequest::Poll { .. } => "poll",
        }
    }

    /// Encode into the fixed 64-byte header.
    pub fn encode(&self) -> [u8; REQ_SIZE] {
        let mut b = [0u8; REQ_SIZE];
        b[0] = self.opcode();
        let mut w = FieldWriter { buf: &mut b, at: 8 };
        match *self {
            VphiRequest::Open | VphiRequest::GetNodeIds => {}
            VphiRequest::Bind { epd, port } => {
                w.u64(epd);
                w.u64(port as u64);
            }
            VphiRequest::Listen { epd, backlog } => {
                w.u64(epd);
                w.u64(backlog as u64);
            }
            VphiRequest::Connect { epd, node, port } => {
                w.u64(epd);
                w.u64(node as u64);
                w.u64(port as u64);
            }
            VphiRequest::Accept { epd }
            | VphiRequest::FenceMark { epd }
            | VphiRequest::Close { epd } => w.u64(epd),
            VphiRequest::Send { epd, len } | VphiRequest::Recv { epd, len } => {
                w.u64(epd);
                w.u64(len as u64);
            }
            VphiRequest::Register { epd, len, prot, fixed_offset, has_fixed } => {
                w.u64(epd);
                w.u64(len);
                w.u64(prot as u64);
                w.u64(fixed_offset);
                w.u64(has_fixed as u64);
            }
            VphiRequest::Unregister { epd, offset, len } => {
                w.u64(epd);
                w.u64(offset);
                w.u64(len);
            }
            VphiRequest::VreadFrom { epd, roffset, len, flags }
            | VphiRequest::VwriteTo { epd, roffset, len, flags } => {
                w.u64(epd);
                w.u64(roffset);
                w.u64(len);
                w.u64(flags as u64);
            }
            VphiRequest::ReadFrom { epd, loffset, len, roffset, flags }
            | VphiRequest::WriteTo { epd, loffset, len, roffset, flags } => {
                w.u64(epd);
                w.u64(loffset);
                w.u64(len);
                w.u64(roffset);
                w.u64(flags as u64);
            }
            VphiRequest::Mmap { epd, offset, len, prot } => {
                w.u64(epd);
                w.u64(offset);
                w.u64(len);
                w.u64(prot as u64);
            }
            VphiRequest::Munmap { vaddr } => w.u64(vaddr),
            VphiRequest::FenceWait { epd, marker } => {
                w.u64(epd);
                w.u64(marker);
            }
            VphiRequest::FenceSignal { epd, loff, lval, roff, rval } => {
                w.u64(epd);
                w.u64(loff);
                w.u64(lval);
                w.u64(roff);
                w.u64(rval);
            }
            VphiRequest::SysfsRead { mic_index } => w.u64(mic_index as u64),
            VphiRequest::SendTimed { epd, len } | VphiRequest::RecvTimed { epd, len } => {
                w.u64(epd);
                w.u64(len);
            }
            VphiRequest::Poll { epd, events, timeout_ms } => {
                w.u64(epd);
                w.u64(events as u64);
                w.u64(timeout_ms as u64);
            }
        }
        b
    }

    /// Decode from a header buffer.
    pub fn decode(b: &[u8]) -> Option<VphiRequest> {
        if b.len() < REQ_SIZE {
            return None;
        }
        let mut r = FieldReader { buf: b, at: 8 };
        Some(match b[0] {
            1 => VphiRequest::Open,
            2 => VphiRequest::Bind { epd: r.u64(), port: r.u64() as u16 },
            3 => VphiRequest::Listen { epd: r.u64(), backlog: r.u64() as u32 },
            4 => VphiRequest::Connect { epd: r.u64(), node: r.u64() as u16, port: r.u64() as u16 },
            5 => VphiRequest::Accept { epd: r.u64() },
            6 => VphiRequest::Send { epd: r.u64(), len: r.u64() as u32 },
            7 => VphiRequest::Recv { epd: r.u64(), len: r.u64() as u32 },
            8 => VphiRequest::Register {
                epd: r.u64(),
                len: r.u64(),
                prot: r.u64() as u8,
                fixed_offset: r.u64(),
                has_fixed: r.u64() != 0,
            },
            9 => VphiRequest::Unregister { epd: r.u64(), offset: r.u64(), len: r.u64() },
            10 => VphiRequest::VreadFrom {
                epd: r.u64(),
                roffset: r.u64(),
                len: r.u64(),
                flags: r.u64() as u8,
            },
            11 => VphiRequest::VwriteTo {
                epd: r.u64(),
                roffset: r.u64(),
                len: r.u64(),
                flags: r.u64() as u8,
            },
            12 => VphiRequest::ReadFrom {
                epd: r.u64(),
                loffset: r.u64(),
                len: r.u64(),
                roffset: r.u64(),
                flags: r.u64() as u8,
            },
            13 => VphiRequest::WriteTo {
                epd: r.u64(),
                loffset: r.u64(),
                len: r.u64(),
                roffset: r.u64(),
                flags: r.u64() as u8,
            },
            14 => VphiRequest::Mmap {
                epd: r.u64(),
                offset: r.u64(),
                len: r.u64(),
                prot: r.u64() as u8,
            },
            15 => VphiRequest::Munmap { vaddr: r.u64() },
            16 => VphiRequest::FenceMark { epd: r.u64() },
            17 => VphiRequest::FenceWait { epd: r.u64(), marker: r.u64() },
            18 => VphiRequest::FenceSignal {
                epd: r.u64(),
                loff: r.u64(),
                lval: r.u64(),
                roff: r.u64(),
                rval: r.u64(),
            },
            19 => VphiRequest::Close { epd: r.u64() },
            20 => VphiRequest::SysfsRead { mic_index: r.u64() as u32 },
            21 => VphiRequest::GetNodeIds,
            22 => VphiRequest::SendTimed { epd: r.u64(), len: r.u64() },
            23 => VphiRequest::RecvTimed { epd: r.u64(), len: r.u64() },
            24 => VphiRequest::Poll {
                epd: r.u64(),
                events: r.u64() as u8,
                timeout_ms: r.u64() as u32,
            },
            _ => return None,
        })
    }
}

struct FieldWriter<'a> {
    buf: &'a mut [u8],
    at: usize,
}

impl FieldWriter<'_> {
    fn u64(&mut self, v: u64) {
        self.buf[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
}

struct FieldReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl FieldReader<'_> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.at..self.at + 8].try_into().expect("8 bytes"));
        self.at += 8;
        v
    }
}

/// The response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VphiResponse {
    /// 0 on success, negative errno on failure.
    pub status: i64,
    /// Primary return value (epd, port, byte count, offset, vaddr, …).
    pub val0: u64,
    /// Secondary return value (peer node, marker hi, …).
    pub val1: u64,
}

impl VphiResponse {
    pub fn ok(val0: u64, val1: u64) -> Self {
        VphiResponse { status: 0, val0, val1 }
    }

    pub fn err(e: ScifError) -> Self {
        VphiResponse { status: -(e.errno() as i64), val0: 0, val1: 0 }
    }

    pub fn from_result(r: ScifResult<(u64, u64)>) -> Self {
        match r {
            Ok((v0, v1)) => Self::ok(v0, v1),
            Err(e) => Self::err(e),
        }
    }

    /// Back to a `ScifResult` on the guest side.
    pub fn into_result(self) -> ScifResult<(u64, u64)> {
        if self.status == 0 {
            Ok((self.val0, self.val1))
        } else {
            Err(ScifError::from_errno((-self.status) as i32).unwrap_or(ScifError::Inval))
        }
    }

    pub fn encode(&self) -> [u8; RESP_SIZE] {
        let mut b = [0u8; RESP_SIZE];
        b[0..8].copy_from_slice(&self.status.to_le_bytes());
        b[8..16].copy_from_slice(&self.val0.to_le_bytes());
        b[16..24].copy_from_slice(&self.val1.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8]) -> Option<VphiResponse> {
        if b.len() < RESP_SIZE {
            return None;
        }
        Some(VphiResponse {
            status: i64::from_le_bytes(b[0..8].try_into().ok()?),
            val0: u64::from_le_bytes(b[8..16].try_into().ok()?),
            val1: u64::from_le_bytes(b[16..24].try_into().ok()?),
        })
    }
}

/// Pack/unpack poll event bits used on the wire (bit 0 = IN, bit 1 = OUT,
/// bit 2 = HUP).
pub fn poll_events_to_wire(e: vphi_scif::PollEvents) -> u8 {
    use vphi_scif::PollEvents;
    (e.intersects(PollEvents::IN) as u8)
        | ((e.intersects(PollEvents::OUT) as u8) << 1)
        | ((e.intersects(PollEvents::HUP) as u8) << 2)
}

pub fn poll_events_from_wire(b: u8) -> vphi_scif::PollEvents {
    use vphi_scif::PollEvents;
    let mut e = PollEvents::NONE;
    if b & 1 != 0 {
        e = e | PollEvents::IN;
    }
    if b & 2 != 0 {
        e = e | PollEvents::OUT;
    }
    if b & 4 != 0 {
        e = e | PollEvents::HUP;
    }
    e
}

/// Pack/unpack RMA flag bits used on the wire.
pub fn rma_flags_to_wire(f: vphi_scif::RmaFlags) -> u8 {
    (f.sync as u8) | ((f.use_cpu as u8) << 1)
}

pub fn rma_flags_from_wire(b: u8) -> vphi_scif::RmaFlags {
    vphi_scif::RmaFlags { sync: b & 1 != 0, use_cpu: b & 2 != 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<VphiRequest> {
        vec![
            VphiRequest::Open,
            VphiRequest::Bind { epd: 7, port: 42 },
            VphiRequest::Listen { epd: 7, backlog: 16 },
            VphiRequest::Connect { epd: 7, node: 1, port: 300 },
            VphiRequest::Accept { epd: 7 },
            VphiRequest::Send { epd: 7, len: 4096 },
            VphiRequest::Recv { epd: 7, len: 1 },
            VphiRequest::Register {
                epd: 7,
                len: 1 << 20,
                prot: 3,
                fixed_offset: 0x1000,
                has_fixed: true,
            },
            VphiRequest::Unregister { epd: 7, offset: 0x1000, len: 1 << 20 },
            VphiRequest::VreadFrom { epd: 7, roffset: 0x2000, len: 4096, flags: 1 },
            VphiRequest::VwriteTo { epd: 7, roffset: 0x2000, len: 4096, flags: 3 },
            VphiRequest::ReadFrom { epd: 7, loffset: 1, len: 2, roffset: 3, flags: 0 },
            VphiRequest::WriteTo { epd: 7, loffset: 9, len: 8, roffset: 7, flags: 1 },
            VphiRequest::Mmap { epd: 7, offset: 0x3000, len: 8192, prot: 1 },
            VphiRequest::Munmap { vaddr: 0x7f00_0000 },
            VphiRequest::FenceMark { epd: 7 },
            VphiRequest::FenceWait { epd: 7, marker: 99 },
            VphiRequest::FenceSignal { epd: 7, loff: 1, lval: 2, roff: 3, rval: 4 },
            VphiRequest::Close { epd: 7 },
            VphiRequest::SysfsRead { mic_index: 0 },
            VphiRequest::GetNodeIds,
            VphiRequest::SendTimed { epd: 7, len: 300 << 20 },
            VphiRequest::RecvTimed { epd: 7, len: 300 << 20 },
            VphiRequest::Poll { epd: 7, events: 3, timeout_ms: 250 },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let encoded = req.encode();
            let decoded = VphiRequest::decode(&encoded).expect("decodes");
            assert_eq!(decoded, req, "round-trip failed for {}", req.name());
        }
    }

    #[test]
    fn routing_identity_is_the_epd_where_one_exists() {
        for req in all_requests() {
            let epd_less = matches!(
                req,
                VphiRequest::Open
                    | VphiRequest::Munmap { .. }
                    | VphiRequest::SysfsRead { .. }
                    | VphiRequest::GetNodeIds
            );
            if epd_less {
                assert_eq!(req.routing_epd(), None, "{} has no endpoint", req.name());
            } else {
                assert_eq!(req.routing_epd(), Some(7), "{} routes on its epd", req.name());
            }
        }
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for req in all_requests() {
            assert!(seen.insert(req.opcode()), "duplicate opcode for {}", req.name());
        }
    }

    #[test]
    fn bad_input_rejected() {
        assert_eq!(VphiRequest::decode(&[]), None);
        assert_eq!(VphiRequest::decode(&[0u8; REQ_SIZE]), None); // opcode 0
        let mut junk = [0u8; REQ_SIZE];
        junk[0] = 200;
        assert_eq!(VphiRequest::decode(&junk), None);
        assert_eq!(VphiResponse::decode(&[0u8; 4]), None);
    }

    #[test]
    fn response_round_trips_ok_and_err() {
        let ok = VphiResponse::ok(123, 456);
        assert_eq!(VphiResponse::decode(&ok.encode()), Some(ok));
        assert_eq!(ok.into_result(), Ok((123, 456)));

        let err = VphiResponse::err(ScifError::ConnRefused);
        let back = VphiResponse::decode(&err.encode()).unwrap();
        assert_eq!(back.into_result(), Err(ScifError::ConnRefused));
    }

    #[test]
    fn from_result_matches_manual_paths() {
        assert_eq!(VphiResponse::from_result(Ok((1, 2))), VphiResponse::ok(1, 2));
        assert_eq!(
            VphiResponse::from_result(Err(ScifError::NoMem)),
            VphiResponse::err(ScifError::NoMem)
        );
    }

    #[test]
    fn rma_flag_wire_round_trip() {
        use vphi_scif::RmaFlags;
        for f in [RmaFlags::SYNC, RmaFlags::ASYNC, RmaFlags::SYNC_CPU] {
            assert_eq!(rma_flags_from_wire(rma_flags_to_wire(f)), f);
        }
    }

    #[test]
    fn unknown_errno_degrades_to_einval() {
        let resp = VphiResponse { status: -9999, val0: 0, val1: 0 };
        assert_eq!(resp.into_result(), Err(ScifError::Inval));
    }
}

//! Per-VM RMA **registration cache**.
//!
//! Fig. 5 of the paper shows vPHI remote reads topping out at ~72% of
//! native bandwidth.  The gap is the per-page pin + GPA→HVA translation
//! the backend pays on *every* RMA request (`PageTranslate`,
//! 249 ns/page), on top of the link's 640 ns/page: 640/(640+249) ≈ 0.72.
//! Native SCIF amortizes that work across requests because registration
//! pins the buffer once.
//!
//! This cache gives the backend the same amortization: the first RMA on
//! a guest buffer pays the full per-page translation and records the
//! pinned range; repeated RMAs on the same `(endpoint, range)` pay only a
//! constant-time probe (`RegCacheLookup`).  Entries are invalidated when
//! the pinned translation can go stale: `scif_unregister` of an
//! overlapping window, endpoint close, and mmap teardown.
//!
//! The cache only changes what a request is *charged* — data movement is
//! unaffected — so with the cache disabled the simulation reproduces the
//! seed (and the paper's Fig. 5 shape) exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sync::{LockClass, TrackedMutex};

/// Tuning knobs for the registration cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCacheConfig {
    /// Disabled reproduces the seed charging exactly (the Fig. 5 gap).
    pub enabled: bool,
    /// Maximum cached ranges per VM; least-recently-used beyond that.
    pub capacity: usize,
}

impl Default for RegCacheConfig {
    fn default() -> Self {
        RegCacheConfig { enabled: true, capacity: 128 }
    }
}

impl RegCacheConfig {
    /// Seed-faithful charging: every RMA pays full per-page translation.
    pub fn disabled() -> Self {
        RegCacheConfig { enabled: false, ..Self::default() }
    }
}

/// Lifetime counters, cheap enough to bump from the service loop.
#[derive(Debug, Default)]
pub struct RegCacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub invalidations: AtomicU64,
}

/// A point-in-time copy of [`RegCacheStats`] for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegCacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl RegCacheSnapshot {
    /// Fraction of lookups served from the cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// An exact pinned range: the endpoint it was pinned for and the guest
/// page span.  Exact-match keys mirror how real RMA workloads re-issue
/// transfers on the same registered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    epd: u64,
    page_start: u64,
    pages: u64,
}

impl CacheKey {
    fn new(epd: u64, gpa: u64, bytes: u64) -> Self {
        let page_start = gpa / PAGE_SIZE;
        let page_end = (gpa + bytes.max(1)).div_ceil(PAGE_SIZE);
        CacheKey { epd, page_start, pages: page_end - page_start }
    }

    fn overlaps_pages(&self, page_start: u64, page_end: u64) -> bool {
        self.page_start < page_end && page_start < self.page_start + self.pages
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Last-touched tick (for LRU eviction).
    tick: u64,
    /// Whether the range is aperture-mapped (zero-copy path): evicting or
    /// invalidating it must also unmap the device subwindow.
    mapped: bool,
}

struct CacheInner {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Result of a [`RegistrationCache::probe`]: whether the range was already
/// pinned, plus the `(epd, guest page)` keys of any *mapped* entries the
/// probe evicted — the caller owns unmapping those from the device
/// aperture before their subwindows can be considered free.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct MapProbe {
    pub hit: bool,
    pub evicted: Vec<(u64, u64)>,
}

/// Result of an invalidation sweep: entry count dropped, plus the mapped
/// keys the caller must unmap (see [`MapProbe`]).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Invalidated {
    pub dropped: usize,
    pub unmapped: Vec<(u64, u64)>,
}

/// The per-VM cache itself.  One instance lives in the backend device.
pub struct RegistrationCache {
    config: RegCacheConfig,
    pub stats: RegCacheStats,
    inner: TrackedMutex<CacheInner>,
}

impl std::fmt::Debug for RegistrationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrationCache")
            .field("config", &self.config)
            .field("len", &self.len())
            .finish()
    }
}

impl RegistrationCache {
    pub fn new(config: RegCacheConfig) -> Self {
        RegistrationCache {
            config,
            stats: RegCacheStats::default(),
            inner: TrackedMutex::new(
                LockClass::RegCache,
                CacheInner { entries: HashMap::new(), tick: 0 },
            ),
        }
    }

    pub fn config(&self) -> RegCacheConfig {
        self.config
    }

    pub fn enabled(&self) -> bool {
        self.config.enabled && self.config.capacity > 0
    }

    /// Cached ranges currently pinned.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn snapshot(&self) -> RegCacheSnapshot {
        RegCacheSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Probe for `(epd, gpa..gpa+bytes)`, the unified entry point of the
    /// copy path (`mapped = false`) and the zero-copy mapping path
    /// (`mapped = true`).  On a hit the pinned translation is reused (the
    /// caller skips the per-page / pin charge); a hit from the mapping
    /// path upgrades the entry's `mapped` flag so a later eviction knows
    /// to unmap.  On a miss the range is inserted, evicting the
    /// least-recently-used entry if full — any evicted *mapped* keys are
    /// returned for the caller to unmap.
    pub fn probe(&self, epd: u64, gpa: u64, bytes: u64, mapped: bool) -> MapProbe {
        if !self.enabled() {
            return MapProbe::default();
        }
        let key = CacheKey::new(epd, gpa, bytes);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&key) {
            e.tick = tick;
            e.mapped |= mapped;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return MapProbe { hit: true, evicted: Vec::new() };
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let mut evicted = Vec::new();
        if inner.entries.len() >= self.config.capacity {
            if let Some(victim) = inner.entries.iter().min_by_key(|(_, e)| e.tick).map(|(&k, _)| k)
            {
                if let Some(e) = inner.entries.remove(&victim) {
                    if e.mapped {
                        evicted.push((victim.epd, victim.page_start));
                    }
                }
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(key, Entry { tick, mapped });
        MapProbe { hit: false, evicted }
    }

    /// Legacy/test convenience: [`probe`](RegistrationCache::probe) on the
    /// copy path, hit flag only.  The backend uses `probe` directly so
    /// evicted mapped keys are never silently dropped.
    pub fn lookup_or_insert(&self, epd: u64, gpa: u64, bytes: u64) -> bool {
        self.probe(epd, gpa, bytes, false).hit
    }

    /// Cached ranges currently flagged as aperture-mapped.
    pub fn mapped_len(&self) -> usize {
        self.inner.lock().entries.values().filter(|e| e.mapped).count()
    }

    /// Drop every cached range pinned for `epd` (endpoint closed).
    pub fn invalidate_endpoint(&self, epd: u64) -> Invalidated {
        self.invalidate_where(|k| k.epd == epd)
    }

    /// Drop cached ranges for `epd` whose pages overlap
    /// `gpa..gpa+bytes` (window unregistered / mapping torn down).
    pub fn invalidate_range(&self, epd: u64, gpa: u64, bytes: u64) -> Invalidated {
        let page_start = gpa / PAGE_SIZE;
        let page_end = (gpa + bytes.max(1)).div_ceil(PAGE_SIZE);
        self.invalidate_where(|k| k.epd == epd && k.overlaps_pages(page_start, page_end))
    }

    fn invalidate_where(&self, pred: impl Fn(&CacheKey) -> bool) -> Invalidated {
        let mut inner = self.inner.lock();
        let mut out = Invalidated::default();
        inner.entries.retain(|k, e| {
            if pred(k) {
                if e.mapped {
                    out.unmapped.push((k.epd, k.page_start));
                }
                out.dropped += 1;
                false
            } else {
                true
            }
        });
        self.stats.invalidations.fetch_add(out.dropped as u64, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> RegistrationCache {
        RegistrationCache::new(RegCacheConfig { enabled: true, capacity })
    }

    #[test]
    fn miss_then_hit_on_same_range() {
        let c = cache(8);
        assert!(!c.lookup_or_insert(1, 0x1000, 4096));
        assert!(c.lookup_or_insert(1, 0x1000, 4096));
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn different_endpoint_or_range_is_a_miss() {
        let c = cache(8);
        c.lookup_or_insert(1, 0x1000, 4096);
        assert!(!c.lookup_or_insert(2, 0x1000, 4096), "other endpoint");
        assert!(!c.lookup_or_insert(1, 0x2000, 4096), "other range");
        assert!(!c.lookup_or_insert(1, 0x1000, 8192), "other length");
        assert_eq!(c.snapshot().misses, 4);
    }

    #[test]
    fn sub_page_offsets_share_a_page_key() {
        let c = cache(8);
        c.lookup_or_insert(1, 0x1000, 100);
        // Same page span → same pinned range.
        assert!(c.lookup_or_insert(1, 0x1010, 80));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = cache(2);
        c.lookup_or_insert(1, 0x1000, 4096); // A
        c.lookup_or_insert(1, 0x2000, 4096); // B
        c.lookup_or_insert(1, 0x1000, 4096); // touch A → B is LRU
        c.lookup_or_insert(1, 0x3000, 4096); // C evicts B
        assert_eq!(c.snapshot().evictions, 1);
        assert_eq!(c.len(), 2);
        assert!(c.lookup_or_insert(1, 0x1000, 4096), "A survived");
        assert!(!c.lookup_or_insert(1, 0x2000, 4096), "B was evicted");
    }

    #[test]
    fn invalidate_endpoint_drops_only_that_endpoint() {
        let c = cache(8);
        c.lookup_or_insert(1, 0x1000, 4096);
        c.lookup_or_insert(1, 0x2000, 4096);
        c.lookup_or_insert(2, 0x1000, 4096);
        assert_eq!(c.invalidate_endpoint(1).dropped, 2);
        assert_eq!(c.len(), 1);
        assert!(c.lookup_or_insert(2, 0x1000, 4096), "endpoint 2 untouched");
        assert_eq!(c.snapshot().invalidations, 2);
    }

    #[test]
    fn invalidate_range_uses_page_overlap() {
        let c = cache(8);
        c.lookup_or_insert(1, 0x1000, 8192); // pages 1..3
        c.lookup_or_insert(1, 0x5000, 4096); // page 5
                                             // Invalidate page 2 → overlaps the first entry only.
        assert_eq!(c.invalidate_range(1, 0x2000, 4096).dropped, 1);
        assert!(!c.lookup_or_insert(1, 0x1000, 8192), "stale entry gone");
        assert!(c.lookup_or_insert(1, 0x5000, 4096), "non-overlapping survives");
        // Same range, other endpoint: untouched.
        assert_eq!(c.invalidate_range(2, 0x0, 1 << 20).dropped, 0);
    }

    #[test]
    fn mapped_entries_surface_on_eviction_and_invalidation() {
        let c = cache(2);
        assert!(!c.probe(1, 0x1000, 4096, true).hit); // mapped A
        assert!(!c.probe(1, 0x2000, 4096, false).hit); // copy-path B
        assert_eq!(c.mapped_len(), 1);
        // Filling past capacity evicts A (LRU, mapped) — its key surfaces.
        let p = c.probe(1, 0x3000, 4096, false);
        assert!(!p.hit);
        assert_eq!(p.evicted, vec![(1, 0x1)], "mapped victim's key surfaces");
        // Next eviction takes B, a copy-path entry: nothing to unmap.
        let p = c.probe(1, 0x4000, 4096, true);
        assert_eq!(p.evicted, vec![] as Vec<(u64, u64)>, "copy-path victim needs no unmap");
        // Invalidation reports mapped keys the same way: C (copy) and
        // D (mapped) remain.
        let inv = c.invalidate_endpoint(1);
        assert_eq!(inv.dropped, 2);
        assert_eq!(inv.unmapped, vec![(1, 0x4)]);
        assert_eq!(c.mapped_len(), 0);
    }

    #[test]
    fn copy_path_hit_upgrades_to_mapped() {
        let c = cache(8);
        assert!(!c.probe(3, 0x1000, 4096, false).hit);
        assert_eq!(c.mapped_len(), 0);
        assert!(c.probe(3, 0x1000, 4096, true).hit, "hit upgrades in place");
        assert_eq!(c.mapped_len(), 1);
        let inv = c.invalidate_range(3, 0x1000, 4096);
        assert_eq!(inv.unmapped, vec![(3, 0x1)]);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let c = RegistrationCache::new(RegCacheConfig::disabled());
        assert!(!c.enabled());
        assert!(!c.lookup_or_insert(1, 0x1000, 4096));
        assert!(!c.lookup_or_insert(1, 0x1000, 4096));
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses), (0, 0), "disabled cache does not count");
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn zero_capacity_behaves_as_disabled() {
        let c = cache(0);
        assert!(!c.enabled());
        assert!(!c.lookup_or_insert(1, 0x1000, 4096));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_length_lookup_still_occupies_one_page() {
        let c = cache(8);
        assert!(!c.lookup_or_insert(1, 0x1000, 0));
        assert!(c.lookup_or_insert(1, 0x1000, 0));
    }
}

//! The per-lane completion notifier — the **only** MSI-injection site in
//! the vPHI stack (enforced by `xtask lint`'s `msi-gate` rule).
//!
//! Every completion the backend pushes flows through here, and the
//! notifier decides — deterministically, from state the frontend handed
//! over before its kick — whether the completion warrants a virtual
//! interrupt (DESIGN.md #16):
//!
//! * the requester's [`NotifyHint`] says whether it was still spinning
//!   (`svc ≤ budget`: no interrupt needed, its spinner reaps the reply) or
//!   had armed the interrupt and slept;
//! * the EVENT_IDX comparison ([`vphi_virtio::need_event`]) says whether
//!   this push crossed the `used_event` threshold the guest published —
//!   a push short of the threshold is *batched*: it stays pending and the
//!   next injected irq on the lane delivers it along with its own.
//!
//! One injected irq therefore drains every pending used entry on the lane
//! (the `completions_per_irq` histogram measures the batching), and a
//! suppressed-but-sleeping completion is never lost: its directed
//! completion wake still lands, and the deadline retry backstops a lost
//! MSI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vphi_sim_core::Timeline;
use vphi_sync::{LockClass, TrackedMutex};
use vphi_virtio::{need_event, VirtQueue};
use vphi_vmm::IrqChip;

use crate::frontend::NotifyHint;

/// Log2 buckets of the completions-per-irq histogram (bucket 15 collects
/// every batch of 2^15 completions or more).
pub const BATCH_BUCKETS: usize = 16;

/// Snapshot of a lane notifier's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneNotifyCounters {
    /// Virtual interrupts actually injected.
    pub irqs_injected: u64,
    /// Completions that did not inject (spinner reaped it, or it was
    /// batched behind an armed threshold).
    pub irqs_suppressed: u64,
    /// Completions-per-irq log2 histogram: bucket `b` counts injected
    /// irqs that delivered `[2^b, 2^(b+1))` completions.
    pub batch_hist: [u64; BATCH_BUCKETS],
}

impl LaneNotifyCounters {
    /// Total completions delivered by injected irqs (weighted histogram
    /// mass is at least this spread across buckets).
    pub fn irq_total(&self) -> u64 {
        self.batch_hist.iter().sum()
    }

    /// The largest non-empty histogram bucket — `2^b` is a lower bound on
    /// the biggest single-irq batch observed.
    pub fn max_batch_bucket(&self) -> Option<u8> {
        (0..BATCH_BUCKETS).rev().find(|&b| self.batch_hist[b] > 0).map(|b| b as u8)
    }
}

/// One virtqueue lane's interrupt gate.
pub struct LaneNotifier {
    vector: u32,
    chip: Arc<IrqChip>,
    queue: Arc<VirtQueue>,
    /// Completions suppressed while their requester slept, awaiting the
    /// next injected irq on this lane (the batch the irq will flush).
    pending: TrackedMutex<u64>,
    irqs_injected: AtomicU64,
    irqs_suppressed: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
}

impl std::fmt::Debug for LaneNotifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneNotifier")
            .field("vector", &self.vector)
            .field("injected", &self.irqs_injected.load(Ordering::Relaxed))
            .field("suppressed", &self.irqs_suppressed.load(Ordering::Relaxed))
            .finish()
    }
}

impl LaneNotifier {
    pub fn new(vector: u32, chip: Arc<IrqChip>, queue: Arc<VirtQueue>) -> Self {
        LaneNotifier {
            vector,
            chip,
            queue,
            pending: TrackedMutex::new(LockClass::LaneNotifier, 0),
            irqs_injected: AtomicU64::new(0),
            irqs_suppressed: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The MSI vector this lane injects on.
    pub fn vector(&self) -> u32 {
        self.vector
    }

    /// Whether the completion that advanced the used ring to `new_seq`
    /// warrants an interrupt: its requester is asleep (service time
    /// exceeded the declared spin budget) *and* the push crossed the
    /// armed `used_event` threshold.  Pure — the caller sequences the
    /// fault check (lost MSI) between this decision and
    /// [`deliver_irq`](LaneNotifier::deliver_irq).
    pub fn would_inject(&self, new_seq: u64, hint: NotifyHint, svc_ns: u64) -> bool {
        hint.sleeping_after(svc_ns)
            && need_event(self.queue.used_event(), new_seq, new_seq.wrapping_sub(1))
    }

    /// Inject the lane's virtual interrupt, flushing the pending batch:
    /// this irq delivers its own completion plus every completion
    /// suppressed-while-sleeping since the last irq.
    pub fn deliver_irq(&self, tl: &mut Timeline) {
        let flushed = {
            let mut pending = self.pending.lock();
            let f = *pending + 1;
            *pending = 0;
            f
        };
        self.irqs_injected.fetch_add(1, Ordering::Relaxed);
        let bucket = (63 - flushed.leading_zeros() as usize).min(BATCH_BUCKETS - 1);
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        self.chip.inject(self.vector, tl);
    }

    /// Record a completion that did not inject.  `sleeping` completions
    /// join the pending batch (the next irq on the lane flushes them);
    /// spinner-reaped ones are simply counted.
    pub fn note_suppressed(&self, sleeping: bool) {
        self.irqs_suppressed.fetch_add(1, Ordering::Relaxed);
        if sleeping {
            *self.pending.lock() += 1;
        }
    }

    /// Record a would-have-injected completion whose MSI the fault plan
    /// ate: the completion stays pending (a later irq or the requester's
    /// deadline retry recovers it).  The backend's `msi_lost` counter
    /// owns the event itself.
    pub fn note_msi_lost(&self) {
        *self.pending.lock() += 1;
    }

    /// Counter snapshot.
    pub fn counters(&self) -> LaneNotifyCounters {
        LaneNotifyCounters {
            irqs_injected: self.irqs_injected.load(Ordering::Relaxed),
            irqs_suppressed: self.irqs_suppressed.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|b| self.batch_hist[b].load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::{CostModel, SimDuration, SpanLabel};
    use vphi_virtio::{Descriptor, UsedElem};

    const PUSH: SimDuration = SimDuration::from_nanos(600);

    fn lane() -> (LaneNotifier, Arc<VirtQueue>, Arc<IrqChip>) {
        let chip = Arc::new(IrqChip::new(Arc::new(CostModel::paper_calibrated())));
        let queue = VirtQueue::new(8);
        (LaneNotifier::new(11, Arc::clone(&chip), Arc::clone(&queue)), queue, chip)
    }

    fn push_one(queue: &Arc<VirtQueue>, tl: &mut Timeline) -> u64 {
        let head = queue.add_chain(&[Descriptor::readable(0, 1)], PUSH, tl).unwrap();
        queue.pop_avail().unwrap().unwrap();
        let seq = queue.push_used(UsedElem { id: head, len: 0 }, PUSH, tl);
        queue.take_used().unwrap();
        seq
    }

    #[test]
    fn sleeping_waiter_with_armed_threshold_gets_the_irq() {
        let (n, queue, chip) = lane();
        let mut tl = Timeline::new();
        queue.publish_used_event(queue.used_seq()); // waiter arms, then sleeps
        let seq = push_one(&queue, &mut tl);
        assert!(n.would_inject(seq, NotifyHint::SLEEP, 1));
        n.deliver_irq(&mut tl);
        assert_eq!(chip.inject_count(11), 1);
        assert!(tl.total_for(SpanLabel::IrqInject) > SimDuration::ZERO);
        let c = n.counters();
        assert_eq!(c.irqs_injected, 1);
        assert_eq!(c.batch_hist[0], 1, "a lone completion is a batch of one");
    }

    #[test]
    fn spinner_never_injects() {
        let (n, queue, chip) = lane();
        let mut tl = Timeline::new();
        queue.publish_used_event(queue.used_seq());
        let seq = push_one(&queue, &mut tl);
        // Pure spin, and also an adaptive waiter whose budget covered the
        // service time: both are reaped by the spinner.
        assert!(!n.would_inject(seq, NotifyHint::SPIN, u64::MAX - 1));
        assert!(!n.would_inject(seq, NotifyHint { budget_ns: 1000 }, 999));
        n.note_suppressed(false);
        assert_eq!(chip.inject_count(11), 0);
        assert_eq!(n.counters().irqs_suppressed, 1);
    }

    #[test]
    fn stale_threshold_batches_until_the_next_irq_flushes() {
        let (n, queue, _chip) = lane();
        let mut tl = Timeline::new();
        queue.publish_used_event(queue.used_seq()); // armed at 0
        let s1 = push_one(&queue, &mut tl); // crosses: 0 → 1
        assert!(n.would_inject(s1, NotifyHint::SLEEP, 1));
        n.deliver_irq(&mut tl);
        // Threshold still 0 (no new waiter armed): pushes 2 and 3 are
        // past it, so they batch behind the next crossing.
        let s2 = push_one(&queue, &mut tl);
        assert!(!n.would_inject(s2, NotifyHint::SLEEP, 1));
        n.note_suppressed(true);
        let s3 = push_one(&queue, &mut tl);
        assert!(!n.would_inject(s3, NotifyHint::SLEEP, 1));
        n.note_suppressed(true);
        // A waiter re-arms; its completion's irq flushes the batch of 3.
        queue.publish_used_event(queue.used_seq());
        let s4 = push_one(&queue, &mut tl);
        assert!(n.would_inject(s4, NotifyHint::SLEEP, 1));
        n.deliver_irq(&mut tl);
        let c = n.counters();
        assert_eq!(c.irqs_injected, 2);
        assert_eq!(c.irqs_suppressed, 2);
        assert_eq!(c.batch_hist[0], 1, "first irq carried one completion");
        assert_eq!(c.batch_hist[1], 1, "second irq flushed a batch of 3 (bucket [2,4))");
        assert_eq!(c.max_batch_bucket(), Some(1));
    }

    #[test]
    fn msi_lost_keeps_the_completion_pending() {
        let (n, queue, chip) = lane();
        let mut tl = Timeline::new();
        queue.publish_used_event(queue.used_seq());
        let s1 = push_one(&queue, &mut tl);
        assert!(n.would_inject(s1, NotifyHint::SLEEP, 1));
        n.note_msi_lost(); // the fault plan ate the MSI
        assert_eq!(chip.inject_count(11), 0);
        // The next injected irq delivers both.
        queue.publish_used_event(queue.used_seq());
        let s2 = push_one(&queue, &mut tl);
        assert!(n.would_inject(s2, NotifyHint::SLEEP, 1));
        n.deliver_irq(&mut tl);
        let c = n.counters();
        assert_eq!(c.irqs_injected, 1);
        assert_eq!(c.batch_hist[1], 1, "the lost completion rode the next irq");
    }
}

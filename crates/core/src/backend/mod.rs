//! The vPHI **backend device** — the QEMU extension.
//!
//! "We design vPHI backend device as a virtual PCI device and implement
//! it as a QEMU extension … the backend checks the shared ring and maps
//! the buffer to its address space avoiding again any copies … Afterwards,
//! the backend performs the relevant system call to the host SCIF driver
//! and waits for the result." (paper §III)
//!
//! Sharing falls out of the process model: every VM is one QEMU process,
//! so N VMs issuing SCIF requests are just N host processes doing ioctls
//! on `/dev/mic/scif` in parallel — nothing in the host driver changes.

mod dispatch;
pub mod notify;
mod reg_cache;

pub use dispatch::{dispatch_policy, request_payload_len, Dispatch, DispatchPolicy};
pub use notify::{LaneNotifier, LaneNotifyCounters, BATCH_BUCKETS};
pub use reg_cache::{RegCacheConfig, RegCacheSnapshot, RegCacheStats, RegistrationCache};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vphi_faults::{FaultHook, FaultSite};
use vphi_pcie::{Aperture, ApertureMap, MapKey, SgList};
use vphi_phi::PhiBoard;
use vphi_scif::window::{WindowBacking, WindowBytes};
use vphi_scif::{
    MappedRegion, NodeId, Port, Prot, ScifAddr, ScifEndpoint, ScifError, ScifFabric, ScifResult,
    HOST_NODE,
};
use vphi_sim_core::cost::{HUGE_PAGE_SIZE, KMALLOC_MAX_SIZE, PAGE_SIZE};
use vphi_sim_core::{SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};
use vphi_trace::{OpCtx, Stage, TraceCtx, Tracer};
use vphi_virtio::{DescChain, Descriptor, UsedElem, VirtQueue};
use vphi_vmm::vm::VirtualPciDevice;
use vphi_vmm::{Gpa, GuestMemory, IrqChip, KvmModule, QemuEventLoop, VmaFlags};

use crate::frontend::{Completion, VphiChannel, VPHI_IRQ_VECTOR};
use crate::mmapping::MappedRegionBacking;
use crate::protocol::{rma_flags_from_wire, VphiRequest, VphiResponse};

/// Pinned guest pages exposed to the host SCIF driver as window backing —
/// the zero-copy guest-memory-registration path of the paper.
pub struct GuestWindowBytes {
    mem: Arc<GuestMemory>,
    gpa: Gpa,
    len: u64,
}

impl GuestWindowBytes {
    pub fn new(mem: Arc<GuestMemory>, gpa: Gpa, len: u64) -> Self {
        GuestWindowBytes { mem, gpa, len }
    }
}

impl WindowBytes for GuestWindowBytes {
    fn len(&self) -> u64 {
        self.len
    }

    fn read(&self, at: u64, out: &mut [u8]) -> ScifResult<()> {
        if at + out.len() as u64 > self.len {
            return Err(ScifError::OutOfRange);
        }
        self.mem.read(self.gpa.offset(at), out).map_err(|_| ScifError::OutOfRange)
    }

    fn write(&self, at: u64, data: &[u8]) -> ScifResult<()> {
        if at + data.len() as u64 > self.len {
            return Err(ScifError::OutOfRange);
        }
        self.mem.write(self.gpa.offset(at), data).map_err(|_| ScifError::OutOfRange)
    }
}

/// Counters surfaced by the figure harness.
#[derive(Debug, Default)]
pub struct BackendStats {
    pub requests: AtomicU64,
    pub worker_dispatches: AtomicU64,
    pub pages_translated: AtomicU64,
    /// Completion interrupts lost to fault injection (the reply sat on
    /// the used ring until the requester's deadline re-check found it).
    pub msi_lost: AtomicU64,
    /// Abrupt guest deaths observed (injected or real).
    pub guest_deaths: AtomicU64,
    /// Endpoints closed by the dead-guest garbage collector.
    pub endpoints_gced: AtomicU64,
    /// Window registrations unpinned by the dead-guest garbage collector.
    pub windows_gced: AtomicU64,
    /// Endpoints force-closed because their card was reset.
    pub endpoints_quarantined: AtomicU64,
    /// Avail-ring drains that found at least one chain (one per wakeup
    /// sweep of a lane's shard thread).
    pub burst_drains: AtomicU64,
    /// Chains popped across those drains; `burst_chains / burst_drains`
    /// is the backend-side view of doorbell amortization — batched
    /// submitters push it well above 1.
    pub burst_chains: AtomicU64,
    /// Registered windows pinned + mapped into the device aperture by the
    /// zero-copy large-RMA path (cold map-cache probes).
    pub windows_mapped: AtomicU64,
    /// Large RMAs that found their window already pinned + mapped.
    pub map_hits: AtomicU64,
    /// Scatter-gather descriptors built for zero-copy transfers.
    pub sg_descriptors: AtomicU64,
    /// Bytes that skipped the backend staging buffer entirely (the
    /// bounce `vec![0u8; len]` the zero-copy path retires).
    pub staging_bytes_avoided: AtomicU64,
}

/// Knobs the builder exposes beyond the dispatch policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackendOptions {
    /// RMA registration-cache tuning (enabled by default).
    pub reg_cache: RegCacheConfig,
    /// Pipeline large RMA staging: split cold-path pin/translate into
    /// `KMALLOC_MAX_SIZE` chunks double-buffered against the DMA channels,
    /// so only the exposed remainder of staging lands on the critical
    /// path.  Off by default to keep the calibrated figures byte-stable.
    pub pipeline_rma: bool,
    /// Zero-copy large RMA: map registered windows into the device
    /// aperture and gather straight between guest memory and the wire —
    /// no staging copy at all (DESIGN.md #19).  Off by default to keep
    /// the calibrated figures byte-stable.
    pub zero_copy_rma: bool,
}

struct EndpointTable {
    endpoints: HashMap<u64, Arc<ScifEndpoint>>,
    next_epd: u64,
}

struct MmapTable {
    /// vaddr → (owning endpoint, the device mapping itself).
    maps: HashMap<u64, (u64, MappedRegion)>,
}

/// Everything the service loop and worker threads share.
pub struct BackendInner {
    name: String,
    channel: Arc<VphiChannel>,
    guest_mem: Arc<GuestMemory>,
    kvm: Arc<KvmModule>,
    event_loop: Arc<QemuEventLoop>,
    fabric: Arc<ScifFabric>,
    boards: Vec<Arc<PhiBoard>>,
    eps: TrackedMutex<EndpointTable>,
    mmaps: TrackedMutex<MmapTable>,
    policy: DispatchPolicy,
    running: AtomicBool,
    pipeline_rma: bool,
    /// Per-lane interrupt gates — the only path to an MSI injection.
    notifiers: Vec<Arc<LaneNotifier>>,
    /// Worker dispatches per queue lane — the shard-level counterpart of
    /// `stats.worker_dispatches`, surfaced in the debug report.
    queue_worker_dispatches: Vec<AtomicU64>,
    /// Registered windows, (epd, window offset) → (backing gpa, len).
    /// Only consulted to invalidate the cache on `scif_unregister`.
    windows: TrackedMutex<HashMap<(u64, u64), (u64, u64)>>,
    pub reg_cache: RegistrationCache,
    zero_copy_rma: bool,
    /// Window-mapping table for zero-copy RMA: registered guest windows
    /// pinned into huge-page subwindows of one large device aperture.
    aperture: ApertureMap,
    pub stats: BackendStats,
    faults: FaultHook,
}

impl BackendInner {
    fn cost(&self) -> &Arc<vphi_sim_core::CostModel> {
        &self.fabric.shared().cost
    }

    fn ep(&self, epd: u64) -> ScifResult<Arc<ScifEndpoint>> {
        self.eps.lock().endpoints.get(&epd).map(Arc::clone).ok_or(ScifError::Inval)
    }

    /// Fault-injection arming point for backend-side sites (lost MSIs,
    /// abrupt guest death).
    pub fn fault_hook(&self) -> &FaultHook {
        &self.faults
    }

    /// Windows the backend believes are still pinned (leak detector).
    pub fn window_entries(&self) -> usize {
        self.windows.lock().len()
    }

    /// The zero-copy window-mapping table (zero-leak audits: after all
    /// windows are unregistered/closed, `mapped_windows()` must be 0).
    pub fn aperture(&self) -> &ApertureMap {
        &self.aperture
    }

    /// Worker dispatches attributed to queue lane `q`.
    pub fn queue_worker_dispatches(&self, q: usize) -> u64 {
        self.queue_worker_dispatches[q].load(Ordering::Relaxed)
    }

    /// Queue lane `q`'s interrupt gate.
    pub fn lane_notifier(&self, q: usize) -> &Arc<LaneNotifier> {
        &self.notifiers[q]
    }

    /// Counter snapshots of every lane's interrupt gate, lane order.
    pub fn notify_counters(&self) -> Vec<LaneNotifyCounters> {
        self.notifiers.iter().map(|n| n.counters()).collect()
    }

    /// Tear down everything a dead guest left behind: close (and thereby
    /// unregister) its endpoints, unpin its windows and drop its cached
    /// translations.  Guest requests already in flight observe the
    /// shutdown flag instead of waiting on a dead ring.
    pub fn guest_died(&self) {
        self.stats.guest_deaths.fetch_add(1, Ordering::Relaxed);
        // Flag first (new requests fail fast), wake last: a waiter that
        // observes the dead device must be able to rely on the GC below
        // having already drained every endpoint and window.
        self.channel.mark_shutdown_quiet();
        let eps: Vec<(u64, Arc<ScifEndpoint>)> = {
            let mut t = self.eps.lock();
            t.endpoints.drain().collect()
        };
        self.stats.endpoints_gced.fetch_add(eps.len() as u64, Ordering::Relaxed);
        for (_, ep) in &eps {
            ep.close();
        }
        let gone: Vec<((u64, u64), (u64, u64))> = self.windows.lock().drain().collect();
        self.stats.windows_gced.fetch_add(gone.len() as u64, Ordering::Relaxed);
        for ((epd, _off), (gpa, len)) in gone {
            for key in self.reg_cache.invalidate_range(epd, gpa, len).unmapped {
                self.aperture.unmap_window(key);
            }
        }
        // Cache-disabled zero-copy mappings are keyed per endpoint too.
        for (epd, _) in &eps {
            self.aperture.unmap_endpoint(*epd);
        }
        self.channel.waitq.wake_all();
    }

    /// Card-reset recovery: force-close every endpoint that touched
    /// `node`, dropping its windows and cached translations, but keep the
    /// epd table entries so the guest's own `scif_close` still succeeds
    /// once (close is idempotent) before the descriptor goes invalid.
    /// Endpoints on other nodes — other VMs' traffic included — are
    /// untouched.  Returns how many endpoints were quarantined.
    pub fn quarantine_node(&self, node: NodeId) -> usize {
        let victims: Vec<(u64, Arc<ScifEndpoint>)> = {
            let t = self.eps.lock();
            t.endpoints
                .iter()
                .filter(|(_, ep)| {
                    ep.local_addr().map(|a| a.node == node).unwrap_or(false)
                        || ep.peer_addr().map(|a| a.node == node).unwrap_or(false)
                })
                .map(|(&epd, ep)| (epd, Arc::clone(ep)))
                .collect()
        };
        for (epd, ep) in &victims {
            ep.close();
            self.reg_cache.invalidate_endpoint(*epd);
            // Endpoint-wide unmap covers every mapped key the cache
            // reported plus any cache-disabled mappings.
            self.aperture.unmap_endpoint(*epd);
        }
        {
            let mut windows = self.windows.lock();
            for (epd, _) in &victims {
                windows.retain(|&(wepd, _), _| wepd != *epd);
            }
        }
        self.stats.endpoints_quarantined.fetch_add(victims.len() as u64, Ordering::Relaxed);
        victims.len()
    }

    fn insert_ep(&self, ep: ScifEndpoint) -> u64 {
        let epd = {
            let mut t = self.eps.lock();
            let epd = t.next_epd;
            t.next_epd += 1;
            t.endpoints.insert(epd, Arc::new(ep));
            epd
        };
        // A worker-dispatched request can race the dead-guest GC: if the
        // drain ran while this endpoint was being created, it must not
        // resurrect state into a dead backend.  `mark_shutdown` is ordered
        // before the drain, so re-checking after the insert closes the
        // window: either the drain saw this entry, or we see the flag.
        if self.channel.is_shutdown() {
            if let Some(ep) = self.eps.lock().endpoints.remove(&epd) {
                ep.close();
                self.stats.endpoints_gced.fetch_add(1, Ordering::Relaxed);
            }
        }
        epd
    }

    /// Service one chain popped from queue lane `q` end-to-end.  Whether
    /// the completion interrupts the guest is decided at the used-ring
    /// push by the lane's [`LaneNotifier`], from the notify hint the
    /// requester submitted and the `used_event` threshold it published.
    fn process(self: &Arc<Self>, q: usize, chain: DescChain) {
        let (token, mut tl, trace, hint) = self.channel.claim(q, chain.head);
        if self.faults.fire(FaultSite::VmmGuestDeath).is_some() {
            // The guest died mid-request: its QEMU process tears down, so
            // no response is ever written.  Waiters observe the shutdown
            // flag; the GC releases everything the guest held.  (No
            // backend span was opened yet, so the trace fork dies clean:
            // the frontend's root still finishes on the ENODEV path.)
            self.guest_died();
            return;
        }
        let cost = self.cost();
        let mut ctx = OpCtx::new(&mut tl, trace);
        let replay = ctx.begin("backend-replay", Stage::BackendReplay);
        ctx.tl.charge(SpanLabel::BackendDecode, cost.backend_decode);
        ctx.tl.charge(SpanLabel::GuestBufMap, cost.guest_buf_map);
        self.stats.requests.fetch_add(1, Ordering::Relaxed);

        // Decode the request header from the first readable descriptor
        // (zero-copy view of guest memory).
        let head_desc = chain.descriptors[0];
        let req = self
            .guest_mem
            .with_slice(Gpa(head_desc.addr), head_desc.len as u64, VphiRequest::decode)
            .ok()
            .flatten();

        // The replay span brackets decode + execute; its trace context
        // (parent = the replay span) is what the host SCIF calls inherit.
        let trace = ctx.trace.clone();
        drop(ctx);

        let Some(req) = req else {
            OpCtx::new(&mut tl, trace.clone()).end(replay);
            self.finish(q, token, &chain, VphiResponse::err(ScifError::Inval), tl, trace, hint);
            return;
        };

        match self.policy.dispatch(&req) {
            Dispatch::Blocking => {
                let el = Arc::clone(&self.event_loop);
                let resp = el.run(vphi_vmm::event_loop::Dispatch::Blocking, &mut tl, |tl| {
                    self.execute(&req, &chain, &mut OpCtx::new(tl, trace.clone()))
                });
                OpCtx::new(&mut tl, trace.clone()).end(replay);
                self.finish(q, token, &chain, resp, tl, trace, hint);
            }
            Dispatch::Worker => {
                // `scif_accept` may wait forever for a connect; freezing
                // the VM for it is unacceptable (paper §III), so it runs
                // on a QEMU worker thread.
                self.stats.worker_dispatches.fetch_add(1, Ordering::Relaxed);
                self.queue_worker_dispatches[q].fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(self);
                self.event_loop.spawn_worker(req.name(), move || {
                    let mut tl = tl;
                    let el = Arc::clone(&inner.event_loop);
                    let resp = el.run(vphi_vmm::event_loop::Dispatch::Worker, &mut tl, |tl| {
                        inner.execute(&req, &chain, &mut OpCtx::new(tl, trace.clone()))
                    });
                    OpCtx::new(&mut tl, trace.clone()).end(replay);
                    inner.finish(q, token, &chain, resp, tl, trace, hint);
                });
            }
        }
    }

    /// Write the response header, push used on lane `q`, and let the
    /// lane's notifier decide — from the requester's hint and the armed
    /// `used_event` threshold — whether this completion injects the
    /// lane's virtual interrupt (flushing any batched completions) or is
    /// suppressed.  The timeline then flows back to the frontend.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        q: usize,
        token: crate::frontend::ReqToken,
        chain: &DescChain,
        resp: VphiResponse,
        mut tl: Timeline,
        trace: TraceCtx,
        hint: crate::frontend::NotifyHint,
    ) {
        let resp_desc = chain.descriptors.last().expect("chain has a response descriptor");
        let _ = self.guest_mem.write(Gpa(resp_desc.addr), &resp.encode());
        // Completion delivery is a sibling of the replay subtree, not a
        // child of it.
        let mut ctx = OpCtx::new(&mut tl, trace.at_root());
        let span = ctx.begin("complete", Stage::Completion);
        let new_seq = self.channel.lane_queue(q).push_used(
            UsedElem { id: chain.head, len: resp_desc.len },
            self.cost().used_push,
            ctx.tl,
        );
        // Service time as the waiter's EWMA will learn it: every backend
        // charge up to and including the used push, excluding whatever the
        // injection decision below adds.
        let svc_ns = ctx.tl.total().as_nanos();
        let slept = hint.sleeping_after(svc_ns);
        let notifier = &self.notifiers[q];
        if notifier.would_inject(new_seq, hint, svc_ns) {
            if self.faults.fire(FaultSite::PcieMsiLost).is_some() {
                // The completion interrupt vanished: the reply is on the
                // used ring but nobody is woken.  The requester's deadline
                // expires, it re-checks the ring and takes the reply then.
                self.stats.msi_lost.fetch_add(1, Ordering::Relaxed);
                notifier.note_msi_lost();
                ctx.end(span);
                drop(ctx);
                self.channel.complete_quiet(token, Completion { tl, slept, svc_ns });
                return;
            }
            let irq_span = ctx.begin("notify-irq", Stage::Completion);
            notifier.deliver_irq(ctx.tl);
            ctx.end(irq_span);
        } else {
            notifier.note_suppressed(slept);
        }
        ctx.end(span);
        drop(ctx);
        self.channel.complete(token, Completion { tl, slept, svc_ns });
    }

    /// Payload descriptors: everything between the request header and the
    /// response header.  A guest that publishes a chain without both
    /// headers gets an empty payload, not a panic — ops that need a
    /// payload descriptor already fail with `Inval` on empty.
    fn payload<'c>(&self, chain: &'c DescChain) -> &'c [Descriptor] {
        let n = chain.descriptors.len();
        chain.descriptors.get(1..n.saturating_sub(1)).unwrap_or(&[])
    }

    /// Per-page pin + GPA→HVA translation charge for an RMA buffer — the
    /// term that caps vPHI remote-read throughput at 72% of native.
    ///
    /// With the registration cache enabled the charge is paid once per
    /// `(endpoint, range)`: a hit pays only the constant probe, the way
    /// native SCIF amortizes registration across transfers.
    fn charge_translate(&self, epd: u64, gpa: u64, bytes: u64, tl: &mut Timeline) {
        if self.reg_cache.enabled() {
            tl.charge(SpanLabel::RegCacheLookup, self.cost().reg_cache_lookup);
            let probe = self.reg_cache.probe(epd, gpa, bytes, false);
            // LRU evictions can push out entries whose windows the
            // zero-copy path mapped; their device subwindows go with them.
            for key in probe.evicted {
                self.aperture.unmap_window(key);
            }
            if probe.hit {
                return;
            }
        }
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.stats.pages_translated.fetch_add(pages, Ordering::Relaxed);
        let chunk = KMALLOC_MAX_SIZE;
        if self.pipeline_rma && bytes > chunk {
            // Double-buffered staging pipeline: the transfer's own DMA
            // charge (inside the SCIF replay) covers the wire; here we
            // charge only the staging the pipeline could not hide behind
            // earlier chunks' DMA.
            let exposed = self.fabric.shared().rma_pipeline_exposure(bytes, chunk);
            tl.charge(SpanLabel::PageTranslate, exposed);
        } else {
            tl.charge(SpanLabel::PageTranslate, self.cost().page_translate * pages);
        }
    }

    /// Zero-copy map charge: probe the mapping cache, pin + map the
    /// window into the device aperture on a cold miss, and build the
    /// scatter-gather descriptor list.  Returns the map key and the SG
    /// list covering `[gpa, gpa+len)`; the caller brackets this in the
    /// `dma-map` stage span so stage sums reconcile exactly.
    fn charge_map(&self, epd: u64, gpa: u64, len: u64, tl: &mut Timeline) -> (MapKey, SgList) {
        let key: MapKey = (epd, gpa / PAGE_SIZE);
        let cost = self.cost();
        let mut cold = true;
        if self.reg_cache.enabled() {
            tl.charge(SpanLabel::RegCacheLookup, cost.reg_cache_lookup);
            let probe = self.reg_cache.probe(epd, gpa, len, true);
            for k in probe.evicted {
                self.aperture.unmap_window(k);
            }
            cold = !probe.hit || self.aperture.lookup(key).is_none();
        }
        // The mapping covers from the window's containing huge page so an
        // unaligned start still lands inside the subwindow.
        let map_len = (gpa % HUGE_PAGE_SIZE) + len;
        let sub = self
            .aperture
            .map_window(key, map_len)
            // Aperture exhaustion: fall back to addressing the whole
            // device window (timing identical, bookkeeping degraded).
            .unwrap_or_else(|| self.aperture.device());
        if cold {
            tl.charge(SpanLabel::WindowPin, cost.pin_window(len));
            self.stats.windows_mapped.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.map_hits.fetch_add(1, Ordering::Relaxed);
        }
        let sg = SgList::for_range(sub.base(), gpa % HUGE_PAGE_SIZE, len).unwrap_or_default();
        tl.charge(SpanLabel::SgBuild, cost.sg_descriptor * (sg.len().max(1) as u64));
        self.stats.sg_descriptors.fetch_add(sg.len() as u64, Ordering::Relaxed);
        self.stats.staging_bytes_avoided.fetch_add(len, Ordering::Relaxed);
        (key, sg)
    }

    /// Execute one decoded request against the host SCIF driver.
    fn execute(&self, req: &VphiRequest, chain: &DescChain, ctx: &mut OpCtx<'_>) -> VphiResponse {
        let r: ScifResult<(u64, u64)> = (|| match *req {
            VphiRequest::Open => {
                ctx.tl.charge(SpanLabel::HostSyscall, self.cost().host_syscall);
                let ep = ScifEndpoint::open(&self.fabric, HOST_NODE)?;
                Ok((self.insert_ep(ep), 0))
            }
            VphiRequest::Bind { epd, port } => {
                let p = self.ep(epd)?.bind(Port(port), &mut *ctx)?;
                Ok((p.0 as u64, 0))
            }
            VphiRequest::Listen { epd, backlog } => {
                self.ep(epd)?.listen(backlog as usize, &mut *ctx)?;
                Ok((0, 0))
            }
            VphiRequest::Connect { epd, node, port } => {
                let peer =
                    self.ep(epd)?.connect(ScifAddr::new(NodeId(node), Port(port)), &mut *ctx)?;
                Ok((peer.node.0 as u64, peer.port.0 as u64))
            }
            VphiRequest::Accept { epd } => {
                let conn = self.ep(epd)?.accept(&mut *ctx)?;
                let peer = conn.peer_addr().ok_or(ScifError::NotConn)?;
                let new_epd = self.insert_ep(conn);
                Ok((new_epd, ((peer.node.0 as u64) << 32) | peer.port.0 as u64))
            }
            VphiRequest::Send { epd, len } => {
                let ep = self.ep(epd)?;
                let mut sent = 0u64;
                for d in self.payload(chain) {
                    let take = (d.len as u64).min(len as u64 - sent) as usize;
                    if take == 0 {
                        break;
                    }
                    let data = self
                        .guest_mem
                        .with_slice(Gpa(d.addr), take as u64, |s| s.to_vec())
                        .map_err(|_| ScifError::Inval)?;
                    sent += ep.send(&data, &mut *ctx)? as u64;
                }
                Ok((sent, 0))
            }
            VphiRequest::Recv { epd, len } => {
                let ep = self.ep(epd)?;
                let mut got = 0u64;
                for d in self.payload(chain) {
                    let want = (d.len as u64).min(len as u64 - got) as usize;
                    if want == 0 {
                        break;
                    }
                    let mut buf = vec![0u8; want];
                    let n = ep.recv(&mut buf, &mut *ctx)?;
                    self.guest_mem.write(Gpa(d.addr), &buf[..n]).map_err(|_| ScifError::Inval)?;
                    got += n as u64;
                    if n < want {
                        break; // peer closed
                    }
                }
                Ok((got, 0))
            }
            VphiRequest::Register { epd, len, prot, fixed_offset, has_fixed } => {
                let ep = self.ep(epd)?;
                let d = self.payload(chain).first().copied().ok_or(ScifError::Inval)?;
                let backing = GuestWindowBytes::new(Arc::clone(&self.guest_mem), Gpa(d.addr), len);
                let prot = wire_prot(prot);
                let off = ep.register(
                    has_fixed.then_some(fixed_offset),
                    len,
                    prot,
                    WindowBacking::External(Arc::new(backing)),
                    &mut *ctx,
                )?;
                // Remember which guest range backs the window so that
                // unregistering it can drop stale cached translations.
                self.windows.lock().insert((epd, off), (d.addr, len));
                // Same race as `insert_ep`: a register racing the
                // dead-guest GC must not leave a pinned window behind.
                if self.channel.is_shutdown() {
                    if self.windows.lock().remove(&(epd, off)).is_some() {
                        let _ = ep.unregister(off, len, &mut *ctx);
                        for key in self.reg_cache.invalidate_range(epd, d.addr, len).unmapped {
                            self.aperture.unmap_window(key);
                        }
                        self.stats.windows_gced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(ScifError::NoDev);
                }
                Ok((off, 0))
            }
            VphiRequest::Unregister { epd, offset, len } => {
                self.ep(epd)?.unregister(offset, len, &mut *ctx)?;
                // The window's pages are no longer pinned: drop every
                // cached translation backed by an overlapping window.
                // Collect + remove under the windows lock, but unmap
                // *after* releasing it — `unmap_window` may block
                // quiescing an in-flight descriptor list.
                let gone: Vec<((u64, u64), (u64, u64))> = {
                    let mut windows = self.windows.lock();
                    let gone: Vec<((u64, u64), (u64, u64))> = windows
                        .iter()
                        .filter(|(&(wepd, woff), &(_, wlen))| {
                            wepd == epd && woff < offset + len && offset < woff + wlen
                        })
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    for (key, _) in &gone {
                        windows.remove(key);
                    }
                    gone
                };
                for (_, (gpa, wlen)) in gone {
                    for key in self.reg_cache.invalidate_range(epd, gpa, wlen).unmapped {
                        self.aperture.unmap_window(key);
                    }
                    // A cache-disabled (or evicted-then-remapped) mapping
                    // for the same range is keyed by its start page.
                    self.aperture.unmap_window((epd, gpa / PAGE_SIZE));
                }
                Ok((0, 0))
            }
            VphiRequest::VreadFrom { epd, roffset, len, flags } => {
                let ep = self.ep(epd)?;
                let d = self.payload(chain).first().copied().ok_or(ScifError::Inval)?;
                // `len` is guest-controlled: it must fit the descriptor's
                // buffer AND map to real guest memory *before* it sizes a
                // host allocation.
                if len > u64::from(d.len) {
                    return Err(ScifError::Inval);
                }
                self.guest_mem
                    .with_slice(Gpa(d.addr), len, |_| ())
                    .map_err(|_| ScifError::Inval)?;
                if self.zero_copy_rma && len > KMALLOC_MAX_SIZE {
                    // Zero-copy: pin + map the window, then gather the
                    // device bytes straight into guest memory — the
                    // staging bounce buffer below never exists.
                    let span = ctx.begin("dma-map", Stage::DmaMap);
                    let (key, _sg) = self.charge_map(epd, d.addr, len, ctx.tl);
                    ctx.end(span);
                    let _io = self.aperture.begin_io(key);
                    let dst = GuestWindowBytes::new(Arc::clone(&self.guest_mem), Gpa(d.addr), len);
                    ep.vreadfrom_window(
                        &dst,
                        0,
                        len,
                        roffset,
                        rma_flags_from_wire(flags),
                        &mut *ctx,
                    )?;
                } else {
                    self.charge_translate(epd, d.addr, len, ctx.tl);
                    let mut buf = vec![0u8; len as usize];
                    ep.vreadfrom(&mut buf, roffset, rma_flags_from_wire(flags), &mut *ctx)?;
                    self.guest_mem.write(Gpa(d.addr), &buf).map_err(|_| ScifError::Inval)?;
                }
                Ok((len, 0))
            }
            VphiRequest::VwriteTo { epd, roffset, len, flags } => {
                let ep = self.ep(epd)?;
                let d = self.payload(chain).first().copied().ok_or(ScifError::Inval)?;
                if len > u64::from(d.len) {
                    return Err(ScifError::Inval);
                }
                self.guest_mem
                    .with_slice(Gpa(d.addr), len, |_| ())
                    .map_err(|_| ScifError::Inval)?;
                if self.zero_copy_rma && len > KMALLOC_MAX_SIZE {
                    let span = ctx.begin("dma-map", Stage::DmaMap);
                    let (key, _sg) = self.charge_map(epd, d.addr, len, ctx.tl);
                    ctx.end(span);
                    let _io = self.aperture.begin_io(key);
                    let src = GuestWindowBytes::new(Arc::clone(&self.guest_mem), Gpa(d.addr), len);
                    ep.vwriteto_window(
                        &src,
                        0,
                        len,
                        roffset,
                        rma_flags_from_wire(flags),
                        &mut *ctx,
                    )?;
                } else {
                    self.charge_translate(epd, d.addr, len, ctx.tl);
                    let buf = self
                        .guest_mem
                        .with_slice(Gpa(d.addr), len, |s| s.to_vec())
                        .map_err(|_| ScifError::Inval)?;
                    ep.vwriteto(&buf, roffset, rma_flags_from_wire(flags), &mut *ctx)?;
                }
                Ok((len, 0))
            }
            VphiRequest::ReadFrom { epd, loffset, len, roffset, flags } => {
                self.ep(epd)?.readfrom(
                    loffset,
                    len,
                    roffset,
                    rma_flags_from_wire(flags),
                    &mut *ctx,
                )?;
                Ok((len, 0))
            }
            VphiRequest::WriteTo { epd, loffset, len, roffset, flags } => {
                self.ep(epd)?.writeto(
                    loffset,
                    len,
                    roffset,
                    rma_flags_from_wire(flags),
                    &mut *ctx,
                )?;
                Ok((len, 0))
            }
            VphiRequest::Mmap { epd, offset, len, prot } => {
                let ep = self.ep(epd)?;
                let prot_flags = wire_prot(prot);
                let region = ep.mmap(offset, len, prot_flags, &mut *ctx)?;
                let base_pfn = region.device_pfn(0);
                let backing = Arc::new(MappedRegionBacking::new(region.clone()));
                let vaddr = self
                    .kvm
                    .vmas
                    .lock()
                    .map(
                        None,
                        len,
                        VmaFlags {
                            read: prot_flags.readable(),
                            write: prot_flags.writable(),
                            pfn_phi: true,
                        },
                        base_pfn,
                        backing,
                    )
                    .map_err(|_| ScifError::Inval)?;
                self.mmaps.lock().maps.insert(vaddr, (epd, region));
                Ok((vaddr, 0))
            }
            VphiRequest::Munmap { vaddr } => {
                let (epd, _region) =
                    self.mmaps.lock().maps.remove(&vaddr).ok_or(ScifError::Inval)?;
                self.kvm.vmas.lock().unmap(vaddr).map_err(|_| ScifError::Inval)?;
                self.kvm.forget_vma(vaddr);
                // Mapping teardown can release device pages the cache
                // assumed pinned for this endpoint.
                self.reg_cache.invalidate_endpoint(epd);
                self.aperture.unmap_endpoint(epd);
                Ok((0, 0))
            }
            VphiRequest::FenceMark { epd } => {
                let m = self.ep(epd)?.fence_mark(&mut *ctx)?;
                Ok((m, 0))
            }
            VphiRequest::FenceWait { epd, marker } => {
                self.ep(epd)?.fence_wait(marker, &mut *ctx)?;
                Ok((0, 0))
            }
            VphiRequest::FenceSignal { epd, loff, lval, roff, rval } => {
                self.ep(epd)?.fence_signal(loff, lval, roff, rval, &mut *ctx)?;
                Ok((0, 0))
            }
            VphiRequest::Close { epd } => {
                let removed = self.eps.lock().endpoints.remove(&epd);
                match removed {
                    Some(ep) => {
                        ep.close();
                        // Everything pinned for this endpoint is released.
                        self.reg_cache.invalidate_endpoint(epd);
                        self.aperture.unmap_endpoint(epd);
                        self.windows.lock().retain(|&(wepd, _), _| wepd != epd);
                        Ok((0, 0))
                    }
                    None => Err(ScifError::Inval),
                }
            }
            VphiRequest::SysfsRead { mic_index } => {
                let board = self.boards.get(mic_index as usize).ok_or(ScifError::NoDev)?;
                let mut text = String::new();
                for (k, v) in board.sysfs().iter() {
                    text.push_str(k);
                    text.push('=');
                    text.push_str(v);
                    text.push('\n');
                }
                let d = self.payload(chain).first().copied().ok_or(ScifError::Inval)?;
                let bytes = text.as_bytes();
                if bytes.len() as u64 > d.len as u64 {
                    return Err(ScifError::NoMem);
                }
                self.guest_mem.write(Gpa(d.addr), bytes).map_err(|_| ScifError::Inval)?;
                Ok((bytes.len() as u64, 0))
            }
            VphiRequest::GetNodeIds => {
                let ids = self.fabric.node_ids();
                Ok((ids.len() as u64, ids.iter().map(|n| n.0 as u64).max().unwrap_or(0)))
            }
            VphiRequest::SendTimed { epd, len } => {
                let n = self.ep(epd)?.send_timed(len, &mut *ctx)?;
                Ok((n, 0))
            }
            VphiRequest::RecvTimed { epd, len } => {
                let n = self.ep(epd)?.recv_timed(len, &mut *ctx)?;
                Ok((n, 0))
            }
            VphiRequest::Poll { epd, events, timeout_ms } => {
                let ep = self.ep(epd)?;
                let interest = crate::protocol::poll_events_from_wire(events);
                let revents = ep.poll(
                    interest,
                    std::time::Duration::from_millis(timeout_ms as u64),
                    &mut *ctx,
                )?;
                Ok((crate::protocol::poll_events_to_wire(revents) as u64, 0))
            }
        })();
        VphiResponse::from_result(r)
    }
}

fn wire_prot(p: u8) -> Prot {
    match p & 3 {
        1 => Prot::READ,
        2 => Prot::WRITE,
        3 => Prot::READ_WRITE,
        _ => Prot::NONE,
    }
}

/// The virtual PCI device QEMU exposes to the guest.
pub struct BackendDevice {
    inner: Arc<BackendInner>,
    /// The sharded executor's service threads, one per queue lane.  They
    /// share the endpoint table, registration cache and dead-guest GC
    /// through [`BackendInner`]; only the ring they drain is private.
    shards: TrackedMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for BackendDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendDevice").field("name", &self.inner.name).finish()
    }
}

impl BackendDevice {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        channel: Arc<VphiChannel>,
        guest_mem: Arc<GuestMemory>,
        guest_irq: Arc<IrqChip>,
        kvm: Arc<KvmModule>,
        event_loop: Arc<QemuEventLoop>,
        fabric: Arc<ScifFabric>,
        boards: Vec<Arc<PhiBoard>>,
    ) -> Arc<Self> {
        Self::with_policy(
            name,
            channel,
            guest_mem,
            guest_irq,
            kvm,
            event_loop,
            fabric,
            boards,
            DispatchPolicy::PAPER,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn with_policy(
        name: impl Into<String>,
        channel: Arc<VphiChannel>,
        guest_mem: Arc<GuestMemory>,
        guest_irq: Arc<IrqChip>,
        kvm: Arc<KvmModule>,
        event_loop: Arc<QemuEventLoop>,
        fabric: Arc<ScifFabric>,
        boards: Vec<Arc<PhiBoard>>,
        policy: DispatchPolicy,
    ) -> Arc<Self> {
        Self::with_options(
            name,
            channel,
            guest_mem,
            guest_irq,
            kvm,
            event_loop,
            fabric,
            boards,
            policy,
            BackendOptions::default(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        name: impl Into<String>,
        channel: Arc<VphiChannel>,
        guest_mem: Arc<GuestMemory>,
        guest_irq: Arc<IrqChip>,
        kvm: Arc<KvmModule>,
        event_loop: Arc<QemuEventLoop>,
        fabric: Arc<ScifFabric>,
        boards: Vec<Arc<PhiBoard>>,
        policy: DispatchPolicy,
        options: BackendOptions,
    ) -> Arc<Self> {
        let queue_worker_dispatches =
            (0..channel.queue_count()).map(|_| AtomicU64::new(0)).collect();
        // One interrupt gate per lane, each owning the lane's MSI vector.
        let notifiers = channel
            .lanes()
            .iter()
            .enumerate()
            .map(|(q, lane)| {
                Arc::new(LaneNotifier::new(
                    VPHI_IRQ_VECTOR + q as u32,
                    Arc::clone(&guest_irq),
                    Arc::clone(&lane.queue),
                ))
            })
            .collect();
        Arc::new(BackendDevice {
            inner: Arc::new(BackendInner {
                name: name.into(),
                channel,
                guest_mem,
                kvm,
                event_loop,
                fabric,
                boards,
                eps: TrackedMutex::new(
                    LockClass::BackendEndpoints,
                    EndpointTable { endpoints: HashMap::new(), next_epd: 1 },
                ),
                mmaps: TrackedMutex::new(
                    LockClass::BackendMmaps,
                    MmapTable { maps: HashMap::new() },
                ),
                policy,
                running: AtomicBool::new(false),
                pipeline_rma: options.pipeline_rma,
                notifiers,
                queue_worker_dispatches,
                windows: TrackedMutex::new(LockClass::BackendWindows, HashMap::new()),
                reg_cache: RegistrationCache::new(options.reg_cache),
                zero_copy_rma: options.zero_copy_rma,
                // 64 GiB of device aperture at the 1 TiB mark — far above
                // any guest RAM so map bugs fault loudly, and big enough
                // that exhaustion only happens via leaks.
                aperture: ApertureMap::new(Aperture::new(1 << 40, 64 << 30)),
                stats: BackendStats::default(),
                faults: FaultHook::new(),
            }),
            shards: TrackedMutex::new(LockClass::BackendShards, Vec::new()),
        })
    }

    pub fn inner(&self) -> &Arc<BackendInner> {
        &self.inner
    }

    pub fn open_endpoints(&self) -> usize {
        self.inner.eps.lock().endpoints.len()
    }

    /// Arm every backend-side fault site on this device with `injector` —
    /// the device's own sites plus every queue lane's transport sites.
    pub fn arm_faults(&self, injector: &Arc<vphi_faults::FaultInjector>) {
        self.inner.faults.arm(Arc::clone(injector));
        for lane in self.inner.channel.lanes() {
            lane.queue.fault_hook().arm(Arc::clone(injector));
        }
    }

    /// Arm end-to-end request tracing on this device's channel.  Every
    /// subsequent `transact` on the channel adopts a trace root and the
    /// backend's replay/completion spans land in `tracer`'s per-VM ring.
    /// One-shot, like [`BackendDevice::arm_faults`].
    pub fn arm_tracing(&self, tracer: Arc<Tracer>, vm: u32) {
        self.inner.channel.trace.arm(tracer, vm);
    }
}

impl VirtualPciDevice for BackendDevice {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn queue(&self) -> Arc<VirtQueue> {
        Arc::clone(&self.inner.channel.queue)
    }

    fn queues(&self) -> Vec<Arc<VirtQueue>> {
        self.inner.channel.lanes().iter().map(|l| Arc::clone(&l.queue)).collect()
    }

    fn start(&self) {
        if self.inner.running.swap(true, Ordering::AcqRel) {
            return;
        }
        // The sharded executor: one service thread per queue lane, all
        // sharing the endpoint table, registration cache and dead-guest
        // GC through `BackendInner`.
        let mut shards = self.shards.lock();
        for q in 0..self.inner.channel.queue_count() {
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("vphi-backend-{}-q{q}", inner.name))
                .spawn(move || {
                    let queue = Arc::clone(inner.channel.lane_queue(q));
                    while inner.running.load(Ordering::Acquire) && queue.wait_kick() {
                        loop {
                            // While the loop is draining a burst, further guest
                            // kicks are redundant — VRING_USED_F_NO_NOTIFY
                            // spares the guest those vm-exits.  Suppression is
                            // lifted *before* the burst's last completion is
                            // delivered, so a synchronous requester's next kick
                            // behaves exactly as a lone request's.  (Interrupt
                            // elision is the lane notifier's job now.)
                            queue.set_suppress_kick(true);
                            let mut batch = Vec::new();
                            while let Ok(Some(chain)) = queue.pop_avail() {
                                batch.push(chain);
                            }
                            let burst = batch.len();
                            if burst > 0 {
                                inner.stats.burst_drains.fetch_add(1, Ordering::Relaxed);
                                inner.stats.burst_chains.fetch_add(burst as u64, Ordering::Relaxed);
                            }
                            if burst <= 1 {
                                queue.set_suppress_kick(false);
                            }
                            for (i, chain) in batch.into_iter().enumerate() {
                                if i + 1 == burst && burst > 1 {
                                    queue.set_suppress_kick(false);
                                }
                                inner.process(q, chain);
                            }
                            // A chain posted while kicks were suppressed never
                            // delivered its kick; pick it up before blocking.
                            if !queue.avail_pending() {
                                break;
                            }
                        }
                    }
                })
                .expect("spawn vphi backend shard");
            shards.push(handle);
        }
    }

    fn stop(&self) {
        if !self.inner.running.swap(false, Ordering::AcqRel) {
            return;
        }
        self.inner.channel.mark_shutdown();
        for lane in self.inner.channel.lanes() {
            lane.queue.shutdown();
        }
        for h in self.shards.lock().drain(..) {
            let _ = h.join();
        }
        // Close any endpoints the guest leaked.
        self.inner.eps.lock().endpoints.clear();
    }
}

//! Blocking vs non-blocking backend dispatch.
//!
//! "Following QEMU's approach, we choose the blocking mode for most SCIF
//! operations and a non-blocking mode for operations that otherwise would
//! potentially block the virtual machine for an unacceptable period of
//! time … we implement scif_accept() in a non-blocking way, since we do
//! not know beforehand when a corresponding scif_connect() request will
//! arrive." (paper §III)

use crate::protocol::VphiRequest;

/// Where a request's handler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// In the QEMU event loop — the VM pauses until the handler returns.
    Blocking,
    /// On a QEMU worker thread — the VM keeps running.
    Worker,
}

/// Bytes of payload a request moves (drives the size-based hybrid
/// dispatch the paper proposes as future work).
pub fn request_payload_len(req: &VphiRequest) -> u64 {
    match *req {
        VphiRequest::Send { len, .. } | VphiRequest::Recv { len, .. } => len as u64,
        VphiRequest::VreadFrom { len, .. }
        | VphiRequest::VwriteTo { len, .. }
        | VphiRequest::ReadFrom { len, .. }
        | VphiRequest::WriteTo { len, .. }
        | VphiRequest::SendTimed { len, .. }
        | VphiRequest::RecvTimed { len, .. } => len,
        _ => 0,
    }
}

/// The backend's configurable dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Data transfers at or above this size run on a worker thread
    /// instead of blocking the VM.  `None` = the paper's implementation
    /// (all data transfers block); `Some(0)` = everything on workers.
    pub worker_above: Option<u64>,
}

impl DispatchPolicy {
    /// The paper's prototype: `scif_accept` on a worker, everything else
    /// blocking.
    pub const PAPER: DispatchPolicy = DispatchPolicy { worker_above: None };

    /// The paper's proposed hybrid: transfers ≥ `bytes` go to workers.
    pub const fn hybrid(bytes: u64) -> DispatchPolicy {
        DispatchPolicy { worker_above: Some(bytes) }
    }

    pub fn dispatch(&self, req: &VphiRequest) -> Dispatch {
        match req {
            // scif_accept may wait forever — never block the VM on it.
            VphiRequest::Accept { .. } => Dispatch::Worker,
            // A poll with a timeout can park for its whole timeout.
            VphiRequest::Poll { timeout_ms, .. } if *timeout_ms > 0 => Dispatch::Worker,
            _ => match self.worker_above {
                Some(threshold) if request_payload_len(req) >= threshold => Dispatch::Worker,
                _ => Dispatch::Blocking,
            },
        }
    }
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy::PAPER
    }
}

/// The paper's policy as a free function (back-compat shim for callers
/// that don't configure a policy).
pub fn dispatch_policy(req: &VphiRequest) -> Dispatch {
    DispatchPolicy::PAPER.dispatch(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_goes_to_a_worker() {
        assert_eq!(dispatch_policy(&VphiRequest::Accept { epd: 1 }), Dispatch::Worker);
    }

    #[test]
    fn hybrid_policy_moves_large_transfers_to_workers() {
        let p = DispatchPolicy::hybrid(1 << 20);
        assert_eq!(p.dispatch(&VphiRequest::Send { epd: 1, len: 4096 }), Dispatch::Blocking);
        assert_eq!(p.dispatch(&VphiRequest::Send { epd: 1, len: 1 << 20 }), Dispatch::Worker);
        assert_eq!(
            p.dispatch(&VphiRequest::VreadFrom { epd: 1, roffset: 0, len: 2 << 20, flags: 0 }),
            Dispatch::Worker
        );
        // Accept stays on a worker regardless.
        assert_eq!(p.dispatch(&VphiRequest::Accept { epd: 1 }), Dispatch::Worker);
        assert_eq!(p.dispatch(&VphiRequest::Open), Dispatch::Blocking);
    }

    #[test]
    fn payload_lengths() {
        assert_eq!(request_payload_len(&VphiRequest::Open), 0);
        assert_eq!(request_payload_len(&VphiRequest::Send { epd: 1, len: 9 }), 9);
        assert_eq!(request_payload_len(&VphiRequest::SendTimed { epd: 1, len: 1 << 30 }), 1 << 30);
    }

    #[test]
    fn data_transfers_block_the_vm() {
        assert_eq!(dispatch_policy(&VphiRequest::Send { epd: 1, len: 4096 }), Dispatch::Blocking);
        assert_eq!(dispatch_policy(&VphiRequest::Recv { epd: 1, len: 4096 }), Dispatch::Blocking);
        assert_eq!(
            dispatch_policy(&VphiRequest::VreadFrom { epd: 1, roffset: 0, len: 1, flags: 0 }),
            Dispatch::Blocking
        );
        assert_eq!(dispatch_policy(&VphiRequest::Open), Dispatch::Blocking);
        assert_eq!(
            dispatch_policy(&VphiRequest::Connect { epd: 1, node: 1, port: 2 }),
            Dispatch::Blocking
        );
    }
}

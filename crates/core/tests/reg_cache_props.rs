//! Registration-cache correctness under interleaving and concurrency.
//!
//! The cache must never *serve a stale translation*: a lookup may only
//! hit when the same `(endpoint, range)` was translated earlier and no
//! invalidating event — overlapping `scif_unregister` or endpoint close —
//! happened in between.  The property test drives arbitrary interleavings
//! of register / RMA / unregister / close against a reference model; the
//! stress test hammers the cache from six guest threads in the style of
//! the token-routing concurrency suite.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;
use vphi::builder::{VmConfig, VphiHost};
use vphi::debugfs::VphiDebugReport;
use vphi::{GuestScif, VphiVm};
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifAddr};
use vphi_sim_core::Timeline;

const PAGE: u64 = 4096;

/// Device server that accepts `conns` connections in turn, registering a
/// GDDR window on each, and serves until the peer hangs up.
fn spawn_window_server(
    host: &VphiHost,
    port: Port,
    window_len: u64,
    conns: usize,
) -> std::thread::JoinHandle<()> {
    let board = Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(16, &mut tl).unwrap();
        tx.send(()).unwrap();
        let mut workers = Vec::new();
        for _ in 0..conns {
            let conn = server.accept(&mut tl).unwrap();
            let region = board.memory().alloc_timed(window_len).unwrap();
            conn.register(
                Some(0),
                window_len,
                Prot::READ_WRITE,
                WindowBacking::Device(region),
                &mut tl,
            )
            .unwrap();
            workers.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                let mut b = [0u8; 1];
                let _ = conn.core().recv(&mut b, &mut tl);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
    });
    rx.recv().unwrap();
    h
}

/// Wall-clock wait until the device window of the current connection is
/// visible to the guest (retries a 1-byte remote read).
fn wait_for_guest_window(guest: &GuestScif, vm: &VphiVm) {
    let buf = vm.alloc_buf(1).unwrap();
    for _ in 0..1000 {
        let mut tl = Timeline::new();
        if guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("device window never appeared (guest)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary interleavings of RMA reads/writes, window registration,
    /// unregistration and endpoint close/reopen: every cache probe must
    /// agree with a reference model, so a hit can never reuse a
    /// translation an invalidation should have dropped.
    #[test]
    fn interleavings_never_serve_stale_translations(
        ops in prop::collection::vec((0u8..5u8, 0usize..4usize), 1..30)
    ) {
        let host = VphiHost::new(1);
        let reopens = ops.iter().filter(|(kind, _)| *kind == 4).count();
        let server = spawn_window_server(&host, Port(760), 16 * PAGE, reopens + 1);
        let vm = host.spawn_vm(VmConfig::default());
        let addr = ScifAddr::new(host.device_node(0), Port(760));

        // Four disjoint guest buffers of 1..=4 pages.  Allocated before any
        // probe buffer so a freed probe page can never alias bufs[0] and
        // pre-warm its cache entry.
        let bufs: Vec<_> =
            (0..4).map(|i| vm.alloc_buf((i as u64 + 1) * PAGE).unwrap()).collect();

        let mut tl = Timeline::new();
        let mut guest = vm.open_scif(&mut tl).unwrap();
        guest.connect(addr, &mut tl).unwrap();
        wait_for_guest_window(&guest, &vm);

        // The reference model: which buffers have a live cached
        // translation, and which windows are registered over them.
        let mut cached: HashSet<usize> = HashSet::new();
        let mut windows: HashMap<usize, u64> = HashMap::new();

        for (kind, b) in ops {
            let mut tl = Timeline::new();
            match kind {
                // RMA on buffer `b`: the probe must hit exactly when the
                // model says the translation is still live.
                0 | 1 => {
                    let before = VphiDebugReport::collect(&vm);
                    if kind == 0 {
                        guest.vreadfrom(&bufs[b], 0, RmaFlags::SYNC, &mut tl).unwrap();
                    } else {
                        guest.vwriteto(&bufs[b], 0, RmaFlags::SYNC, &mut tl).unwrap();
                    }
                    let after = VphiDebugReport::collect(&vm);
                    let hits = after.reg_cache_hits - before.reg_cache_hits;
                    let misses = after.reg_cache_misses - before.reg_cache_misses;
                    prop_assert_eq!(hits + misses, 1, "every RMA probes exactly once");
                    prop_assert_eq!(
                        hits == 1,
                        cached.contains(&b),
                        "hit disagrees with model: stale or lost translation"
                    );
                    cached.insert(b);
                }
                // Register a window over buffer `b` (if none yet).
                2 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = windows.entry(b) {
                        let off =
                            guest.register(&bufs[b], Prot::READ_WRITE, None, &mut tl).unwrap();
                        e.insert(off);
                    }
                }
                // Unregister it: overlapping translations must die.
                3 => {
                    if let Some(off) = windows.remove(&b) {
                        guest.unregister(off, bufs[b].len(), &mut tl).unwrap();
                        cached.remove(&b);
                    }
                }
                // Close and reopen the endpoint: everything dies.
                _ => {
                    guest.close(&mut tl).unwrap();
                    cached.clear();
                    windows.clear();
                    guest = vm.open_scif(&mut tl).unwrap();
                    guest.connect(addr, &mut tl).unwrap();
                    wait_for_guest_window(&guest, &vm);
                }
            }
        }

        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = server.join();
    }
}

/// Zero-copy mapping lifetime vs in-flight DMA: a reader thread hammers
/// large (> `KMALLOC_MAX_SIZE`) zero-copy reads while the main thread
/// churns register/unregister over the same pages.  Every unregister's
/// `unmap_window` must quiesce the in-flight descriptor list before
/// tearing the mapping down, so the race can corrupt nothing — and the
/// zero-leak audit must balance once the endpoint closes.
#[test]
fn unregister_quiesces_inflight_zero_copy_dma() {
    const BIG: u64 = 8 * 1024 * 1024; // > KMALLOC_MAX_SIZE → zero-copy arm
    let host = VphiHost::new(1);
    let server = spawn_window_server(&host, Port(780), 2 * BIG, 1);
    let vm = Arc::new(host.spawn_vm(VmConfig::builder().zero_copy_rma(true).build()));

    let mut tl = Timeline::new();
    let guest = Arc::new(vm.open_scif(&mut tl).unwrap());
    guest.connect(ScifAddr::new(host.device_node(0), Port(780)), &mut tl).unwrap();
    wait_for_guest_window(&guest, &vm);
    let buf = Arc::new(vm.alloc_buf(BIG).unwrap());

    let reader = {
        let (guest, buf) = (Arc::clone(&guest), Arc::clone(&buf));
        std::thread::spawn(move || {
            for _ in 0..20 {
                let mut tl = Timeline::new();
                guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).unwrap();
            }
        })
    };
    // Window churn over the very pages the reader is gathering from: each
    // unregister invalidates the mapping cache and unmaps the device
    // subwindow, which must block until the reader's IoGuard drops.
    for _ in 0..10 {
        let mut tl = Timeline::new();
        let off = guest.register(&buf, Prot::READ_WRITE, None, &mut tl).unwrap();
        guest.unregister(off, buf.len(), &mut tl).unwrap();
    }
    reader.join().unwrap();

    let be = vm.backend().inner();
    assert_eq!(be.aperture().inflight_total(), 0, "no leaked IoGuards");
    let report = VphiDebugReport::collect(&vm);
    assert!(report.windows_mapped >= 1, "the zero-copy path mapped at least once");
    assert!(
        report.staging_bytes_avoided >= 20 * BIG,
        "every big read skipped staging: {}",
        report.staging_bytes_avoided
    );
    let mut tl = Timeline::new();
    guest.close(&mut tl).unwrap();
    assert_eq!(be.aperture().mapped_windows(), 0, "zero-leak: close unmaps everything");
    vm.shutdown();
    let _ = server.join();
}

/// Chaos seed: a card reset lands while zero-copy windows are mapped and
/// reads are in flight.  Quarantine must unmap the victims' windows
/// (quiescing in-flight gathers), racing requests may re-map against the
/// quarantined endpoint, and `scif_close` must still drain everything —
/// the audit balances at zero either way.
#[test]
fn card_reset_with_mapped_windows_unmaps_cleanly() {
    const BIG: u64 = 8 * 1024 * 1024;
    let host = VphiHost::new(1);
    let server = spawn_window_server(&host, Port(781), 2 * BIG, 1);
    let vm = Arc::new(host.spawn_vm(VmConfig::builder().zero_copy_rma(true).build()));

    let mut tl = Timeline::new();
    let guest = Arc::new(vm.open_scif(&mut tl).unwrap());
    guest.connect(ScifAddr::new(host.device_node(0), Port(781)), &mut tl).unwrap();
    wait_for_guest_window(&guest, &vm);
    let buf = Arc::new(vm.alloc_buf(BIG).unwrap());

    // Map a window with a successful zero-copy read first, so the reset
    // definitely finds mappings outstanding.
    guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).unwrap();
    let be = vm.backend().inner();
    assert!(be.aperture().mapped_windows() >= 1, "a window is mapped before the reset");

    let reader = {
        let (guest, buf) = (Arc::clone(&guest), Arc::clone(&buf));
        std::thread::spawn(move || {
            // Reads racing the reset may fail once the endpoint is
            // quarantined; only the bookkeeping must stay coherent.
            for _ in 0..10 {
                let mut tl = Timeline::new();
                let _ = guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl);
            }
        })
    };
    host.reset_card(0);
    reader.join().unwrap();

    assert_eq!(be.aperture().inflight_total(), 0, "reset left no in-flight descriptor lists");
    let mut tl = Timeline::new();
    let _ = guest.close(&mut tl);
    assert_eq!(be.aperture().mapped_windows(), 0, "zero-leak after quarantine + close");
    vm.shutdown();
    let _ = server.join();
}

/// Six guest threads sharing one frontend, each doing warm RMA rounds on
/// its own buffer with a register/unregister invalidation in the middle —
/// the cache and the notification-coalescing counters must stay coherent
/// under real thread interleaving.
#[test]
fn six_threads_hammer_the_cache_coherently() {
    let host = VphiHost::new(1);
    let threads = 6usize;
    let rounds = 10u32;
    let server = spawn_window_server(&host, Port(770), 16 * PAGE, threads);
    let vm = Arc::new(host.spawn_vm(VmConfig::default()));

    let mut handles = Vec::new();
    for _ in 0..threads {
        let vm = Arc::clone(&vm);
        let node = host.device_node(0);
        handles.push(std::thread::spawn(move || {
            let mut tl = Timeline::new();
            let guest = vm.open_scif(&mut tl).unwrap();
            guest.connect(ScifAddr::new(node, Port(770)), &mut tl).unwrap();
            wait_for_guest_window(&guest, &vm);
            let buf = vm.alloc_buf(2 * PAGE).unwrap();
            for round in 0..rounds {
                let mut tl = Timeline::new();
                guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).unwrap();
                if round == 4 {
                    // Window churn over the same pages: the next read
                    // must re-translate, not reuse the dead pin.
                    let off = guest.register(&buf, Prot::READ_WRITE, None, &mut tl).unwrap();
                    guest.unregister(off, buf.len(), &mut tl).unwrap();
                }
            }
            guest.close(&mut tl).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let report = VphiDebugReport::collect(&vm);
    let t = threads as u64;
    // Each thread: one wait probe (miss), a cold first read, then warm
    // reads except the one after its unregister.
    assert!(report.reg_cache_hits >= t * (rounds as u64 - 2), "hits = {}", report.reg_cache_hits);
    assert!(report.reg_cache_misses >= 3 * t, "misses = {}", report.reg_cache_misses);
    assert!(report.reg_cache_invalidations >= t, "each unregister invalidates that thread's entry");
    // Frontend and backend notification accounting must balance exactly:
    // every request kicks once (delivered or suppressed) and every
    // completion either injects, suppresses, or loses its interrupt.
    assert_eq!(report.kicks_delivered + report.kicks_suppressed, report.requests);
    assert_eq!(
        report.irqs_injected + report.irqs_suppressed + report.msi_lost,
        report.backend_requests
    );
    assert_eq!(vm.frontend().channel().inflight_count(), 0);

    vm.shutdown();
    let _ = server.join();
}

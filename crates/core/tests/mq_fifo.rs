//! Property test: the multi-queue transport preserves per-endpoint FIFO
//! ordering for every queue count, under concurrent senders.
//!
//! The guarantee decomposes over the two layers the router rests on: the
//! lane hash is a pure function of the endpoint (same epd → same lane,
//! DESIGN.md #15), and each lane's avail ring is FIFO.  This test drives
//! both at once: sender threads publish numbered chains for their own
//! endpoints through the real router, one consumer per lane (the sharded
//! backend's shape) pops them, and every endpoint's observed sequence
//! must come out exactly in issue order.
//!
//! This file submits to `VirtQueue`s directly — it tests the transport
//! underneath `transact` — and is exempted by name from the xtask
//! `queue-router` rule.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use vphi::frontend::VphiChannel;
use vphi::protocol::VphiRequest;
use vphi_sim_core::rng::SplitMix64;
use vphi_sim_core::{SimDuration, Timeline};
use vphi_sync::{LockClass, TrackedMutex};
use vphi_virtio::Descriptor;

const SENDERS: usize = 4;
const ENDPOINTS_PER_SENDER: usize = 2;
const MESSAGES_PER_SENDER: usize = 32;

/// Chains encode (epd, seq) in the descriptor's (addr, len); no guest
/// memory is involved at this layer.
fn run_one(num_queues: u16, seed: u64) -> HashMap<u64, Vec<u32>> {
    let channel = VphiChannel::with_queues(256, num_queues);
    let observed = Arc::new(TrackedMutex::new(LockClass::TestA, HashMap::<u64, Vec<u32>>::new()));

    // One consumer per lane, exactly like the backend's shard pool.
    let consumers: Vec<_> = (0..num_queues as usize)
        .map(|q| {
            let channel = Arc::clone(&channel);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                let queue = Arc::clone(channel.lane_queue(q));
                while queue.wait_kick() {
                    while let Ok(Some(chain)) = queue.pop_avail() {
                        let d = chain.descriptors[0];
                        observed.lock().entry(d.addr).or_default().push(d.len);
                    }
                }
                // Drain anything published after the final kick.
                while let Ok(Some(chain)) = queue.pop_avail() {
                    let d = chain.descriptors[0];
                    observed.lock().entry(d.addr).or_default().push(d.len);
                }
            })
        })
        .collect();

    // Concurrent senders, each owning its endpoints (issue order is only
    // defined per owner).  SplitMix64's finalizer is a bijection, so the
    // derived epds are distinct across senders.
    let senders: Vec<_> = (0..SENDERS)
        .map(|t| {
            let channel = Arc::clone(&channel);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let epds: Vec<u64> = (0..ENDPOINTS_PER_SENDER)
                    .map(|e| SplitMix64::new(seed.wrapping_add((t * 8 + e) as u64)).next_u64())
                    .collect();
                let mut next_seq = [0u32; ENDPOINTS_PER_SENDER];
                let mut tl = Timeline::new();
                for _ in 0..MESSAGES_PER_SENDER {
                    let e = (rng.next_u64() % ENDPOINTS_PER_SENDER as u64) as usize;
                    let epd = epds[e];
                    let seq = next_seq[e];
                    next_seq[e] += 1;
                    let q = channel.route(&VphiRequest::Send { epd, len: seq });
                    let queue = channel.lane_queue(q);
                    let head = queue
                        .prepare_chain(&[Descriptor::readable(epd, seq)])
                        .expect("ring has room");
                    queue.publish_avail(head, SimDuration::ZERO, &mut tl);
                    queue.kick(SimDuration::ZERO, &mut tl);
                }
                next_seq.iter().zip(epds).map(|(&n, epd)| (epd, n)).collect::<Vec<_>>()
            })
        })
        .collect();

    let expected: Vec<(u64, u32)> =
        senders.into_iter().flat_map(|s| s.join().expect("sender")).collect();

    // Wait for the consumers to drain everything, then shut the lanes down.
    let total: u32 = expected.iter().map(|&(_, n)| n).sum();
    for _ in 0..2000 {
        let seen: u32 = observed.lock().values().map(|v| v.len() as u32).sum();
        if seen == total {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for lane in channel.lanes() {
        lane.queue.shutdown();
    }
    for c in consumers {
        c.join().expect("consumer");
    }

    let observed = observed.lock().clone();
    let seen: u32 = observed.values().map(|v| v.len() as u32).sum();
    assert_eq!(seen, total, "consumer lost chains");
    for (epd, n) in expected {
        let got = observed.get(&epd).cloned().unwrap_or_default();
        let want: Vec<u32> = (0..n).collect();
        assert_eq!(got, want, "epd {epd:#x} out of order with {num_queues} queues");
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn per_endpoint_fifo_holds_for_every_queue_count(seed in any::<u64>()) {
        for &q in &[1u16, 2, 4, 8] {
            run_one(q, seed);
        }
    }

    #[test]
    fn same_endpoint_always_lands_on_the_same_lane(seed in any::<u64>(), queues in 1u16..=8) {
        let channel = VphiChannel::with_queues(8, queues);
        for i in 0..64u64 {
            let epd = SplitMix64::new(seed.wrapping_add(i)).next_u64();
            let first = channel.route(&VphiRequest::Send { epd, len: 1 });
            // Stable across opcodes and payload sizes: routing is a pure
            // function of the endpoint.
            prop_assert_eq!(first, channel.route(&VphiRequest::Recv { epd, len: 9 }));
            prop_assert_eq!(first, channel.route(&VphiRequest::Close { epd }));
            prop_assert_eq!(
                first,
                channel.route(&VphiRequest::VreadFrom { epd, roffset: 0, len: 1 << 20, flags: 0 })
            );
            prop_assert!(first < queues as usize);
        }
    }
}

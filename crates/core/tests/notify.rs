//! Completion-notification liveness under EVENT_IDX suppression.
//!
//! The adaptive waiter gives the backend permission to *not* interrupt —
//! so the property that matters is liveness: a requester that decides to
//! sleep is always eventually woken, for every queue count, scheme, and
//! interleaving of concurrent requesters.  The prepare/publish discipline
//! (DESIGN.md #16) is what makes this true: the waiter publishes its
//! `used_event` threshold *before* the request becomes visible, so the
//! backend either sees an armed threshold (and injects) or the waiter's
//! pre-sleep recheck sees the completion.
//!
//! The chaos half injects the two faults that attack exactly this
//! guarantee — a lost completion MSI and a delayed used-ring publish —
//! and checks the requester still comes back (via the wall-clock
//! deadline re-check), with the notification ledger balancing.

use std::sync::Arc;

use proptest::prelude::*;
use vphi::builder::{VmConfig, VphiHost};
use vphi::debugfs::VphiDebugReport;
use vphi::frontend::WaitScheme;
use vphi_faults::{FaultPlan, FaultPoint, FaultSite};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::rng::SplitMix64;
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::{SimDuration, Timeline};

const THREADS: usize = 3;
const MSGS: usize = 5;

/// Device sink that accepts `conns` connections and drains each until the
/// peer hangs up, one worker per connection.
fn spawn_sink(host: &VphiHost, port: Port, conns: usize) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(16, &mut tl).unwrap();
        tx.send(()).unwrap();
        let mut workers = Vec::new();
        for _ in 0..conns {
            let conn = server.accept(&mut tl).unwrap();
            workers.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                let mut buf = vec![0u8; 1 << 16];
                loop {
                    match conn.core().recv(&mut buf, &mut tl) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }));
        }
        for w in workers {
            let _ = w.join();
        }
    });
    rx.recv().unwrap();
    h
}

/// Every backend completion is accounted for exactly once: injected,
/// suppressed, or lost.  And per-token wakes mean no requester ever woke
/// for someone else's completion.
fn assert_ledger_balances(report: &VphiDebugReport) {
    assert_eq!(
        report.irqs_injected + report.irqs_suppressed + report.msi_lost,
        report.backend_requests,
        "notification ledger out of balance: {report:?}"
    );
}

/// One full VM session: `THREADS` concurrent requesters, each sending
/// `MSGS` payloads of seed-chosen sizes spanning the spin/sleep split.
fn run_session(scheme: WaitScheme, num_queues: u16, port: u16, seed: u64) -> VphiDebugReport {
    let host = VphiHost::new(1);
    let sink = spawn_sink(&host, Port(port), THREADS);
    let vm =
        Arc::new(host.spawn_vm(VmConfig::builder().scheme(scheme).num_queues(num_queues).build()));

    let guests: Vec<_> = (0..THREADS)
        .map(|t| {
            let vm = Arc::clone(&vm);
            let node = host.device_node(0);
            std::thread::spawn(move || {
                let sizes = [1u64, 512, 4 * KIB, 64 * KIB, MIB];
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let mut tl = Timeline::new();
                let ep = vm.open_scif(&mut tl).expect("open");
                ep.connect(ScifAddr::new(node, Port(port)), &mut tl).expect("connect");
                for _ in 0..MSGS {
                    let len = sizes[(rng.next_u64() % sizes.len() as u64) as usize] as usize;
                    let data = vec![0u8; len];
                    let mut send_tl = Timeline::new();
                    let n = ep.send(&data, &mut send_tl).expect("send");
                    assert_eq!(n, len, "short send");
                }
                ep.close(&mut tl).expect("close");
            })
        })
        .collect();
    for g in guests {
        g.join().expect("guest thread");
    }

    let report = VphiDebugReport::collect(&vm);
    assert_eq!(vm.frontend().channel().inflight_count(), 0, "request leaked in flight");
    vm.shutdown();
    let _ = sink.join();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Liveness across queue counts, schemes, and interleavings: every
    /// send returns, nothing stays in flight, the ledger balances, and —
    /// the thundering-herd fix — no requester ever takes a spurious wake.
    #[test]
    fn sleeping_requesters_are_always_woken(seed in any::<u64>()) {
        let schemes = [
            WaitScheme::Interrupt,
            WaitScheme::ADAPTIVE,
            WaitScheme::STATIC_HYBRID,
            WaitScheme::Polling,
        ];
        let scheme = schemes[(seed % schemes.len() as u64) as usize];
        for (i, &queues) in [1u16, 2, 4].iter().enumerate() {
            let report = run_session(scheme, queues, 860 + i as u16, seed);
            assert_ledger_balances(&report);
            prop_assert_eq!(report.msi_lost, 0);
            prop_assert_eq!(
                report.spurious_wakeups, 0,
                "per-token wakes must never wake the wrong requester"
            );
            if scheme == WaitScheme::Polling {
                prop_assert_eq!(report.irqs_injected, 0, "a spinner never needs an MSI");
            }
        }
    }

    /// Chaos: a lost completion MSI and a delayed used-ring publish at
    /// seed-chosen crossings.  The sleeping requester still comes back —
    /// the wall-clock deadline re-check finds the reply on the used ring —
    /// and the lost interrupt shows up in the ledger, not as a hang.
    #[test]
    fn chaos_lost_msi_and_used_delay_recover(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        // Crossings land somewhere in the request stream below (open and
        // connect are crossings 1–2; the sends follow).
        let plan = FaultPlan {
            seed,
            points: vec![
                FaultPoint {
                    site: FaultSite::PcieMsiLost,
                    nth: 3 + rng.next_below(4),
                    param: 0,
                },
                FaultPoint {
                    site: FaultSite::VirtioUsedDelay,
                    nth: 3 + rng.next_below(4),
                    param: 100 + rng.next_below(4900),
                },
            ],
        };
        let host = VphiHost::new(1);
        let injector = host.arm_faults(plan);
        let sink = spawn_sink(&host, Port(875), 1);
        let vm = host.spawn_vm(VmConfig::builder().scheme(WaitScheme::ADAPTIVE).build());
        let mut tl = Timeline::new();
        let ep = vm.open_scif(&mut tl).expect("open");
        ep.connect(ScifAddr::new(host.device_node(0), Port(875)), &mut tl).expect("connect");
        for i in 0..6u64 {
            // Alternate spin-path and sleep-path requests so both cross
            // the armed sites.
            let len = if i % 2 == 0 { 1 } else { MIB as usize };
            let mut send_tl = Timeline::new();
            let n = ep.send(&vec![0u8; len], &mut send_tl).expect("send must survive the fault");
            prop_assert_eq!(n, len);
        }
        ep.close(&mut tl).expect("close");

        let report = VphiDebugReport::collect(&vm);
        assert_ledger_balances(&report);
        prop_assert_eq!(vm.frontend().channel().inflight_count(), 0);
        // The lost interrupt is in the ledger, not a hang.  Recovery may
        // not even need a deadline: a requester that has not parked yet
        // finds the quiet completion on its first predicate check.
        prop_assert_eq!(report.msi_lost, injector.fired_at(FaultSite::PcieMsiLost));
        vm.shutdown();
        let _ = sink.join();
    }
}

/// Targeted: a lost MSI on a completion the requester is *parked* for.
///
/// The ordering is forced, not raced: the device sink stalls 600 ms
/// before its first recv, so the guest's fifth 4 MiB chunk blocks in the
/// backend behind the 16 MiB SCIF queue until the sink drains.  Its
/// requester has long since armed the threshold and parked when the
/// completion finally lands — quietly, because its MSI is the one the
/// plan loses (crossing 7: open=1, connect=2, chunks 3–7).  Recovery has
/// exactly one path left: the wall-clock deadline expires and the
/// re-check finds the reply on the used ring.
#[test]
fn lost_msi_recovers_via_deadline_retry() {
    const CHUNK: u64 = 4 * MIB; // KMALLOC_MAX_SIZE, the default chunk
    let host = VphiHost::new(1);
    let injector = host.arm_faults(FaultPlan::single(FaultSite::PcieMsiLost, 7, 0));
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let sink = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(876), &mut tl).unwrap();
        server.listen(4, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(600));
        let mut buf = vec![0u8; 1 << 16];
        loop {
            match conn.core().recv(&mut buf, &mut tl) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::builder().scheme(WaitScheme::Interrupt).build());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).expect("open");
    ep.connect(ScifAddr::new(host.device_node(0), Port(876)), &mut tl).expect("connect");
    let len = (5 * CHUNK) as usize;
    let mut send_tl = Timeline::new();
    assert_eq!(ep.send(&vec![0u8; len], &mut send_tl).expect("send"), len);
    ep.close(&mut tl).expect("close");

    let report = VphiDebugReport::collect(&vm);
    assert_eq!(injector.fired_at(FaultSite::PcieMsiLost), 1);
    assert_eq!(report.msi_lost, 1);
    assert!(report.deadline_retries >= 1, "recovery goes through the deadline re-check");
    assert_ledger_balances(&report);
    assert_eq!(vm.frontend().channel().inflight_count(), 0);
    vm.shutdown();
    let _ = sink.join();
}

/// Targeted: a delayed used-ring publish is pure virtual latency — the
/// completion arrives late but nothing needs the wall-clock deadline.
#[test]
fn used_ring_delay_is_latency_not_a_hang() {
    const DELAY_US: u64 = 5_000;
    let host = VphiHost::new(1);
    // Crossing 3 = the first send's completion (open=1, connect=2).
    host.arm_faults(FaultPlan::single(FaultSite::VirtioUsedDelay, 3, DELAY_US));
    let sink = spawn_sink(&host, Port(877), 1);
    let vm = host.spawn_vm(VmConfig::builder().scheme(WaitScheme::Interrupt).build());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).expect("open");
    ep.connect(ScifAddr::new(host.device_node(0), Port(877)), &mut tl).expect("connect");

    let mut delayed_tl = Timeline::new();
    assert_eq!(ep.send(&[1u8], &mut delayed_tl).expect("send"), 1);
    let mut clean_tl = Timeline::new();
    assert_eq!(ep.send(&[1u8], &mut clean_tl).expect("send"), 1);
    assert_eq!(
        delayed_tl.total(),
        clean_tl.total() + SimDuration::from_micros(DELAY_US),
        "the injected delay is charged, nothing else changes"
    );

    let report = VphiDebugReport::collect(&vm);
    assert_eq!(report.deadline_retries, 0, "virtual delay never trips the wall deadline");
    assert_ledger_balances(&report);
    ep.close(&mut tl).expect("close");
    vm.shutdown();
    let _ = sink.join();
}

//! End-to-end validation of the paper's calibration anchors.
//!
//! These tests run the *whole* stack — guest shim → frontend → virtio →
//! backend → host SCIF → PCIe → device — and check that the paper's
//! measured numbers emerge from the mechanism, not from hard-coding:
//!
//! * Fig. 4: native 1-byte send = 7 µs, vPHI = 382 µs (overhead 375 µs).
//! * In-text breakdown: 93% of the overhead is the frontend waiting
//!   scheme.
//! * Fig. 5: vPHI remote-read peak ≈ 72% of native.

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifAddr, ScifEndpoint};
use vphi_sim_core::units::MIB;
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};

/// Launch a device-side server that accepts one connection and then
/// serves `recv` of any size until EOF.
fn spawn_device_sink(host: &VphiHost, port: Port) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(4, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        // Drain whatever arrives until the client closes.
        let mut buf = vec![0u8; 1 << 20];
        loop {
            match conn.core().recv(&mut buf[..1], &mut tl) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    rx.recv().unwrap();
    handle
}

/// Device server that registers a GDDR window and parks.
fn spawn_device_window(
    host: &VphiHost,
    port: Port,
    window_len: u64,
) -> (std::thread::JoinHandle<()>, Arc<vphi_phi::PhiBoard>) {
    let board = Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let b2 = Arc::clone(&board);
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(4, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        // Timed region: capacity accounting only (reads as zeros) — the
        // throughput benchmark never checks payload contents, matching how
        // the paper's benchmark registers an uninitialized device area.
        let region = b2.memory().alloc_timed(window_len).unwrap();
        conn.register(
            Some(0),
            window_len,
            Prot::READ_WRITE,
            WindowBacking::Device(region),
            &mut tl,
        )
        .unwrap();
        // Park until the peer hangs up.
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();
    (h, board)
}

#[test]
fn fig4_one_byte_latency_anchors() {
    let host = VphiHost::new(1);

    // --- native ---
    let sink = spawn_device_sink(&host, Port(700));
    let native = host.native_endpoint().unwrap();
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(700)), &mut tl).unwrap();
    let mut native_tl = Timeline::new();
    native.send(&[1], &mut native_tl).unwrap();
    assert_eq!(native_tl.total(), SimDuration::from_micros(7), "native 1B = 7us");
    native.close();
    sink.join().unwrap();

    // --- vPHI ---
    let sink = spawn_device_sink(&host, Port(701));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).unwrap();
    guest.connect(ScifAddr::new(host.device_node(0), Port(701)), &mut tl).unwrap();

    let mut vphi_tl = Timeline::new();
    guest.send(&[1], &mut vphi_tl).unwrap();
    let total = vphi_tl.total();
    assert_eq!(total, SimDuration::from_micros(382), "vPHI 1B = 382us, got {vphi_tl}");

    // Overhead 375 µs, 93% of it in the waiting scheme.
    let overhead = vphi_tl.virtualization_overhead();
    assert_eq!(overhead, SimDuration::from_micros(375));
    let wakeup = vphi_tl.total_for(SpanLabel::GuestWakeup);
    let share = wakeup.as_nanos() as f64 / overhead.as_nanos() as f64;
    assert!((share - 0.93).abs() < 0.001, "waiting-scheme share = {share}");

    guest.close(&mut tl).unwrap();
    vm.shutdown();
    sink.join().unwrap();
}

#[test]
fn fig4_offset_is_constant_across_sizes() {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, Port(710));
    let native = host.native_endpoint().unwrap();
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(710)), &mut tl).unwrap();

    let sink2 = spawn_device_sink(&host, Port(711));
    let vm = host.spawn_vm(VmConfig::default());
    let guest = vm.open_scif(&mut tl).unwrap();
    guest.connect(ScifAddr::new(host.device_node(0), Port(711)), &mut tl).unwrap();

    let mut offsets = Vec::new();
    for size in [1usize, 64, 1024, 16 * 1024] {
        let data = vec![0u8; size];
        let mut ntl = Timeline::new();
        native.send(&data, &mut ntl).unwrap();
        let mut vtl = Timeline::new();
        guest.send(&data, &mut vtl).unwrap();
        offsets.push(vtl.total().saturating_sub(ntl.total()));
    }
    // "the previously mentioned overhead remains constant as data size
    // increases" — within a microsecond across 1B..16KiB.
    // Constant within a few µs (the only size-dependent vPHI-side term is
    // the guest staging copy, ~2 µs at 16 KiB).
    let min = offsets.iter().min().unwrap();
    let max = offsets.iter().max().unwrap();
    assert!(max.as_nanos() - min.as_nanos() < 5_000, "offset should be constant: {offsets:?}");

    native.close();
    guest.close(&mut tl).unwrap();
    vm.shutdown();
    sink.join().unwrap();
    sink2.join().unwrap();
}

#[test]
fn fig5_remote_read_peak_is_72_percent_of_native() {
    let host = VphiHost::new(1);
    // Large enough that the constant 375 µs request overhead is amortized
    // and the per-page translate term dominates the gap (the paper's peak
    // regime).
    let size = 256 * MIB;

    // --- native remote read ---
    let (server, _board) = spawn_device_window(&host, Port(720), size);
    let native = host.native_endpoint().unwrap();
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(720)), &mut tl).unwrap();
    // Give the device thread time to register its window.
    wait_for_window(&native);
    let mut buf = vec![0u8; size as usize];
    let mut native_tl = Timeline::new();
    native.vreadfrom(&mut buf, 0, RmaFlags::SYNC, &mut native_tl).unwrap();
    let native_bw = native_tl.total().throughput(size);
    // Native peak ≈ 6.4 GB/s.
    assert!((native_bw / 1e9 - 6.4).abs() < 0.05, "native bw = {native_bw}");
    native.close();
    server.join().unwrap();

    // --- vPHI remote read ---
    let (server, _board) = spawn_device_window(&host, Port(721), size);
    let vm = host.spawn_vm(VmConfig::builder().mem_size(384 * MIB).build());
    let guest = vm.open_scif(&mut tl).unwrap();
    guest.connect(ScifAddr::new(host.device_node(0), Port(721)), &mut tl).unwrap();
    wait_for_guest_window(&guest, &vm);
    let gbuf = vm.alloc_buf(size).unwrap();
    let mut vphi_tl = Timeline::new();
    guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut vphi_tl).unwrap();
    let vphi_bw = vphi_tl.total().throughput(size);

    let ratio = vphi_bw / native_bw;
    assert!((ratio - 0.72).abs() < 0.01, "vPHI/native = {ratio} (expected ~0.72)");
    // ≈ 4.6 GB/s in absolute terms.
    assert!((vphi_bw / 1e9 - 4.6).abs() < 0.1, "vPHI bw = {vphi_bw}");

    guest.close(&mut tl).unwrap();
    vm.shutdown();
    server.join().unwrap();
}

/// Wait (wall clock) until the device-side window is registered, by
/// retrying a tiny read.
fn wait_for_window(ep: &ScifEndpoint) {
    let mut b = [0u8; 1];
    for _ in 0..1000 {
        let mut tl = Timeline::new();
        if ep.vreadfrom(&mut b, 0, RmaFlags::SYNC, &mut tl).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("device window never appeared");
}

fn wait_for_guest_window(guest: &vphi::GuestScif, vm: &vphi::VphiVm) {
    let buf = vm.alloc_buf(1).unwrap();
    for _ in 0..1000 {
        let mut tl = Timeline::new();
        if guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("device window never appeared (guest)");
}

//! Property tests for the completion-token submission API (DESIGN.md #18):
//! batched submissions keep per-endpoint FIFO order for every queue count,
//! tokens are unique for the life of a VM, and a card reset mid-batch
//! still reaps every outstanding token exactly once with nothing leaked.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use vphi::builder::{VmConfig, VphiHost};
use vphi::{Cq, GuestScif, Sq, SqEntry};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::rng::SplitMix64;
use vphi_sim_core::Timeline;

const ENDPOINTS: usize = 3;
const ROUNDS: usize = 3;

/// Device-side server: accepts up to `conns` connections and records, per
/// connection, the sequence numbers it receives (4-byte LE frames).  The
/// recv is SCIF_RECV_BLOCK, so frames arrive whole and a short read means
/// the peer closed.
fn ordered_server(
    host: &VphiHost,
    port: u16,
    conns: usize,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<Vec<u32>>> {
    let server = host.device_endpoint(0).unwrap();
    let mut tl = Timeline::new();
    server.bind(Port(port), &mut tl).unwrap();
    server.listen(8, &mut tl).unwrap();
    std::thread::spawn(move || {
        let mut tl = Timeline::new();
        let mut handlers = Vec::new();
        while handlers.len() < conns && !stop.load(Ordering::Relaxed) {
            match server.try_accept(&mut tl) {
                Ok(Some(conn)) => handlers.push(std::thread::spawn(move || {
                    let mut tl = Timeline::new();
                    let mut seqs = Vec::new();
                    loop {
                        let mut frame = [0u8; 4];
                        match conn.recv(&mut frame, &mut tl) {
                            Ok(4) => seqs.push(u32::from_le_bytes(frame)),
                            _ => break,
                        }
                    }
                    conn.close();
                    seqs
                })),
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        handlers.into_iter().map(|h| h.join().expect("conn handler")).collect()
    })
}

/// One full-stack round at a given queue count: every endpoint submits
/// seeded batches of numbered sends, reaps them all, and the device side
/// must observe each connection's numbers contiguous and in order.
/// Returns every token the VM handed out, for the uniqueness property.
fn fifo_round(num_queues: u16, seed: u64) -> HashSet<u64> {
    let host = VphiHost::new(1);
    let stop = Arc::new(AtomicBool::new(false));
    let server = ordered_server(&host, 960, ENDPOINTS, Arc::clone(&stop));
    let vm = host.spawn_vm(VmConfig::builder().num_queues(num_queues).build());
    let mut tl = Timeline::new();
    let addr = ScifAddr::new(host.device_node(0), Port(960));
    let eps: Vec<GuestScif> = (0..ENDPOINTS)
        .map(|_| {
            let ep = vm.open_scif(&mut tl).unwrap();
            ep.connect(addr, &mut tl).unwrap();
            ep
        })
        .collect();

    let mut rng = SplitMix64::new(seed);
    let mut cqs: Vec<Cq> = (0..ENDPOINTS).map(|_| Cq::new()).collect();
    let mut next_seq = vec![0u32; ENDPOINTS];
    let mut tokens = HashSet::new();
    for _ in 0..ROUNDS {
        // Interleave: every endpoint's batch is in flight before any reap.
        for (e, ep) in eps.iter().enumerate() {
            let mut sq = Sq::new();
            for _ in 0..1 + rng.next_u64() % 8 {
                let seq = next_seq[e];
                next_seq[e] += 1;
                sq.push(SqEntry::send(&seq.to_le_bytes()));
            }
            let batch = ep.submit(&mut sq, &mut tl).unwrap();
            for t in &batch {
                assert_ne!(t.raw(), 0, "token 0 is the never-issued sentinel");
                assert!(tokens.insert(t.raw()), "token {} issued twice", t.raw());
            }
            cqs[e].watch(&batch);
        }
        for (e, ep) in eps.iter().enumerate() {
            let want = cqs[e].outstanding().len();
            let got = ep.reap(&mut cqs[e], want, want, &mut tl).unwrap();
            assert_eq!(got, want, "reap left tokens behind");
            for c in cqs[e].drain() {
                c.result.expect("healthy-card send must succeed");
            }
        }
    }

    let sent: Vec<u32> = next_seq.clone();
    for ep in eps {
        ep.close(&mut tl).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let mut observed = server.join().expect("server");
    assert_eq!(vm.frontend().pending_tokens(), 0, "tokens left pending after reaps");
    vm.shutdown();

    // Accept order need not match connect order, but each connection must
    // have seen exactly 0..n in order — FIFO per endpoint, no queue count
    // excepted — and the connection sizes must match what was submitted.
    for seqs in &observed {
        let want: Vec<u32> = (0..seqs.len() as u32).collect();
        assert_eq!(seqs, &want, "out-of-order delivery with {num_queues} queues");
    }
    let mut sizes: Vec<u32> = observed.iter_mut().map(|s| s.len() as u32).collect();
    let mut expected = sent;
    sizes.sort_unstable();
    expected.sort_unstable();
    assert_eq!(sizes, expected, "sent/received frame counts diverged");
    tokens
}

/// A seeded card reset between submit and reap: every outstanding token
/// must still be reaped exactly once (with whatever error the dead card
/// produced), and nothing — tokens, endpoints, windows — may leak.
fn chaos_reap_round(seed: u64) {
    let host = VphiHost::new(1);
    let stop = Arc::new(AtomicBool::new(false));
    let server = ordered_server(&host, 962, 2, Arc::clone(&stop));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let addr = ScifAddr::new(host.device_node(0), Port(962));
    let mut rng = SplitMix64::new(seed);
    let eps: Vec<GuestScif> = (0..2)
        .map(|_| {
            let ep = vm.open_scif(&mut tl).unwrap();
            ep.connect(addr, &mut tl).unwrap();
            ep
        })
        .collect();

    let mut cqs: Vec<Cq> = (0..2).map(|_| Cq::new()).collect();
    let mut submitted = HashSet::new();
    for (e, ep) in eps.iter().enumerate() {
        let mut sq = Sq::new();
        for i in 0..8 + rng.next_u64() % 8 {
            let mut entry = SqEntry::send(&(i as u32).to_le_bytes());
            if rng.next_u64().is_multiple_of(4) {
                entry = entry.busy_poll();
            }
            sq.push(entry);
        }
        let batch = ep.submit(&mut sq, &mut tl).unwrap();
        for t in &batch {
            assert!(submitted.insert(t.raw()), "seed {seed}: duplicate token");
        }
        cqs[e].watch(&batch);
    }

    // The reset lands with every batch in flight; whatever the backend was
    // doing to each entry, its completion must still surface exactly once.
    host.reset_card(0);

    let mut reaped = HashSet::new();
    for (e, ep) in eps.iter().enumerate() {
        let want = cqs[e].outstanding().len();
        let got = ep.reap(&mut cqs[e], want, want, &mut tl).unwrap();
        assert_eq!(got, want, "seed {seed}: reap lost tokens across the reset");
        for c in cqs[e].drain() {
            assert!(reaped.insert(c.token.raw()), "seed {seed}: token reaped twice");
        }
    }
    assert_eq!(reaped, submitted, "seed {seed}: reaped set != submitted set");
    assert_eq!(vm.frontend().pending_tokens(), 0, "seed {seed}: leaked tokens");

    stop.store(true, Ordering::Relaxed);
    for ep in eps {
        let _ = ep.close(&mut tl); // the card died under it; any errno is fair
    }
    let _ = server.join();
    assert_eq!(vm.backend().open_endpoints(), 0, "seed {seed}: leaked endpoints");
    assert_eq!(vm.backend().inner().window_entries(), 0, "seed {seed}: leaked windows");
    vm.shutdown();
    assert_eq!(vphi_sync::audit::violation_count(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batched_submissions_keep_per_endpoint_fifo(seed in any::<u64>()) {
        for &q in &[1u16, 2, 4, 8] {
            fifo_round(q, seed);
        }
    }

    #[test]
    fn tokens_are_unique_for_the_life_of_a_vm(seed in any::<u64>()) {
        // fifo_round asserts uniqueness as it collects; the count check
        // here pins that no submission went untokened either.
        let tokens = fifo_round(4, seed);
        prop_assert!(!tokens.is_empty());
    }
}

#[test]
fn card_reset_mid_batch_reaps_every_token_exactly_once() {
    // The same fixed seeds the chaos suite sweeps (tests/chaos.rs).
    for seed in [11, 47, 2026] {
        chaos_reap_round(seed);
    }
}

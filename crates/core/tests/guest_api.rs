//! Guest API surface tests: buffer discipline, timed-lane equivalence,
//! EOF semantics, and endpoint lifecycle through the full stack.

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::{Port, ScifAddr, ScifError};
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};

fn sink(host: &VphiHost, port: Port) -> std::thread::JoinHandle<u64> {
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(4, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut total = 0u64;
        let mut buf = vec![0u8; 1 << 16];
        loop {
            match conn.core().recv(&mut buf[..1], &mut tl) {
                Ok(0) | Err(_) => break,
                Ok(n) => total += n as u64,
            }
        }
        total
    });
    rx.recv().unwrap();
    h
}

#[test]
fn guest_buf_bounds_are_enforced() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let buf = vm.alloc_buf(100).unwrap();
    assert_eq!(buf.len(), 100);
    assert!(!buf.is_empty());
    buf.fill(0, &[1; 100]).unwrap();
    assert_eq!(buf.fill(1, &[0; 100]), Err(ScifError::Inval));
    let mut out = [0u8; 100];
    buf.peek(0, &mut out).unwrap();
    assert_eq!(out, [1u8; 100]);
    let mut too_big = [0u8; 101];
    assert_eq!(buf.peek(0, &mut too_big), Err(ScifError::Inval));
    vm.shutdown();
}

#[test]
fn timed_lane_costs_what_the_real_lane_costs() {
    let host = VphiHost::new(1);
    let s1 = sink(&host, Port(940));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(940)), &mut tl).unwrap();

    let len = 8u64 << 20; // two staging chunks
    let mut timed_tl = Timeline::new();
    ep.send_timed(len, &mut timed_tl).unwrap();
    let mut real_tl = Timeline::new();
    ep.send(&vec![0u8; len as usize], &mut real_tl).unwrap();

    // Same structural spans, same order of magnitude; the only difference
    // is the real lane's per-chunk Send op vs SendTimed (identical
    // charges), so totals must match exactly.
    assert_eq!(timed_tl.total(), real_tl.total());
    assert_eq!(timed_tl.total_for(SpanLabel::VmExitKick), real_tl.total_for(SpanLabel::VmExitKick));
    assert_eq!(
        timed_tl.total_for(SpanLabel::GuestWakeup),
        real_tl.total_for(SpanLabel::GuestWakeup)
    );

    ep.close(&mut tl).unwrap();
    vm.shutdown();
    let _ = s1.join();
}

#[test]
fn recv_returns_short_count_on_peer_close() {
    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(941), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        conn.core().send(b"abc", &mut tl).unwrap();
        conn.close(); // only 3 of the requested 8 bytes will ever exist
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(941)), &mut tl).unwrap();
    dev.join().unwrap();
    let mut out = [0u8; 8];
    let n = ep.recv(&mut out, &mut tl).unwrap();
    assert_eq!(n, 3);
    assert_eq!(&out[..3], b"abc");
    ep.close(&mut tl).unwrap();
    vm.shutdown();
}

#[test]
fn close_is_idempotent_and_drop_is_quiet() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    ep.close(&mut tl).unwrap(); // second close: Ok, no second ring trip
    drop(ep); // drop after close must not send another Close
    assert_eq!(vm.backend().open_endpoints(), 0);

    // Drop without close sends exactly one Close.
    let before = vm.frontend().stats().requests;
    let ep2 = vm.open_scif(&mut tl).unwrap();
    drop(ep2);
    let after = vm.frontend().stats().requests;
    assert_eq!(after - before, 2); // Open + Close
    assert_eq!(vm.backend().open_endpoints(), 0);
    vm.shutdown();
}

#[test]
fn calls_after_vm_shutdown_fail_fast() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    vm.shutdown();
    let started = std::time::Instant::now();
    assert_eq!(ep.bind(Port(942), &mut tl), Err(ScifError::NoDev));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(1),
        "post-shutdown call must not hang"
    );
}

#[test]
fn paravirtual_spans_appear_exactly_once_per_request() {
    let host = VphiHost::new(1);
    let s = sink(&host, Port(943));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(943)), &mut tl).unwrap();

    let cost = host.cost();
    let mut send_tl = Timeline::new();
    ep.send(&[9], &mut send_tl).unwrap();
    for (label, expect) in [
        (SpanLabel::GuestSyscall, cost.guest_syscall),
        (SpanLabel::RingPush, cost.ring_push),
        (SpanLabel::VmExitKick, cost.vmexit_kick),
        (SpanLabel::BackendDecode, cost.backend_decode),
        (SpanLabel::GuestBufMap, cost.guest_buf_map),
        (SpanLabel::UsedPush, cost.used_push),
        (SpanLabel::IrqInject, cost.irq_inject),
        (SpanLabel::GuestWakeup, cost.guest_wakeup),
    ] {
        assert_eq!(send_tl.total_for(label), expect, "span {label:?} charged wrong amount");
    }
    // And the waiting-scheme counters agree with one interrupt wait.
    assert_eq!(vm.frontend().stats().interrupt_waits, 3); // open+connect+send
    assert_eq!(send_tl.total(), SimDuration::from_micros(382));

    ep.close(&mut tl).unwrap();
    vm.shutdown();
    let _ = s.join();
}

//! `scif_mmap` — mapping a peer's registered window into the local
//! address space.
//!
//! After a successful `scif_mmap`, loads and stores on the returned
//! mapping hit device memory with **no** library or system call — that is
//! the whole point, and it is why vPHI needs its `VM_PFNPHI` host-kernel
//! patch (a guest touch must fault through KVM to the right device frame).
//!
//! A [`MappedRegion`] is the simulation's stand-in for that mapped pointer:
//! `load`/`store` access the peer window's backing directly (no SCIF
//! charges — first-touch fault costs are charged by the *vmm/kvm* layer,
//! which owns the fault path).

use vphi_sim_core::cost::PAGE_SIZE;

use crate::endpoint::{EndpointCore, EpState};
use crate::error::{ScifError, ScifResult};
use crate::types::Prot;
use crate::window::WindowBacking;

/// A local mapping of `[offset, offset+len)` of the peer's registered
/// address space.
#[derive(Debug, Clone)]
pub struct MappedRegion {
    backing: WindowBacking,
    /// Offset of this mapping within the backing.
    base_in_backing: u64,
    len: u64,
    prot: Prot,
}

impl MappedRegion {
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn prot(&self) -> Prot {
        self.prot
    }

    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// Device PFN backing page `page_index` of the mapping, when the peer
    /// window lives in GDDR — what KVM stores in the `VM_PFNPHI` VMA.
    pub fn device_pfn(&self, page_index: u64) -> Option<u64> {
        self.backing
            .device_base_pfn()
            .map(|base| base + (self.base_in_backing / PAGE_SIZE) + page_index)
    }

    /// Dereference: read `out.len()` bytes at mapping offset `at`.
    pub fn load(&self, at: u64, out: &mut [u8]) -> ScifResult<()> {
        if !self.prot.readable() {
            return Err(ScifError::Access);
        }
        if at.checked_add(out.len() as u64).is_none_or(|end| end > self.len) {
            return Err(ScifError::OutOfRange);
        }
        self.backing.read(self.base_in_backing + at, out)
    }

    /// Dereference: write `data` at mapping offset `at`.
    pub fn store(&self, at: u64, data: &[u8]) -> ScifResult<()> {
        if !self.prot.writable() {
            return Err(ScifError::Access);
        }
        if at.checked_add(data.len() as u64).is_none_or(|end| end > self.len) {
            return Err(ScifError::OutOfRange);
        }
        self.backing.write(self.base_in_backing + at, data)
    }

    /// Typed 8-byte accessors for the flag-polling idiom.
    pub fn load_u64(&self, at: u64) -> ScifResult<u64> {
        let mut b = [0u8; 8];
        self.load(at, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn store_u64(&self, at: u64, v: u64) -> ScifResult<()> {
        self.store(at, &v.to_le_bytes())
    }
}

impl EndpointCore {
    /// `scif_mmap`: map `len` bytes of the peer's registered space
    /// starting at `offset`.  `prot` must be a subset of the window's.
    pub fn mmap(&self, offset: u64, len: u64, prot: Prot) -> ScifResult<MappedRegion> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) || !offset.is_multiple_of(PAGE_SIZE) {
            return Err(ScifError::Inval);
        }
        let peer = self.peer_core()?;
        let windows = peer.windows.lock();
        let w = windows.lookup(offset, len)?;
        if !w.prot.contains(prot) {
            return Err(ScifError::Access);
        }
        Ok(MappedRegion {
            backing: w.backing.clone(),
            base_in_backing: offset - w.offset,
            len,
            prot,
        })
    }

    /// `scif_munmap` is a drop in this model; provided for API symmetry.
    pub fn munmap(&self, region: MappedRegion) {
        drop(region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ScifFabric;
    use crate::rma::register_pinned;
    use crate::types::{Port, ScifAddr, HOST_NODE};
    use crate::window::WindowBacking;
    use std::sync::Arc;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::{CostModel, Timeline, VirtualClock};

    fn setup() -> (ScifFabric, Arc<EndpointCore>, Arc<EndpointCore>) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let dev = fabric.add_device(board);
        let server = fabric.open(dev).unwrap();
        server.bind(Port(7)).unwrap();
        server.listen(2).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acc = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        let mut tl = Timeline::new();
        client.connect(ScifAddr::new(dev, Port(7)), &mut tl).unwrap();
        (fabric, client, acc.join().unwrap())
    }

    #[test]
    fn mmap_load_store_hits_peer_memory() {
        let (_f, client, server) = setup();
        let (roff, rbuf) = register_pinned(&server, 2 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let map = client.mmap(roff, 2 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        map.store(16, b"mapped").unwrap();
        assert_eq!(&rbuf.lock()[16..22], b"mapped");
        rbuf.lock()[100] = 0x5A;
        let mut b = [0u8];
        map.load(100, &mut b).unwrap();
        assert_eq!(b[0], 0x5A);
    }

    #[test]
    fn mmap_respects_window_and_requested_prot() {
        let (_f, client, server) = setup();
        let (ro, _) = register_pinned(&server, PAGE_SIZE, Prot::READ).unwrap();
        // Asking for write on a read-only window fails.
        assert_eq!(client.mmap(ro, PAGE_SIZE, Prot::READ_WRITE).err(), Some(ScifError::Access));
        // Read-only mapping forbids stores.
        let map = client.mmap(ro, PAGE_SIZE, Prot::READ).unwrap();
        assert_eq!(map.store(0, &[1]).err(), Some(ScifError::Access));
        let mut b = [0u8];
        map.load(0, &mut b).unwrap();
    }

    #[test]
    fn mmap_alignment_and_bounds() {
        let (_f, client, server) = setup();
        let (roff, _) = register_pinned(&server, 2 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        assert_eq!(client.mmap(roff + 1, PAGE_SIZE, Prot::READ).err(), Some(ScifError::Inval));
        assert_eq!(client.mmap(roff, 100, Prot::READ).err(), Some(ScifError::Inval));
        assert_eq!(client.mmap(roff, 4 * PAGE_SIZE, Prot::READ).err(), Some(ScifError::OutOfRange));
        let map = client.mmap(roff, PAGE_SIZE, Prot::READ).unwrap();
        let mut b = [0u8; 2];
        assert_eq!(map.load(PAGE_SIZE - 1, &mut b).err(), Some(ScifError::OutOfRange));
        assert_eq!(map.load(u64::MAX, &mut [0u8]).err(), Some(ScifError::OutOfRange));
    }

    #[test]
    fn device_backed_mapping_exposes_pfns() {
        let (f, client, server) = setup();
        let board = f.node(crate::types::NodeId(1)).unwrap().board().unwrap().clone();
        let region = board.memory().alloc(4 * PAGE_SIZE).unwrap();
        let base_pfn = region.offset() / PAGE_SIZE;
        let roff = server
            .register(None, 4 * PAGE_SIZE, Prot::READ_WRITE, WindowBacking::Device(region))
            .unwrap();
        // Map the middle two pages.
        let map = client.mmap(roff + PAGE_SIZE, 2 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        assert_eq!(map.device_pfn(0), Some(base_pfn + 1));
        assert_eq!(map.device_pfn(1), Some(base_pfn + 2));
        map.store_u64(0, 0xFEED).unwrap();
        assert_eq!(map.load_u64(0).unwrap(), 0xFEED);
    }

    #[test]
    fn pinned_backing_has_no_pfn() {
        let (_f, client, server) = setup();
        let (roff, _) = register_pinned(&server, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let map = client.mmap(roff, PAGE_SIZE, Prot::READ).unwrap();
        assert_eq!(map.device_pfn(0), None);
        assert_eq!(map.pages(), 1);
    }
}

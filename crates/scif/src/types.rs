//! Core SCIF identifiers and flag types.

use std::fmt;
use std::sync::Arc;

use vphi_sync::{LockClass, TrackedMutex};

/// A SCIF node: 0 is the host ("self" in MPSS terms), 1..N are cards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

/// The host's node id.
pub const HOST_NODE: NodeId = NodeId(0);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A SCIF port number.  Ports below [`Port::EPHEMERAL_START`] are
/// "well-known" (bindable explicitly); `bind(0)` allocates an ephemeral
/// port above it, as in MPSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

impl Port {
    pub const EPHEMERAL_START: u16 = 1088;
    /// Request an ephemeral port from `scif_bind`.
    pub const ANY: Port = Port(0);

    pub fn is_ephemeral(self) -> bool {
        self.0 >= Self::EPHEMERAL_START
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// A (node, port) pair — `struct scif_port_id` in MPSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScifAddr {
    pub node: NodeId,
    pub port: Port,
}

impl ScifAddr {
    pub fn new(node: NodeId, port: Port) -> Self {
        ScifAddr { node, port }
    }
}

impl fmt::Display for ScifAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.node, self.port)
    }
}

/// Window protection bits (`SCIF_PROT_READ` / `SCIF_PROT_WRITE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot(u8);

impl Prot {
    pub const NONE: Prot = Prot(0);
    pub const READ: Prot = Prot(1);
    pub const WRITE: Prot = Prot(2);
    pub const READ_WRITE: Prot = Prot(3);

    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }

    pub fn contains(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

/// RMA operation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmaFlags {
    /// `SCIF_RMA_SYNC`: the call returns only after the transfer is
    /// complete.  Without it the transfer is queued and a later fence
    /// synchronizes (see [`crate::rma`]).
    pub sync: bool,
    /// `SCIF_RMA_USECPU`: copy with the CPU instead of the DMA engine —
    /// lower setup cost, lower bandwidth; real SCIF uses it for small
    /// transfers.
    pub use_cpu: bool,
}

impl RmaFlags {
    pub const SYNC: RmaFlags = RmaFlags { sync: true, use_cpu: false };
    pub const ASYNC: RmaFlags = RmaFlags { sync: false, use_cpu: false };
    pub const SYNC_CPU: RmaFlags = RmaFlags { sync: true, use_cpu: true };
}

/// A pinned, shareable user buffer — what `scif_register` pins and RMA
/// peers access.  Cloning shares the same storage, like a pinned page set
/// shared between the app and the driver.
pub type PinnedBuf = Arc<TrackedMutex<Vec<u8>>>;

/// Convenience constructor for a zeroed pinned buffer.
pub fn pinned_buf(len: usize) -> PinnedBuf {
    Arc::new(TrackedMutex::new(LockClass::PinnedBuf, vec![0u8; len]))
}

/// Convenience constructor from existing bytes.
pub fn pinned_from(data: &[u8]) -> PinnedBuf {
    Arc::new(TrackedMutex::new(LockClass::PinnedBuf, data.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_bit_algebra() {
        assert!(Prot::READ.readable());
        assert!(!Prot::READ.writable());
        assert!(Prot::READ_WRITE.contains(Prot::READ));
        assert!(Prot::READ_WRITE.contains(Prot::WRITE));
        assert!(!Prot::READ.contains(Prot::WRITE));
        assert_eq!(Prot::READ | Prot::WRITE, Prot::READ_WRITE);
        assert!(!Prot::NONE.readable() && !Prot::NONE.writable());
    }

    #[test]
    fn port_classification() {
        assert!(!Port(80).is_ephemeral());
        assert!(Port(2000).is_ephemeral());
        assert_eq!(Port::ANY, Port(0));
    }

    #[test]
    fn addr_display() {
        let a = ScifAddr::new(NodeId(1), Port(42));
        assert_eq!(a.to_string(), "node1:42");
        assert_eq!(HOST_NODE.to_string(), "node0");
    }

    #[test]
    fn pinned_buf_is_shared() {
        let b = pinned_from(&[1, 2, 3]);
        let b2 = Arc::clone(&b);
        b.lock()[0] = 9;
        assert_eq!(b2.lock()[0], 9);
        let z = pinned_buf(4);
        assert_eq!(&*z.lock(), &[0, 0, 0, 0]);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn rma_flag_presets() {
        assert!(RmaFlags::SYNC.sync && !RmaFlags::SYNC.use_cpu);
        assert!(!RmaFlags::ASYNC.sync);
        assert!(RmaFlags::SYNC_CPU.use_cpu);
        assert_eq!(RmaFlags::default(), RmaFlags::ASYNC);
    }
}

//! Completion-token submission types — the io_uring-shaped half of the
//! guest API.
//!
//! A guest enqueues many operations into a submission queue, rings one
//! doorbell for the whole batch, and later *reaps* completions by token.
//! This module holds the transport-agnostic vocabulary: the opaque
//! [`SubmitToken`], the per-entry [`SqFlags`], and the completion-queue
//! view ([`Cq`] / [`CqEntry`]) the reaper fills.  The operation payloads
//! themselves (what to send, where to stage) live with the guest driver,
//! which knows about guest memory; these types deliberately do not.

use crate::error::{ScifError, ScifResult};

/// Opaque handle to one submitted operation.  Tokens are unique for the
/// lifetime of a device channel (a monotonically allocated 64-bit id, so
/// reuse is unreachable in practice) and are reaped exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubmitToken(pub(crate) u64);

impl SubmitToken {
    /// Construct from the driver's raw request id.  Driver-internal;
    /// guests treat tokens as opaque.
    pub fn from_raw(raw: u64) -> Self {
        SubmitToken(raw)
    }

    /// The raw request id, for driver-side bookkeeping and trace linking.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Per-entry submission flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqFlags {
    /// Pin this entry's reap to a pure busy-poll wait, overriding the
    /// adaptive spin-then-sleep policy (latency-critical requests).
    pub busy_poll: bool,
    /// First re-kick deadline for this entry's reap, in milliseconds.
    /// `None` uses the driver's adaptive backoff base.
    pub deadline_ms: Option<u32>,
}

/// One reaped completion.
#[derive(Debug)]
pub struct CqEntry {
    /// The token returned by submit for this operation.
    pub token: SubmitToken,
    /// The operation's wire result `(val0, val1)` — the same pair the
    /// blocking API decodes — or the error the backend reported.
    /// [`ScifError::Canceled`] means the token was reaped after its
    /// endpoint closed or its card reset.
    pub result: ScifResult<(u64, u64)>,
    /// Inbound payload (recv-style entries), drained from staging.
    pub data: Option<Vec<u8>>,
}

impl CqEntry {
    /// Whether the operation was drained as canceled rather than run for
    /// the caller.
    pub fn is_canceled(&self) -> bool {
        self.result == Err(ScifError::Canceled)
    }
}

/// A completion queue: the set of tokens a reaper is interested in plus
/// the entries reaped so far.  Plain guest-side state — no locks; the
/// caller owns it mutably across submit/reap calls.
#[derive(Debug, Default)]
pub struct Cq {
    interest: Vec<SubmitToken>,
    entries: Vec<CqEntry>,
}

impl Cq {
    pub fn new() -> Self {
        Cq::default()
    }

    /// Register tokens to reap (typically the batch submit just returned).
    pub fn watch(&mut self, tokens: &[SubmitToken]) {
        self.interest.extend_from_slice(tokens);
    }

    /// Tokens watched but not yet reaped, oldest first.
    pub fn outstanding(&self) -> &[SubmitToken] {
        &self.interest
    }

    /// Completions reaped and not yet drained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Take the reaped entries, leaving the queue ready for more.
    pub fn drain(&mut self) -> Vec<CqEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Driver-side: move `token` from interest to the completed entries.
    /// Returns false if the token was never watched (already reaped or
    /// foreign) — the exactly-once guard.
    pub fn complete(&mut self, entry: CqEntry) -> bool {
        match self.interest.iter().position(|t| *t == entry.token) {
            Some(at) => {
                self.interest.remove(at);
                self.entries.push(entry);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_order() {
        let a = SubmitToken::from_raw(1);
        let b = SubmitToken::from_raw(2);
        assert_eq!(a.raw(), 1);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn cq_completes_each_watched_token_exactly_once() {
        let mut cq = Cq::new();
        let t = SubmitToken::from_raw(7);
        cq.watch(&[t]);
        assert_eq!(cq.outstanding(), &[t]);
        assert!(cq.complete(CqEntry { token: t, result: Ok((1, 0)), data: None }));
        // Second completion of the same token is rejected.
        assert!(!cq.complete(CqEntry { token: t, result: Ok((1, 0)), data: None }));
        assert!(cq.outstanding().is_empty());
        let drained = cq.drain();
        assert_eq!(drained.len(), 1);
        assert!(cq.is_empty());
    }

    #[test]
    fn canceled_entries_are_flagged() {
        let e = CqEntry {
            token: SubmitToken::from_raw(3),
            result: Err(ScifError::Canceled),
            data: None,
        };
        assert!(e.is_canceled());
    }
}

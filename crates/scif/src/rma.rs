//! RMA — `scif_readfrom` / `scif_writeto` / `scif_vreadfrom` /
//! `scif_vwriteto` and the fence family.
//!
//! RMA moves bytes between *registered windows* without remote-CPU
//! involvement: the initiator programs a DMA channel and the engine pulls
//! or pushes across PCIe.  The `v*` variants use a local virtual-address
//! buffer instead of a local window.
//!
//! With [`RmaFlags::sync`] the call charges the whole transfer inline.
//! Without it the transfer is *queued*: the call returns after setup and a
//! later `scif_fence_mark`/`scif_fence_wait` pair (or `scif_fence_signal`)
//! absorbs the remaining virtual time — the paper's RDMA+poll pattern.

use std::sync::Arc;

use vphi_pcie::gather_copy;
use vphi_sim_core::{SimTime, SpanLabel, Timeline};

use crate::endpoint::{EndpointCore, EpState, RmaCompletion};
use crate::error::{ScifError, ScifResult};
use crate::types::{Prot, RmaFlags};
use crate::window::{WindowBacking, WindowBytes};

/// Check connection and fetch the peer for an RMA call.
fn rma_peer(ep: &EndpointCore) -> ScifResult<Arc<EndpointCore>> {
    if ep.state() != EpState::Connected {
        return Err(ScifError::NotConn);
    }
    ep.peer_core()
}

impl EndpointCore {
    /// `scif_vreadfrom`: read `buf.len()` bytes from the peer's registered
    /// offset `roffset` into a local buffer.
    pub fn vreadfrom(
        &self,
        buf: &mut [u8],
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if buf.is_empty() {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, buf.len() as u64)?;
            if !w.prot.contains(Prot::READ) {
                return Err(ScifError::Access);
            }
            w.backing.read(roffset - w.offset, buf)?;
        }
        self.charge_rma(&peer, buf.len() as u64, flags, tl)
    }

    /// `scif_vwriteto`: write a local buffer to the peer's registered
    /// offset `roffset`.
    pub fn vwriteto(
        &self,
        buf: &[u8],
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if buf.is_empty() {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, buf.len() as u64)?;
            if !w.prot.contains(Prot::WRITE) {
                return Err(ScifError::Access);
            }
            w.backing.write(roffset - w.offset, buf)?;
        }
        self.charge_rma(&peer, buf.len() as u64, flags, tl)
    }

    /// `scif_readfrom`: window-to-window read — peer `[roffset..+len)`
    /// into local window `[loffset..+len)`.
    pub fn readfrom(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if len == 0 {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        // Clone each window's backing out of its table lock: the clone is
        // a strong (pinned) reference, so the bytes can be moved with no
        // locks held and without materializing the payload.
        let (src, src_base) = {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, len)?;
            if !w.prot.contains(Prot::READ) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), roffset - w.offset)
        };
        let (dst, dst_base) = {
            let windows = self.windows.lock();
            let w = windows.lookup(loffset, len)?;
            if !w.prot.contains(Prot::WRITE) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), loffset - w.offset)
        };
        gather_copy(
            len,
            |off, buf| src.read(src_base + off, buf),
            |off, buf| dst.write(dst_base + off, buf),
        )?;
        self.charge_rma(&peer, len, flags, tl)
    }

    /// `scif_writeto`: window-to-window write — local `[loffset..+len)` to
    /// peer `[roffset..+len)`.
    pub fn writeto(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if len == 0 {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        let (src, src_base) = {
            let windows = self.windows.lock();
            let w = windows.lookup(loffset, len)?;
            if !w.prot.contains(Prot::READ) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), loffset - w.offset)
        };
        let (dst, dst_base) = {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, len)?;
            if !w.prot.contains(Prot::WRITE) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), roffset - w.offset)
        };
        gather_copy(
            len,
            |off, buf| src.read(src_base + off, buf),
            |off, buf| dst.write(dst_base + off, buf),
        )?;
        self.charge_rma(&peer, len, flags, tl)
    }

    /// Zero-copy `scif_vreadfrom` over an externally-pinned destination:
    /// pull `len` bytes from the peer's registered offset `roffset`
    /// straight into `dst` at `dst_off` — no intermediate payload buffer.
    /// Validation and cost charging are identical to [`vreadfrom`], so the
    /// mapped path keeps native timing parity.
    ///
    /// [`vreadfrom`]: EndpointCore::vreadfrom
    pub fn vreadfrom_window(
        &self,
        dst: &dyn WindowBytes,
        dst_off: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if len == 0 {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        let (src, src_base) = {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, len)?;
            if !w.prot.contains(Prot::READ) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), roffset - w.offset)
        };
        gather_copy(
            len,
            |off, buf| src.read(src_base + off, buf),
            |off, buf| dst.write(dst_off + off, buf),
        )?;
        self.charge_rma(&peer, len, flags, tl)
    }

    /// Zero-copy `scif_vwriteto` from an externally-pinned source: push
    /// `len` bytes from `src` at `src_off` into the peer's registered
    /// offset `roffset`.  See [`vreadfrom_window`].
    ///
    /// [`vreadfrom_window`]: EndpointCore::vreadfrom_window
    pub fn vwriteto_window(
        &self,
        src: &dyn WindowBytes,
        src_off: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if len == 0 {
            return Err(ScifError::Inval);
        }
        let peer = rma_peer(self)?;
        let (dst, dst_base) = {
            let windows = peer.windows.lock();
            let w = windows.lookup(roffset, len)?;
            if !w.prot.contains(Prot::WRITE) {
                return Err(ScifError::Access);
            }
            (w.backing.clone(), roffset - w.offset)
        };
        gather_copy(
            len,
            |off, buf| src.read(src_off + off, buf),
            |off, buf| dst.write(dst_base + off, buf),
        )?;
        self.charge_rma(&peer, len, flags, tl)
    }

    /// Common RMA cost handling: sync → charge inline; async → queue a
    /// completion to be absorbed by a fence.
    fn charge_rma(
        &self,
        peer: &EndpointCore,
        bytes: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        if flags.sync {
            self.shared.charge_rma_path(
                self.node_id(),
                peer.node_id(),
                bytes,
                flags.use_cpu,
                tl,
            )?;
            return Ok(());
        }
        // Async: the caller pays only the setup; the transfer itself
        // completes in the background at now + transfer_time.
        tl.charge(SpanLabel::RmaSetup, self.shared.cost.rma_setup);
        let mut sub = Timeline::new();
        self.shared.charge_rma_path(
            self.node_id(),
            peer.node_id(),
            bytes,
            flags.use_cpu,
            &mut sub,
        )?;
        let extra = sub.total().saturating_sub(self.shared.cost.rma_setup);
        let completes_at = self.shared.clock.now() + extra;
        let marker = {
            let mut m = self.next_marker.lock();
            let id = *m;
            *m += 1;
            id
        };
        self.rma_pending.lock().push(RmaCompletion { marker, completes_at });
        Ok(())
    }

    /// `scif_fence_mark`: returns a marker covering all RMAs issued on
    /// this endpoint so far.
    pub fn fence_mark(&self) -> ScifResult<u64> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        let pending = self.rma_pending.lock();
        Ok(pending.iter().map(|c| c.marker).max().unwrap_or(0))
    }

    /// `scif_fence_wait`: blocks (in virtual time) until every RMA up to
    /// `marker` has completed, charging the remaining wait.
    pub fn fence_wait(&self, marker: u64, tl: &mut Timeline) -> ScifResult<()> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        let mut pending = self.rma_pending.lock();
        let now = self.shared.clock.now();
        let mut latest = SimTime::ZERO;
        pending.retain(|c| {
            if c.marker <= marker {
                latest = latest.max(c.completes_at);
                false
            } else {
                true
            }
        });
        drop(pending);
        if latest > now {
            let wait = latest.elapsed_since(now);
            tl.charge(SpanLabel::Completion, wait);
            self.shared.clock.observe(latest);
        }
        Ok(())
    }

    /// `scif_fence_signal`: once all prior RMAs complete, write the 8-byte
    /// `lval` at local window offset `loff` and `rval` at peer window
    /// offset `roff` — the RDMA-completion-flag idiom the paper mentions
    /// (RDMA + polling on a flag instead of blocking).
    pub fn fence_signal(
        &self,
        loff: u64,
        lval: u64,
        roff: u64,
        rval: u64,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        let marker = self.fence_mark()?;
        self.fence_wait(marker, tl)?;
        let peer = rma_peer(self)?;
        {
            let windows = self.windows.lock();
            let w = windows.lookup(loff, 8)?;
            w.backing.write(loff - w.offset, &lval.to_le_bytes())?;
        }
        {
            let windows = peer.windows.lock();
            let w = windows.lookup(roff, 8)?;
            if !w.prot.contains(Prot::WRITE) {
                return Err(ScifError::Access);
            }
            w.backing.write(roff - w.offset, &rval.to_le_bytes())?;
        }
        // The signal itself is a tiny control write.
        self.shared.charge_message_path(self.node_id(), peer.node_id(), 8, tl)?;
        Ok(())
    }

    /// Number of queued (un-fenced) RMA completions — for tests.
    pub fn pending_rma_count(&self) -> usize {
        self.rma_pending.lock().len()
    }
}

/// Helper: register a window over a fresh pinned buffer and return
/// `(offset, buffer)`.  Test/benchmark convenience mirroring the common
/// `malloc + scif_register` pattern.
pub fn register_pinned(
    ep: &EndpointCore,
    len: u64,
    prot: Prot,
) -> ScifResult<(u64, crate::types::PinnedBuf)> {
    let buf = crate::types::pinned_buf(len as usize);
    let off = ep.register(None, len, prot, WindowBacking::Pinned(Arc::clone(&buf)))?;
    Ok((off, buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ScifFabric;
    use crate::types::{pinned_from, NodeId, Port, ScifAddr, HOST_NODE};
    use std::sync::Arc;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::cost::PAGE_SIZE;
    use vphi_sim_core::{CostModel, SimDuration, VirtualClock};

    fn setup() -> (ScifFabric, Arc<EndpointCore>, Arc<EndpointCore>) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let dev = fabric.add_device(board);

        let server = fabric.open(dev).unwrap();
        server.bind(Port(42)).unwrap();
        server.listen(4).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acceptor = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        let mut tl = Timeline::new();
        client.connect(ScifAddr::new(dev, Port(42)), &mut tl).unwrap();
        let conn = acceptor.join().unwrap();
        (fabric, client, conn)
    }

    #[test]
    fn vread_pulls_remote_window_contents() {
        let (_f, client, server) = setup();
        let data = pinned_from(&vec![7u8; PAGE_SIZE as usize]);
        let roff =
            server.register(None, PAGE_SIZE, Prot::READ, WindowBacking::Pinned(data)).unwrap();
        let mut out = vec![0u8; 1000];
        let mut tl = Timeline::new();
        client.vreadfrom(&mut out, roff, RmaFlags::SYNC, &mut tl).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        assert!(tl.total_for(SpanLabel::LinkTransfer) > SimDuration::ZERO);
    }

    #[test]
    fn vwrite_pushes_into_remote_window() {
        let (_f, client, server) = setup();
        let (roff, buf) = register_pinned(&server, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let mut tl = Timeline::new();
        client.vwriteto(&[9u8; 64], roff + 128, RmaFlags::SYNC, &mut tl).unwrap();
        let g = buf.lock();
        assert!(g[128..192].iter().all(|&b| b == 9));
        assert_eq!(g[127], 0);
        assert_eq!(g[192], 0);
    }

    #[test]
    fn window_to_window_read_and_write() {
        let (_f, client, server) = setup();
        let (roff, rbuf) = register_pinned(&server, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let (loff, lbuf) = register_pinned(&client, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        rbuf.lock()[..4].copy_from_slice(&[1, 2, 3, 4]);
        let mut tl = Timeline::new();
        client.readfrom(loff, 4, roff, RmaFlags::SYNC, &mut tl).unwrap();
        assert_eq!(&lbuf.lock()[..4], &[1, 2, 3, 4]);

        lbuf.lock()[..2].copy_from_slice(&[8, 9]);
        client.writeto(loff, 2, roff + 100, RmaFlags::SYNC, &mut tl).unwrap();
        assert_eq!(&rbuf.lock()[100..102], &[8, 9]);
    }

    #[test]
    fn protection_is_enforced() {
        let (_f, client, server) = setup();
        let (ro_off, _) = register_pinned(&server, PAGE_SIZE, Prot::READ).unwrap();
        let (wo_off, _) = register_pinned(&server, PAGE_SIZE, Prot::WRITE).unwrap();
        let mut tl = Timeline::new();
        assert_eq!(client.vwriteto(&[1], ro_off, RmaFlags::SYNC, &mut tl), Err(ScifError::Access));
        let mut b = [0u8];
        assert_eq!(
            client.vreadfrom(&mut b, wo_off, RmaFlags::SYNC, &mut tl),
            Err(ScifError::Access)
        );
    }

    #[test]
    fn unregistered_offset_is_enxio() {
        let (_f, client, _server) = setup();
        let mut b = [0u8; 4];
        let mut tl = Timeline::new();
        assert_eq!(
            client.vreadfrom(&mut b, 0x0dea_d000, RmaFlags::SYNC, &mut tl),
            Err(ScifError::OutOfRange)
        );
    }

    #[test]
    fn rma_straddling_window_end_is_rejected() {
        let (_f, client, server) = setup();
        let (roff, _) = register_pinned(&server, PAGE_SIZE, Prot::READ).unwrap();
        let mut b = vec![0u8; 32];
        let mut tl = Timeline::new();
        assert_eq!(
            client.vreadfrom(&mut b, roff + PAGE_SIZE - 16, RmaFlags::SYNC, &mut tl),
            Err(ScifError::OutOfRange)
        );
    }

    #[test]
    fn async_rma_defers_cost_to_fence() {
        let (_f, client, server) = setup();
        let (roff, _) = register_pinned(&server, 256 * PAGE_SIZE, Prot::READ).unwrap();
        let mut out = vec![0u8; (256 * PAGE_SIZE) as usize];
        let mut tl = Timeline::new();
        client.vreadfrom(&mut out, roff, RmaFlags::ASYNC, &mut tl).unwrap();
        let setup_only = tl.total();
        assert_eq!(client.pending_rma_count(), 1);
        // The async call should be far cheaper than a sync one.
        let mut tl_sync = Timeline::new();
        client.vreadfrom(&mut out, roff, RmaFlags::SYNC, &mut tl_sync).unwrap();
        assert!(setup_only < tl_sync.total() / 2);

        let marker = client.fence_mark().unwrap();
        let mut tl_fence = Timeline::new();
        client.fence_wait(marker, &mut tl_fence).unwrap();
        assert_eq!(client.pending_rma_count(), 0);
        // Second fence on the same marker is free.
        let mut tl_fence2 = Timeline::new();
        client.fence_wait(marker, &mut tl_fence2).unwrap();
        assert_eq!(tl_fence2.total(), SimDuration::ZERO);
    }

    #[test]
    fn fence_signal_writes_both_flags() {
        let (_f, client, server) = setup();
        let (roff, rbuf) = register_pinned(&server, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let (loff, lbuf) = register_pinned(&client, PAGE_SIZE, Prot::READ_WRITE).unwrap();
        let mut tl = Timeline::new();
        client.vwriteto(&[5u8; 8], roff, RmaFlags::ASYNC, &mut tl).unwrap();
        client.fence_signal(loff, 0xAAAA_BBBB, roff + 64, 0xCCCC_DDDD, &mut tl).unwrap();
        assert_eq!(u64::from_le_bytes(lbuf.lock()[..8].try_into().unwrap()), 0xAAAA_BBBB);
        assert_eq!(u64::from_le_bytes(rbuf.lock()[64..72].try_into().unwrap()), 0xCCCC_DDDD);
        assert_eq!(client.pending_rma_count(), 0);
    }

    #[test]
    fn device_memory_backed_window_round_trips() {
        let (f, client, server) = setup();
        let dev_node = f.node(NodeId(1)).unwrap();
        let region = dev_node.board().unwrap().memory().alloc(2 * PAGE_SIZE).unwrap();
        region.write(0, b"GDDR!").unwrap();
        let roff = server
            .register(None, 2 * PAGE_SIZE, Prot::READ_WRITE, WindowBacking::Device(region))
            .unwrap();
        let mut out = [0u8; 5];
        let mut tl = Timeline::new();
        client.vreadfrom(&mut out, roff, RmaFlags::SYNC, &mut tl).unwrap();
        assert_eq!(&out, b"GDDR!");
    }

    #[test]
    fn window_variants_match_plain_rma_bytes_and_timing() {
        let (_f, client, server) = setup();
        let (roff, rbuf) = register_pinned(&server, 4 * PAGE_SIZE, Prot::READ_WRITE).unwrap();
        rbuf.lock().iter_mut().enumerate().for_each(|(i, b)| *b = (i % 251) as u8);

        // Pull via the zero-copy entry point into a pinned local backing.
        let local = WindowBacking::Pinned(crate::types::pinned_buf(4 * PAGE_SIZE as usize));
        let mut tl_win = Timeline::new();
        client
            .vreadfrom_window(&local, 0, 4 * PAGE_SIZE, roff, RmaFlags::SYNC, &mut tl_win)
            .unwrap();
        let mut expect = vec![0u8; 4 * PAGE_SIZE as usize];
        let mut tl_plain = Timeline::new();
        client.vreadfrom(&mut expect, roff, RmaFlags::SYNC, &mut tl_plain).unwrap();
        let mut got = vec![0u8; expect.len()];
        WindowBytes::read(&local, 0, &mut got).unwrap();
        assert_eq!(got, expect, "window read matches plain vreadfrom");
        assert_eq!(tl_win.total(), tl_plain.total(), "identical cost charging");

        // Push back with a pattern and verify through the peer buffer.
        WindowBytes::write(&local, 0, &vec![0xA5; 4 * PAGE_SIZE as usize]).unwrap();
        let mut tl_w = Timeline::new();
        client.vwriteto_window(&local, 0, 4 * PAGE_SIZE, roff, RmaFlags::SYNC, &mut tl_w).unwrap();
        assert!(rbuf.lock().iter().all(|&b| b == 0xA5));

        // Validation parity: protection and bounds still enforced.
        let (ro_off, _) = register_pinned(&server, PAGE_SIZE, Prot::READ).unwrap();
        assert_eq!(
            client.vwriteto_window(&local, 0, 8, ro_off, RmaFlags::SYNC, &mut tl_w),
            Err(ScifError::Access)
        );
        assert_eq!(
            client.vreadfrom_window(&local, 0, 0, roff, RmaFlags::SYNC, &mut tl_w),
            Err(ScifError::Inval)
        );
    }

    #[test]
    fn zero_length_rma_is_invalid() {
        let (_f, client, _server) = setup();
        let mut tl = Timeline::new();
        assert_eq!(client.vwriteto(&[], 0, RmaFlags::SYNC, &mut tl), Err(ScifError::Inval));
        assert_eq!(client.readfrom(0, 0, 0, RmaFlags::SYNC, &mut tl), Err(ScifError::Inval));
    }
}

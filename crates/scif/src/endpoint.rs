//! The endpoint state machine and connection-oriented operations.
//!
//! Lifecycle (mirroring libscif):
//!
//! ```text
//! scif_open -> Unbound -- bind --> Bound -- listen --> Listening -- accept --> (new Connected ep)
//!                                        \-- connect -------------------------> Connected
//! any state -- close --> Closed
//! ```

use std::sync::{Arc, OnceLock, Weak};

use vphi_sim_core::{SimTime, SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

use crate::error::{ScifError, ScifResult};
use crate::fabric::{enqueue_connect, FabricShared, Listener, NodeCore};
use crate::queue::MsgQueue;
use crate::types::{NodeId, Port, Prot, ScifAddr};
use crate::window::{WindowBacking, WindowTable};

/// Endpoint connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpState {
    Unbound,
    Bound,
    Listening,
    Connecting,
    Connected,
    Closed,
}

/// An asynchronous RMA in flight (see [`crate::rma`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RmaCompletion {
    pub marker: u64,
    pub completes_at: SimTime,
}

/// The kernel-side object behind one SCIF endpoint descriptor.
pub struct EndpointCore {
    id: u64,
    pub(crate) shared: Arc<FabricShared>,
    pub(crate) node: Arc<NodeCore>,
    state: TrackedMutex<EpState>,
    local_port: TrackedMutex<Option<Port>>,
    listener: TrackedMutex<Option<Arc<Listener>>>,
    pub(crate) recv_q: OnceLock<Arc<MsgQueue>>,
    pub(crate) send_q: OnceLock<Arc<MsgQueue>>,
    pub(crate) peer: OnceLock<Weak<EndpointCore>>,
    peer_addr: OnceLock<ScifAddr>,
    pub(crate) windows: TrackedMutex<WindowTable>,
    pub(crate) rma_pending: TrackedMutex<Vec<RmaCompletion>>,
    pub(crate) next_marker: TrackedMutex<u64>,
    /// Bytes available on the *timed bulk lane* (see
    /// [`send_timed`](EndpointCore::send_timed)).
    timed_rx: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for EndpointCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointCore")
            .field("id", &self.id)
            .field("node", &self.node.id())
            .field("state", &self.state())
            .finish()
    }
}

impl EndpointCore {
    pub(crate) fn new(shared: Arc<FabricShared>, node: Arc<NodeCore>) -> Arc<Self> {
        let id = shared.next_endpoint_id();
        Arc::new(EndpointCore {
            id,
            shared,
            node,
            state: TrackedMutex::new(LockClass::EndpointState, EpState::Unbound),
            local_port: TrackedMutex::new(LockClass::EpPort, None),
            listener: TrackedMutex::new(LockClass::EpListener, None),
            recv_q: OnceLock::new(),
            send_q: OnceLock::new(),
            peer: OnceLock::new(),
            peer_addr: OnceLock::new(),
            windows: TrackedMutex::new(LockClass::WindowTable, WindowTable::new()),
            rma_pending: TrackedMutex::new(LockClass::RmaPending, Vec::new()),
            next_marker: TrackedMutex::new(LockClass::RmaMarker, 1),
            timed_rx: std::sync::atomic::AtomicU64::new(0),
        })
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn state(&self) -> EpState {
        *self.state.lock()
    }

    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }

    pub fn local_port(&self) -> Option<Port> {
        *self.local_port.lock()
    }

    pub fn local_addr(&self) -> Option<ScifAddr> {
        self.local_port.lock().map(|p| ScifAddr::new(self.node.id(), p))
    }

    pub fn peer_addr(&self) -> Option<ScifAddr> {
        self.peer_addr.get().copied()
    }

    pub(crate) fn peer_core(&self) -> ScifResult<Arc<EndpointCore>> {
        self.peer.get().and_then(Weak::upgrade).ok_or(ScifError::ConnReset)
    }

    /// `scif_bind`.
    pub fn bind(&self, port: Port) -> ScifResult<Port> {
        let mut st = self.state.lock();
        match *st {
            EpState::Unbound => {
                let chosen = self.node.bind_port(port)?;
                *self.local_port.lock() = Some(chosen);
                *st = EpState::Bound;
                Ok(chosen)
            }
            EpState::Closed => Err(ScifError::Inval),
            _ => Err(ScifError::IsConn),
        }
    }

    /// `scif_listen`.
    pub fn listen(&self, backlog: usize) -> ScifResult<()> {
        let mut st = self.state.lock();
        match *st {
            EpState::Bound => {
                let port = self.local_port.lock().expect("bound implies port");
                let l = self.node.start_listening(port, backlog)?;
                *self.listener.lock() = Some(l);
                *st = EpState::Listening;
                Ok(())
            }
            EpState::Listening => Err(ScifError::Inval),
            EpState::Closed => Err(ScifError::Inval),
            _ => Err(ScifError::NotConn),
        }
    }

    /// `scif_connect` — blocks until an acceptor picks us up.  The caller
    /// must pass its own `Arc` (libscif owns the descriptor).
    pub fn connect(self: &Arc<Self>, dst: ScifAddr, tl: &mut Timeline) -> ScifResult<ScifAddr> {
        {
            let mut st = self.state.lock();
            match *st {
                EpState::Unbound => {
                    // Auto-bind an ephemeral port, as libscif does.
                    let p = self.node.bind_port(Port::ANY)?;
                    *self.local_port.lock() = Some(p);
                    *st = EpState::Connecting;
                }
                EpState::Bound => *st = EpState::Connecting,
                EpState::Connected => return Err(ScifError::IsConn),
                _ => return Err(ScifError::Inval),
            }
        }
        // Connection request control message crosses the fabric.
        self.shared.charge_message_path(self.node.id(), dst.node, 64, tl)?;
        if let Err(e) = enqueue_connect(&self.shared, dst, self) {
            *self.state.lock() = EpState::Bound;
            return Err(e);
        }
        // Wait for accept (or listener teardown).
        let mut seen = self.shared.activity.version();
        loop {
            match self.state() {
                EpState::Connected => {
                    return Ok(self.peer_addr().expect("connected implies peer"));
                }
                EpState::Closed => return Err(ScifError::ConnReset),
                _ => {}
            }
            match self.shared.activity.wait_change(seen) {
                Some(v) => seen = v,
                None => {
                    *self.state.lock() = EpState::Bound;
                    return Err(ScifError::ConnRefused);
                }
            }
        }
    }

    /// `scif_accept` with `SCIF_ACCEPT_SYNC` semantics: blocks for a
    /// pending connection and returns the new connected endpoint.
    pub fn accept(self: &Arc<Self>, tl: &mut Timeline) -> ScifResult<Arc<EndpointCore>> {
        loop {
            match self.try_accept(tl)? {
                Some(ep) => return Ok(ep),
                None => {
                    let seen = self.shared.activity.version();
                    // Re-check in case a connector raced in before we read
                    // the version.
                    if let Some(ep) = self.try_accept(tl)? {
                        return Ok(ep);
                    }
                    if self.shared.activity.wait_change(seen).is_none() {
                        return Err(ScifError::Again);
                    }
                }
            }
        }
    }

    /// Non-blocking accept (`SCIF_ACCEPT_ASYNC`): `Ok(None)` when no
    /// connection is pending.
    pub fn try_accept(
        self: &Arc<Self>,
        tl: &mut Timeline,
    ) -> ScifResult<Option<Arc<EndpointCore>>> {
        if self.state() != EpState::Listening {
            return Err(ScifError::Inval);
        }
        let listener = self.listener.lock().as_ref().map(Arc::clone).ok_or(ScifError::Inval)?;
        let connector = {
            let mut pending = listener.pending.lock();
            loop {
                match pending.pop_front() {
                    Some(p) => {
                        if let Some(c) = p.connector.upgrade() {
                            break c;
                        }
                        // Connector vanished (gave up); try the next one.
                    }
                    None => return Ok(None),
                }
            }
        };
        // Build the connected pair.
        let newep = EndpointCore::new(Arc::clone(&self.shared), Arc::clone(&self.node));
        let port = self.node.bind_port(Port::ANY)?;
        *newep.local_port.lock() = Some(port);
        let q_a = Arc::new(MsgQueue::with_default_capacity()); // connector -> acceptor
        let q_b = Arc::new(MsgQueue::with_default_capacity()); // acceptor -> connector
        newep.recv_q.set(Arc::clone(&q_a)).expect("fresh endpoint");
        newep.send_q.set(Arc::clone(&q_b)).expect("fresh endpoint");
        connector.recv_q.set(q_b).map_err(|_| ScifError::Inval)?;
        connector.send_q.set(q_a).map_err(|_| ScifError::Inval)?;
        newep.peer.set(Arc::downgrade(&connector)).expect("fresh endpoint");
        connector.peer.set(Arc::downgrade(&newep)).map_err(|_| ScifError::Inval)?;
        let conn_addr = connector.local_addr().expect("connector is bound");
        newep.peer_addr.set(conn_addr).expect("fresh endpoint");
        connector
            .peer_addr
            .set(ScifAddr::new(self.node.id(), port))
            .map_err(|_| ScifError::Inval)?;
        *newep.state.lock() = EpState::Connected;
        *connector.state.lock() = EpState::Connected;
        // Accept acknowledgement control message back to the connector.
        self.shared.charge_message_path(self.node.id(), conn_addr.node, 64, tl)?;
        self.shared.activity.bump();
        Ok(Some(newep))
    }

    /// `scif_send` (blocking): delivers all of `data` to the peer's
    /// receive queue, charging the full delivery path.
    pub fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        let peer = self.peer_core()?;
        let q = self.send_q.get().ok_or(ScifError::NotConn)?;
        // Copy user -> kernel.
        tl.charge(SpanLabel::CopyUserKernel, self.shared.cost.cpu_copy(data.len() as u64));
        if !q.write_all(data) {
            return Err(ScifError::ConnReset);
        }
        self.shared.charge_message_path(self.node.id(), peer.node_id(), data.len() as u64, tl)?;
        self.shared.activity.bump();
        Ok(data.len())
    }

    /// `scif_recv` with `SCIF_RECV_BLOCK`: blocks until `out` is full (or
    /// the peer closed — then returns the short count).
    pub fn recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        let q = self.recv_q.get().ok_or(ScifError::NotConn)?;
        let n = q.read_exact(out);
        tl.charge(SpanLabel::CopyUserKernel, self.shared.cost.cpu_copy(n as u64));
        self.shared.activity.bump();
        Ok(n)
    }

    /// Non-blocking receive: whatever is available now.
    pub fn try_recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        let q = self.recv_q.get().ok_or(ScifError::NotConn)?;
        let n = q.try_read(out);
        tl.charge(SpanLabel::CopyUserKernel, self.shared.cost.cpu_copy(n as u64));
        if n > 0 {
            self.shared.activity.bump();
        }
        Ok(n)
    }

    /// `scif_send` on the **timed bulk lane**: identical timing charges to
    /// a real send of `len` bytes, but no payload bytes move — for
    /// paper-scale transfers (multi-hundred-MB binaries/libraries) whose
    /// *contents* the experiment never inspects.  Timed and byte-exact
    /// sends on the same endpoint are independent lanes; protocols put
    /// their headers on the real lane and bulk on this one.
    pub fn send_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        let peer = self.peer_core()?;
        tl.charge(SpanLabel::CopyUserKernel, self.shared.cost.cpu_copy(len));
        peer.timed_rx.fetch_add(len, std::sync::atomic::Ordering::AcqRel);
        self.shared.charge_message_path(self.node.id(), peer.node_id(), len, tl)?;
        self.shared.activity.bump();
        Ok(len)
    }

    /// Receive `len` bytes from the timed bulk lane (blocking).
    pub fn recv_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        use std::sync::atomic::Ordering;
        let mut seen = self.shared.activity.version();
        loop {
            let avail = self.timed_rx.load(Ordering::Acquire);
            if avail >= len {
                match self.timed_rx.compare_exchange(
                    avail,
                    avail - len,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        tl.charge(SpanLabel::CopyUserKernel, self.shared.cost.cpu_copy(len));
                        return Ok(len);
                    }
                    Err(_) => continue,
                }
            }
            if self.state() == EpState::Closed {
                return Err(ScifError::ConnReset);
            }
            let peer_gone = self.peer_core().map(|p| p.state() == EpState::Closed).unwrap_or(true);
            if peer_gone {
                return Err(ScifError::ConnReset);
            }
            match self.shared.activity.wait_change(seen) {
                Some(v) => seen = v,
                None => return Err(ScifError::Again),
            }
        }
    }

    /// Bytes waiting to be received.
    pub fn recv_pending(&self) -> usize {
        self.recv_q.get().map(|q| q.len()).unwrap_or(0)
    }

    /// Free space in the send direction.
    pub fn send_space(&self) -> usize {
        self.send_q.get().map(|q| q.space()).unwrap_or(0)
    }

    /// `scif_register`.
    pub fn register(
        &self,
        fixed_offset: Option<u64>,
        len: u64,
        prot: Prot,
        backing: WindowBacking,
    ) -> ScifResult<u64> {
        if self.state() != EpState::Connected {
            return Err(ScifError::NotConn);
        }
        self.windows.lock().register(fixed_offset, len, prot, backing)
    }

    /// `scif_unregister`.
    pub fn unregister(&self, offset: u64, len: u64) -> ScifResult<()> {
        self.windows.lock().unregister(offset, len)
    }

    pub fn window_count(&self) -> usize {
        self.windows.lock().window_count()
    }

    /// `scif_close`: tear down queues, release the port, wake everyone.
    pub fn close(&self) {
        {
            let mut st = self.state.lock();
            if *st == EpState::Closed {
                return;
            }
            *st = EpState::Closed;
        }
        if let Some(q) = self.send_q.get() {
            q.close();
        }
        if let Some(q) = self.recv_q.get() {
            q.close();
        }
        if let Some(l) = self.listener.lock().take() {
            l.closed.store(true, std::sync::atomic::Ordering::Release);
        }
        if let Some(p) = *self.local_port.lock() {
            self.node.release_port(p);
        }
        // Closing the fd releases every registration (the driver unpins
        // the window pages) — nothing may leak past a close.
        self.windows.lock().release_all();
        self.shared.activity.bump();
    }
}

impl Drop for EndpointCore {
    fn drop(&mut self) {
        // Safety net; explicit close is the normal path.
        if *self.state.lock() != EpState::Closed {
            if let Some(q) = self.send_q.get() {
                q.close();
            }
            if let Some(q) = self.recv_q.get() {
                q.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ScifFabric;
    use crate::types::HOST_NODE;
    use std::sync::Arc;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::{CostModel, VirtualClock};

    pub(crate) fn test_fabric() -> (ScifFabric, NodeId) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let node = fabric.add_device(board);
        (fabric, node)
    }

    /// Spin up a device-side echo-ready server and return the connected
    /// host-side endpoint plus the server's connected endpoint.
    fn connected_pair(
        fabric: &ScifFabric,
        dev: NodeId,
        port: Port,
    ) -> (Arc<EndpointCore>, Arc<EndpointCore>) {
        let server = fabric.open(dev).unwrap();
        server.bind(port).unwrap();
        server.listen(4).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acceptor = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        let mut tl = Timeline::new();
        client.connect(ScifAddr::new(dev, port), &mut tl).unwrap();
        let conn = acceptor.join().unwrap();
        (client, conn)
    }

    #[test]
    fn state_machine_happy_path() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(101));
        assert_eq!(client.state(), EpState::Connected);
        assert_eq!(server_conn.state(), EpState::Connected);
        assert_eq!(client.peer_addr().unwrap().node, dev);
        assert_eq!(server_conn.peer_addr().unwrap().node, HOST_NODE);
    }

    #[test]
    fn bind_state_errors() {
        let (fabric, _) = test_fabric();
        let ep = fabric.open(HOST_NODE).unwrap();
        ep.bind(Port(200)).unwrap();
        assert_eq!(ep.bind(Port(201)), Err(ScifError::IsConn));
        let mut tl = Timeline::new();
        // Listen before bind fails.
        let ep2 = fabric.open(HOST_NODE).unwrap();
        assert_eq!(ep2.listen(1), Err(ScifError::NotConn));
        // Send on unconnected endpoint fails.
        assert_eq!(ep2.send(b"x", &mut tl), Err(ScifError::NotConn));
    }

    #[test]
    fn connect_to_dead_port_is_refused() {
        let (fabric, dev) = test_fabric();
        let ep = fabric.open(HOST_NODE).unwrap();
        let mut tl = Timeline::new();
        assert_eq!(ep.connect(ScifAddr::new(dev, Port(999)), &mut tl), Err(ScifError::ConnRefused));
        // Endpoint is reusable afterwards.
        assert_eq!(ep.state(), EpState::Bound);
    }

    #[test]
    fn connect_to_unknown_node_fails() {
        let (fabric, _) = test_fabric();
        let ep = fabric.open(HOST_NODE).unwrap();
        let mut tl = Timeline::new();
        assert_eq!(ep.connect(ScifAddr::new(NodeId(7), Port(1)), &mut tl), Err(ScifError::NoDev));
    }

    #[test]
    fn send_recv_roundtrip_with_native_floor_timing() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(102));
        let mut send_tl = Timeline::new();
        client.send(b"p", &mut send_tl).unwrap();
        // Message-path charges: everything except the API syscall.
        let cost = CostModel::paper_calibrated();
        assert_eq!(send_tl.total(), cost.native_floor() - cost.host_syscall);

        let mut recv_tl = Timeline::new();
        let mut buf = [0u8; 1];
        assert_eq!(server_conn.recv(&mut buf, &mut recv_tl).unwrap(), 1);
        assert_eq!(&buf, b"p");
    }

    #[test]
    fn bidirectional_traffic() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(103));
        let mut tl = Timeline::new();
        client.send(b"ping", &mut tl).unwrap();
        let mut buf = [0u8; 4];
        server_conn.recv(&mut buf, &mut tl).unwrap();
        assert_eq!(&buf, b"ping");
        server_conn.send(b"pong", &mut tl).unwrap();
        client.recv(&mut buf, &mut tl).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn close_gives_peer_eof_and_frees_port() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(104));
        client.close();
        let mut tl = Timeline::new();
        let mut buf = [0u8; 8];
        assert_eq!(server_conn.recv(&mut buf, &mut tl).unwrap(), 0);
        assert_eq!(server_conn.send(b"x", &mut tl), Err(ScifError::ConnReset));
        assert_eq!(client.state(), EpState::Closed);
    }

    #[test]
    fn try_accept_nonblocking() {
        let (fabric, dev) = test_fabric();
        let server = fabric.open(dev).unwrap();
        server.bind(Port(105)).unwrap();
        server.listen(2).unwrap();
        let mut tl = Timeline::new();
        assert!(server.try_accept(&mut tl).unwrap().is_none());
    }

    #[test]
    fn backlog_limit_refuses_excess() {
        let (fabric, dev) = test_fabric();
        let server = fabric.open(dev).unwrap();
        server.bind(Port(106)).unwrap();
        server.listen(1).unwrap();
        // Fill the backlog with one pending connection (do it on a thread,
        // since connect blocks).
        let c1 = fabric.open(HOST_NODE).unwrap();
        let c1c = Arc::clone(&c1);
        let t1 = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            c1c.connect(ScifAddr::new(dev, Port(106)), &mut tl)
        });
        // Give the first connect time to enqueue.
        while server.listener.lock().as_ref().unwrap().pending.lock().is_empty() {
            std::thread::yield_now();
        }
        let c2 = fabric.open(HOST_NODE).unwrap();
        let mut tl = Timeline::new();
        assert_eq!(c2.connect(ScifAddr::new(dev, Port(106)), &mut tl), Err(ScifError::ConnRefused));
        // Drain the backlog so the first connector completes.
        let mut tl2 = Timeline::new();
        server.accept(&mut tl2).unwrap();
        t1.join().unwrap().unwrap();
    }

    #[test]
    fn recv_pending_and_send_space_reflect_queue() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(107));
        assert_eq!(server_conn.recv_pending(), 0);
        let mut tl = Timeline::new();
        client.send(&[0u8; 100], &mut tl).unwrap();
        assert_eq!(server_conn.recv_pending(), 100);
        assert!(client.send_space() > 0);
    }

    #[test]
    fn timed_lane_charges_like_a_real_send() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(109));
        // Under the queue capacity, so the real send needs no reader.
        let len = 1u64 << 20;
        let mut timed_tl = Timeline::new();
        client.send_timed(len, &mut timed_tl).unwrap();
        let mut real_tl = Timeline::new();
        client.send(&vec![0u8; len as usize], &mut real_tl).unwrap();
        assert_eq!(timed_tl.total(), real_tl.total(), "timed lane must cost the same");
        // Receiver can drain in pieces.
        let mut tl = Timeline::new();
        assert_eq!(server_conn.recv_timed(len / 2, &mut tl).unwrap(), len / 2);
        assert_eq!(server_conn.recv_timed(len / 2, &mut tl).unwrap(), len / 2);
    }

    #[test]
    fn timed_recv_blocks_until_bytes_arrive_and_resets_on_close() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(110));
        let s2 = Arc::clone(&server_conn);
        let waiter = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.recv_timed(1000, &mut tl)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut tl = Timeline::new();
        client.send_timed(1000, &mut tl).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), 1000);
        // A waiter left hanging gets ConnReset when the peer closes.
        let s3 = Arc::clone(&server_conn);
        let waiter = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s3.recv_timed(1, &mut tl)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        client.close();
        assert_eq!(waiter.join().unwrap(), Err(ScifError::ConnReset));
    }

    #[test]
    fn try_recv_returns_partial() {
        let (fabric, dev) = test_fabric();
        let (client, server_conn) = connected_pair(&fabric, dev, Port(108));
        let mut tl = Timeline::new();
        let mut buf = [0u8; 16];
        assert_eq!(server_conn.try_recv(&mut buf, &mut tl).unwrap(), 0);
        client.send(b"abc", &mut tl).unwrap();
        assert_eq!(server_conn.try_recv(&mut buf, &mut tl).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
    }
}

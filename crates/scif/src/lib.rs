//! # vphi-scif — the SCIF transport layer, from scratch
//!
//! SCIF (Symmetric Communication Interface) is Intel MPSS's low-level
//! abstraction over PCIe: the *same* API on the host (node 0) and on each
//! Xeon Phi card's uOS (nodes 1..N), exposing socket-like messaging,
//! registered-memory RMA, remote mmap, poll and fences.  Everything above
//! it — COI, micnativeloadex, MPI/OFED shims, and vPHI itself — speaks
//! SCIF, which is why the paper virtualizes exactly this layer.
//!
//! This crate is a functional reimplementation of the documented SCIF
//! semantics over the simulated PCIe fabric:
//!
//! * [`fabric::ScifFabric`] — the node registry: node 0 is the host, each
//!   [`vphi_phi::PhiBoard`] added becomes node 1, 2, ….
//! * [`endpoint`] / [`api::ScifEndpoint`] — the endpoint state machine
//!   (open → bind → listen/connect → connected) and the user-facing
//!   libscif-style handle.
//! * [`queue::MsgQueue`] — the per-direction byte stream with flow control
//!   backing `scif_send`/`scif_recv`.
//! * [`window`] / [`rma`] — registered windows (`scif_register`) and RMA
//!   (`scif_readfrom`/`scif_writeto`/`scif_vreadfrom`/`scif_vwriteto`),
//!   moving real bytes through the DMA model.
//! * [`mmap::MappedRegion`] — `scif_mmap` of remote windows, including the
//!   device-PFN view the vPHI `VM_PFNPHI` fault path needs.
//! * [`poll`] — `scif_poll` over endpoint sets.
//!
//! All blocking calls block the real calling thread (condvars), while
//! durations are charged to the caller's [`vphi_sim_core::Timeline`] from
//! the fabric's [`vphi_sim_core::CostModel`].

pub mod api;
pub mod endpoint;
pub mod error;
pub mod fabric;
pub mod mmap;
pub mod poll;
pub mod queue;
pub mod rma;
pub mod submit;
pub mod types;
pub mod window;

pub use api::ScifEndpoint;
pub use error::{ErrorClass, ScifError, ScifResult};
pub use fabric::ScifFabric;
pub use mmap::MappedRegion;
pub use poll::{PollEvents, PollFd};
pub use submit::{Cq, CqEntry, SqFlags, SubmitToken};
pub use types::{NodeId, Port, Prot, RmaFlags, ScifAddr, HOST_NODE};
pub use vphi_trace::{OpCtx, Stage, TraceCtx};

//! The per-direction byte stream backing `scif_send`/`scif_recv`.
//!
//! SCIF messaging is a flow-controlled byte stream (not datagrams): a send
//! of N bytes may be consumed by several receives and vice versa.  Each
//! connected endpoint pair owns two of these queues, one per direction.
//! Threads really block here; virtual time is charged by the callers.

use std::collections::VecDeque;
use std::time::Duration;

use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex};

/// Default queue capacity.  Generous enough that microbenchmarks don't
/// trip flow control, small enough that a runaway sender blocks (tested).
pub const DEFAULT_CAPACITY: usize = 16 * 1024 * 1024;

/// Wall-clock guard so a deadlocked test fails instead of hanging.
const WALL_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug)]
struct QInner {
    buf: VecDeque<u8>,
    closed: bool,
}

/// A bounded, blocking byte queue.
#[derive(Debug)]
pub struct MsgQueue {
    inner: TrackedMutex<QInner>,
    readable: TrackedCondvar,
    writable: TrackedCondvar,
    capacity: usize,
}

impl MsgQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MsgQueue {
            inner: TrackedMutex::new(
                LockClass::MsgQueue,
                QInner { buf: VecDeque::new(), closed: false },
            ),
            readable: TrackedCondvar::new(),
            writable: TrackedCondvar::new(),
            capacity,
        }
    }

    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Free space right now.
    pub fn space(&self) -> usize {
        let g = self.inner.lock();
        self.capacity - g.buf.len()
    }

    /// Blocking write of all of `data`.  Blocks while the queue is full.
    /// Returns `false` if the queue was closed before everything was
    /// written.
    pub fn write_all(&self, data: &[u8]) -> bool {
        let mut remaining = data;
        let mut g = self.inner.lock();
        while !remaining.is_empty() {
            if g.closed {
                return false;
            }
            let space = self.capacity - g.buf.len();
            if space == 0 {
                if self.writable.wait_for(&mut g, WALL_TIMEOUT).timed_out() {
                    return false;
                }
                continue;
            }
            let take = space.min(remaining.len());
            g.buf.extend(&remaining[..take]);
            remaining = &remaining[take..];
            self.readable.notify_all();
        }
        true
    }

    /// Non-blocking write; returns bytes accepted (0 when full or closed).
    pub fn write_some(&self, data: &[u8]) -> usize {
        let mut g = self.inner.lock();
        if g.closed {
            return 0;
        }
        let space = self.capacity - g.buf.len();
        let take = space.min(data.len());
        g.buf.extend(&data[..take]);
        if take > 0 {
            self.readable.notify_all();
        }
        take
    }

    /// Blocking read: waits for *at least one* byte (SCIF `scif_recv` with
    /// `SCIF_RECV_BLOCK` returns as soon as any data is available unless
    /// the full-length semantic is requested by the caller loop).  Returns
    /// the byte count read, or 0 if the queue is closed and drained.
    pub fn read_some(&self, out: &mut [u8]) -> usize {
        if out.is_empty() {
            return 0;
        }
        let mut g = self.inner.lock();
        loop {
            if !g.buf.is_empty() {
                let take = g.buf.len().min(out.len());
                for slot in out.iter_mut().take(take) {
                    *slot = g.buf.pop_front().expect("len checked");
                }
                self.writable.notify_all();
                return take;
            }
            if g.closed {
                return 0;
            }
            if self.readable.wait_for(&mut g, WALL_TIMEOUT).timed_out() {
                return 0;
            }
        }
    }

    /// Blocking read of exactly `out.len()` bytes (the `SCIF_RECV_BLOCK`
    /// full-length semantic).  Returns the bytes actually read, which is
    /// short only if the queue closed first.
    pub fn read_exact(&self, out: &mut [u8]) -> usize {
        let mut filled = 0;
        while filled < out.len() {
            let n = self.read_some(&mut out[filled..]);
            if n == 0 {
                break;
            }
            filled += n;
        }
        filled
    }

    /// Non-blocking read; returns bytes read (possibly 0).
    pub fn try_read(&self, out: &mut [u8]) -> usize {
        let mut g = self.inner.lock();
        let take = g.buf.len().min(out.len());
        for slot in out.iter_mut().take(take) {
            *slot = g.buf.pop_front().expect("len checked");
        }
        if take > 0 {
            self.writable.notify_all();
        }
        take
    }

    /// Close the queue: wakes all blocked readers/writers; readers drain
    /// remaining data then see EOF.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn write_then_read_round_trips() {
        let q = MsgQueue::new(64);
        assert!(q.write_all(b"hello"));
        let mut out = [0u8; 5];
        assert_eq!(q.read_some(&mut out), 5);
        assert_eq!(&out, b"hello");
        assert!(q.is_empty());
    }

    #[test]
    fn stream_semantics_split_and_merge() {
        let q = MsgQueue::new(64);
        q.write_all(b"ab");
        q.write_all(b"cd");
        let mut out = [0u8; 3];
        assert_eq!(q.read_some(&mut out), 3);
        assert_eq!(&out, b"abc");
        let mut rest = [0u8; 8];
        assert_eq!(q.read_some(&mut rest), 1);
        assert_eq!(rest[0], b'd');
    }

    #[test]
    fn flow_control_blocks_writer_until_reader_drains() {
        let q = Arc::new(MsgQueue::new(8));
        let q2 = Arc::clone(&q);
        let writer = std::thread::spawn(move || q2.write_all(&[7u8; 20]));
        // Drain in pieces; the writer can only finish if flow control
        // releases it as we read.
        let mut got = 0;
        let mut buf = [0u8; 4];
        while got < 20 {
            got += q.read_some(&mut buf);
        }
        assert!(writer.join().unwrap());
        assert_eq!(got, 20);
    }

    #[test]
    fn close_unblocks_reader_with_eof() {
        let q = Arc::new(MsgQueue::new(8));
        let q2 = Arc::clone(&q);
        let reader = std::thread::spawn(move || {
            let mut b = [0u8; 4];
            q2.read_some(&mut b)
        });
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(reader.join().unwrap(), 0);
    }

    #[test]
    fn close_lets_reader_drain_remaining() {
        let q = MsgQueue::new(8);
        q.write_all(b"xy");
        q.close();
        let mut b = [0u8; 8];
        assert_eq!(q.read_some(&mut b), 2);
        assert_eq!(q.read_some(&mut b), 0);
        assert!(!q.write_all(b"z"));
    }

    #[test]
    fn read_exact_spans_multiple_writes() {
        let q = Arc::new(MsgQueue::new(8));
        let q2 = Arc::clone(&q);
        let writer = std::thread::spawn(move || {
            for chunk in [b"aa".as_slice(), b"bb", b"cc"] {
                q2.write_all(chunk);
            }
        });
        let mut out = [0u8; 6];
        assert_eq!(q.read_exact(&mut out), 6);
        assert_eq!(&out, b"aabbcc");
        writer.join().unwrap();
    }

    #[test]
    fn nonblocking_variants() {
        let q = MsgQueue::new(4);
        assert_eq!(q.write_some(b"abcdef"), 4); // truncated at capacity
        assert_eq!(q.write_some(b"x"), 0); // full
        let mut b = [0u8; 2];
        assert_eq!(q.try_read(&mut b), 2);
        assert_eq!(&b, b"ab");
        assert_eq!(q.space(), 2);
        q.close();
        assert_eq!(q.write_some(b"x"), 0);
    }

    #[test]
    fn read_into_empty_buffer_is_zero() {
        let q = MsgQueue::new(4);
        assert_eq!(q.read_some(&mut []), 0);
    }
}

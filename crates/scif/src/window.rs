//! Registered windows — the `scif_register`/`scif_unregister` machinery.
//!
//! A window exposes a span of *pinned* local memory into the endpoint's
//! registered address space, addressed by peer RMA operations via offsets.
//! Pinning matters (paper §III): an unpinned page could be swapped out and
//! a remote read would fetch stale bytes with no fault to recover.  In the
//! simulation, pinning is ownership: a window holds a strong reference to
//! its backing (a shared user buffer or a GDDR region), so the bytes can
//! never disappear while registered.

use std::collections::BTreeMap;
use std::sync::Arc;

use vphi_phi::DeviceRegion;
use vphi_sim_core::cost::{HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::error::{ScifError, ScifResult};
use crate::types::{PinnedBuf, Prot};

/// External byte storage registerable as a window — implemented by the
/// vPHI backend over *guest physical memory*, so that a window registered
/// from inside a VM aliases the guest's pinned pages (no copies, exactly
/// the paper's guest-memory-registration design).
pub trait WindowBytes: Send + Sync {
    /// Total backing length in bytes.
    fn len(&self) -> u64;
    /// Whether the backing is empty (never true for registered windows).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn read(&self, at: u64, out: &mut [u8]) -> ScifResult<()>;
    fn write(&self, at: u64, data: &[u8]) -> ScifResult<()>;
}

/// What a window's bytes live in.
#[derive(Clone)]
pub enum WindowBacking {
    /// Pinned host (or guest) pages.
    Pinned(PinnedBuf),
    /// Xeon Phi GDDR (a device-side registration).
    Device(Arc<DeviceRegion>),
    /// Externally-owned pinned pages (e.g. guest physical memory behind
    /// the vPHI backend).
    External(Arc<dyn WindowBytes>),
}

impl std::fmt::Debug for WindowBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowBacking::Pinned(_) => write!(f, "WindowBacking::Pinned"),
            WindowBacking::Device(r) => write!(f, "WindowBacking::Device({:#x})", r.offset()),
            WindowBacking::External(_) => write!(f, "WindowBacking::External"),
        }
    }
}

impl WindowBacking {
    pub fn len(&self) -> u64 {
        match self {
            WindowBacking::Pinned(b) => b.lock().len() as u64,
            WindowBacking::Device(r) => r.len(),
            WindowBacking::External(e) => e.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy `out.len()` bytes from backing offset `at`.
    pub fn read(&self, at: u64, out: &mut [u8]) -> ScifResult<()> {
        match self {
            WindowBacking::Pinned(b) => {
                let data = b.lock();
                let end = at as usize + out.len();
                if end > data.len() {
                    return Err(ScifError::OutOfRange);
                }
                out.copy_from_slice(&data[at as usize..end]);
                Ok(())
            }
            WindowBacking::Device(r) => r.read(at, out).map_err(|_| ScifError::OutOfRange),
            WindowBacking::External(e) => e.read(at, out),
        }
    }

    /// Copy `data` into backing offset `at`.
    pub fn write(&self, at: u64, data: &[u8]) -> ScifResult<()> {
        match self {
            WindowBacking::Pinned(b) => {
                let mut buf = b.lock();
                let end = at as usize + data.len();
                if end > buf.len() {
                    return Err(ScifError::OutOfRange);
                }
                buf[at as usize..end].copy_from_slice(data);
                Ok(())
            }
            WindowBacking::Device(r) => r.write(at, data).map_err(|_| ScifError::OutOfRange),
            WindowBacking::External(e) => e.write(at, data),
        }
    }

    /// Device page-frame number of byte 0, when GDDR-backed (used by
    /// `scif_mmap` → `VM_PFNPHI`).
    pub fn device_base_pfn(&self) -> Option<u64> {
        match self {
            WindowBacking::Pinned(_) | WindowBacking::External(_) => None,
            WindowBacking::Device(r) => Some(r.offset() / PAGE_SIZE),
        }
    }
}

/// A backing *is* external byte storage — lets a cloned-out backing be
/// handed to the zero-copy RMA entry points (`vreadfrom_window` /
/// `vwriteto_window`) as the local side of a transfer.
impl WindowBytes for WindowBacking {
    fn len(&self) -> u64 {
        WindowBacking::len(self)
    }
    fn read(&self, at: u64, out: &mut [u8]) -> ScifResult<()> {
        WindowBacking::read(self, at, out)
    }
    fn write(&self, at: u64, data: &[u8]) -> ScifResult<()> {
        WindowBacking::write(self, at, data)
    }
}

/// One registered window.
#[derive(Debug, Clone)]
pub struct Window {
    pub offset: u64,
    pub len: u64,
    pub prot: Prot,
    pub backing: WindowBacking,
}

impl Window {
    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }
}

/// The registered address space of one endpoint.
#[derive(Debug, Default)]
pub struct WindowTable {
    windows: BTreeMap<u64, Window>,
    next_auto_offset: u64,
}

impl WindowTable {
    pub fn new() -> Self {
        WindowTable { windows: BTreeMap::new(), next_auto_offset: 0x1000_0000 }
    }

    /// Register a window.  `fixed_offset = None` lets SCIF pick
    /// (`SCIF_MAP_FIXED` absent).  Lengths are page-granular; the backing
    /// must be at least `len` long.
    pub fn register(
        &mut self,
        fixed_offset: Option<u64>,
        len: u64,
        prot: Prot,
        backing: WindowBacking,
    ) -> ScifResult<u64> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(ScifError::Inval);
        }
        if backing.len() < len {
            return Err(ScifError::Inval);
        }
        let offset = match fixed_offset {
            Some(off) => {
                if off % PAGE_SIZE != 0 {
                    return Err(ScifError::Inval);
                }
                off
            }
            None => {
                // Large windows get huge-page-aligned offsets so the
                // zero-copy path can pin and aperture-map them at
                // huge-page granularity (DESIGN.md #19).  Small windows
                // keep the dense page-granular layout.
                let off = if len >= HUGE_PAGE_SIZE {
                    self.next_auto_offset.next_multiple_of(HUGE_PAGE_SIZE)
                } else {
                    self.next_auto_offset
                };
                let granule = if len >= HUGE_PAGE_SIZE { HUGE_PAGE_SIZE } else { PAGE_SIZE };
                self.next_auto_offset = off + len.next_multiple_of(granule);
                off
            }
        };
        if self.overlaps(offset, len) {
            return Err(ScifError::AddrInUse);
        }
        self.windows.insert(offset, Window { offset, len, prot, backing });
        Ok(offset)
    }

    fn overlaps(&self, offset: u64, len: u64) -> bool {
        let end = offset + len;
        // Window starting at or after `offset` that begins before `end`…
        if self.windows.range(offset..end).next().is_some() {
            return true;
        }
        // …or a window starting before `offset` that extends into it.
        if let Some((_, w)) = self.windows.range(..offset).next_back() {
            if w.offset + w.len > offset {
                return true;
            }
        }
        false
    }

    /// Unregister the window that starts exactly at `offset` with length
    /// `len` (SCIF requires exact spans).
    pub fn unregister(&mut self, offset: u64, len: u64) -> ScifResult<()> {
        match self.windows.get(&offset) {
            Some(w) if w.len == len => {
                self.windows.remove(&offset);
                Ok(())
            }
            Some(_) => Err(ScifError::Inval),
            None => Err(ScifError::OutOfRange),
        }
    }

    /// Find the window covering `[offset, offset+len)` entirely.  SCIF RMA
    /// must not straddle windows.
    pub fn lookup(&self, offset: u64, len: u64) -> ScifResult<&Window> {
        let (_, w) = self.windows.range(..=offset).next_back().ok_or(ScifError::OutOfRange)?;
        let end = offset.checked_add(len).ok_or(ScifError::Inval)?;
        if offset >= w.offset && end <= w.offset + w.len {
            Ok(w)
        } else {
            Err(ScifError::OutOfRange)
        }
    }

    /// Drop every window — endpoint teardown.  `scif_close` releases all
    /// of an endpoint's registrations the way the driver unpins pages when
    /// the fd closes; returns how many windows were released.
    pub fn release_all(&mut self) -> usize {
        let n = self.windows.len();
        self.windows.clear();
        n
    }

    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    pub fn total_registered(&self) -> u64 {
        self.windows.values().map(|w| w.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::pinned_buf;

    fn backing(pages: u64) -> WindowBacking {
        WindowBacking::Pinned(pinned_buf((pages * PAGE_SIZE) as usize))
    }

    #[test]
    fn auto_offsets_do_not_collide() {
        let mut t = WindowTable::new();
        let a = t.register(None, PAGE_SIZE, Prot::READ_WRITE, backing(1)).unwrap();
        let b = t.register(None, 4 * PAGE_SIZE, Prot::READ_WRITE, backing(4)).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.window_count(), 2);
        assert_eq!(t.total_registered(), 5 * PAGE_SIZE);
    }

    #[test]
    fn large_auto_offsets_are_huge_page_aligned() {
        let mut t = WindowTable::new();
        // A small window first, to knock the cursor off huge alignment.
        let small = t.register(None, PAGE_SIZE, Prot::READ_WRITE, backing(1)).unwrap();
        assert!(small.is_multiple_of(PAGE_SIZE));
        let pages = HUGE_PAGE_SIZE / PAGE_SIZE + 1; // 2 MiB + 4 KiB
        let big = t.register(None, pages * PAGE_SIZE, Prot::READ_WRITE, backing(pages)).unwrap();
        assert!(big.is_multiple_of(HUGE_PAGE_SIZE), "large window base {big:#x} not huge-aligned");
        // The next large window lands on the following huge boundary (the
        // cursor advanced by the huge-rounded length).
        let big2 = t
            .register(None, HUGE_PAGE_SIZE, Prot::READ_WRITE, backing(HUGE_PAGE_SIZE / PAGE_SIZE))
            .unwrap();
        assert_eq!(big2, big + 2 * HUGE_PAGE_SIZE);
        // Small windows after a large one still work and don't collide.
        let small2 = t.register(None, PAGE_SIZE, Prot::READ_WRITE, backing(1)).unwrap();
        assert!(t.lookup(small2, PAGE_SIZE).is_ok());
        assert_eq!(t.window_count(), 4);
    }

    #[test]
    fn fixed_offset_honored_and_overlap_rejected() {
        let mut t = WindowTable::new();
        let off = t.register(Some(8 * PAGE_SIZE), 2 * PAGE_SIZE, Prot::READ, backing(2)).unwrap();
        assert_eq!(off, 8 * PAGE_SIZE);
        // Exact overlap.
        assert_eq!(
            t.register(Some(8 * PAGE_SIZE), PAGE_SIZE, Prot::READ, backing(1)),
            Err(ScifError::AddrInUse)
        );
        // Partial overlap from below.
        assert_eq!(
            t.register(Some(7 * PAGE_SIZE), 2 * PAGE_SIZE, Prot::READ, backing(2)),
            Err(ScifError::AddrInUse)
        );
        // Partial overlap from above.
        assert_eq!(
            t.register(Some(9 * PAGE_SIZE), 2 * PAGE_SIZE, Prot::READ, backing(2)),
            Err(ScifError::AddrInUse)
        );
        // Adjacent is fine.
        assert!(t.register(Some(10 * PAGE_SIZE), PAGE_SIZE, Prot::READ, backing(1)).is_ok());
    }

    #[test]
    fn invalid_registrations() {
        let mut t = WindowTable::new();
        assert_eq!(t.register(None, 0, Prot::READ, backing(1)), Err(ScifError::Inval));
        assert_eq!(t.register(None, 100, Prot::READ, backing(1)), Err(ScifError::Inval));
        assert_eq!(t.register(Some(3), PAGE_SIZE, Prot::READ, backing(1)), Err(ScifError::Inval));
        // Backing shorter than window.
        assert_eq!(t.register(None, 2 * PAGE_SIZE, Prot::READ, backing(1)), Err(ScifError::Inval));
    }

    #[test]
    fn lookup_requires_full_containment() {
        let mut t = WindowTable::new();
        let off = t.register(Some(0), 2 * PAGE_SIZE, Prot::READ_WRITE, backing(2)).unwrap();
        assert!(t.lookup(off, 2 * PAGE_SIZE).is_ok());
        assert!(t.lookup(off + 100, 200).is_ok());
        assert_eq!(t.lookup(off + PAGE_SIZE, 2 * PAGE_SIZE).err(), Some(ScifError::OutOfRange));
        assert_eq!(t.lookup(5 * PAGE_SIZE, 1).err(), Some(ScifError::OutOfRange));
    }

    #[test]
    fn unregister_exact_span_only() {
        let mut t = WindowTable::new();
        let off = t.register(None, 2 * PAGE_SIZE, Prot::READ, backing(2)).unwrap();
        assert_eq!(t.unregister(off, PAGE_SIZE), Err(ScifError::Inval));
        assert_eq!(t.unregister(off + 1, PAGE_SIZE), Err(ScifError::OutOfRange));
        assert!(t.unregister(off, 2 * PAGE_SIZE).is_ok());
        assert_eq!(t.window_count(), 0);
        // Space can be reused.
        assert!(t.register(Some(off), PAGE_SIZE, Prot::READ, backing(1)).is_ok());
    }

    #[test]
    fn backing_read_write_and_bounds() {
        let b = backing(1);
        b.write(10, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 3];
        b.read(10, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(b.read(PAGE_SIZE - 1, &mut out).err(), Some(ScifError::OutOfRange));
        assert_eq!(b.write(PAGE_SIZE, &[0]).err(), Some(ScifError::OutOfRange));
        assert!(b.device_base_pfn().is_none());
    }

    #[test]
    fn device_backed_window_reports_pfn() {
        use vphi_phi::DeviceMemory;
        let mem = DeviceMemory::new(64 * PAGE_SIZE);
        let region = mem.alloc(4 * PAGE_SIZE).unwrap();
        let expected_pfn = region.offset() / PAGE_SIZE;
        let b = WindowBacking::Device(region);
        assert_eq!(b.device_base_pfn(), Some(expected_pfn));
        b.write(0, &[42]).unwrap();
        let mut out = [0u8];
        b.read(0, &mut out).unwrap();
        assert_eq!(out[0], 42);
    }
}

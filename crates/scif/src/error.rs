//! SCIF error codes.
//!
//! libscif surfaces errno values; we mirror the ones the documented API
//! can produce so upper layers (and the vPHI wire protocol) can round-trip
//! them.

/// Result alias used across the crate.
pub type ScifResult<T> = Result<T, ScifError>;

/// The errno-style failures of the SCIF API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScifError {
    /// ECONNREFUSED — no listener on the destination port.
    ConnRefused,
    /// EADDRINUSE — port already bound.
    AddrInUse,
    /// ENOTCONN — operation requires a connected endpoint.
    NotConn,
    /// EISCONN — endpoint already connected/bound where it must not be.
    IsConn,
    /// EINVAL — bad argument (flags, lengths, states).
    Inval,
    /// ECONNRESET — peer closed underneath us.
    ConnReset,
    /// ENODEV — no such node, or node offline.
    NoDev,
    /// ENOMEM — out of memory (device GDDR or window space).
    NoMem,
    /// ENXIO — RMA offset not covered by a registered window.
    OutOfRange,
    /// EACCES — window protection forbids the access.
    Access,
    /// EAGAIN — non-blocking operation would block.
    Again,
    /// Invalid listener backlog or endpoint listening misuse.
    OpNotSupported,
    /// EIO — device I/O error (uncorrectable ECC, DMA engine fault).
    Io,
    /// ECANCELED — the submission's token was reaped after its endpoint
    /// closed or its card was reset; the operation was drained, not run
    /// to completion on the caller's behalf.
    Canceled,
}

/// How callers should react to a [`ScifError`].  Retry loops and tests
/// branch on this instead of string-matching variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Transient: the same call may succeed if reissued (possibly after
    /// backoff or waiting for the peer).
    Retryable,
    /// Permanent for this endpoint/request: retrying the identical call
    /// cannot succeed without outside intervention (reset, reconnect).
    Fatal,
}

impl ScifError {
    /// The errno number libscif would report, for protocol encoding.
    pub fn errno(self) -> i32 {
        match self {
            ScifError::ConnRefused => 111,
            ScifError::AddrInUse => 98,
            ScifError::NotConn => 107,
            ScifError::IsConn => 106,
            ScifError::Inval => 22,
            ScifError::ConnReset => 104,
            ScifError::NoDev => 19,
            ScifError::NoMem => 12,
            ScifError::OutOfRange => 6,
            ScifError::Access => 13,
            ScifError::Again => 11,
            ScifError::OpNotSupported => 95,
            ScifError::Io => 5,
            ScifError::Canceled => 125,
        }
    }

    /// Retryable/Fatal classification (see [`ErrorClass`]).
    pub fn class(self) -> ErrorClass {
        match self {
            // Would-block and no-listener-yet are worth reissuing; the
            // frontend's deadline/backoff loop leans on this.
            ScifError::Again | ScifError::ConnRefused => ErrorClass::Retryable,
            ScifError::AddrInUse
            | ScifError::NotConn
            | ScifError::IsConn
            | ScifError::Inval
            | ScifError::ConnReset
            | ScifError::NoDev
            | ScifError::NoMem
            | ScifError::OutOfRange
            | ScifError::Access
            | ScifError::OpNotSupported
            | ScifError::Io
            // Reissuing the identical call cannot un-cancel a reaped
            // token: the endpoint is gone or the card was reset.
            | ScifError::Canceled => ErrorClass::Fatal,
        }
    }

    pub fn is_retryable(self) -> bool {
        self.class() == ErrorClass::Retryable
    }

    /// Inverse of [`errno`](ScifError::errno) for protocol decoding.
    pub fn from_errno(e: i32) -> Option<ScifError> {
        Some(match e {
            111 => ScifError::ConnRefused,
            98 => ScifError::AddrInUse,
            107 => ScifError::NotConn,
            106 => ScifError::IsConn,
            22 => ScifError::Inval,
            104 => ScifError::ConnReset,
            19 => ScifError::NoDev,
            12 => ScifError::NoMem,
            6 => ScifError::OutOfRange,
            13 => ScifError::Access,
            11 => ScifError::Again,
            95 => ScifError::OpNotSupported,
            5 => ScifError::Io,
            125 => ScifError::Canceled,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ScifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (name, msg) = match self {
            ScifError::ConnRefused => ("ECONNREFUSED", "connection refused"),
            ScifError::AddrInUse => ("EADDRINUSE", "port already bound"),
            ScifError::NotConn => ("ENOTCONN", "endpoint not connected"),
            ScifError::IsConn => ("EISCONN", "endpoint already connected"),
            ScifError::Inval => ("EINVAL", "invalid argument"),
            ScifError::ConnReset => ("ECONNRESET", "connection reset by peer"),
            ScifError::NoDev => ("ENODEV", "no such SCIF node"),
            ScifError::NoMem => ("ENOMEM", "out of memory"),
            ScifError::OutOfRange => ("ENXIO", "offset not in a registered window"),
            ScifError::Access => ("EACCES", "window protection violation"),
            ScifError::Again => ("EAGAIN", "operation would block"),
            ScifError::OpNotSupported => ("EOPNOTSUPP", "operation not supported"),
            ScifError::Io => ("EIO", "device I/O error"),
            ScifError::Canceled => ("ECANCELED", "operation canceled"),
        };
        write!(f, "{name}: {msg}")
    }
}

impl std::error::Error for ScifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_round_trips() {
        for e in [
            ScifError::ConnRefused,
            ScifError::AddrInUse,
            ScifError::NotConn,
            ScifError::IsConn,
            ScifError::Inval,
            ScifError::ConnReset,
            ScifError::NoDev,
            ScifError::NoMem,
            ScifError::OutOfRange,
            ScifError::Access,
            ScifError::Again,
            ScifError::OpNotSupported,
            ScifError::Io,
            ScifError::Canceled,
        ] {
            assert_eq!(ScifError::from_errno(e.errno()), Some(e));
        }
        assert_eq!(ScifError::from_errno(0), None);
        assert_eq!(ScifError::from_errno(-1), None);
    }

    #[test]
    fn classification_separates_transient_from_permanent() {
        assert!(ScifError::Again.is_retryable());
        assert!(ScifError::ConnRefused.is_retryable());
        for fatal in [
            ScifError::AddrInUse,
            ScifError::NotConn,
            ScifError::IsConn,
            ScifError::Inval,
            ScifError::ConnReset,
            ScifError::NoDev,
            ScifError::NoMem,
            ScifError::OutOfRange,
            ScifError::Access,
            ScifError::OpNotSupported,
            ScifError::Io,
            ScifError::Canceled,
        ] {
            assert_eq!(fatal.class(), ErrorClass::Fatal, "{fatal}");
        }
    }

    #[test]
    fn display_uses_errno_names() {
        assert!(ScifError::ConnRefused.to_string().contains("ECONNREFUSED"));
        assert!(ScifError::OutOfRange.to_string().contains("registered window"));
        assert!(ScifError::Canceled.to_string().contains("ECANCELED"));
    }
}

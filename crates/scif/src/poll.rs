//! `scif_poll` — readiness notification over endpoint sets.
//!
//! The paper's background (§II-B) highlights `scif_poll` as the
//! completion-notification primitive used with RDMA: a caller blocks until
//! a subsequent operation on some endpoint can proceed without blocking.

use std::sync::Arc;
use std::time::Duration;

use vphi_sim_core::{SpanLabel, Timeline};

use crate::endpoint::{EndpointCore, EpState};
use crate::error::{ScifError, ScifResult};

/// Poll event bits, mirroring POLLIN/POLLOUT/POLLHUP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PollEvents(u8);

impl PollEvents {
    pub const NONE: PollEvents = PollEvents(0);
    pub const IN: PollEvents = PollEvents(1);
    pub const OUT: PollEvents = PollEvents(2);
    pub const HUP: PollEvents = PollEvents(4);

    pub fn contains(self, other: PollEvents) -> bool {
        self.0 & other.0 == other.0 && other.0 != 0
    }

    pub fn intersects(self, other: PollEvents) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for PollEvents {
    type Output = PollEvents;
    fn bitor(self, rhs: PollEvents) -> PollEvents {
        PollEvents(self.0 | rhs.0)
    }
}

/// One entry of a poll set.
pub struct PollFd {
    pub ep: Arc<EndpointCore>,
    /// Events the caller is interested in.
    pub events: PollEvents,
    /// Events that are ready (filled by [`poll`]).
    pub revents: PollEvents,
}

impl PollFd {
    pub fn new(ep: Arc<EndpointCore>, events: PollEvents) -> Self {
        PollFd { ep, events, revents: PollEvents::NONE }
    }
}

fn ready_events(ep: &EndpointCore, interest: PollEvents) -> PollEvents {
    let mut r = PollEvents::NONE;
    let state = ep.state();
    if state == EpState::Closed {
        return PollEvents::HUP;
    }
    if interest.intersects(PollEvents::IN) && ep.recv_pending() > 0 {
        r = r | PollEvents::IN;
    }
    // A peer that closed or went away is HUP (and recv would return EOF).
    let peer_gone = state == EpState::Connected
        && ep.peer_core().map(|p| p.state() == EpState::Closed).unwrap_or(true);
    if peer_gone {
        r = r | PollEvents::HUP;
    }
    if interest.intersects(PollEvents::OUT)
        && state == EpState::Connected
        && !peer_gone
        && ep.send_space() > 0
    {
        r = r | PollEvents::OUT;
    }
    r
}

/// Poll a set of endpoints.  Blocks (really) until at least one endpoint
/// is ready or `wall_timeout` elapses; charges one `PollWait` span per
/// wake-up iteration.  Returns the number of ready entries (0 = timeout).
pub fn poll(fds: &mut [PollFd], wall_timeout: Duration, tl: &mut Timeline) -> ScifResult<usize> {
    if fds.is_empty() {
        return Err(ScifError::Inval);
    }
    let shared = Arc::clone(&fds[0].ep.shared);
    let deadline = std::time::Instant::now() + wall_timeout;
    let mut seen = shared.activity.version();
    loop {
        let mut ready = 0;
        for fd in fds.iter_mut() {
            fd.revents = ready_events(&fd.ep, fd.events);
            if !fd.revents.is_empty() {
                ready += 1;
            }
        }
        if ready > 0 {
            tl.charge(SpanLabel::PollWait, shared.cost.poll_observe);
            return Ok(ready);
        }
        tl.charge(SpanLabel::PollWait, shared.cost.poll_iteration);
        // Re-check after reading the version to close the race, then wait
        // bounded by the remaining timeout.
        let v = shared.activity.version();
        if v != seen {
            seen = v;
            continue;
        }
        // Recompute the remaining budget immediately before sleeping:
        // every spurious wake-up re-enters here, and a stale `remaining`
        // would let each one extend the total wait past `wall_timeout`.
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Ok(0);
        }
        let (v, changed) = shared.activity.wait_change_for(seen, remaining);
        if !changed {
            return Ok(0);
        }
        seen = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ScifFabric;
    use crate::types::{Port, ScifAddr, HOST_NODE};
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::{CostModel, VirtualClock};

    fn setup() -> (Arc<EndpointCore>, Arc<EndpointCore>) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let dev = fabric.add_device(board);
        let server = fabric.open(dev).unwrap();
        server.bind(Port(9)).unwrap();
        server.listen(2).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acc = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        let mut tl = Timeline::new();
        client.connect(ScifAddr::new(dev, Port(9)), &mut tl).unwrap();
        (client, acc.join().unwrap())
    }

    #[test]
    fn pollout_ready_on_fresh_connection() {
        let (client, _server) = setup();
        let mut fds = [PollFd::new(client, PollEvents::OUT)];
        let mut tl = Timeline::new();
        let n = poll(&mut fds, Duration::from_secs(1), &mut tl).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents.contains(PollEvents::OUT));
        assert!(!fds[0].revents.contains(PollEvents::IN));
    }

    #[test]
    fn pollin_fires_when_data_arrives() {
        let (client, server) = setup();
        let c2 = Arc::clone(&client);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            let mut tl = Timeline::new();
            c2.send(b"wake", &mut tl).unwrap();
        });
        let mut fds = [PollFd::new(server, PollEvents::IN)];
        let mut tl = Timeline::new();
        let n = poll(&mut fds, Duration::from_secs(5), &mut tl).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents.contains(PollEvents::IN));
        sender.join().unwrap();
    }

    #[test]
    fn poll_timeout_returns_zero() {
        let (_client, server) = setup();
        let mut fds = [PollFd::new(server, PollEvents::IN)];
        let mut tl = Timeline::new();
        let n = poll(&mut fds, Duration::from_millis(20), &mut tl).unwrap();
        assert_eq!(n, 0);
        assert!(fds[0].revents.is_empty());
    }

    #[test]
    fn hup_on_closed_endpoint() {
        let (client, server) = setup();
        client.close();
        let mut fds = [PollFd::new(server, PollEvents::IN | PollEvents::OUT)];
        let mut tl = Timeline::new();
        let n = poll(&mut fds, Duration::from_secs(1), &mut tl).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents.contains(PollEvents::HUP));
        assert!(!fds[0].revents.contains(PollEvents::OUT));
    }

    #[test]
    fn spurious_wakeups_do_not_extend_the_deadline() {
        // Fabric activity unrelated to the polled endpoint (another
        // endpoint's traffic bumping the hub) wakes the poller spuriously.
        // Each wake-up must shrink the remaining budget, not restart it.
        let (_client, server) = setup();
        let shared = Arc::clone(&server.shared);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let bumper = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                shared.activity.bump();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let mut fds = [PollFd::new(server, PollEvents::IN)];
        let mut tl = Timeline::new();
        let start = std::time::Instant::now();
        let n = poll(&mut fds, Duration::from_millis(60), &mut tl).unwrap();
        let elapsed = start.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        bumper.join().unwrap();
        assert_eq!(n, 0, "nothing was ever ready");
        // Pre-fix, ~12 bumps × a stale full-ish budget each could stretch
        // this to many times the timeout; allow generous scheduling slack.
        assert!(elapsed < Duration::from_millis(500), "poll overstayed: {elapsed:?}");
    }

    #[test]
    fn empty_poll_set_is_invalid() {
        let mut tl = Timeline::new();
        assert_eq!(poll(&mut [], Duration::ZERO, &mut tl), Err(ScifError::Inval));
    }

    #[test]
    fn event_bit_algebra() {
        let e = PollEvents::IN | PollEvents::HUP;
        assert!(e.contains(PollEvents::IN));
        assert!(e.intersects(PollEvents::HUP));
        assert!(!e.contains(PollEvents::OUT));
        assert!(!PollEvents::NONE.contains(PollEvents::NONE));
        assert!(PollEvents::NONE.is_empty());
    }
}

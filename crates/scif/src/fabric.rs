//! The SCIF node fabric: node registry, ports, listeners, connection
//! establishment, and the cross-node timing helpers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use vphi_faults::FaultSite;
use vphi_phi::PhiBoard;
use vphi_sim_core::{CostModel, SimDuration, SpanLabel, Timeline, VirtualClock};
use vphi_sync::{LockClass, TrackedCondvar, TrackedMutex, TrackedRwLock};

use crate::endpoint::EndpointCore;
use crate::error::{ScifError, ScifResult};
use crate::types::{NodeId, Port, ScifAddr, HOST_NODE};

/// Wall-clock guard for blocking fabric operations, so broken tests fail
/// rather than hang.
pub(crate) const WALL_TIMEOUT: Duration = Duration::from_secs(30);

/// A wake-any hub: blocking fabric operations (accept, connect, poll) wait
/// on this and re-check their condition whenever anything happens.
#[derive(Debug)]
pub(crate) struct ActivityHub {
    version: TrackedMutex<u64>,
    cond: TrackedCondvar,
}

impl Default for ActivityHub {
    fn default() -> Self {
        ActivityHub {
            version: TrackedMutex::new(LockClass::ActivityHub, 0),
            cond: TrackedCondvar::new(),
        }
    }
}

impl ActivityHub {
    pub fn bump(&self) {
        let mut v = self.version.lock();
        *v += 1;
        self.cond.notify_all();
    }

    /// Wait until the hub version changes from `seen`; returns the new
    /// version, or `None` on wall timeout.
    pub fn wait_change(&self, seen: u64) -> Option<u64> {
        let mut v = self.version.lock();
        while *v == seen {
            if self.cond.wait_for(&mut v, WALL_TIMEOUT).timed_out() {
                return None;
            }
        }
        Some(*v)
    }

    /// Like [`wait_change`](ActivityHub::wait_change) but bounded by
    /// `timeout`; returns the current version either way, plus whether it
    /// changed.
    pub fn wait_change_for(&self, seen: u64, timeout: Duration) -> (u64, bool) {
        let mut v = self.version.lock();
        let deadline = std::time::Instant::now() + timeout;
        while *v == seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                return (*v, false);
            }
            if self.cond.wait_for(&mut v, deadline - now).timed_out() {
                return (*v, *v != seen);
            }
        }
        (*v, true)
    }

    pub fn version(&self) -> u64 {
        *self.version.lock()
    }
}

/// A pending connection waiting in a listener's backlog.
pub(crate) struct PendingConn {
    pub connector: Weak<EndpointCore>,
}

/// A listening port's state.
pub(crate) struct Listener {
    pub backlog: usize,
    pub pending: TrackedMutex<VecDeque<PendingConn>>,
    pub closed: AtomicBool,
}

impl Listener {
    fn new(backlog: usize) -> Self {
        Listener {
            backlog: backlog.max(1),
            pending: TrackedMutex::new(LockClass::ListenerPending, VecDeque::new()),
            closed: AtomicBool::new(false),
        }
    }
}

/// One SCIF node's driver state (the host's `scif.ko` or the uOS's).
pub struct NodeCore {
    id: NodeId,
    ports: TrackedMutex<HashMap<Port, Arc<Listener>>>,
    next_ephemeral: AtomicU16,
    /// The board behind this node; `None` for the host node.
    board: Option<Arc<PhiBoard>>,
}

impl NodeCore {
    pub fn id(&self) -> NodeId {
        self.id
    }

    pub fn board(&self) -> Option<&Arc<PhiBoard>> {
        self.board.as_ref()
    }

    /// Reserve `port` (or an ephemeral one for [`Port::ANY`]).
    pub(crate) fn bind_port(&self, port: Port) -> ScifResult<Port> {
        let mut ports = self.ports.lock();
        let chosen = if port == Port::ANY {
            loop {
                let p = self.next_ephemeral.fetch_add(1, Ordering::Relaxed);
                let p = Port(p);
                if !ports.contains_key(&p) {
                    break p;
                }
            }
        } else {
            if ports.contains_key(&port) {
                return Err(ScifError::AddrInUse);
            }
            port
        };
        // Binding reserves the port; a Listener object is only attached on
        // listen().  We reserve with a placeholder closed listener.
        let l = Listener::new(1);
        l.closed.store(true, Ordering::Release);
        ports.insert(chosen, Arc::new(l));
        Ok(chosen)
    }

    pub(crate) fn start_listening(&self, port: Port, backlog: usize) -> ScifResult<Arc<Listener>> {
        let mut ports = self.ports.lock();
        match ports.get(&port) {
            Some(existing) if !existing.closed.load(Ordering::Acquire) => Err(ScifError::AddrInUse),
            _ => {
                let l = Arc::new(Listener::new(backlog));
                ports.insert(port, Arc::clone(&l));
                Ok(l)
            }
        }
    }

    pub(crate) fn listener(&self, port: Port) -> Option<Arc<Listener>> {
        let ports = self.ports.lock();
        ports.get(&port).filter(|l| !l.closed.load(Ordering::Acquire)).map(Arc::clone)
    }

    pub(crate) fn release_port(&self, port: Port) {
        let mut ports = self.ports.lock();
        if let Some(l) = ports.remove(&port) {
            l.closed.store(true, Ordering::Release);
        }
    }

    pub fn bound_ports(&self) -> usize {
        self.ports.lock().len()
    }
}

/// Shared fabric state reachable from every endpoint.
pub struct FabricShared {
    pub cost: Arc<CostModel>,
    pub clock: Arc<VirtualClock>,
    pub(crate) activity: ActivityHub,
    nodes: TrackedRwLock<BTreeMap<NodeId, Arc<NodeCore>>>,
    next_ep_id: AtomicU64,
}

impl FabricShared {
    pub fn node(&self, id: NodeId) -> ScifResult<Arc<NodeCore>> {
        self.nodes.read().get(&id).map(Arc::clone).ok_or(ScifError::NoDev)
    }

    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.read().keys().copied().collect()
    }

    pub(crate) fn next_endpoint_id(&self) -> u64 {
        self.next_ep_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Wake every blocked fabric waiter to re-check its condition — used
    /// by recovery paths (card reset, endpoint quarantine) that change
    /// state outside the normal message flow.
    pub fn bump_activity(&self) {
        self.activity.bump();
    }

    /// Staging time a chunked, double-buffered RMA pipeline exposes on
    /// the critical path for a `bytes` transfer split into `chunk_bytes`
    /// pieces.
    ///
    /// The transfer itself still charges the full wire time; what
    /// pipelining buys is hiding every chunk's pin/translate staging —
    /// except the first, which nothing can overlap — behind earlier
    /// chunks' DMA.  Returns the exposed remainder:
    /// `makespan − Σ(link time)`, which degenerates to the full staging
    /// sum for a single chunk (no overlap possible) and never goes below
    /// the first chunk's staging cost.
    pub fn rma_pipeline_exposure(&self, bytes: u64, chunk_bytes: u64) -> SimDuration {
        assert!(chunk_bytes > 0, "pipeline chunk size must be positive");
        let mut chunks = Vec::new();
        let mut remaining = bytes;
        while remaining > 0 {
            let take = remaining.min(chunk_bytes);
            chunks.push((self.cost.translate_pages(take), self.cost.link_transfer(take)));
            remaining -= take;
        }
        let wire: SimDuration = chunks.iter().map(|&(_, d)| d).sum();
        vphi_pcie::dma::double_buffered_makespan(&chunks) - wire
    }

    /// Traffic gate: a board that hits (or already hit) a fatal fault
    /// refuses new traffic with `ENODEV` until it is reset.
    fn check_board(&self, board: &Arc<PhiBoard>) -> ScifResult<()> {
        if board.poll_faults().is_some() {
            // The fault just struck: wake blocked waiters so they observe
            // the failure instead of sleeping until their wall timeout.
            self.activity.bump();
            return Err(ScifError::NoDev);
        }
        if board.is_failed() || !board.is_online() {
            return Err(ScifError::NoDev);
        }
        Ok(())
    }

    /// Charge the one-way message delivery path from `from` to `to` for a
    /// `bytes` payload (everything after the caller's syscall): driver
    /// post, DMA/link, device delivery and completion write-back.
    pub fn charge_message_path(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        let cost = &self.cost;
        tl.charge(SpanLabel::ScifPost, cost.scif_post);
        if from == to {
            // Loopback: kernel memcpy between the two endpoints.
            tl.charge(SpanLabel::CopyUserKernel, cost.cpu_copy(bytes));
            tl.charge(SpanLabel::Completion, cost.completion);
            return Ok(());
        }
        // Cross-node: DMA over each non-host hop's link (host↔card is one
        // hop; card↔card is two).
        tl.charge(SpanLabel::DmaSetup, cost.dma_setup);
        for node in [from, to] {
            if node == HOST_NODE {
                continue;
            }
            let core = self.node(node)?;
            let board = core.board().ok_or(ScifError::NoDev)?;
            self.check_board(board)?;
            board.link().transmit(bytes, tl);
            // Announce the message: the driver rings the card's "work
            // pending" doorbell (or the host's reply doorbell when the
            // card is the sender).  Progress is driven by the activity
            // hub, so a dropped doorbell costs latency, not delivery.
            if node == to {
                board.db_to_device.ring();
            } else {
                board.db_to_host.ring();
            }
        }
        tl.charge(SpanLabel::DeviceDeliver, cost.device_deliver);
        tl.charge(SpanLabel::Completion, cost.completion);
        Ok(())
    }

    /// The DMA path for RMA operations (no remote-CPU involvement): setup,
    /// link transfer, completion.  Returns Ok even for loopback, where the
    /// copy is a CPU one.
    pub fn charge_rma_path(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        use_cpu: bool,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        let cost = &self.cost;
        tl.charge(SpanLabel::RmaSetup, cost.rma_setup);
        if from == to || use_cpu {
            tl.charge(SpanLabel::CopyUserKernel, cost.cpu_copy(bytes));
            tl.charge(SpanLabel::Completion, cost.completion);
            return Ok(());
        }
        tl.charge(SpanLabel::DmaSetup, cost.dma_setup);
        for node in [from, to] {
            if node == HOST_NODE {
                continue;
            }
            let core = self.node(node)?;
            let board = core.board().ok_or(ScifError::NoDev)?;
            self.check_board(board)?;
            // Per-transfer device faults: an uncorrectable ECC error is
            // fatal for this RMA (EIO); a DMA engine hiccup is retryable.
            if board.ecc_fault() {
                return Err(ScifError::Io);
            }
            if board.link().fault_hook().fire(FaultSite::PcieDmaError).is_some() {
                return Err(ScifError::Again);
            }
            board.link().transmit(bytes, tl);
        }
        tl.charge(SpanLabel::Completion, cost.completion);
        Ok(())
    }
}

/// The assembled fabric: build one per simulated machine.
pub struct ScifFabric {
    shared: Arc<FabricShared>,
}

impl ScifFabric {
    /// A fabric with just the host node (node 0).
    pub fn new(cost: Arc<CostModel>, clock: Arc<VirtualClock>) -> Self {
        let shared = Arc::new(FabricShared {
            cost,
            clock,
            activity: ActivityHub::default(),
            nodes: TrackedRwLock::new(LockClass::FabricNodes, BTreeMap::new()),
            next_ep_id: AtomicU64::new(1),
        });
        let host = Arc::new(NodeCore {
            id: HOST_NODE,
            ports: TrackedMutex::new(LockClass::NodePorts, HashMap::new()),
            next_ephemeral: AtomicU16::new(Port::EPHEMERAL_START),
            board: None,
        });
        shared.nodes.write().insert(HOST_NODE, host);
        ScifFabric { shared }
    }

    /// Attach a booted card as the next SCIF node; returns its node id.
    pub fn add_device(&self, board: Arc<PhiBoard>) -> NodeId {
        let mut nodes = self.shared.nodes.write();
        let id = NodeId(nodes.keys().map(|n| n.0).max().unwrap_or(0) + 1);
        nodes.insert(
            id,
            Arc::new(NodeCore {
                id,
                ports: TrackedMutex::new(LockClass::NodePorts, HashMap::new()),
                next_ephemeral: AtomicU16::new(Port::EPHEMERAL_START),
                board: Some(board),
            }),
        );
        id
    }

    pub fn shared(&self) -> &Arc<FabricShared> {
        &self.shared
    }

    /// `scif_get_node_ids`: all online nodes, host first.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.shared.node_ids()
    }

    pub fn node(&self, id: NodeId) -> ScifResult<Arc<NodeCore>> {
        self.shared.node(id)
    }

    /// Open an endpoint on `node` (the `scif_open` a process on that node
    /// would make).
    pub fn open(&self, node: NodeId) -> ScifResult<Arc<EndpointCore>> {
        let core = self.shared.node(node)?;
        Ok(EndpointCore::new(Arc::clone(&self.shared), core))
    }
}

impl std::fmt::Debug for ScifFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScifFabric").field("nodes", &self.node_ids()).finish()
    }
}

/// Connection establishment: called by `EndpointCore::connect`.
pub(crate) fn enqueue_connect(
    shared: &FabricShared,
    target: ScifAddr,
    connector: &Arc<EndpointCore>,
) -> ScifResult<()> {
    let node = shared.node(target.node)?;
    let listener = node.listener(target.port).ok_or(ScifError::ConnRefused)?;
    {
        let mut pending = listener.pending.lock();
        if pending.len() >= listener.backlog {
            return Err(ScifError::ConnRefused);
        }
        pending.push_back(PendingConn { connector: Arc::downgrade(connector) });
    }
    shared.activity.bump();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_phi::PhiSpec;
    use vphi_sim_core::SimDuration;

    fn fabric_with_device() -> (ScifFabric, NodeId) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let node = fabric.add_device(board);
        (fabric, node)
    }

    #[test]
    fn pipeline_exposure_hides_all_but_the_first_chunk_staging() {
        let (fabric, _) = fabric_with_device();
        let shared = fabric.shared();
        let cost = &shared.cost;
        let chunk = vphi_sim_core::cost::KMALLOC_MAX_SIZE;
        // One chunk: no overlap possible — the whole staging is exposed.
        assert_eq!(shared.rma_pipeline_exposure(chunk, chunk), cost.translate_pages(chunk));
        // Staging-bound below DMA time per chunk (translate ≈ 0.39× link
        // in the calibrated preset), so for a 64 MiB transfer only the
        // first chunk's staging is exposed.
        let bytes = 64 * vphi_sim_core::units::MIB;
        let exposure = shared.rma_pipeline_exposure(bytes, chunk);
        assert_eq!(exposure, cost.translate_pages(chunk));
        // Pipelining strictly beats monolithic staging for multi-chunk
        // transfers and never exposes less than one chunk's staging.
        assert!(exposure < cost.translate_pages(bytes));
    }

    #[test]
    fn node_registry() {
        let (fabric, dev) = fabric_with_device();
        assert_eq!(fabric.node_ids(), vec![HOST_NODE, dev]);
        assert_eq!(dev, NodeId(1));
        assert!(fabric.node(NodeId(9)).is_err());
        assert!(fabric.node(HOST_NODE).unwrap().board().is_none());
        assert!(fabric.node(dev).unwrap().board().is_some());
    }

    #[test]
    fn port_binding_rules() {
        let (fabric, _) = fabric_with_device();
        let host = fabric.node(HOST_NODE).unwrap();
        let p = host.bind_port(Port(500)).unwrap();
        assert_eq!(p, Port(500));
        assert_eq!(host.bind_port(Port(500)), Err(ScifError::AddrInUse));
        let e1 = host.bind_port(Port::ANY).unwrap();
        let e2 = host.bind_port(Port::ANY).unwrap();
        assert!(e1.is_ephemeral() && e2.is_ephemeral());
        assert_ne!(e1, e2);
        host.release_port(Port(500));
        assert!(host.bind_port(Port(500)).is_ok());
    }

    #[test]
    fn message_path_costs_native_floor_minus_syscall() {
        let (fabric, dev) = fabric_with_device();
        let mut tl = Timeline::new();
        fabric.shared().charge_message_path(HOST_NODE, dev, 1, &mut tl).unwrap();
        let cost = CostModel::paper_calibrated();
        // The API layer adds host_syscall on top to reach the 7 µs floor.
        let expected = cost.native_floor() - cost.host_syscall;
        // 1 byte of link time rounds to ~0ns at 6.4 GB/s.
        assert_eq!(tl.total(), expected);
    }

    #[test]
    fn loopback_path_has_no_link_charges() {
        let (fabric, _) = fabric_with_device();
        let mut tl = Timeline::new();
        fabric.shared().charge_message_path(HOST_NODE, HOST_NODE, 1 << 20, &mut tl).unwrap();
        assert_eq!(tl.total_for(SpanLabel::LinkTransfer), SimDuration::ZERO);
        assert!(tl.total_for(SpanLabel::CopyUserKernel) > SimDuration::ZERO);
    }

    #[test]
    fn rma_path_charges_link_once_per_device_hop() {
        let (fabric, dev) = fabric_with_device();
        let mut tl = Timeline::new();
        fabric.shared().charge_rma_path(HOST_NODE, dev, 1 << 20, false, &mut tl).unwrap();
        let link_time = tl.total_for(SpanLabel::LinkTransfer);
        let expected = CostModel::paper_calibrated().link_transfer(1 << 20);
        assert_eq!(link_time, expected);
        // CPU-forced RMA takes the memcpy path.
        let mut tl2 = Timeline::new();
        fabric.shared().charge_rma_path(HOST_NODE, dev, 1 << 20, true, &mut tl2).unwrap();
        assert_eq!(tl2.total_for(SpanLabel::LinkTransfer), SimDuration::ZERO);
    }

    #[test]
    fn activity_hub_wakes_waiters() {
        let hub = Arc::new(ActivityHub::default());
        let v0 = hub.version();
        let h2 = Arc::clone(&hub);
        let waiter = std::thread::spawn(move || h2.wait_change(v0));
        std::thread::sleep(Duration::from_millis(10));
        hub.bump();
        assert_eq!(waiter.join().unwrap(), Some(v0 + 1));
    }
}

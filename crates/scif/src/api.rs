//! The libscif-style user API.
//!
//! [`ScifEndpoint`] corresponds to an `scif_epd_t` descriptor held by an
//! application.  Every call crosses the user/kernel boundary (libscif
//! issues `ioctl`/`open`/`mmap` on `/dev/mic/scif`), so each method
//! charges one `host_syscall` before delegating to the kernel-side
//! [`EndpointCore`].  The native microbenchmarks in the paper measure this
//! exact surface; vPHI's guest shim re-implements it over the virtio ring
//! (`vphi::guest`), and its backend replays onto this one.

use std::sync::Arc;
use std::time::Duration;

use vphi_sim_core::{SpanLabel, Timeline};

use crate::endpoint::{EndpointCore, EpState};
use crate::error::ScifResult;
use crate::fabric::ScifFabric;
use crate::mmap::MappedRegion;
use crate::types::{NodeId, Port, Prot, RmaFlags, ScifAddr};
use crate::window::WindowBacking;

/// A user-space SCIF endpoint descriptor.
pub struct ScifEndpoint {
    core: Arc<EndpointCore>,
}

impl std::fmt::Debug for ScifEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScifEndpoint({:?})", self.core)
    }
}

impl ScifEndpoint {
    /// `scif_open` on the given node's driver.
    pub fn open(fabric: &ScifFabric, node: NodeId) -> ScifResult<Self> {
        Ok(ScifEndpoint { core: fabric.open(node)? })
    }

    /// Wrap an existing kernel endpoint (used by `accept` and by the vPHI
    /// backend, which holds cores directly).
    pub fn from_core(core: Arc<EndpointCore>) -> Self {
        ScifEndpoint { core }
    }

    pub fn core(&self) -> &Arc<EndpointCore> {
        &self.core
    }

    fn syscall(&self, tl: &mut Timeline) {
        tl.charge(SpanLabel::HostSyscall, self.core.shared.cost.host_syscall);
    }

    pub fn state(&self) -> EpState {
        self.core.state()
    }

    pub fn local_addr(&self) -> Option<ScifAddr> {
        self.core.local_addr()
    }

    pub fn peer_addr(&self) -> Option<ScifAddr> {
        self.core.peer_addr()
    }

    /// `scif_bind`.
    pub fn bind(&self, port: Port, tl: &mut Timeline) -> ScifResult<Port> {
        self.syscall(tl);
        self.core.bind(port)
    }

    /// `scif_listen`.
    pub fn listen(&self, backlog: usize, tl: &mut Timeline) -> ScifResult<()> {
        self.syscall(tl);
        self.core.listen(backlog)
    }

    /// `scif_connect` (blocking).
    pub fn connect(&self, dst: ScifAddr, tl: &mut Timeline) -> ScifResult<ScifAddr> {
        self.syscall(tl);
        self.core.connect(dst, tl)
    }

    /// `scif_accept` (`SCIF_ACCEPT_SYNC`).
    pub fn accept(&self, tl: &mut Timeline) -> ScifResult<ScifEndpoint> {
        self.syscall(tl);
        Ok(ScifEndpoint { core: self.core.accept(tl)? })
    }

    /// `scif_accept` (`SCIF_ACCEPT_ASYNC`): `None` if nothing is pending.
    pub fn try_accept(&self, tl: &mut Timeline) -> ScifResult<Option<ScifEndpoint>> {
        self.syscall(tl);
        Ok(self.core.try_accept(tl)?.map(|core| ScifEndpoint { core }))
    }

    /// `scif_send` with `SCIF_SEND_BLOCK`.
    pub fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize> {
        self.syscall(tl);
        self.core.send(data, tl)
    }

    /// `scif_recv` with `SCIF_RECV_BLOCK`.
    pub fn recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        self.syscall(tl);
        self.core.recv(out, tl)
    }

    /// Non-blocking `scif_recv`.
    pub fn try_recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        self.syscall(tl);
        self.core.try_recv(out, tl)
    }

    /// Timed-bulk-lane send (see [`EndpointCore::send_timed`]).
    pub fn send_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        self.syscall(tl);
        self.core.send_timed(len, tl)
    }

    /// Timed-bulk-lane receive.
    pub fn recv_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        self.syscall(tl);
        self.core.recv_timed(len, tl)
    }

    /// `scif_register`.
    pub fn register(
        &self,
        fixed_offset: Option<u64>,
        len: u64,
        prot: Prot,
        backing: WindowBacking,
        tl: &mut Timeline,
    ) -> ScifResult<u64> {
        self.syscall(tl);
        // Pinning cost: the driver walks and pins each page.
        tl.charge(SpanLabel::RmaSetup, self.core.shared.cost.translate_pages(len));
        self.core.register(fixed_offset, len, prot, backing)
    }

    /// `scif_unregister`.
    pub fn unregister(&self, offset: u64, len: u64, tl: &mut Timeline) -> ScifResult<()> {
        self.syscall(tl);
        self.core.unregister(offset, len)
    }

    /// `scif_vreadfrom`.
    pub fn vreadfrom(
        &self,
        buf: &mut [u8],
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        self.syscall(tl);
        self.core.vreadfrom(buf, roffset, flags, tl)
    }

    /// `scif_vwriteto`.
    pub fn vwriteto(
        &self,
        buf: &[u8],
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        self.syscall(tl);
        self.core.vwriteto(buf, roffset, flags, tl)
    }

    /// `scif_readfrom`.
    pub fn readfrom(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        self.syscall(tl);
        self.core.readfrom(loffset, len, roffset, flags, tl)
    }

    /// `scif_writeto`.
    pub fn writeto(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        self.syscall(tl);
        self.core.writeto(loffset, len, roffset, flags, tl)
    }

    /// `scif_mmap`.
    pub fn mmap(
        &self,
        offset: u64,
        len: u64,
        prot: Prot,
        tl: &mut Timeline,
    ) -> ScifResult<MappedRegion> {
        self.syscall(tl);
        self.core.mmap(offset, len, prot)
    }

    /// `scif_fence_mark`.
    pub fn fence_mark(&self, tl: &mut Timeline) -> ScifResult<u64> {
        self.syscall(tl);
        self.core.fence_mark()
    }

    /// `scif_fence_wait`.
    pub fn fence_wait(&self, marker: u64, tl: &mut Timeline) -> ScifResult<()> {
        self.syscall(tl);
        self.core.fence_wait(marker, tl)
    }

    /// `scif_fence_signal`.
    pub fn fence_signal(
        &self,
        loff: u64,
        lval: u64,
        roff: u64,
        rval: u64,
        tl: &mut Timeline,
    ) -> ScifResult<()> {
        self.syscall(tl);
        self.core.fence_signal(loff, lval, roff, rval, tl)
    }

    /// `scif_poll` over this single endpoint (convenience).
    pub fn poll(
        &self,
        events: crate::poll::PollEvents,
        wall_timeout: Duration,
        tl: &mut Timeline,
    ) -> ScifResult<crate::poll::PollEvents> {
        self.syscall(tl);
        let mut fds = [crate::poll::PollFd::new(Arc::clone(&self.core), events)];
        crate::poll::poll(&mut fds, wall_timeout, tl)?;
        Ok(fds[0].revents)
    }

    /// `scif_close`.
    pub fn close(&self) {
        self.core.close();
    }
}

impl Drop for ScifEndpoint {
    fn drop(&mut self) {
        // libscif closes the descriptor when the fd is released.
        self.core.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::{CostModel, SimDuration, VirtualClock};

    use crate::types::HOST_NODE;

    fn setup() -> (ScifFabric, NodeId) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let node = fabric.add_device(board);
        (fabric, node)
    }

    #[test]
    fn native_one_byte_send_hits_the_seven_microsecond_floor() {
        let (fabric, dev) = setup();
        let server = ScifEndpoint::open(&fabric, dev).unwrap();
        let mut tl = Timeline::new();
        server.bind(Port(88), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        let client = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let acceptor = std::thread::spawn({
            let core = Arc::clone(server.core());
            move || {
                let mut tl = Timeline::new();
                core.accept(&mut tl).unwrap()
            }
        });
        client.connect(ScifAddr::new(dev, Port(88)), &mut tl).unwrap();
        let _conn = acceptor.join().unwrap();

        // This is the paper's Fig. 4 native anchor: 7 µs for 1 byte.
        let mut send_tl = Timeline::new();
        client.send(&[0x42], &mut send_tl).unwrap();
        assert_eq!(send_tl.total(), SimDuration::from_micros(7));
    }

    #[test]
    fn every_call_charges_a_syscall() {
        let (fabric, _) = setup();
        let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let mut tl = Timeline::new();
        ep.bind(Port::ANY, &mut tl).unwrap();
        ep.listen(1, &mut tl).unwrap();
        let syscalls = tl.total_for(SpanLabel::HostSyscall);
        assert_eq!(syscalls, CostModel::paper_calibrated().host_syscall * 2);
    }

    #[test]
    fn drop_closes_the_endpoint() {
        let (fabric, _) = setup();
        let core = {
            let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
            Arc::clone(ep.core())
        };
        assert_eq!(core.state(), EpState::Closed);
    }

    #[test]
    fn register_charges_per_page_pinning() {
        use vphi_sim_core::cost::PAGE_SIZE;
        let (fabric, dev) = setup();
        // Connect a pair.
        let server = ScifEndpoint::open(&fabric, dev).unwrap();
        let mut tl = Timeline::new();
        server.bind(Port(89), &mut tl).unwrap();
        server.listen(1, &mut tl).unwrap();
        let client = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let acc = std::thread::spawn({
            let core = Arc::clone(server.core());
            move || {
                let mut tl = Timeline::new();
                core.accept(&mut tl).unwrap()
            }
        });
        client.connect(ScifAddr::new(dev, Port(89)), &mut tl).unwrap();
        let _conn = acc.join().unwrap();

        let mut tl1 = Timeline::new();
        let buf1 = crate::types::pinned_buf(PAGE_SIZE as usize);
        client
            .register(None, PAGE_SIZE, Prot::READ, WindowBacking::Pinned(buf1), &mut tl1)
            .unwrap();
        let mut tl16 = Timeline::new();
        let buf16 = crate::types::pinned_buf(16 * PAGE_SIZE as usize);
        client
            .register(None, 16 * PAGE_SIZE, Prot::READ, WindowBacking::Pinned(buf16), &mut tl16)
            .unwrap();
        let pin1 = tl1.total_for(SpanLabel::RmaSetup);
        let pin16 = tl16.total_for(SpanLabel::RmaSetup);
        assert_eq!(pin16, pin1 * 16);
    }
}

//! The libscif-style user API.
//!
//! [`ScifEndpoint`] corresponds to an `scif_epd_t` descriptor held by an
//! application.  Every call crosses the user/kernel boundary (libscif
//! issues `ioctl`/`open`/`mmap` on `/dev/mic/scif`), so each method
//! charges one `host_syscall` before delegating to the kernel-side
//! [`EndpointCore`].  The native microbenchmarks in the paper measure this
//! exact surface; vPHI's guest shim re-implements it over the virtio ring
//! (`vphi::guest`), and its backend replays onto this one.
//!
//! Every method takes an [`OpCtx`] — the timeline it charges virtual time
//! into plus the trace context linking its span to the request that caused
//! it.  Callers without a trace pass a bare `&mut Timeline`, which converts
//! implicitly; the vPHI backend passes `&mut ctx` so the replayed host op
//! shows up as a `host-scif` span under the guest request's root.  New
//! methods must take `OpCtx`, not a raw `&mut Timeline` — `cargo run -p
//! xtask -- lint` (rule `opctx-api`) enforces this.

use std::sync::Arc;
use std::time::Duration;

use vphi_sim_core::SpanLabel;
use vphi_trace::{OpCtx, Stage};

use crate::endpoint::{EndpointCore, EpState};
use crate::error::ScifResult;
use crate::fabric::ScifFabric;
use crate::mmap::MappedRegion;
use crate::types::{NodeId, Port, Prot, RmaFlags, ScifAddr};
use crate::window::WindowBacking;

/// A user-space SCIF endpoint descriptor.
///
/// Dropping the descriptor closes it (libscif closes on fd release);
/// [`close`](Self::close) stays available for explicit teardown and is
/// idempotent with the `Drop` path.
pub struct ScifEndpoint {
    core: Arc<EndpointCore>,
}

impl std::fmt::Debug for ScifEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScifEndpoint({:?})", self.core)
    }
}

impl ScifEndpoint {
    /// `scif_open` on the given node's driver.
    pub fn open(fabric: &ScifFabric, node: NodeId) -> ScifResult<Self> {
        Ok(ScifEndpoint { core: fabric.open(node)? })
    }

    /// Wrap an existing kernel endpoint (used by `accept` and by the vPHI
    /// backend, which holds cores directly).
    pub fn from_core(core: Arc<EndpointCore>) -> Self {
        ScifEndpoint { core }
    }

    pub fn core(&self) -> &Arc<EndpointCore> {
        &self.core
    }

    fn syscall(&self, ctx: &mut OpCtx<'_>) {
        ctx.tl.charge(SpanLabel::HostSyscall, self.core.shared.cost.host_syscall);
    }

    pub fn state(&self) -> EpState {
        self.core.state()
    }

    pub fn local_addr(&self) -> Option<ScifAddr> {
        self.core.local_addr()
    }

    pub fn peer_addr(&self) -> Option<ScifAddr> {
        self.core.peer_addr()
    }

    /// `scif_bind`.
    pub fn bind<'a>(&self, port: Port, ctx: impl Into<OpCtx<'a>>) -> ScifResult<Port> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_bind", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.bind(port)
        })
    }

    /// `scif_listen`.
    pub fn listen<'a>(&self, backlog: usize, ctx: impl Into<OpCtx<'a>>) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_listen", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.listen(backlog)
        })
    }

    /// `scif_connect` (blocking).
    pub fn connect<'a>(&self, dst: ScifAddr, ctx: impl Into<OpCtx<'a>>) -> ScifResult<ScifAddr> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_connect", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.connect(dst, c.tl)
        })
    }

    /// `scif_accept` (`SCIF_ACCEPT_SYNC`).
    pub fn accept<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<ScifEndpoint> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_accept", Stage::HostScif, |c| {
            self.syscall(c);
            Ok(ScifEndpoint { core: self.core.accept(c.tl)? })
        })
    }

    /// `scif_accept` (`SCIF_ACCEPT_ASYNC`): `None` if nothing is pending.
    pub fn try_accept<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<Option<ScifEndpoint>> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_try_accept", Stage::HostScif, |c| {
            self.syscall(c);
            Ok(self.core.try_accept(c.tl)?.map(|core| ScifEndpoint { core }))
        })
    }

    /// `scif_send` with `SCIF_SEND_BLOCK`.
    pub fn send<'a>(&self, data: &[u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_send", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.send(data, c.tl)
        })
    }

    /// `scif_recv` with `SCIF_RECV_BLOCK`.
    pub fn recv<'a>(&self, out: &mut [u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_recv", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.recv(out, c.tl)
        })
    }

    /// Non-blocking `scif_recv`.
    pub fn try_recv<'a>(&self, out: &mut [u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_try_recv", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.try_recv(out, c.tl)
        })
    }

    /// Timed-bulk-lane send (see [`EndpointCore::send_timed`]).
    pub fn send_timed<'a>(&self, len: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_send_timed", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.send_timed(len, c.tl)
        })
    }

    /// Timed-bulk-lane receive.
    pub fn recv_timed<'a>(&self, len: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_recv_timed", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.recv_timed(len, c.tl)
        })
    }

    /// `scif_register`.
    pub fn register<'a>(
        &self,
        fixed_offset: Option<u64>,
        len: u64,
        prot: Prot,
        backing: WindowBacking,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<u64> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_register", Stage::HostScif, |c| {
            self.syscall(c);
            // Pinning cost: the driver walks and pins each page.
            c.tl.charge(SpanLabel::RmaSetup, self.core.shared.cost.translate_pages(len));
            self.core.register(fixed_offset, len, prot, backing)
        })
    }

    /// `scif_unregister`.
    pub fn unregister<'a>(
        &self,
        offset: u64,
        len: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_unregister", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.unregister(offset, len)
        })
    }

    /// `scif_vreadfrom`.
    pub fn vreadfrom<'a>(
        &self,
        buf: &mut [u8],
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_vreadfrom", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.vreadfrom(buf, roffset, flags, c.tl)
        })
    }

    /// `scif_vwriteto`.
    pub fn vwriteto<'a>(
        &self,
        buf: &[u8],
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_vwriteto", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.vwriteto(buf, roffset, flags, c.tl)
        })
    }

    /// Zero-copy `scif_vreadfrom` into an externally-pinned destination
    /// (the backend's mapped-window path — see
    /// [`EndpointCore::vreadfrom_window`](crate::endpoint::EndpointCore::vreadfrom_window)).
    #[allow(clippy::too_many_arguments)]
    pub fn vreadfrom_window<'a>(
        &self,
        dst: &dyn crate::window::WindowBytes,
        dst_off: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_vreadfrom", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.vreadfrom_window(dst, dst_off, len, roffset, flags, c.tl)
        })
    }

    /// Zero-copy `scif_vwriteto` from an externally-pinned source.
    #[allow(clippy::too_many_arguments)]
    pub fn vwriteto_window<'a>(
        &self,
        src: &dyn crate::window::WindowBytes,
        src_off: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_vwriteto", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.vwriteto_window(src, src_off, len, roffset, flags, c.tl)
        })
    }

    /// `scif_readfrom`.
    pub fn readfrom<'a>(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_readfrom", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.readfrom(loffset, len, roffset, flags, c.tl)
        })
    }

    /// `scif_writeto`.
    pub fn writeto<'a>(
        &self,
        loffset: u64,
        len: u64,
        roffset: u64,
        flags: RmaFlags,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_writeto", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.writeto(loffset, len, roffset, flags, c.tl)
        })
    }

    /// `scif_mmap`.
    pub fn mmap<'a>(
        &self,
        offset: u64,
        len: u64,
        prot: Prot,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<MappedRegion> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_mmap", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.mmap(offset, len, prot)
        })
    }

    /// `scif_fence_mark`.
    pub fn fence_mark<'a>(&self, ctx: impl Into<OpCtx<'a>>) -> ScifResult<u64> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_fence_mark", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.fence_mark()
        })
    }

    /// `scif_fence_wait`.
    pub fn fence_wait<'a>(&self, marker: u64, ctx: impl Into<OpCtx<'a>>) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_fence_wait", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.fence_wait(marker, c.tl)
        })
    }

    /// `scif_fence_signal`.
    pub fn fence_signal<'a>(
        &self,
        loff: u64,
        lval: u64,
        roff: u64,
        rval: u64,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<()> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_fence_signal", Stage::HostScif, |c| {
            self.syscall(c);
            self.core.fence_signal(loff, lval, roff, rval, c.tl)
        })
    }

    /// `scif_poll` over this single endpoint (convenience).
    pub fn poll<'a>(
        &self,
        events: crate::poll::PollEvents,
        wall_timeout: Duration,
        ctx: impl Into<OpCtx<'a>>,
    ) -> ScifResult<crate::poll::PollEvents> {
        let mut ctx = ctx.into();
        ctx.in_span("scif_poll", Stage::HostScif, |c| {
            self.syscall(c);
            let mut fds = [crate::poll::PollFd::new(Arc::clone(&self.core), events)];
            crate::poll::poll(&mut fds, wall_timeout, c.tl)?;
            Ok(fds[0].revents)
        })
    }

    /// `scif_close`.  Idempotent, and implied by `Drop`.
    pub fn close(&self) {
        self.core.close();
    }
}

impl Drop for ScifEndpoint {
    fn drop(&mut self) {
        // libscif closes the descriptor when the fd is released.
        self.core.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_phi::{PhiBoard, PhiSpec};
    use vphi_sim_core::{CostModel, SimDuration, Timeline, VirtualClock};

    use crate::types::HOST_NODE;

    fn setup() -> (ScifFabric, NodeId) {
        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let node = fabric.add_device(board);
        (fabric, node)
    }

    #[test]
    fn native_one_byte_send_hits_the_seven_microsecond_floor() {
        let (fabric, dev) = setup();
        let server = ScifEndpoint::open(&fabric, dev).unwrap();
        let mut tl = Timeline::new();
        server.bind(Port(88), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        let client = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let acceptor = std::thread::spawn({
            let core = Arc::clone(server.core());
            move || {
                let mut tl = Timeline::new();
                core.accept(&mut tl).unwrap()
            }
        });
        client.connect(ScifAddr::new(dev, Port(88)), &mut tl).unwrap();
        let _conn = acceptor.join().unwrap();

        // This is the paper's Fig. 4 native anchor: 7 µs for 1 byte.
        let mut send_tl = Timeline::new();
        client.send(&[0x42], &mut send_tl).unwrap();
        assert_eq!(send_tl.total(), SimDuration::from_micros(7));
    }

    #[test]
    fn every_call_charges_a_syscall() {
        let (fabric, _) = setup();
        let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let mut tl = Timeline::new();
        ep.bind(Port::ANY, &mut tl).unwrap();
        ep.listen(1, &mut tl).unwrap();
        let syscalls = tl.total_for(SpanLabel::HostSyscall);
        assert_eq!(syscalls, CostModel::paper_calibrated().host_syscall * 2);
    }

    #[test]
    fn traced_call_records_a_host_scif_span() {
        use vphi_trace::{TraceConfig, TraceHook, Tracer};
        let (fabric, _) = setup();
        let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();

        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let hook = TraceHook::new();
        hook.arm(Arc::clone(&tracer), 0);

        let mut tl = Timeline::new();
        let mut ctx = OpCtx::from(&mut tl);
        let root = ctx.adopt_root(&hook, "bind");
        ep.bind(Port::ANY, &mut ctx).unwrap();
        ctx.finish_root(root, 0);

        let spans = tracer.spans(0);
        let bind = spans.iter().find(|s| s.name == "scif_bind").unwrap();
        assert_eq!(bind.stage, Stage::HostScif);
        assert_eq!(bind.dur, CostModel::paper_calibrated().host_syscall);
        let sum = tracer.last_summary(0).unwrap();
        assert_eq!(sum.stages[Stage::HostScif.index()], sum.total);
    }

    #[test]
    fn drop_closes_the_endpoint() {
        let (fabric, _) = setup();
        let core = {
            let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
            Arc::clone(ep.core())
        };
        assert_eq!(core.state(), EpState::Closed);
    }

    #[test]
    fn explicit_close_then_drop_is_idempotent() {
        let (fabric, _) = setup();
        let ep = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        ep.close();
        assert_eq!(ep.state(), EpState::Closed);
        ep.close(); // second explicit close: no-op
        drop(ep); // Drop after close: no-op
    }

    #[test]
    fn register_charges_per_page_pinning() {
        use vphi_sim_core::cost::PAGE_SIZE;
        let (fabric, dev) = setup();
        // Connect a pair.
        let server = ScifEndpoint::open(&fabric, dev).unwrap();
        let mut tl = Timeline::new();
        server.bind(Port(89), &mut tl).unwrap();
        server.listen(1, &mut tl).unwrap();
        let client = ScifEndpoint::open(&fabric, HOST_NODE).unwrap();
        let acc = std::thread::spawn({
            let core = Arc::clone(server.core());
            move || {
                let mut tl = Timeline::new();
                core.accept(&mut tl).unwrap()
            }
        });
        client.connect(ScifAddr::new(dev, Port(89)), &mut tl).unwrap();
        let _conn = acc.join().unwrap();

        let mut tl1 = Timeline::new();
        let buf1 = crate::types::pinned_buf(PAGE_SIZE as usize);
        client
            .register(None, PAGE_SIZE, Prot::READ, WindowBacking::Pinned(buf1), &mut tl1)
            .unwrap();
        let mut tl16 = Timeline::new();
        let buf16 = crate::types::pinned_buf(16 * PAGE_SIZE as usize);
        client
            .register(None, 16 * PAGE_SIZE, Prot::READ, WindowBacking::Pinned(buf16), &mut tl16)
            .unwrap();
        let pin1 = tl1.total_for(SpanLabel::RmaSetup);
        let pin16 = tl16.total_for(SpanLabel::RmaSetup);
        assert_eq!(pin16, pin1 * 16);
    }
}

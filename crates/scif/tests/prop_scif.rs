//! Property-based tests over SCIF's core data structures.

use proptest::prelude::*;

use vphi_scif::queue::MsgQueue;
use vphi_scif::types::{pinned_buf, Prot};
use vphi_scif::window::{WindowBacking, WindowTable};
use vphi_sim_core::cost::PAGE_SIZE;

// ------------------------------------------------------------ window table

#[derive(Debug, Clone)]
enum WinOp {
    /// Register `pages` pages, optionally at fixed offset `slot * pages_gap`.
    Register { pages: u64, fixed_slot: Option<u64> },
    /// Unregister the nth live window.
    Unregister(usize),
    /// Look up a random (offset, len) inside or outside windows.
    Lookup { offset: u64, len: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<WinOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..16, prop::option::of(0u64..32))
                .prop_map(|(pages, fixed_slot)| WinOp::Register { pages, fixed_slot }),
            (0usize..32).prop_map(WinOp::Unregister),
            (0u64..0x3000_0000, 1u64..0x10_0000)
                .prop_map(|(offset, len)| WinOp::Lookup { offset, len }),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_table_invariants(ops in arb_ops()) {
        let mut t = WindowTable::new();
        // (offset, len) of live windows, kept as the reference model.
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                WinOp::Register { pages, fixed_slot } => {
                    let len = pages * PAGE_SIZE;
                    let fixed = fixed_slot.map(|s| s * 64 * PAGE_SIZE);
                    let backing = WindowBacking::Pinned(pinned_buf(len as usize));
                    match t.register(fixed, len, Prot::READ_WRITE, backing) {
                        Ok(off) => {
                            if let Some(f) = fixed {
                                prop_assert_eq!(off, f);
                            }
                            // Must not overlap any live window.
                            for &(o, l) in &live {
                                prop_assert!(off + len <= o || o + l <= off);
                            }
                            live.push((off, len));
                        }
                        Err(_) => {
                            // A rejected *fixed* registration must overlap
                            // something live.
                            if let Some(f) = fixed {
                                let clash = live
                                    .iter()
                                    .any(|&(o, l)| f < o + l && o < f + len);
                                prop_assert!(clash, "fixed register refused without overlap");
                            }
                        }
                    }
                }
                WinOp::Unregister(i) => {
                    if !live.is_empty() {
                        let (off, len) = live.remove(i % live.len());
                        prop_assert!(t.unregister(off, len).is_ok());
                    }
                }
                WinOp::Lookup { offset, len } => {
                    let model_hit = live
                        .iter()
                        .any(|&(o, l)| offset >= o && offset.saturating_add(len) <= o + l);
                    prop_assert_eq!(t.lookup(offset, len).is_ok(), model_hit);
                }
            }
            prop_assert_eq!(t.window_count(), live.len());
            prop_assert_eq!(t.total_registered(), live.iter().map(|&(_, l)| l).sum::<u64>());
        }
    }
}

// ---------------------------------------------------------------- queues

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved writers on separate queues never cross streams, and a
    /// queue's capacity bound is never exceeded.
    #[test]
    fn queue_capacity_is_respected(
        writes in prop::collection::vec(1usize..600, 1..30),
        capacity in 64usize..2048,
    ) {
        let q = MsgQueue::new(capacity);
        let mut accepted = 0usize;
        for w in writes {
            let n = q.write_some(&vec![7u8; w]);
            accepted += n;
            prop_assert!(q.len() <= capacity);
            prop_assert_eq!(q.len(), accepted);
            if n < w {
                break; // full
            }
        }
        // Draining returns exactly what was accepted.
        let mut out = vec![0u8; accepted];
        prop_assert_eq!(q.try_read(&mut out), accepted);
        prop_assert!(out.iter().all(|&b| b == 7));
        prop_assert!(q.is_empty());
    }

    /// read_exact over a closing queue returns exactly the bytes written.
    #[test]
    fn read_exact_is_exact(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let q = MsgQueue::new(8192);
        if !data.is_empty() {
            prop_assert!(q.write_all(&data));
        }
        q.close();
        let mut out = vec![0u8; data.len() + 32];
        let n = q.read_exact(&mut out);
        prop_assert_eq!(n, data.len());
        prop_assert_eq!(&out[..n], &data[..]);
    }
}

// ---------------------------------------------------------- fabric smoke

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any payload survives a cross-node send/recv round trip intact.
    #[test]
    fn cross_node_payload_integrity(data in prop::collection::vec(any::<u8>(), 1..20_000)) {
        use std::sync::Arc;
        use vphi_phi::{PhiBoard, PhiSpec};
        use vphi_scif::{Port, ScifAddr, ScifFabric, HOST_NODE};
        use vphi_sim_core::{CostModel, Timeline, VirtualClock};

        let cost = Arc::new(CostModel::paper_calibrated());
        let clock = Arc::new(VirtualClock::new());
        let fabric = ScifFabric::new(Arc::clone(&cost), Arc::clone(&clock));
        let board = Arc::new(PhiBoard::new(PhiSpec::phi_3120p(), 0, cost, clock));
        board.boot();
        let dev = fabric.add_device(board);

        let server = fabric.open(dev).unwrap();
        let mut tl = Timeline::new();
        server.bind(Port(123)).unwrap();
        server.listen(2).unwrap();
        let client = fabric.open(HOST_NODE).unwrap();
        let s2 = Arc::clone(&server);
        let acc = std::thread::spawn(move || {
            let mut tl = Timeline::new();
            s2.accept(&mut tl).unwrap()
        });
        client.connect(ScifAddr::new(dev, Port(123)), &mut tl).unwrap();
        let conn = acc.join().unwrap();

        client.send(&data, &mut tl).unwrap();
        let mut out = vec![0u8; data.len()];
        prop_assert_eq!(conn.recv(&mut out, &mut tl).unwrap(), data.len());
        prop_assert_eq!(out, data);
        client.close();
    }
}

//! Lint fixture: deliberately builds a staging bounce buffer on what the
//! path tables treat as the RMA path.  `xtask lint` must flag the
//! repeat-form vec below under `staging-buffer`; its directory is excluded
//! from the workspace walk and it is never compiled.

fn replay_rma(len: usize) -> Vec<u8> {
    // The exact shape the zero-copy redesign retired: a fresh
    // length-sized bounce the transfer is staged through.
    let mut staging = vec![0u8; len];
    staging[0] = 1;
    staging
}

#[cfg(test)]
mod tests {
    // Test-only staging is legitimate (reference buffers) and must NOT
    // be flagged.
    fn expected(len: usize) -> Vec<u8> {
        vec![0xA5u8; len]
    }
}

//! Lint fixture: deliberately violates the concurrency discipline.
//! `xtask lint` must reject this file; its directory is excluded from the
//! workspace walk and it is never compiled.

use std::sync::Mutex;

static RAW: Mutex<u32> = Mutex::new(0);

fn bump() -> u32 {
    let mut g = RAW.lock().unwrap();
    *g += 1;
    *g
}

//! The `xtask lint` pass: token-level static checks for the workspace's
//! concurrency discipline.
//!
//! The runtime side of the discipline lives in `vphi-sync` (lock classes,
//! the order graph, the deadlock detector).  This pass closes the loopholes
//! the runtime can't see: code that *bypasses* the tracked types, code that
//! re-panics on poison, wire-protocol matches that would silently drop a new
//! opcode, and blocking acquisitions in the VMM event loop (which runs with
//! the guest paused, so a blocked lock there stalls the whole VM).
//!
//! Checks (see DESIGN.md #12):
//! 1. `raw-sync` — `std::sync::{Mutex, RwLock, Condvar}` and `parking_lot`
//!    are banned outside `vphi-sync` and `shims/`; everything else must use
//!    the tracked types.
//! 2. `lock-unwrap` — `.lock().unwrap()` is banned; tracked locks recover
//!    from poison (`lock()` / `lock_or_recover()`), so a panicking stress
//!    thread cannot cascade into unrelated failures.
//! 3. `protocol-exhaustive` — in `core/src/protocol.rs`, any `match` whose
//!    arm *patterns* name `VphiRequest` must not have a `_` arm: adding an
//!    opcode must be a compile-or-lint error at every dispatch site.  (The
//!    byte-level `decode` match is exempt because `VphiRequest` appears
//!    only to the right of `=>` there.)
//! 4. `event-loop-blocking` — no `.lock()` / `.read()` / `.write()` /
//!    `.wait*()` method calls in `vmm/src/event_loop.rs`.
//! 5. `opctx-api` — in `scif/src/api.rs`, no `fn` may take a raw
//!    `&mut Timeline` parameter: the endpoint API's calling convention is
//!    `ctx: impl Into<OpCtx<'_>>` (DESIGN.md #14), which accepts a bare
//!    timeline from untraced callers and propagates trace context from
//!    traced ones.  `#[deprecated]` shims are exempt.
//! 6. `queue-router` — `.add_chain()` / `.prepare_chain()` /
//!    `.publish_avail()` are banned outside `crates/virtio/` and the
//!    frontend: every submission must go through the frontend's queue
//!    router so the per-endpoint lane hash (DESIGN.md #15) cannot be
//!    bypassed with a hand-picked queue index.  The virtio microbench and
//!    the multi-queue FIFO property test drive rings directly on purpose
//!    and are exempt by path.
//! 7. `msi-notifier` — `.inject()` is banned outside `crates/vmm/` (the
//!    `IrqChip` itself) and `core/src/backend/notify.rs`: every completion
//!    MSI must go through the lane's `LaneNotifier`, the single place the
//!    EVENT_IDX suppression decision and the pending-batch flush live
//!    (DESIGN.md #16).  A direct injection would bypass both and corrupt
//!    the irqs-injected/suppressed ledger.
//! 8. `kick-doorbell` — `.kick()` is banned outside `crates/virtio/` (the
//!    doorbell itself), the frontend (whose batch submitter amortizes one
//!    doorbell per touched lane, DESIGN.md #18), and the multi-queue FIFO
//!    property test: a stray kick bypasses EVENT_IDX suppression and the
//!    kicks-per-submission ledger the open-loop figure is built on.
//! 9. `staging-buffer` — repeat-form `vec![_; len]` allocation is banned
//!    on the RMA path (`scif/src/rma.rs`, the backend, `pcie/`): the
//!    zero-copy design (DESIGN.md #19) moves bytes through
//!    `pcie::dma::gather_copy`'s fixed bounce block and scatter-gather
//!    descriptor lists, so a fresh length-sized staging vec is exactly the
//!    copy the feature retired.  The sanctioned bounce (`pcie/src/dma.rs`)
//!    and the backend's cold paths (`Recv`, small/feature-off RMA in
//!    `backend/mod.rs`) are exempt; `#[cfg(test)]` items are skipped
//!    because tests stage reference buffers on purpose.

use std::fmt;
use std::path::{Path, PathBuf};

use syn::{Delimiter, TokenTree};
use vphi_analyze::exempt;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Lint every `.rs` file under `root`, returning all findings.  The file
/// walk is shared with `vphi-analyze` ([`vphi_analyze::collect_sources`])
/// so both tools see exactly the same tree (same skip list, same order).
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for (rel, src) in vphi_analyze::collect_sources(root)? {
        out.extend(lint_source(Path::new(&rel), &src)?);
    }
    Ok(out)
}

/// Lint a single file's source.  `rel` is the workspace-relative path; the
/// file-specific rules key off it via the shared [`exempt`] tables.
pub fn lint_source(rel: &Path, src: &str) -> Result<Vec<Violation>, String> {
    let file = syn::parse_file(src).map_err(|e| format!("{}: {e}", rel.display()))?;
    let mut v = Vec::new();
    let is_protocol = exempt::in_scope("protocol-exhaustive", rel);
    let is_scif_api = exempt::in_scope("opctx-api", rel);
    let checks = SequenceChecks {
        is_event_loop: exempt::in_scope("event-loop-blocking", rel),
        check_queue_submit: !exempt::is_exempt("queue-router", rel),
        check_irq_inject: !exempt::is_exempt("msi-notifier", rel),
        check_kick: !exempt::is_exempt("kick-doorbell", rel),
    };
    walk(&file.tokens, rel, is_protocol, is_scif_api, checks, &mut v);
    if exempt::in_scope("staging-buffer", rel) && !exempt::is_exempt("staging-buffer", rel) {
        scan_staging(&file.tokens, rel, &mut v);
    }
    Ok(v)
}

/// Which per-file sequence rules apply (rules 4, 6, 7, 8).
#[derive(Clone, Copy)]
struct SequenceChecks {
    is_event_loop: bool,
    check_queue_submit: bool,
    check_irq_inject: bool,
    check_kick: bool,
}

fn walk(
    tokens: &[TokenTree],
    rel: &Path,
    is_protocol: bool,
    is_scif_api: bool,
    checks: SequenceChecks,
    out: &mut Vec<Violation>,
) {
    scan_sequences(tokens, rel, checks, out);
    if is_protocol {
        scan_protocol_matches(tokens, rel, out);
    }
    if is_scif_api {
        scan_opctx_api(tokens, rel, out);
    }
    for t in tokens {
        if let TokenTree::Group(g) = t {
            walk(&g.tokens, rel, is_protocol, is_scif_api, checks, out);
        }
    }
}

const BANNED_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Queue-submission methods only the router path may call (rule 6).
const QUEUE_SUBMIT: &[&str] =
    &["add_chain", "prepare_chain", "publish_avail", "publish_avail_batch"];

/// Rules 1, 2, 4, 6, 7: fixed token sequences within one nesting level.
fn scan_sequences(
    tokens: &[TokenTree],
    rel: &Path,
    checks: SequenceChecks,
    out: &mut Vec<Violation>,
) {
    let SequenceChecks { is_event_loop, check_queue_submit, check_irq_inject, check_kick } = checks;
    let ident = |i: usize| tokens.get(i).and_then(TokenTree::ident);
    let punct = |i: usize| tokens.get(i).and_then(TokenTree::punct);
    for i in 0..tokens.len() {
        // Rule 1a: `std :: sync :: <banned>` or `std :: sync :: { ..banned.. }`.
        if ident(i) == Some("std")
            && punct(i + 1) == Some(':')
            && punct(i + 2) == Some(':')
            && ident(i + 3) == Some("sync")
            && punct(i + 4) == Some(':')
            && punct(i + 5) == Some(':')
        {
            match tokens.get(i + 6) {
                Some(TokenTree::Ident(id)) if BANNED_SYNC.contains(&id.text.as_str()) => {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: id.line,
                        rule: "raw-sync",
                        message: format!(
                            "raw std::sync::{} is banned outside vphi-sync; use vphi_sync::Tracked{} with a declared LockClass",
                            id.text, id.text
                        ),
                    });
                }
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                    for t in &g.tokens {
                        if let TokenTree::Ident(id) = t {
                            if BANNED_SYNC.contains(&id.text.as_str()) {
                                out.push(Violation {
                                    file: rel.to_path_buf(),
                                    line: id.line,
                                    rule: "raw-sync",
                                    message: format!(
                                        "raw std::sync::{} is banned outside vphi-sync; use vphi_sync::Tracked{} with a declared LockClass",
                                        id.text, id.text
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Rule 1b: any mention of parking_lot outside vphi-sync/shims.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.text == "parking_lot" {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: id.line,
                    rule: "raw-sync",
                    message: "parking_lot is banned outside vphi-sync; use the tracked types"
                        .into(),
                });
            }
        }
        // Rule 2: `. lock ( ) . unwrap`.
        if punct(i) == Some('.')
            && ident(i + 1) == Some("lock")
            && matches!(tokens.get(i + 2), Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis)
            && punct(i + 3) == Some('.')
            && ident(i + 4) == Some("unwrap")
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: tokens[i + 1].line(),
                rule: "lock-unwrap",
                message: "lock().unwrap() re-panics on poison; tracked lock() already recovers — drop the unwrap()".into(),
            });
        }
        // Rule 4: blocking acquisition in the event loop.
        if is_event_loop && punct(i) == Some('.') {
            if let Some(name) = ident(i + 1) {
                let blocking = matches!(name, "lock" | "lock_or_recover" | "read" | "write")
                    || name.starts_with("wait");
                let is_call = matches!(
                    tokens.get(i + 2),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                );
                if blocking && is_call {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: tokens[i + 1].line(),
                        rule: "event-loop-blocking",
                        message: format!(
                            ".{name}() in the vmm event loop can block with the guest paused; hand off to a worker instead"
                        ),
                    });
                }
            }
        }
        // Rule 6: direct virtqueue submission outside the router path.
        if check_queue_submit && punct(i) == Some('.') {
            if let Some(name) = ident(i + 1) {
                let is_call = matches!(
                    tokens.get(i + 2),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                );
                if is_call && QUEUE_SUBMIT.contains(&name) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: tokens[i + 1].line(),
                        rule: "queue-router",
                        message: format!(
                            ".{name}() submits to a VirtQueue directly; go through the frontend's queue router so the per-endpoint lane hash holds (DESIGN.md #15)"
                        ),
                    });
                }
            }
        }
        // Rule 7: direct MSI injection outside the lane notifier.
        if check_irq_inject
            && punct(i) == Some('.')
            && ident(i + 1) == Some("inject")
            && matches!(
                tokens.get(i + 2),
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
            )
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: tokens[i + 1].line(),
                rule: "msi-notifier",
                message: ".inject() bypasses the LaneNotifier; completion MSIs must go through deliver_irq() so EVENT_IDX suppression and batch flushing hold (DESIGN.md #16)".into(),
            });
        }
        // Rule 8: direct doorbell ring outside the frontend batch submitter.
        if check_kick
            && punct(i) == Some('.')
            && ident(i + 1) == Some("kick")
            && matches!(
                tokens.get(i + 2),
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
            )
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: tokens[i + 1].line(),
                rule: "kick-doorbell",
                message: ".kick() rings a doorbell directly; submissions must go through the frontend's batch submitter so one kick covers the lane's whole batch and the kicks-per-submission ledger holds (DESIGN.md #18)".into(),
            });
        }
    }
}

/// Rule 9: repeat-form `vec![_; len]` staging buffers on the RMA path.
/// Self-recursive (not part of [`walk`]) so it can skip `#[cfg(test)]`
/// subtrees — tests stage reference buffers on purpose.
fn scan_staging(tokens: &[TokenTree], rel: &Path, out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < tokens.len() {
        // `#[cfg(..test..)]` attributed item: skip to its `;` terminator
        // or past its brace body (covers `mod`, `fn`, `impl`, `use`).
        if tokens[i].punct() == Some('#') {
            if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                if attr.delimiter == Delimiter::Bracket
                    && attr.tokens.first().and_then(TokenTree::ident) == Some("cfg")
                    && group_mentions(attr, "test")
                {
                    i += 2;
                    while i < tokens.len() {
                        match &tokens[i] {
                            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                                i += 1;
                                break;
                            }
                            t if t.punct() == Some(';') => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    continue;
                }
            }
        }
        // `vec ! [ expr ; len ]` — the repeat form; a top-level `;` inside
        // the macro group distinguishes it from list-form `vec![a, b]`.
        if tokens[i].ident() == Some("vec")
            && tokens.get(i + 1).and_then(TokenTree::punct) == Some('!')
        {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 2) {
                if g.tokens.iter().any(|t| t.punct() == Some(';')) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: tokens[i].line(),
                        rule: "staging-buffer",
                        message: "vec![_; len] builds a length-sized staging buffer on the RMA path; zero-copy transfers go through pcie::dma (gather_copy / SgList) — staging is allowed only in the exempt cold paths (DESIGN.md #19)".into(),
                    });
                }
            }
        }
        if let TokenTree::Group(g) = &tokens[i] {
            scan_staging(&g.tokens, rel, out);
        }
        i += 1;
    }
}

/// Rule 5: the endpoint API must take `OpCtx`, not a raw timeline.
/// Flags any `fn` in `scif/src/api.rs` whose parameter list mentions the
/// `Timeline` ident, unless a `#[deprecated]` attribute precedes it.
fn scan_opctx_api(tokens: &[TokenTree], rel: &Path, out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].ident() != Some("fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(TokenTree::ident) else { continue };
        // The parameter list is the first parenthesis group after the fn
        // name (generic params contain no parenthesis groups in this API).
        let Some(params) = tokens[i + 2..].iter().find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => Some(g),
            _ => None,
        }) else {
            continue;
        };
        if !group_mentions(params, "Timeline") || fn_is_deprecated(tokens, i) {
            continue;
        }
        out.push(Violation {
            file: rel.to_path_buf(),
            line: tokens[i + 1].line(),
            rule: "opctx-api",
            message: format!(
                "fn {name} takes a raw &mut Timeline; scif::api methods take `ctx: impl Into<OpCtx<'_>>` so traces propagate (DESIGN.md #14)"
            ),
        });
    }
}

/// Whether `group`'s token tree (at any depth) mentions ident `what`.
fn group_mentions(group: &syn::Group, what: &str) -> bool {
    fn scan(tokens: &[TokenTree], what: &str) -> bool {
        tokens.iter().any(|t| match t {
            TokenTree::Ident(id) => id.text == what,
            TokenTree::Group(g) => scan(&g.tokens, what),
            _ => false,
        })
    }
    scan(&group.tokens, what)
}

/// Whether the `fn` keyword at `at` is preceded by a `#[deprecated ..]`
/// attribute (scanning back over visibility/qualifier tokens).
fn fn_is_deprecated(tokens: &[TokenTree], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &tokens[j] {
            TokenTree::Ident(id)
                if matches!(id.text.as_str(), "pub" | "const" | "unsafe" | "async" | "crate") => {}
            // `pub(crate)` visibility group.
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {}
            // `#[ ... ]`: an attribute — deprecated anywhere inside counts.
            TokenTree::Group(g)
                if g.delimiter == Delimiter::Bracket
                    && j > 0
                    && tokens[j - 1].punct() == Some('#') =>
            {
                if g.tokens.iter().any(|t| t.ident() == Some("deprecated")) {
                    return true;
                }
                j -= 1; // keep scanning past this attribute
            }
            _ => return false,
        }
    }
    false
}

/// Rule 3: exhaustive matches over the wire-protocol request enum.
fn scan_protocol_matches(tokens: &[TokenTree], rel: &Path, out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].ident() != Some("match") {
            continue;
        }
        // The match body is the next brace group at this nesting level
        // (struct literals are not legal in a match scrutinee).
        let Some(body) = tokens[i + 1..].iter().find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => Some(g),
            _ => None,
        }) else {
            continue;
        };
        let arms = split_arms(&body.tokens);
        let over_request =
            arms.iter().any(|a| a.pattern.iter().any(|t| t.ident() == Some("VphiRequest")));
        if !over_request {
            continue;
        }
        for arm in &arms {
            if arm.pattern.len() == 1 && arm.pattern[0].ident() == Some("_") {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: arm.pattern[0].line(),
                    rule: "protocol-exhaustive",
                    message: "wildcard arm in a match over VphiRequest: a new opcode would be silently dropped; list every variant".into(),
                });
            }
        }
    }
}

struct Arm<'a> {
    /// Pattern tokens (guard stripped at the top-level `if`).
    pattern: &'a [TokenTree],
}

/// Split a match body's tokens into arms: pattern tokens left of each
/// top-level `=>`, value consumed up to the arm-terminating `,` (or a brace
/// group immediately after `=>`).
fn split_arms(body: &[TokenTree]) -> Vec<Arm<'_>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let start = i;
        // Find `=>` (adjacent `=` `>` puncts).
        let mut arrow = None;
        while i < body.len() {
            if body[i].punct() == Some('=')
                && body.get(i + 1).and_then(TokenTree::punct) == Some('>')
            {
                arrow = Some(i);
                break;
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        let mut pattern = &body[start..arrow];
        // Strip a trailing `if <guard>` so `_ if c` still reads as `_`.
        if let Some(guard_at) = pattern.iter().position(|t| t.ident() == Some("if")) {
            pattern = &pattern[..guard_at];
        }
        arms.push(Arm { pattern });
        i = arrow + 2;
        // Skip the arm value: a brace-group body ends the arm; otherwise
        // scan to the next top-level comma.
        if let Some(TokenTree::Group(g)) = body.get(i) {
            if g.delimiter == Delimiter::Brace {
                i += 1;
                if body.get(i).and_then(TokenTree::punct) == Some(',') {
                    i += 1;
                }
                continue;
            }
        }
        while i < body.len() {
            if body[i].punct() == Some(',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Violation> {
        lint_source(Path::new(rel), src).unwrap()
    }

    #[test]
    fn flags_raw_std_mutex_and_use_lists() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "use std::sync::Mutex;\nfn f() -> std::sync::RwLock<u8> { todo!() }\nuse std::sync::{Arc, Condvar};\n",
        );
        let rules: Vec<_> = v.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(rules, [("raw-sync", 1), ("raw-sync", 2), ("raw-sync", 3)]);
    }

    #[test]
    fn allows_std_sync_atomics_and_arc() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::mpsc;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_parking_lot_anywhere() {
        let v = lint("crates/foo/src/lib.rs", "use parking_lot::Mutex;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-sync");
    }

    #[test]
    fn mentions_in_comments_and_strings_are_fine() {
        let v = lint(
            "crates/foo/src/lib.rs",
            "// std::sync::Mutex in prose\nconst S: &str = \"parking_lot::Mutex\";\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_lock_unwrap() {
        let v = lint("crates/foo/src/lib.rs", "fn f() { let g = m.lock().unwrap(); drop(g); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-unwrap");
        // lock() without unwrap, and unrelated unwraps, are fine.
        assert!(lint("a.rs", "fn f() { let g = m.lock(); x.parse().unwrap(); }").is_empty());
    }

    #[test]
    fn protocol_wildcard_over_request_enum_is_flagged() {
        let src = "fn dispatch(r: &VphiRequest) {\n  match r {\n    VphiRequest::Open => a(),\n    _ => b(),\n  }\n}";
        let v = lint("crates/core/src/protocol.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "protocol-exhaustive");
        assert_eq!(v[0].line, 4);
        // Same source outside protocol.rs is not this rule's business.
        assert!(lint("crates/core/src/backend/mod.rs", src).is_empty());
    }

    #[test]
    fn decode_style_byte_match_is_exempt() {
        // VphiRequest appears only to the right of `=>`: not a match over
        // the enum, so the `_ => return None` default is legitimate.
        let src = "fn decode(b: &[u8]) -> Option<VphiRequest> {\n  Some(match b[0] {\n    1 => VphiRequest::Open,\n    _ => return None,\n  })\n}";
        assert!(lint("crates/core/src/protocol.rs", src).is_empty());
    }

    #[test]
    fn guarded_wildcard_still_counts() {
        let src = "fn f(r: &VphiRequest, c: bool) { match r { VphiRequest::Open => a(), _ if c => b(), _ => d(), } }";
        let v = lint("crates/core/src/protocol.rs", src);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn event_loop_blocking_calls_are_flagged() {
        let src = "fn f(m: &M) { m.lock(); q.wait_until(|| true); s.load(Ordering::Relaxed); }";
        let v = lint("crates/vmm/src/event_loop.rs", src);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, ["event-loop-blocking", "event-loop-blocking"]);
        // The same calls elsewhere are the runtime detector's job, not lint's.
        assert!(lint("crates/vmm/src/kvm.rs", src).is_empty());
    }

    #[test]
    fn scif_api_timeline_param_is_flagged() {
        let src = "impl ScifEndpoint {\n  pub fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize> { todo!() }\n}";
        let v = lint("crates/scif/src/api.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "opctx-api");
        assert_eq!(v[0].line, 2);
        // The same signature elsewhere is fine (guest/backend mirrors are
        // converted by review, not lint).
        assert!(lint("crates/core/src/guest.rs", src).is_empty());
    }

    #[test]
    fn scif_api_opctx_params_pass_and_deprecated_is_exempt() {
        let ok = "impl ScifEndpoint {\n  pub fn send<'a>(&self, data: &[u8], ctx: impl Into<OpCtx<'a>>) -> ScifResult<usize> { todo!() }\n  fn syscall(&self, ctx: &mut OpCtx<'_>) {}\n}";
        assert!(lint("crates/scif/src/api.rs", ok).is_empty());
        let shim = "#[deprecated(note = \"use OpCtx\")]\npub fn send_old(tl: &mut Timeline) {}";
        assert!(lint("crates/scif/src/api.rs", shim).is_empty());
        // Timeline in the return type or body is not a violation.
        let ret = "fn spans(&self) -> &Timeline { &self.tl }";
        assert!(lint("crates/scif/src/api.rs", ret).is_empty());
    }

    #[test]
    fn direct_queue_submission_is_flagged_outside_the_router() {
        let src = "fn f(q: &VirtQueue) { let h = q.prepare_chain(&c).unwrap(); q.publish_avail(h, cost, &mut tl); }";
        let v = lint("crates/core/src/backend/mod.rs", src);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, ["queue-router", "queue-router"]);
        let v = lint("tests/concurrency.rs", "fn f() { q.add_chain(&r, &w).unwrap(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "queue-router");
    }

    #[test]
    fn router_path_and_ring_tests_may_submit_directly() {
        let src =
            "fn f(q: &VirtQueue) { q.add_chain(&r, &w).unwrap(); q.prepare_chain(&c).unwrap(); }";
        assert!(lint("crates/core/src/frontend/mod.rs", src).is_empty());
        assert!(lint("crates/virtio/src/queue.rs", src).is_empty());
        assert!(lint("crates/virtio/tests/prop_queue.rs", src).is_empty());
        assert!(lint("crates/bench/benches/micro_components.rs", src).is_empty());
        assert!(lint("crates/core/tests/mq_fifo.rs", src).is_empty());
        // Pops and used-ring pushes are the backend's job and stay legal.
        let pops = "fn f(q: &VirtQueue) { q.pop_avail().unwrap(); q.push_used(e, c, &mut tl); }";
        assert!(lint("crates/core/src/backend/mod.rs", pops).is_empty());
    }

    #[test]
    fn flags_direct_msi_injection_outside_the_notifier() {
        let src = "fn f(chip: &IrqChip, tl: &mut Timeline) { chip.inject(7, tl); }";
        let v = lint("crates/core/src/backend/mod.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "msi-notifier");
        assert_eq!(v[0].line, 1);
        // A frontend helper sneaking an injection in is just as illegal.
        assert_eq!(lint("crates/core/src/frontend/mod.rs", src).len(), 1);
    }

    #[test]
    fn the_notifier_and_the_irqchip_itself_may_inject() {
        let src = "fn f(chip: &IrqChip, tl: &mut Timeline) { chip.inject(7, tl); }";
        assert!(lint("crates/core/src/backend/notify.rs", src).is_empty());
        assert!(lint("crates/vmm/src/irq.rs", src).is_empty());
        assert!(lint("crates/vmm/tests/irq_props.rs", src).is_empty());
        // Non-call mentions and other methods are not this rule's business.
        let other = "fn f(n: &LaneNotifier, tl: &mut Timeline) { n.deliver_irq(tl); }";
        assert!(lint("crates/core/src/backend/mod.rs", other).is_empty());
    }

    #[test]
    fn flags_direct_doorbell_kicks_outside_the_batch_submitter() {
        let src = "fn f(q: &VirtQueue, tl: &mut Timeline) { q.kick(cost, tl); }";
        let v = lint("crates/core/src/backend/mod.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "kick-doorbell");
        assert_eq!(v[0].line, 1);
        // A bench or guest-side helper ringing the bell itself is the exact
        // bypass the kicks-per-submission ledger exists to catch.
        assert_eq!(lint("crates/bench/src/experiments/open_loop.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/guest.rs", src).len(), 1);
    }

    #[test]
    fn the_frontend_and_the_queue_itself_may_kick() {
        let src = "fn f(q: &VirtQueue, tl: &mut Timeline) { q.kick(cost, tl); }";
        assert!(lint("crates/core/src/frontend/mod.rs", src).is_empty());
        assert!(lint("crates/virtio/src/queue.rs", src).is_empty());
        assert!(lint("crates/core/tests/mq_fifo.rs", src).is_empty());
        // Non-call mentions and other methods are not this rule's business.
        let other = "fn f() { let kick = cost.vmexit_kick; note(kick); }";
        assert!(lint("crates/core/src/backend/mod.rs", other).is_empty());
    }

    #[test]
    fn batched_avail_publication_is_router_only_too() {
        let src = "fn f(q: &VirtQueue) { q.publish_avail_batch(&heads, cost, &mut tl); }";
        let v = lint("crates/core/src/backend/mod.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "queue-router");
        assert!(lint("crates/core/src/frontend/mod.rs", src).is_empty());
    }

    #[test]
    fn staging_vecs_are_flagged_on_the_rma_path_only() {
        let src = "fn replay(len: usize) { let buf = vec![0u8; len]; use_it(&buf); }";
        let v = lint("crates/scif/src/rma.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "staging-buffer");
        assert_eq!(v[0].line, 1);
        // The sanctioned bounce and the backend cold path are exempt;
        // out-of-scope crates are not this rule's business.
        assert!(lint("crates/pcie/src/dma.rs", src).is_empty());
        assert!(lint("crates/core/src/backend/mod.rs", src).is_empty());
        assert!(lint("crates/core/src/frontend/mod.rs", src).is_empty());
        // List-form vecs and non-vec macros stay legal on the path.
        let ok = "fn f() { let v = vec![1, 2, 3]; let w = Vec::with_capacity(9); }";
        assert!(lint("crates/scif/src/rma.rs", ok).is_empty());
        // Test modules stage reference buffers on purpose.
        let test_mod =
            "#[cfg(test)]\nmod tests {\n  fn f(n: usize) { let v = vec![0u8; n]; drop(v); }\n}";
        assert!(lint("crates/scif/src/rma.rs", test_mod).is_empty(), "cfg(test) is skipped");
        // A cfg(test) fn (not just mod) is skipped too; the next item
        // after it is still scanned.
        let mixed = "#[cfg(test)]\nfn helper(n: usize) -> Vec<u8> { vec![0; n] }\nfn hot(n: usize) -> Vec<u8> { vec![0; n] }";
        let v = lint("crates/scif/src/rma.rs", mixed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn staging_fixture_fails() {
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/staging_vec.rs");
        let src = std::fs::read_to_string(&fixture).unwrap();
        // The fixture dir is skipped by the workspace walk, so lint it
        // under a path the scope tables treat as the RMA engine.
        let v = lint("crates/scif/src/rma.rs", &src);
        assert_eq!(v.len(), 1, "exactly the non-test staging vec trips: {v:?}");
        assert_eq!(v[0].rule, "staging-buffer");
    }

    #[test]
    fn fixture_fails_and_workspace_root_is_findable() {
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/raw_std_mutex.rs");
        let src = std::fs::read_to_string(&fixture).unwrap();
        let v = lint("crates/xtask/fixtures/raw_std_mutex.rs", &src);
        assert!(
            v.iter().any(|x| x.rule == "raw-sync") && v.iter().any(|x| x.rule == "lock-unwrap"),
            "fixture must trip raw-sync and lock-unwrap: {v:?}"
        );
    }
}

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|analyze>");
            ExitCode::from(2)
        }
    }
}

// crates/xtask/ -> workspace root.
fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint() -> ExitCode {
    let violations = match xtask::lint_workspace(&root()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        eprintln!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn analyze() -> ExitCode {
    let root = root();
    let report = match vphi_analyze::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = vphi_analyze::load_baseline(&root);
    print!("{}", report.render(&baseline));
    let (new, _, _) = report.against(&baseline);
    if new.is_empty() {
        eprintln!("xtask analyze: clean (modulo baseline)");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: {} new finding(s)", new.len());
        ExitCode::FAILURE
    }
}

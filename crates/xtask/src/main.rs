use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // crates/xtask/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        eprintln!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

//! Property-based tests of the uOS compute model — the timing function
//! behind Figs. 6–8 must be sane over its whole domain, not just at the
//! three thread counts the paper plots.

use proptest::prelude::*;
use std::sync::Arc;

use vphi_phi::{ComputeJob, PhiSpec, UosScheduler};
use vphi_sim_core::{CostModel, Timeline, VirtualClock};

fn sched() -> UosScheduler {
    UosScheduler::new(
        PhiSpec::phi_3120p(),
        Arc::new(CostModel::paper_calibrated()),
        Arc::new(VirtualClock::new()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More FLOPs never takes less time (same threads).
    #[test]
    fn duration_is_monotone_in_work(threads in 1u32..224, f1 in 1.0e6f64..1.0e13, f2 in 1.0e6f64..1.0e13) {
        let s = sched();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let mut tl = Timeline::new();
        let d_lo = s.run(&ComputeJob::new("lo", threads, lo, 0), &mut tl).duration;
        let d_hi = s.run(&ComputeJob::new("hi", threads, hi, 0), &mut tl).duration;
        prop_assert!(d_hi >= d_lo);
    }

    /// Within hardware capacity, more threads never hurt (the efficiency
    /// table is non-decreasing and cores_used grows).
    #[test]
    fn more_threads_never_slower_within_capacity(
        flops in 1.0e9f64..1.0e12,
        t1 in 1u32..224,
        t2 in 1u32..224,
    ) {
        let s = sched();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let mut tl = Timeline::new();
        let d_few = s.run(&ComputeJob::new("few", lo, flops, 0), &mut tl).duration;
        let d_many = s.run(&ComputeJob::new("many", hi, flops, 0), &mut tl).duration;
        // Allow equality (e.g. both counts land on the same cores/tpc tier).
        prop_assert!(d_many <= d_few, "{hi} threads slower than {lo}: {d_many} vs {d_few}");
    }

    /// Oversubscription kicks in exactly past the hardware-thread count
    /// and scales like total/capacity.
    #[test]
    fn oversubscription_threshold(extra in 1u32..1000) {
        let s = sched();
        let cap = PhiSpec::phi_3120p().max_app_threads();
        let mut tl = Timeline::new();
        let at_cap = s.run(&ComputeJob::new("cap", cap, 1e12, 0), &mut tl);
        prop_assert!(!at_cap.oversubscribed);
        let mut tl2 = Timeline::new();
        let over = s.run(&ComputeJob::new("over", cap + extra, 1e12, 0), &mut tl2);
        prop_assert!(over.oversubscribed);
        prop_assert!(over.duration >= at_cap.duration);
    }

    /// The effective rate never exceeds the card's peak, and the roofline
    /// never reports a negative or non-finite duration.
    #[test]
    fn rate_bounded_by_peak(threads in 1u32..448, flops in 0.0f64..1.0e13, bytes in 0u64..1 << 34) {
        let s = sched();
        let mut tl = Timeline::new();
        let out = s.run(&ComputeJob::new("j", threads, flops, bytes), &mut tl);
        prop_assert!(out.effective_gflops <= PhiSpec::phi_3120p().peak_gflops() + 1e-9);
        prop_assert!(out.duration.as_nanos() < u64::MAX / 2);
        if flops > 0.0 {
            // Implied rate from the duration can't beat the roofline either.
            let implied = flops / out.duration.as_secs_f64().max(1e-12) / 1e9;
            prop_assert!(implied <= PhiSpec::phi_3120p().peak_gflops() * 1.01);
        }
    }

    /// Core assignment conserves threads and never exceeds per-core HW
    /// thread counts by more than the oversubscription ratio implies.
    #[test]
    fn core_assignment_conserves_threads(threads in 1u32..2000) {
        let s = sched();
        let assignment = s.core_assignment(threads);
        prop_assert_eq!(assignment.iter().sum::<u32>(), threads);
        prop_assert!(assignment.len() as u32 <= PhiSpec::phi_3120p().usable_cores());
        // Balanced: max and min differ by at most 1.
        let max = assignment.iter().max().unwrap();
        let min = assignment.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unbalanced assignment: {assignment:?}");
    }
}

//! The `/sys/class/mic/micN` attribute surface.
//!
//! Intel MPSS tools read board attributes through sysfs before they will
//! talk to a card — micnativeloadex in particular checks family, state and
//! memory size.  The paper (§III, implementation details) notes that vPHI
//! "implement[s] the necessary functionality … and expose[s] the same
//! information that is provided in the host"; our backend does the same by
//! cloning this table into the guest.

use std::collections::BTreeMap;

use crate::spec::PhiSpec;

/// A snapshot of the sysfs attributes for one card.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysfsInfo {
    attrs: BTreeMap<String, String>,
}

impl SysfsInfo {
    /// Build the attribute table MPSS expects from a board spec.
    pub fn from_spec(spec: &PhiSpec, mic_index: u32, state: &str) -> Self {
        let mut attrs = BTreeMap::new();
        let mut put = |k: &str, v: String| {
            attrs.insert(k.to_string(), v);
        };
        put("name", format!("mic{mic_index}"));
        put("family", spec.family.to_string());
        put("sku", spec.model.to_string());
        put("stepping", spec.stepping.to_string());
        put("state", state.to_string());
        put("active_cores", spec.cores.to_string());
        put("threads_per_core", spec.threads_per_core.to_string());
        put("frequency_mhz", spec.freq_mhz.to_string());
        put("memsize", spec.memory_bytes.to_string());
        put("dma_channels", spec.dma_channels.to_string());
        SysfsInfo { attrs }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        self.attrs.insert(key.to_string(), value.into());
    }

    /// All attributes in sorted order (as `ls /sys/class/mic/mic0` shows).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_spec() {
        let info = SysfsInfo::from_spec(&PhiSpec::phi_3120p(), 0, "online");
        assert_eq!(info.get("name"), Some("mic0"));
        assert_eq!(info.get("family"), Some("x100"));
        assert_eq!(info.get("sku"), Some("3120P"));
        assert_eq!(info.get("state"), Some("online"));
        assert_eq!(info.get("active_cores"), Some("57"));
        assert_eq!(info.get("memsize"), Some(&(6u64 << 30).to_string()[..]));
        assert_eq!(info.get("nonexistent"), None);
    }

    #[test]
    fn state_can_be_updated() {
        let mut info = SysfsInfo::from_spec(&PhiSpec::phi_3120p(), 1, "offline");
        assert_eq!(info.get("name"), Some("mic1"));
        info.set("state", "online");
        assert_eq!(info.get("state"), Some("online"));
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let info = SysfsInfo::from_spec(&PhiSpec::phi_3120p(), 0, "online");
        let keys: Vec<&str> = info.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(info.len(), 10);
        assert!(!info.is_empty());
    }
}

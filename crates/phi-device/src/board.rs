//! The assembled coprocessor board.

use std::sync::Arc;

use vphi_pcie::{DmaEngine, Doorbell, LinkConfig, MsiVector, PcieLink};
use vphi_sim_core::{CostModel, SimDuration, VirtualClock};
use vphi_sync::{LockClass, TrackedRwLock};

use crate::memory::DeviceMemory;
use crate::spec::PhiSpec;
use crate::sysfs::SysfsInfo;
use crate::uos::UosScheduler;

/// Boot state, mirroring the MPSS `state` sysfs attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoardState {
    Offline,
    Booting,
    Online,
}

impl BoardState {
    pub fn as_str(self) -> &'static str {
        match self {
            BoardState::Offline => "offline",
            BoardState::Booting => "booting",
            BoardState::Online => "online",
        }
    }
}

/// One Xeon Phi card plugged into the host: spec, GDDR, DMA engine on a
/// PCIe link, doorbells in both directions, an MSI vector toward the host,
/// and the uOS scheduler once booted.
pub struct PhiBoard {
    spec: PhiSpec,
    state: TrackedRwLock<BoardState>,
    memory: Arc<DeviceMemory>,
    link: Arc<PcieLink>,
    dma: Arc<DmaEngine>,
    /// Host → device "there is work" doorbell.
    pub db_to_device: Arc<Doorbell>,
    /// Device → host "there is a reply" doorbell.
    pub db_to_host: Arc<Doorbell>,
    /// MSI toward the host SCIF driver.
    pub msi: Arc<MsiVector>,
    uos: Arc<UosScheduler>,
    sysfs: TrackedRwLock<SysfsInfo>,
    mic_index: u32,
}

impl std::fmt::Debug for PhiBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhiBoard")
            .field("spec", &self.spec.model)
            .field("state", &*self.state.read())
            .field("mic_index", &self.mic_index)
            .finish()
    }
}

impl PhiBoard {
    /// Plug a card in (state: offline).  `mic_index` is its `/dev/mic`
    /// slot number.
    pub fn new(
        spec: PhiSpec,
        mic_index: u32,
        cost: Arc<CostModel>,
        clock: Arc<VirtualClock>,
    ) -> Self {
        let link =
            Arc::new(PcieLink::new(LinkConfig::default(), Arc::clone(&cost), Arc::clone(&clock)));
        let dma = Arc::new(DmaEngine::new(Arc::clone(&link), spec.dma_channels));
        let memory = Arc::new(DeviceMemory::new(spec.memory_bytes));
        let uos = Arc::new(UosScheduler::new(spec.clone(), cost, clock));
        let sysfs = TrackedRwLock::new(
            LockClass::BoardSysfs,
            SysfsInfo::from_spec(&spec, mic_index, "offline"),
        );
        PhiBoard {
            spec,
            state: TrackedRwLock::new(LockClass::BoardState, BoardState::Offline),
            memory,
            link,
            dma,
            db_to_device: Arc::new(Doorbell::new()),
            db_to_host: Arc::new(Doorbell::new()),
            msi: Arc::new(MsiVector::new(mic_index)),
            uos,
            sysfs,
            mic_index,
        }
    }

    /// Boot the uOS.  Returns the virtual boot duration (KNC cards take
    /// tens of seconds to boot; we charge a token 10 s so traces stay
    /// realistic without dominating experiments).
    pub fn boot(&self) -> SimDuration {
        {
            let mut st = self.state.write();
            if *st == BoardState::Online {
                return SimDuration::ZERO;
            }
            *st = BoardState::Booting;
        }
        self.sysfs.write().set("state", "booting");
        let boot_time = SimDuration::from_secs(10);
        *self.state.write() = BoardState::Online;
        self.sysfs.write().set("state", "online");
        boot_time
    }

    pub fn state(&self) -> BoardState {
        *self.state.read()
    }

    pub fn is_online(&self) -> bool {
        self.state() == BoardState::Online
    }

    pub fn spec(&self) -> &PhiSpec {
        &self.spec
    }

    pub fn mic_index(&self) -> u32 {
        self.mic_index
    }

    pub fn memory(&self) -> &Arc<DeviceMemory> {
        &self.memory
    }

    pub fn link(&self) -> &Arc<PcieLink> {
        &self.link
    }

    pub fn dma(&self) -> &Arc<DmaEngine> {
        &self.dma
    }

    pub fn uos(&self) -> &Arc<UosScheduler> {
        &self.uos
    }

    pub fn sysfs(&self) -> SysfsInfo {
        self.sysfs.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> PhiBoard {
        PhiBoard::new(
            PhiSpec::phi_3120p(),
            0,
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        )
    }

    #[test]
    fn starts_offline_and_boots_once() {
        let b = board();
        assert_eq!(b.state(), BoardState::Offline);
        assert_eq!(b.sysfs().get("state"), Some("offline"));
        let t = b.boot();
        assert!(t > SimDuration::ZERO);
        assert!(b.is_online());
        assert_eq!(b.sysfs().get("state"), Some("online"));
        // Second boot is a no-op.
        assert_eq!(b.boot(), SimDuration::ZERO);
    }

    #[test]
    fn components_are_wired_to_the_spec() {
        let b = board();
        assert_eq!(b.memory().capacity(), PhiSpec::phi_3120p().memory_bytes);
        assert_eq!(b.dma().channels(), 8);
        assert_eq!(b.uos().spec().model, "3120P");
        assert_eq!(b.mic_index(), 0);
    }

    #[test]
    fn doorbells_are_independent() {
        let b = board();
        b.db_to_device.ring();
        assert_eq!(b.db_to_device.pending(), 1);
        assert_eq!(b.db_to_host.pending(), 0);
    }

    #[test]
    fn state_strings() {
        assert_eq!(BoardState::Offline.as_str(), "offline");
        assert_eq!(BoardState::Booting.as_str(), "booting");
        assert_eq!(BoardState::Online.as_str(), "online");
    }
}

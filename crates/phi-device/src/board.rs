//! The assembled coprocessor board.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vphi_faults::{FaultHook, FaultSite};
use vphi_pcie::{DmaEngine, Doorbell, LinkConfig, MsiVector, PcieLink};
use vphi_sim_core::{CostModel, SimDuration, VirtualClock};
use vphi_sync::{LockClass, TrackedRwLock};

use crate::memory::DeviceMemory;
use crate::spec::PhiSpec;
use crate::sysfs::SysfsInfo;
use crate::uos::UosScheduler;

/// Boot state, mirroring the MPSS `state` sysfs attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoardState {
    Offline,
    Booting,
    Online,
    /// The card hit a fatal fault (core lockup, uOS panic) and needs a
    /// reset; mirrors MPSS "lost"/"failed" states.
    Failed,
}

impl BoardState {
    pub fn as_str(self) -> &'static str {
        match self {
            BoardState::Offline => "offline",
            BoardState::Booting => "booting",
            BoardState::Online => "online",
            BoardState::Failed => "failed",
        }
    }
}

/// A fatal board-level fault observed by [`PhiBoard::poll_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhiFault {
    /// A device core stopped retiring instructions.
    CoreLockup,
    /// The card's embedded Linux panicked.
    UosPanic,
}

/// One Xeon Phi card plugged into the host: spec, GDDR, DMA engine on a
/// PCIe link, doorbells in both directions, an MSI vector toward the host,
/// and the uOS scheduler once booted.
pub struct PhiBoard {
    spec: PhiSpec,
    state: TrackedRwLock<BoardState>,
    memory: Arc<DeviceMemory>,
    link: Arc<PcieLink>,
    dma: Arc<DmaEngine>,
    /// Host → device "there is work" doorbell.
    pub db_to_device: Arc<Doorbell>,
    /// Device → host "there is a reply" doorbell.
    pub db_to_host: Arc<Doorbell>,
    /// MSI toward the host SCIF driver.
    pub msi: Arc<MsiVector>,
    uos: Arc<UosScheduler>,
    sysfs: TrackedRwLock<SysfsInfo>,
    mic_index: u32,
    faults: FaultHook,
    resets: AtomicU64,
}

impl std::fmt::Debug for PhiBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhiBoard")
            .field("spec", &self.spec.model)
            .field("state", &*self.state.read())
            .field("mic_index", &self.mic_index)
            .finish()
    }
}

impl PhiBoard {
    /// Plug a card in (state: offline).  `mic_index` is its `/dev/mic`
    /// slot number.
    pub fn new(
        spec: PhiSpec,
        mic_index: u32,
        cost: Arc<CostModel>,
        clock: Arc<VirtualClock>,
    ) -> Self {
        let link =
            Arc::new(PcieLink::new(LinkConfig::default(), Arc::clone(&cost), Arc::clone(&clock)));
        let dma = Arc::new(DmaEngine::new(Arc::clone(&link), spec.dma_channels));
        let memory = Arc::new(DeviceMemory::new(spec.memory_bytes));
        let uos = Arc::new(UosScheduler::new(spec.clone(), cost, clock));
        let sysfs = TrackedRwLock::new(
            LockClass::BoardSysfs,
            SysfsInfo::from_spec(&spec, mic_index, "offline"),
        );
        PhiBoard {
            spec,
            state: TrackedRwLock::new(LockClass::BoardState, BoardState::Offline),
            memory,
            link,
            dma,
            db_to_device: Arc::new(Doorbell::new()),
            db_to_host: Arc::new(Doorbell::new()),
            msi: Arc::new(MsiVector::new(mic_index)),
            uos,
            sysfs,
            mic_index,
            faults: FaultHook::new(),
            resets: AtomicU64::new(0),
        }
    }

    /// Boot the uOS.  Returns the virtual boot duration (KNC cards take
    /// tens of seconds to boot; we charge a token 10 s so traces stay
    /// realistic without dominating experiments).
    pub fn boot(&self) -> SimDuration {
        {
            let mut st = self.state.write();
            if *st == BoardState::Online {
                return SimDuration::ZERO;
            }
            *st = BoardState::Booting;
        }
        self.sysfs.write().set("state", "booting");
        let boot_time = SimDuration::from_secs(10);
        *self.state.write() = BoardState::Online;
        self.sysfs.write().set("state", "online");
        boot_time
    }

    pub fn state(&self) -> BoardState {
        *self.state.read()
    }

    pub fn is_online(&self) -> bool {
        self.state() == BoardState::Online
    }

    pub fn spec(&self) -> &PhiSpec {
        &self.spec
    }

    pub fn mic_index(&self) -> u32 {
        self.mic_index
    }

    pub fn memory(&self) -> &Arc<DeviceMemory> {
        &self.memory
    }

    pub fn link(&self) -> &Arc<PcieLink> {
        &self.link
    }

    pub fn dma(&self) -> &Arc<DmaEngine> {
        &self.dma
    }

    pub fn uos(&self) -> &Arc<UosScheduler> {
        &self.uos
    }

    pub fn sysfs(&self) -> SysfsInfo {
        self.sysfs.read().clone()
    }

    /// Fault-injection arming point (lockups, ECC, uOS panics).
    pub fn fault_hook(&self) -> &FaultHook {
        &self.faults
    }

    pub fn is_failed(&self) -> bool {
        self.state() == BoardState::Failed
    }

    /// Mark the card failed (host-visible via sysfs), as the real MPSS
    /// daemon does when the watchdog stops hearing from the uOS.
    pub fn fail(&self, reason: &str) {
        *self.state.write() = BoardState::Failed;
        let mut sysfs = self.sysfs.write();
        sysfs.set("state", "failed");
        sysfs.set("fail_reason", reason);
    }

    /// Check the injection schedule for a fatal board fault.  Called from
    /// the fabric's charge paths (every message/RMA traversal); on the
    /// firing crossing the board transitions to `Failed`.
    pub fn poll_faults(&self) -> Option<PhiFault> {
        if !self.faults.armed() || self.is_failed() {
            return None;
        }
        if self.faults.fire(FaultSite::PhiCoreLockup).is_some() {
            self.fail("core lockup");
            return Some(PhiFault::CoreLockup);
        }
        if self.faults.fire(FaultSite::PhiUosPanic).is_some() {
            self.fail("uos panic");
            return Some(PhiFault::UosPanic);
        }
        None
    }

    /// Check the injection schedule for an uncorrectable device-memory ECC
    /// error on this RMA.  Unlike a lockup this is per-transfer: the board
    /// stays online, the transfer fails fatally.
    pub fn ecc_fault(&self) -> bool {
        self.faults.fire(FaultSite::PhiEccError).is_some()
    }

    /// Reset a failed (or live) card: back to offline, then reboot the
    /// uOS.  Returns the virtual reset+boot duration.  All endpoint state
    /// referencing the card is the fabric's problem — see
    /// `VphiHost::reset_card`, which quarantines affected endpoints.
    pub fn reset(&self) -> SimDuration {
        *self.state.write() = BoardState::Offline;
        {
            let mut sysfs = self.sysfs.write();
            sysfs.set("state", "resetting");
            sysfs.set("fail_reason", "");
        }
        self.resets.fetch_add(1, Ordering::Relaxed);
        self.boot()
    }

    /// How many times this card has been reset.
    pub fn reset_count(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> PhiBoard {
        PhiBoard::new(
            PhiSpec::phi_3120p(),
            0,
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        )
    }

    #[test]
    fn starts_offline_and_boots_once() {
        let b = board();
        assert_eq!(b.state(), BoardState::Offline);
        assert_eq!(b.sysfs().get("state"), Some("offline"));
        let t = b.boot();
        assert!(t > SimDuration::ZERO);
        assert!(b.is_online());
        assert_eq!(b.sysfs().get("state"), Some("online"));
        // Second boot is a no-op.
        assert_eq!(b.boot(), SimDuration::ZERO);
    }

    #[test]
    fn components_are_wired_to_the_spec() {
        let b = board();
        assert_eq!(b.memory().capacity(), PhiSpec::phi_3120p().memory_bytes);
        assert_eq!(b.dma().channels(), 8);
        assert_eq!(b.uos().spec().model, "3120P");
        assert_eq!(b.mic_index(), 0);
    }

    #[test]
    fn doorbells_are_independent() {
        let b = board();
        b.db_to_device.ring();
        assert_eq!(b.db_to_device.pending(), 1);
        assert_eq!(b.db_to_host.pending(), 0);
    }

    #[test]
    fn state_strings() {
        assert_eq!(BoardState::Offline.as_str(), "offline");
        assert_eq!(BoardState::Booting.as_str(), "booting");
        assert_eq!(BoardState::Online.as_str(), "online");
        assert_eq!(BoardState::Failed.as_str(), "failed");
    }

    #[test]
    fn lockup_fault_fails_the_board_until_reset() {
        use vphi_faults::{FaultInjector, FaultPlan};
        let b = board();
        b.boot();
        let inj = Arc::new(FaultInjector::new(FaultPlan::single(FaultSite::PhiCoreLockup, 2, 0)));
        assert!(b.fault_hook().arm(inj));
        assert_eq!(b.poll_faults(), None);
        assert_eq!(b.poll_faults(), Some(PhiFault::CoreLockup));
        assert!(b.is_failed());
        assert_eq!(b.sysfs().get("state"), Some("failed"));
        assert_eq!(b.sysfs().get("fail_reason"), Some("core lockup"));
        // Failed boards don't double-report.
        assert_eq!(b.poll_faults(), None);
        let t = b.reset();
        assert!(t > SimDuration::ZERO);
        assert!(b.is_online());
        assert_eq!(b.reset_count(), 1);
        assert_eq!(b.sysfs().get("state"), Some("online"));
    }

    #[test]
    fn ecc_fault_leaves_the_board_online() {
        use vphi_faults::{FaultInjector, FaultPlan};
        let b = board();
        b.boot();
        let inj = Arc::new(FaultInjector::new(FaultPlan::single(FaultSite::PhiEccError, 1, 0)));
        assert!(b.fault_hook().arm(inj));
        assert!(b.ecc_fault());
        assert!(!b.ecc_fault());
        assert!(b.is_online());
    }
}

//! Product-family parameters and the compute roofline.

use vphi_sim_core::units::GIB;

/// Static description of one Xeon Phi model.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiSpec {
    /// Marketing name, e.g. "3120P".
    pub model: &'static str,
    /// MIC family codename exposed through sysfs ("x100" for KNC).
    pub family: &'static str,
    /// Board stepping string as MPSS reports it.
    pub stepping: &'static str,
    /// Total physical cores (one is reserved for the uOS).
    pub cores: u32,
    /// Hardware threads per core (4 on KNC).
    pub threads_per_core: u32,
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Double-precision FLOPs per cycle per core (8 VPU lanes × 2 for FMA).
    pub dp_flops_per_cycle: u32,
    /// GDDR5 capacity in bytes.
    pub memory_bytes: u64,
    /// DMA channels on the card.
    pub dma_channels: usize,
}

impl PhiSpec {
    /// The paper's card: Xeon Phi 3120P.
    pub fn phi_3120p() -> Self {
        PhiSpec {
            model: "3120P",
            family: "x100",
            stepping: "B1",
            cores: 57,
            threads_per_core: 4,
            freq_mhz: 1100,
            dp_flops_per_cycle: 16,
            memory_bytes: 6 * GIB,
            dma_channels: 8,
        }
    }

    pub fn phi_5110p() -> Self {
        PhiSpec {
            model: "5110P",
            family: "x100",
            stepping: "B1",
            cores: 60,
            threads_per_core: 4,
            freq_mhz: 1053,
            dp_flops_per_cycle: 16,
            memory_bytes: 8 * GIB,
            dma_channels: 8,
        }
    }

    pub fn phi_7120p() -> Self {
        PhiSpec {
            model: "7120P",
            family: "x100",
            stepping: "C0",
            cores: 61,
            threads_per_core: 4,
            freq_mhz: 1238,
            dp_flops_per_cycle: 16,
            memory_bytes: 16 * GIB,
            dma_channels: 8,
        }
    }

    /// Cores available to applications (one core runs the uOS — the paper
    /// notes the scheduler "runs on a dedicated Xeon Phi core").
    pub fn usable_cores(&self) -> u32 {
        self.cores - 1
    }

    /// Maximum application hardware threads (224 on the 3120P, which is
    /// why the paper's Fig. 8 uses 224 threads).
    pub fn max_app_threads(&self) -> u32 {
        self.usable_cores() * self.threads_per_core
    }

    /// Peak double-precision GFLOPS of one core.
    pub fn core_peak_gflops(&self) -> f64 {
        self.freq_mhz as f64 * 1e6 * self.dp_flops_per_cycle as f64 / 1e9
    }

    /// Aggregate application peak (usable cores only).
    pub fn peak_gflops(&self) -> f64 {
        self.core_peak_gflops() * self.usable_cores() as f64
    }
}

impl Default for PhiSpec {
    fn default() -> Self {
        Self::phi_3120p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_card_geometry() {
        let s = PhiSpec::phi_3120p();
        assert_eq!(s.cores, 57);
        assert_eq!(s.usable_cores(), 56);
        // 56 usable cores × 4 threads = 224 — the paper's Fig. 8 setting.
        assert_eq!(s.max_app_threads(), 224);
        assert_eq!(s.memory_bytes, 6 * GIB);
    }

    #[test]
    fn roofline_is_about_a_teraflop() {
        let s = PhiSpec::phi_3120p();
        // 56 × 1.1 GHz × 16 DP flops/cycle = 985.6 GFLOPS.
        assert!((s.peak_gflops() - 985.6).abs() < 0.1, "peak = {}", s.peak_gflops());
        assert!((s.core_peak_gflops() - 17.6).abs() < 0.01);
    }

    #[test]
    fn family_presets_differ() {
        assert_ne!(PhiSpec::phi_3120p(), PhiSpec::phi_5110p());
        assert!(PhiSpec::phi_7120p().peak_gflops() > PhiSpec::phi_3120p().peak_gflops());
        assert_eq!(PhiSpec::default(), PhiSpec::phi_3120p());
    }
}

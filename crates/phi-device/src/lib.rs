//! # vphi-phi — the Xeon Phi coprocessor board model
//!
//! The vPHI paper evaluates on an Intel Xeon Phi **3120P** (Knights Corner:
//! 57 in-order cores × 4 hardware threads at 1.1 GHz, 6 GB GDDR5, 8 DMA
//! channels, PCIe gen2 x16).  The card boots a micro operating system
//! (*uOS*, a trimmed Linux) that runs a SCIF driver, a coi_daemon, and the
//! scheduler that multiplexes application threads over the cores — one core
//! is reserved for the uOS itself.
//!
//! This crate models the board at the level the rest of the stack observes:
//!
//! * [`spec::PhiSpec`] — the product-family parameters (3120P/5110P/7120P
//!   presets) and the derived peak-FLOPS roofline.
//! * [`memory::DeviceMemory`] — GDDR with a first-fit region allocator;
//!   allocated regions are real byte buffers so RDMA is functionally exact,
//!   while unallocated capacity costs nothing on the simulation host.
//! * [`uos`] — the uOS scheduler: run-queues per core, round-robin
//!   timeslicing, oversubscription penalties, and the calibrated compute
//!   model used by the dgemm experiments (Figs. 6–8).
//! * [`sysfs::SysfsInfo`] — the `/sys/class/mic/mic0` attributes that
//!   Intel MPSS tools (micnativeloadex) read before launching binaries;
//!   vPHI's backend re-exports these into the guest (paper §III).
//! * [`board::PhiBoard`] — the assembled card: memory + DMA + doorbells +
//!   boot state machine.

pub mod board;
pub mod memory;
pub mod spec;
pub mod sysfs;
pub mod uos;

pub use board::{BoardState, PhiBoard};
pub use memory::{DeviceMemory, DeviceRegion, MemError};
pub use spec::PhiSpec;
pub use sysfs::SysfsInfo;
pub use uos::{ComputeJob, JobOutcome, UosScheduler};

//! The uOS scheduler.
//!
//! Xeon Phi boots a trimmed Linux ("uOS") whose scheduler multiplexes
//! application threads over the cores; it runs on a dedicated core, which
//! is why only `cores - 1` are usable for compute.  The paper relies on two
//! of its properties, both modeled here:
//!
//! 1. **Spreading**: requests from different processes (and hence different
//!    VMs through vPHI) land on distinct cores when capacity allows —
//!    "simultaneous multi-threaded execution requests from different VMs
//!    can end up running in parallel on the Xeon Phi device".
//! 2. **Oversubscription**: when requested threads exceed hardware threads,
//!    round-robin timeslicing multiplexes them at a context-switch cost.
//!
//! The compute-time model is a roofline over the [`PhiSpec`]: a job is
//! either FLOP-bound (`flops / effective_rate`) or memory-bound
//! (`bytes / gddr_bw`), plus a thread-spawn/fork-join overhead.  KNC cores
//! are in-order and cannot issue from the same thread in consecutive
//! cycles, so single-threaded-per-core efficiency is poor — the classic
//! "use at least 2 threads/core" rule, visible in Figs. 6–8 as 56 threads
//! underperforming 112/224.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use vphi_sim_core::{CostModel, SimDuration, SpanLabel, Timeline, VirtualClock};

use crate::spec::PhiSpec;

/// Practical GDDR5 bandwidth on KNC (theoretical 240 GB/s, ~60% achievable).
const GDDR_BYTES_PER_SEC: f64 = 150.0e9;

/// Fraction of per-core peak achieved with `n` hardware threads per core
/// (in-order dual-pipe KNC issue model; ≥2 threads needed for back-to-back
/// VPU issue).
fn thread_efficiency(threads_per_core: u32) -> f64 {
    match threads_per_core {
        0 => 0.0,
        1 => 0.45,
        2 => 0.72,
        3 => 0.78,
        _ => 0.82,
    }
}

/// A unit of device compute submitted by the coi_daemon (or a SCIF-native
/// server process).
#[derive(Debug, Clone)]
pub struct ComputeJob {
    /// Display name (binary name).
    pub name: String,
    /// Requested application threads (e.g. `MIC_OMP_NUM_THREADS`).
    pub threads: u32,
    /// Total floating-point work.
    pub total_flops: f64,
    /// Total GDDR traffic (for the roofline's memory-bound side).
    pub bytes_touched: u64,
}

impl ComputeJob {
    pub fn new(
        name: impl Into<String>,
        threads: u32,
        total_flops: f64,
        bytes_touched: u64,
    ) -> Self {
        ComputeJob { name: name.into(), threads, total_flops, bytes_touched }
    }
}

/// How a job was placed and how long it ran (virtual time).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    pub duration: SimDuration,
    pub cores_used: u32,
    pub threads_per_core: u32,
    /// True when threads exceeded the hardware-thread capacity and the uOS
    /// had to timeslice.
    pub oversubscribed: bool,
    /// Effective compute rate in GFLOPS.
    pub effective_gflops: f64,
}

/// The uOS scheduler for one board.
#[derive(Debug)]
pub struct UosScheduler {
    spec: PhiSpec,
    cost: Arc<CostModel>,
    clock: Arc<VirtualClock>,
    /// Threads currently admitted (across all processes / VMs).
    active_threads: AtomicU32,
    jobs_completed: AtomicU64,
}

impl UosScheduler {
    pub fn new(spec: PhiSpec, cost: Arc<CostModel>, clock: Arc<VirtualClock>) -> Self {
        UosScheduler {
            spec,
            cost,
            clock,
            active_threads: AtomicU32::new(0),
            jobs_completed: AtomicU64::new(0),
        }
    }

    pub fn spec(&self) -> &PhiSpec {
        &self.spec
    }

    /// Round-robin assignment of `threads` over the usable cores; returns
    /// per-core thread counts (only the used cores).
    pub fn core_assignment(&self, threads: u32) -> Vec<u32> {
        let cores = self.spec.usable_cores();
        let used = threads.min(cores).max(1);
        let mut counts = vec![threads / used; used as usize];
        for slot in counts.iter_mut().take((threads % used) as usize) {
            *slot += 1;
        }
        counts
    }

    /// Fork-join overhead of spawning `threads` (pthread/OpenMP-style).
    pub fn spawn_overhead(&self, threads: u32) -> SimDuration {
        self.cost.uos_enqueue * threads as u64 + SimDuration::from_micros(30)
    }

    /// Pure-timing execution of `job`, charging spans to `tl`.
    pub fn run(&self, job: &ComputeJob, tl: &mut Timeline) -> JobOutcome {
        // Load at admission: other jobs' threads raise effective
        // threads-per-core for everyone (uOS has no gang scheduling).
        let others = self.active_threads.fetch_add(job.threads, Ordering::AcqRel);
        let outcome = self.model(job, others);
        tl.charge(SpanLabel::UosSchedule, self.spawn_overhead(job.threads));
        if outcome.oversubscribed {
            // Context-switch tax: one switch per timeslice per extra
            // runnable thread beyond hardware capacity.
            let slices = outcome.duration.as_nanos() / self.cost.uos_timeslice.as_nanos().max(1);
            tl.charge(SpanLabel::UosContextSwitch, self.cost.uos_context_switch * slices.max(1));
        }
        tl.charge(SpanLabel::DeviceCompute, outcome.duration);
        self.clock.advance(outcome.duration);
        self.active_threads.fetch_sub(job.threads, Ordering::AcqRel);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// Model a set of co-scheduled jobs (e.g. one per VM sharing the card).
    /// All jobs are admitted at the same virtual instant, so each one sees
    /// the others' threads on the run queues — the deterministic form of
    /// what [`run`](UosScheduler::run) samples racily at admission.
    pub fn run_concurrent(&self, jobs: &[ComputeJob], tls: &mut [Timeline]) -> Vec<JobOutcome> {
        assert_eq!(jobs.len(), tls.len(), "one timeline per job");
        let total: u32 = jobs.iter().map(|j| j.threads).sum();
        jobs.iter()
            .zip(tls.iter_mut())
            .map(|(job, tl)| {
                let others = total - job.threads;
                let outcome = self.model(job, others);
                tl.charge(SpanLabel::UosSchedule, self.spawn_overhead(job.threads));
                if outcome.oversubscribed {
                    let slices =
                        outcome.duration.as_nanos() / self.cost.uos_timeslice.as_nanos().max(1);
                    tl.charge(
                        SpanLabel::UosContextSwitch,
                        self.cost.uos_context_switch * slices.max(1),
                    );
                }
                tl.charge(SpanLabel::DeviceCompute, outcome.duration);
                self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                outcome
            })
            .collect()
    }

    /// Execute real work (`f`) alongside the timing model — used by
    /// validation-scale workloads where results are checked for
    /// correctness.
    pub fn run_with<R>(
        &self,
        job: &ComputeJob,
        tl: &mut Timeline,
        f: impl FnOnce() -> R,
    ) -> (JobOutcome, R) {
        let result = f();
        let outcome = self.run(job, tl);
        (outcome, result)
    }

    fn model(&self, job: &ComputeJob, other_threads: u32) -> JobOutcome {
        let cores = self.spec.usable_cores();
        let hw_threads = self.spec.max_app_threads();
        let cores_used = job.threads.min(cores).max(1);
        let threads_per_core = job.threads.div_ceil(cores_used).max(1);

        let total_runnable = job.threads + other_threads;
        let oversubscribed = total_runnable > hw_threads;
        // Timeslicing factor: how many runnable threads compete for each
        // hardware thread the job owns.
        let oversub_factor =
            if oversubscribed { total_runnable as f64 / hw_threads as f64 } else { 1.0 };

        let eff = thread_efficiency(threads_per_core.min(self.spec.threads_per_core));
        let rate_gflops = cores_used as f64 * self.spec.core_peak_gflops() * eff;
        let flop_secs =
            if job.total_flops > 0.0 { job.total_flops / (rate_gflops * 1e9) } else { 0.0 };
        // Memory-bound side; bandwidth is shared across the cores a job
        // uses, approximated as the full-card bandwidth.
        let mem_secs = job.bytes_touched as f64 / GDDR_BYTES_PER_SEC;
        let secs = flop_secs.max(mem_secs) * oversub_factor;

        JobOutcome {
            duration: SimDuration::from_secs_f64(secs),
            cores_used,
            threads_per_core,
            oversubscribed,
            effective_gflops: rate_gflops,
        }
    }

    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    pub fn active_threads(&self) -> u32 {
        self.active_threads.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> UosScheduler {
        UosScheduler::new(
            PhiSpec::phi_3120p(),
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        )
    }

    fn dgemm_flops(n: u64) -> f64 {
        2.0 * (n as f64).powi(3)
    }

    #[test]
    fn core_assignment_round_robin() {
        let s = sched();
        assert_eq!(s.core_assignment(56), vec![1; 56]);
        assert_eq!(s.core_assignment(112), vec![2; 56]);
        assert_eq!(s.core_assignment(224), vec![4; 56]);
        // 60 threads on 56 cores: four cores get 2.
        let a = s.core_assignment(60);
        assert_eq!(a.len(), 56);
        assert_eq!(a.iter().sum::<u32>(), 60);
        assert_eq!(a.iter().filter(|&&c| c == 2).count(), 4);
    }

    #[test]
    fn more_threads_per_core_is_faster_up_to_capacity() {
        let s = sched();
        let mut durations = Vec::new();
        for threads in [56, 112, 224] {
            let mut tl = Timeline::new();
            let out = s.run(&ComputeJob::new("dgemm", threads, dgemm_flops(4096), 0), &mut tl);
            assert!(!out.oversubscribed);
            durations.push(out.duration);
        }
        assert!(durations[0] > durations[1], "112 threads should beat 56");
        assert!(durations[1] > durations[2], "224 threads should beat 112");
    }

    #[test]
    fn efficiency_matches_knc_issue_model() {
        let s = sched();
        let mut tl = Timeline::new();
        let out = s.run(&ComputeJob::new("dgemm", 224, dgemm_flops(8192), 0), &mut tl);
        // 56 cores × 17.6 GFLOPS × 0.82 ≈ 808 GFLOPS.
        assert!((out.effective_gflops - 808.0).abs() < 1.0, "{}", out.effective_gflops);
        assert_eq!(out.threads_per_core, 4);
        assert_eq!(out.cores_used, 56);
    }

    #[test]
    fn oversubscription_slows_down_and_charges_switches() {
        let s = sched();
        let mut tl_ok = Timeline::new();
        let base = s.run(&ComputeJob::new("j", 224, dgemm_flops(2048), 0), &mut tl_ok);
        let mut tl_over = Timeline::new();
        let over = s.run(&ComputeJob::new("j", 448, dgemm_flops(2048), 0), &mut tl_over);
        assert!(over.oversubscribed);
        assert!(over.duration > base.duration);
        assert!(tl_over.total_for(SpanLabel::UosContextSwitch) > SimDuration::ZERO);
        assert_eq!(tl_ok.total_for(SpanLabel::UosContextSwitch), SimDuration::ZERO);
    }

    #[test]
    fn concurrent_jobs_from_two_vms_share_the_card() {
        let s = sched();
        // Baseline: one 224-thread job alone.
        let mut tl0 = Timeline::new();
        let solo = s.run(&ComputeJob::new("solo", 224, dgemm_flops(2048), 0), &mut tl0).duration;

        // Two "VMs" each asking for 224 threads, co-scheduled: together
        // they oversubscribe the 224 hardware threads 2×, so each job runs
        // about twice as long.
        let jobs = vec![
            ComputeJob::new("vm0", 224, dgemm_flops(2048), 0),
            ComputeJob::new("vm1", 224, dgemm_flops(2048), 0),
        ];
        let mut tls = vec![Timeline::new(), Timeline::new()];
        let outs = s.run_concurrent(&jobs, &mut tls);
        for out in &outs {
            assert!(out.oversubscribed);
            let ratio = out.duration.as_nanos() as f64 / solo.as_nanos() as f64;
            assert!((ratio - 2.0).abs() < 0.05, "expected ~2x slowdown, got {ratio}");
        }
        assert_eq!(s.active_threads(), 0);
        assert_eq!(s.jobs_completed(), 3);
    }

    #[test]
    fn concurrent_jobs_within_capacity_do_not_interfere() {
        let s = sched();
        let jobs = vec![
            ComputeJob::new("vm0", 112, dgemm_flops(2048), 0),
            ComputeJob::new("vm1", 112, dgemm_flops(2048), 0),
        ];
        let mut tls = vec![Timeline::new(), Timeline::new()];
        let outs = s.run_concurrent(&jobs, &mut tls);
        assert!(outs.iter().all(|o| !o.oversubscribed));
    }

    #[test]
    fn memory_bound_jobs_hit_the_gddr_roofline() {
        let s = sched();
        let mut tl = Timeline::new();
        // STREAM-like: almost no flops, lots of bytes.
        let bytes = 15_000_000_000u64; // 15 GB of traffic
        let out = s.run(&ComputeJob::new("stream", 224, 1.0, bytes), &mut tl);
        let implied_bw = bytes as f64 / out.duration.as_secs_f64();
        assert!((implied_bw - GDDR_BYTES_PER_SEC).abs() / GDDR_BYTES_PER_SEC < 0.01);
    }

    #[test]
    fn run_with_returns_real_results() {
        let s = sched();
        let mut tl = Timeline::new();
        let (_, sum) =
            s.run_with(&ComputeJob::new("sum", 4, 100.0, 0), &mut tl, || (1..=10).sum::<u32>());
        assert_eq!(sum, 55);
        assert!(tl.total_for(SpanLabel::DeviceCompute) > SimDuration::ZERO);
    }

    #[test]
    fn zero_flop_job_is_instant_compute() {
        let s = sched();
        let mut tl = Timeline::new();
        let out = s.run(&ComputeJob::new("noop", 1, 0.0, 0), &mut tl);
        assert_eq!(out.duration, SimDuration::ZERO);
        // Spawn overhead is still charged.
        assert!(tl.total_for(SpanLabel::UosSchedule) > SimDuration::ZERO);
    }
}

//! Device (GDDR) memory with a first-fit region allocator.
//!
//! The modeled capacity (6 GB on the 3120P) is tracked by the allocator,
//! but host RAM is only committed for regions that are actually allocated
//! *and* touched: each region owns a real `Vec<u8>` so SCIF RMA and mmap
//! are functionally exact, while the paper-scale experiments that only need
//! timing can allocate "timed" regions that carry no backing store.

use std::collections::BTreeMap;
use std::sync::Arc;

use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sync::{LockClass, TrackedMutex, TrackedRwLock};

/// Errors from the device memory allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Not enough contiguous free device memory.
    OutOfMemory,
    /// Access outside an allocated region.
    OutOfBounds,
    /// Access to a timed (unbacked) region's contents.
    Unbacked,
    /// Zero-length request.
    EmptyRequest,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of device memory"),
            MemError::OutOfBounds => write!(f, "device memory access out of bounds"),
            MemError::Unbacked => write!(f, "region has no backing store (timed allocation)"),
            MemError::EmptyRequest => write!(f, "zero-length allocation"),
        }
    }
}

impl std::error::Error for MemError {}

/// A handle to an allocated span of device memory.
///
/// Dropping the last handle does **not** free the region (SCIF windows can
/// outlive local handles); call [`DeviceMemory::free`] explicitly, exactly
/// as `scif_unregister` does.
#[derive(Debug)]
pub struct DeviceRegion {
    offset: u64,
    len: u64,
    backing: Option<TrackedMutex<Vec<u8>>>,
}

impl DeviceRegion {
    /// Device byte offset of the region start.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_backed(&self) -> bool {
        self.backing.is_some()
    }

    /// Read `buf.len()` bytes starting at `at` within the region.
    ///
    /// Timed (unbacked) regions read as zeros — like uninitialized GDDR —
    /// so paper-scale throughput experiments can RMA against them without
    /// committing gigabytes of simulation-host RAM.
    pub fn read(&self, at: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let end = at.checked_add(buf.len() as u64).ok_or(MemError::OutOfBounds)?;
        if end > self.len {
            return Err(MemError::OutOfBounds);
        }
        match self.backing.as_ref() {
            Some(backing) => {
                let data = backing.lock();
                buf.copy_from_slice(&data[at as usize..end as usize]);
            }
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Write `buf` starting at `at` within the region.
    ///
    /// Writes to timed (unbacked) regions are range-checked and discarded.
    pub fn write(&self, at: u64, buf: &[u8]) -> Result<(), MemError> {
        let end = at.checked_add(buf.len() as u64).ok_or(MemError::OutOfBounds)?;
        if end > self.len {
            return Err(MemError::OutOfBounds);
        }
        if let Some(backing) = self.backing.as_ref() {
            let mut data = backing.lock();
            data[at as usize..end as usize].copy_from_slice(buf);
        }
        Ok(())
    }

    /// Run `f` with the whole backing buffer locked (device-local compute).
    pub fn with_bytes_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> Result<R, MemError> {
        let backing = self.backing.as_ref().ok_or(MemError::Unbacked)?;
        let mut data = backing.lock();
        Ok(f(&mut data))
    }
}

#[derive(Debug, Clone, Copy)]
struct FreeSpan {
    len: u64,
}

/// The card's GDDR: a first-fit allocator over the modeled capacity plus
/// the registry of live regions.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    inner: TrackedRwLock<MemInner>,
}

#[derive(Debug, Default)]
struct MemInner {
    /// offset → free span starting there.
    free: BTreeMap<u64, FreeSpan>,
    /// offset → live region.
    regions: BTreeMap<u64, Arc<DeviceRegion>>,
    allocated: u64,
}

impl DeviceMemory {
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0 && capacity.is_multiple_of(PAGE_SIZE), "capacity must be whole pages");
        let mut free = BTreeMap::new();
        free.insert(0, FreeSpan { len: capacity });
        DeviceMemory {
            capacity,
            inner: TrackedRwLock::new(
                LockClass::PhiMemTable,
                MemInner { free, regions: BTreeMap::new(), allocated: 0 },
            ),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn allocated(&self) -> u64 {
        self.inner.read().allocated
    }

    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated()
    }

    fn round_up(len: u64) -> u64 {
        len.div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    fn alloc_inner(&self, len: u64, backed: bool) -> Result<Arc<DeviceRegion>, MemError> {
        if len == 0 {
            return Err(MemError::EmptyRequest);
        }
        let len = Self::round_up(len);
        let mut inner = self.inner.write();
        // First fit over the free map.
        let slot = inner
            .free
            .iter()
            .find(|(_, span)| span.len >= len)
            .map(|(&off, &span)| (off, span))
            .ok_or(MemError::OutOfMemory)?;
        let (off, span) = slot;
        inner.free.remove(&off);
        if span.len > len {
            inner.free.insert(off + len, FreeSpan { len: span.len - len });
        }
        let region = Arc::new(DeviceRegion {
            offset: off,
            len,
            backing: backed
                .then(|| TrackedMutex::new(LockClass::PhiMemData, vec![0u8; len as usize])),
        });
        inner.regions.insert(off, Arc::clone(&region));
        inner.allocated += len;
        Ok(region)
    }

    /// Allocate a real (byte-backed) region, page-rounded.
    pub fn alloc(&self, len: u64) -> Result<Arc<DeviceRegion>, MemError> {
        self.alloc_inner(len, true)
    }

    /// Allocate a *timed* region: capacity accounting only, no bytes.
    /// Used by paper-scale experiments that never inspect contents.
    pub fn alloc_timed(&self, len: u64) -> Result<Arc<DeviceRegion>, MemError> {
        self.alloc_inner(len, false)
    }

    /// Free a region by its start offset, coalescing adjacent free spans.
    pub fn free(&self, offset: u64) -> Result<(), MemError> {
        let mut inner = self.inner.write();
        let region = inner.regions.remove(&offset).ok_or(MemError::OutOfBounds)?;
        inner.allocated -= region.len;
        let mut start = offset;
        let mut len = region.len;
        // Coalesce with the next free span.
        if let Some(&FreeSpan { len: next_len }) = inner.free.get(&(start + len)) {
            inner.free.remove(&(start + len));
            len += next_len;
        }
        // Coalesce with the previous free span.
        if let Some((&prev_off, &prev)) = inner.free.range(..start).next_back() {
            if prev_off + prev.len == start {
                inner.free.remove(&prev_off);
                start = prev_off;
                len += prev.len;
            }
        }
        inner.free.insert(start, FreeSpan { len });
        Ok(())
    }

    /// Look up the live region containing device offset `addr`.
    pub fn region_at(&self, addr: u64) -> Option<Arc<DeviceRegion>> {
        let inner = self.inner.read();
        inner
            .regions
            .range(..=addr)
            .next_back()
            .filter(|(&off, r)| addr < off + r.len)
            .map(|(_, r)| Arc::clone(r))
    }

    pub fn region_count(&self) -> usize {
        self.inner.read().regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi_sim_core::units::MIB;

    #[test]
    fn alloc_rounds_to_pages_and_tracks_usage() {
        let m = DeviceMemory::new(16 * MIB);
        let r = m.alloc(1).unwrap();
        assert_eq!(r.len(), PAGE_SIZE);
        assert_eq!(m.allocated(), PAGE_SIZE);
        assert_eq!(m.free_bytes(), 16 * MIB - PAGE_SIZE);
    }

    #[test]
    fn read_write_roundtrip() {
        let m = DeviceMemory::new(MIB);
        let r = m.alloc(8192).unwrap();
        r.write(100, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        r.read(100, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = DeviceMemory::new(MIB);
        let r = m.alloc(PAGE_SIZE).unwrap();
        assert_eq!(r.write(PAGE_SIZE - 2, &[0; 4]), Err(MemError::OutOfBounds));
        let mut buf = [0u8; 8];
        assert_eq!(r.read(PAGE_SIZE, &mut buf), Err(MemError::OutOfBounds));
        assert_eq!(r.read(u64::MAX - 2, &mut buf), Err(MemError::OutOfBounds));
    }

    #[test]
    fn oom_when_capacity_exhausted() {
        let m = DeviceMemory::new(4 * PAGE_SIZE);
        let _a = m.alloc(3 * PAGE_SIZE).unwrap();
        assert!(matches!(m.alloc(2 * PAGE_SIZE), Err(MemError::OutOfMemory)));
        // But a single page still fits.
        assert!(m.alloc(PAGE_SIZE).is_ok());
    }

    #[test]
    fn free_coalesces_neighbours() {
        let m = DeviceMemory::new(8 * PAGE_SIZE);
        let a = m.alloc(2 * PAGE_SIZE).unwrap();
        let b = m.alloc(2 * PAGE_SIZE).unwrap();
        let c = m.alloc(2 * PAGE_SIZE).unwrap();
        m.free(b.offset()).unwrap();
        m.free(a.offset()).unwrap();
        m.free(c.offset()).unwrap();
        // Everything back to one span: a full-capacity alloc must succeed.
        assert_eq!(m.allocated(), 0);
        assert!(m.alloc(8 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn region_lookup_by_address() {
        let m = DeviceMemory::new(MIB);
        let a = m.alloc(2 * PAGE_SIZE).unwrap();
        let b = m.alloc(PAGE_SIZE).unwrap();
        assert_eq!(m.region_at(a.offset()).unwrap().offset(), a.offset());
        assert_eq!(m.region_at(a.offset() + PAGE_SIZE + 5).unwrap().offset(), a.offset());
        assert_eq!(m.region_at(b.offset()).unwrap().offset(), b.offset());
        assert!(m.region_at(b.offset() + b.len()).is_none());
        m.free(a.offset()).unwrap();
        assert!(m.region_at(a.offset()).is_none());
    }

    #[test]
    fn timed_regions_read_zeros_and_discard_writes() {
        let m = DeviceMemory::new(MIB);
        let r = m.alloc_timed(64 * PAGE_SIZE).unwrap();
        assert!(!r.is_backed());
        r.write(0, &[1, 2, 3]).unwrap();
        let mut b = [0xFFu8; 3];
        r.read(0, &mut b).unwrap();
        assert_eq!(b, [0, 0, 0]); // writes discarded, reads are zeros
                                  // Bounds are still enforced.
        assert_eq!(r.read(64 * PAGE_SIZE, &mut b), Err(MemError::OutOfBounds));
        // with_bytes_mut still refuses (no backing to expose).
        assert!(r.with_bytes_mut(|_| ()).is_err());
        // Capacity is still accounted.
        assert_eq!(m.allocated(), 64 * PAGE_SIZE);
    }

    #[test]
    fn zero_length_alloc_rejected() {
        let m = DeviceMemory::new(MIB);
        assert_eq!(m.alloc(0).err(), Some(MemError::EmptyRequest));
    }

    #[test]
    fn double_free_rejected() {
        let m = DeviceMemory::new(MIB);
        let r = m.alloc(PAGE_SIZE).unwrap();
        m.free(r.offset()).unwrap();
        assert_eq!(m.free(r.offset()), Err(MemError::OutOfBounds));
    }
}

//! Seeded atomics-ordering violations.
//!
//! `running` is registered in the contract table as a publication flag
//! (Acquire load / Release store); both uses here are `Relaxed` and must
//! be flagged as `atomic-weak`.  `rogue_counter` is not registered at
//! all and must be flagged as `atomic-unregistered`.  This file is never
//! compiled or analyzed as part of the workspace; golden tests feed it
//! through `analyze_sources` directly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn stop_worker(running: &AtomicBool) {
    running.store(false, Ordering::Relaxed);
}

fn await_worker(running: &AtomicBool) -> bool {
    running.load(Ordering::Relaxed)
}

fn bump(rogue_counter: &AtomicU64) {
    rogue_counter.fetch_add(1, Ordering::Relaxed);
}

//! Seeded guest-taint violations.
//!
//! `copy_in` sizes an allocation from a descriptor's own `len` and
//! indexes with its `next` link, neither of which passes a bounds check
//! — the taint pass must flag both sinks.  `head_id` panics via
//! `unwrap()` on what would be guest-controlled input — the
//! `guest-unwrap` subcheck must flag it.  This file is never compiled or
//! analyzed as part of the workspace; golden tests feed it through
//! `analyze_sources` directly (the fixtures path prefix opts it into the
//! taint pass's scope).

use crate::ring::Descriptor;

fn copy_in(d: &Descriptor, table: &[u8]) -> Vec<u8> {
    let len = d.len;
    let mut buf = vec![0u8; len as usize];
    let slot = d.next;
    buf[0] = table[slot as usize];
    buf
}

fn head_id(ids: &[u16]) -> u16 {
    *ids.first().unwrap()
}

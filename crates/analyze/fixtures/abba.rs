//! Seeded lock-order violation: a classic same-layer ABBA pair.
//!
//! `forward` takes TestA then TestB; `backward` takes them in the
//! opposite order.  The two order edges form a cycle within layer 92,
//! which the lock pass must report as `cycle:TestA+TestB` with a witness
//! path for each leg.  This file is never compiled or analyzed as part
//! of the workspace (the fixtures directory is on the skip list); golden
//! tests feed it through `analyze_sources` directly.

use vphi_sync::{LockClass, TrackedMutex};

struct AbbaPair {
    alpha: TrackedMutex<u32>,
    beta: TrackedMutex<u32>,
}

impl AbbaPair {
    fn mk() -> AbbaPair {
        AbbaPair {
            alpha: TrackedMutex::new(LockClass::TestA, 0),
            beta: TrackedMutex::new(LockClass::TestB, 0),
        }
    }

    fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}

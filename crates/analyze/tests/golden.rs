//! Golden tests for `vphi-analyze`: the real workspace must be clean
//! modulo the checked-in baseline, the report must be byte-stable, and
//! each pass must catch its seeded fixture violation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Load one fixture as an in-memory source tree rooted at the fixtures
/// path (which opts it into the taint pass's scope).
fn fixture(name: &str) -> Vec<(String, String)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    vec![(format!("crates/analyze/fixtures/{name}"), src)]
}

fn keys(report: &vphi_analyze::Report) -> Vec<String> {
    report.findings.iter().map(|f| f.key()).collect()
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = repo_root();
    let report = vphi_analyze::analyze_root(&root).unwrap();
    let baseline = vphi_analyze::load_baseline(&root);
    let (new, _waived, stale) = report.against(&baseline);
    let rendered: Vec<String> = new.iter().map(|f| f.key()).collect();
    assert!(new.is_empty(), "new findings not in analyze-baseline.txt: {rendered:#?}");
    assert!(stale.is_empty(), "stale baseline entries (fixed code — prune them): {stale:#?}");
}

#[test]
fn report_is_byte_stable_across_runs() {
    let root = repo_root();
    let a = vphi_analyze::analyze_root(&root).unwrap().render(&BTreeSet::new());
    let b = vphi_analyze::analyze_root(&root).unwrap().render(&BTreeSet::new());
    assert_eq!(a, b);
    assert!(a.contains("vphi-analyze report"));
}

#[test]
fn seeded_abba_cycle_is_caught() {
    let report = vphi_analyze::analyze_sources(&fixture("abba.rs")).unwrap();
    let keys = keys(&report);
    assert!(
        keys.contains(&"lock-order|(workspace)|-|cycle:TestA+TestB".to_string()),
        "ABBA cycle not reported: {keys:?}"
    );
    // The witness call path names both legs.
    let cycle = report.findings.iter().find(|f| f.detail.starts_with("cycle:")).unwrap();
    assert!(cycle.message.contains("forward"), "{}", cycle.message);
    assert!(cycle.message.contains("backward"), "{}", cycle.message);
}

#[test]
fn seeded_weak_ordering_and_unregistered_atomic_are_caught() {
    let report = vphi_analyze::analyze_sources(&fixture("weak_ordering.rs")).unwrap();
    let keys = keys(&report);
    let rel = "crates/analyze/fixtures/weak_ordering.rs";
    for want in [
        format!("atomic-weak|{rel}|stop_worker|running.store:Relaxed<Release"),
        format!("atomic-weak|{rel}|await_worker|running.load:Relaxed<Acquire"),
        format!("atomic-unregistered|{rel}|bump|rogue_counter.fetch_add"),
    ] {
        assert!(keys.contains(&want), "missing {want}: {keys:?}");
    }
}

#[test]
fn seeded_unvalidated_taint_is_caught() {
    let report = vphi_analyze::analyze_sources(&fixture("unchecked_len.rs")).unwrap();
    let keys = keys(&report);
    let rel = "crates/analyze/fixtures/unchecked_len.rs";
    for want in [
        format!("guest-taint|{rel}|copy_in|len:allocation size"),
        format!("guest-taint|{rel}|copy_in|slot:index"),
        format!("guest-unwrap|{rel}|head_id|first.unwrap"),
    ] {
        assert!(keys.contains(&want), "missing {want}: {keys:?}");
    }
}

//! vphi-analyze: whole-workspace static analysis for the vPHI tree.
//!
//! Three passes over a token-level model of every non-test source file
//! (parsed with the offline `syn` shim — no rustc, no network):
//!
//! 1. **Lock order** ([`locks`]) — per-function lock-acquisition
//!    summaries propagated over the call graph to a fixpoint, checked
//!    against the `vphi-sync` [`LockClass`](vphi_sync::LockClass)
//!    hierarchy.  Reports layer inversions and same-layer ABBA cycles
//!    with full witness call paths.
//! 2. **Atomics ordering** ([`atomics`]) — every `Ordering::*` use is
//!    checked against a declared per-atomic contract (counter vs
//!    protocol tier); unregistered atomics are themselves findings.
//! 3. **Guest taint** ([`taint`]) — values decoded from guest memory
//!    must pass a bounds check before indexing, sizing an allocation, or
//!    forming a DMA range; guest-reachable `unwrap()` is flagged.
//!
//! Run as `cargo run -p xtask -- analyze`.  Output is deterministic and
//! byte-stable; known findings live in `analyze-baseline.txt` at the
//! repo root with one justified key per line.

pub mod atomics;
pub mod exempt;
pub mod locks;
pub mod model;
pub mod report;
pub mod taint;

use std::collections::BTreeSet;
use std::path::Path;

pub use report::{parse_baseline, Finding, Report, Summary};

/// Collect workspace sources as `(rel_path, contents)`, sorted by path,
/// honoring [`exempt::skip_dir`].  Shared with the xtask lint walker so
/// both tools see the same tree.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {dir:?}: {e}"))?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if path.is_dir() {
            if exempt::skip_dir(&rel) {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            let rel = rel.to_string_lossy().replace('\\', "/");
            out.push((rel, src));
        }
    }
    Ok(())
}

/// Run all three passes over in-memory sources and return a normalized
/// report.  This is the seam golden tests use to analyze fixture trees.
pub fn analyze_sources(sources: &[(String, String)]) -> Result<Report, String> {
    let ws = model::Workspace::parse(sources)?;
    let classes = locks::ClassTable::from_sync();
    let mut findings = Vec::new();
    let mut summary = Summary { files: ws.files.len(), ..Summary::default() };
    for f in &ws.files {
        summary.functions += f.functions.len();
        summary.test_functions += f.functions.iter().filter(|f| f.is_test).count();
    }
    summary.lock_decls = ws.locks.decls;

    locks::run(&ws, &classes, &mut findings, &mut summary);
    atomics::run(&ws, &mut findings, &mut summary);
    taint::run(&ws, &mut findings, &mut summary);

    let mut report = Report { findings, summary };
    report.normalize();
    Ok(report)
}

/// Analyze the workspace rooted at `root`.
pub fn analyze_root(root: &Path) -> Result<Report, String> {
    let sources = collect_sources(root)?;
    analyze_sources(&sources)
}

/// Load the checked-in baseline next to `root` (missing file = empty).
pub fn load_baseline(root: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(root.join("analyze-baseline.txt"))
        .map(|t| parse_baseline(&t))
        .unwrap_or_default()
}

//! Pass 1: static lock-order verification.
//!
//! For every function we extract (a) the lock classes it acquires, with
//! the set of classes already held at each acquisition, and (b) its call
//! sites, with the classes held across each call.  Per-function summaries
//! (`may_acquire`) are propagated over the name-resolved call graph to a
//! fixpoint, so "holds `FrontendInflight`, calls `submit`, which three
//! frames down takes `VirtQueueState`" produces the same `Inflight →
//! QueueState` edge the runtime detector would record — but over *all*
//! paths, not just the interleavings a test happens to execute.
//!
//! Edges are then checked against the hierarchy exported by `vphi-sync`
//! (`LockClass::ALL` / `layer()`): acquiring a lower-layer class while a
//! higher-layer class is held is a layer inversion; a cycle among
//! same-layer edges (the classic ABBA) is reported with a witness call
//! path for every edge in the cycle.
//!
//! Approximations, on purpose (token-level analysis):
//! - A `let`-bound guard is held to the end of its enclosing brace scope
//!   (or an explicit `drop(guard)`); an unbound guard (`x.lock().f()`)
//!   is held to the end of the statement.
//! - Receivers resolve by field name via [`crate::model::LockFields`];
//!   unresolved receivers are counted, not guessed.
//! - Calls resolve by callee name, same-crate first.  Unknown names (std
//!   methods, constructors) simply contribute no edges.

use std::collections::BTreeMap;

use syn::{Delimiter, TokenTree};

use crate::model::{is_keyword, Workspace};
use crate::report::{Finding, Summary};

/// Methods that acquire a tracked lock when the receiver resolves.
const ACQUIRE_METHODS: &[&str] = &["lock", "lock_or_recover", "try_lock", "read", "write"];

/// Callee names never resolved interprocedurally: ubiquitous std method
/// names that would otherwise alias unrelated in-tree functions
/// (`.insert()` on a `BTreeMap` is not `PhiMemTable::insert`, `.map()`
/// on an `Option` is not `KvmGuestMem::map`).  Deliberate
/// under-approximation: an in-tree function with one of these names
/// contributes no *call* edges, but its direct acquisitions are still
/// checked with its own held context.
const NO_RESOLVE: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "binary_search",
    "binary_search_by_key",
    "chain",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "compare_exchange_weak",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "default",
    "deref",
    "deref_mut",
    "drop",
    "dedup",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "load",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "push",
    "push_back",
    "read_exact",
    "remove",
    "resize",
    "retain",
    "rev",
    "saturating_sub",
    "send",
    "set",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "spawn",
    "split",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "wrapping_add",
    "write_all",
    "zip",
    // Constructors: `X::new()` is almost never *this* crate's `new`.
    "new",
    "with_capacity",
    // Condvar methods: the guard is *released* while parked, so treating
    // them as calls made with the lock held would be wrong even when the
    // name resolves.
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "notify_one",
    "notify_all",
];

/// Calls whose closure argument runs on another thread: the spawner's
/// held set does not apply inside it.
const SPAWN_LIKE: &[&str] = &["spawn", "spawn_worker"];

/// The class table exported by `vphi-sync`, keyed by variant name.
pub struct ClassTable {
    by_name: BTreeMap<&'static str, (u8, u8)>, // name -> (index, layer)
    names: Vec<&'static str>,
    layers: Vec<u8>,
}

impl ClassTable {
    pub fn from_sync() -> ClassTable {
        let mut by_name = BTreeMap::new();
        let mut names = Vec::new();
        let mut layers = Vec::new();
        for c in vphi_sync::LockClass::ALL {
            by_name.insert(c.name(), (c.index() as u8, c.layer()));
            names.push(c.name());
            layers.push(c.layer());
        }
        ClassTable { by_name, names, layers }
    }

    fn lookup(&self, name: &str) -> Option<(u8, u8)> {
        self.by_name.get(name).copied()
    }

    fn name(&self, idx: u8) -> &'static str {
        self.names[idx as usize]
    }

    fn layer(&self, idx: u8) -> u8 {
        self.layers[idx as usize]
    }
}

/// An acquisition event: class acquired, classes locally held, line.
struct Acq {
    class: u8,
    held: u64,
    line: usize,
}

/// A call site: callee name, classes locally held, line.
struct Call {
    callee: String,
    held: u64,
    line: usize,
}

#[derive(Default)]
struct FnExtract {
    acqs: Vec<Acq>,
    calls: Vec<Call>,
    sites: usize,
    resolved: usize,
}

struct HeldEntry {
    guard: Option<String>,
    class: u8,
    temp: bool,
}

fn mask(held: &[HeldEntry]) -> u64 {
    held.iter().fold(0u64, |m, e| m | (1u64 << e.class))
}

/// Walk one nesting level of a function body, tracking held guards.
fn walk_level(
    tokens: &[TokenTree],
    rel: &str,
    krate: &str,
    ws: &Workspace,
    classes: &ClassTable,
    held: &mut Vec<HeldEntry>,
    out: &mut FnExtract,
) {
    let scope_base = held.len();
    let mut stmt_base = held.len();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.ch == ';' => {
                // Temporaries die at the end of their statement.
                let mut k = held.len();
                while k > stmt_base {
                    k -= 1;
                    if held[k].temp {
                        held.remove(k);
                    }
                }
                stmt_base = held.len();
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == '.' => {
                let method = tokens.get(i + 1).and_then(TokenTree::ident);
                let args = match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis => Some(g),
                    _ => None,
                };
                if let (Some(m), Some(args)) = (method, args) {
                    if ACQUIRE_METHODS.contains(&m) {
                        let receiver = if i > 0 { tokens[i - 1].ident() } else { None };
                        let class = receiver
                            .and_then(|f| ws.locks.resolve(rel, krate, f))
                            .and_then(|c| classes.lookup(c));
                        let strong = matches!(m, "lock" | "lock_or_recover");
                        if strong || class.is_some() {
                            out.sites += 1;
                        }
                        if let Some((idx, _)) = class {
                            out.resolved += 1;
                            out.acqs.push(Acq {
                                class: idx,
                                held: mask(held),
                                line: tokens[i + 1].line(),
                            });
                            // `x.lock().f(..)` consumes the guard in the
                            // chained call — it is a temporary no matter
                            // what the statement binds.
                            let consumed = matches!(
                                tokens.get(i + 3),
                                Some(TokenTree::Punct(p)) if p.ch == '.' || p.ch == '?'
                            );
                            let guard = if consumed { None } else { let_binding_before(tokens, i) };
                            let temp = guard.is_none();
                            held.push(HeldEntry { guard, class: idx, temp });
                        }
                    } else if !NO_RESOLVE.contains(&m) {
                        // A method call: record with the current held set.
                        out.calls.push(Call {
                            callee: m.to_string(),
                            held: mask(held),
                            line: tokens[i + 1].line(),
                        });
                    }
                    if SPAWN_LIKE.contains(&m) {
                        // The closure runs on another thread: no guard
                        // held here is held there.
                        let mut fresh = Vec::new();
                        walk_level(&args.tokens, rel, krate, ws, classes, &mut fresh, out);
                    } else {
                        walk_level(&args.tokens, rel, krate, ws, classes, held, out);
                    }
                    i += 3;
                    continue;
                }
                i += 1;
            }
            TokenTree::Ident(id) => {
                // `drop(g)` releases a named guard early.
                if id.text == "drop" {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if g.delimiter == Delimiter::Parenthesis {
                            if let Some(name) = sole_ident(&g.tokens) {
                                held.retain(|e| e.guard.as_deref() != Some(name));
                                i += 2;
                                continue;
                            }
                        }
                    }
                }
                // Free-function call `name(args)` (not a macro, not `fn`).
                let is_fn_def = i > 0 && tokens[i - 1].ident() == Some("fn");
                if !is_keyword(&id.text) && !is_fn_def {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if g.delimiter == Delimiter::Parenthesis {
                            if !NO_RESOLVE.contains(&id.text.as_str()) {
                                out.calls.push(Call {
                                    callee: id.text.clone(),
                                    held: mask(held),
                                    line: id.line,
                                });
                            }
                            if SPAWN_LIKE.contains(&id.text.as_str()) {
                                let mut fresh = Vec::new();
                                walk_level(&g.tokens, rel, krate, ws, classes, &mut fresh, out);
                                i += 2;
                                continue;
                            }
                        }
                    }
                }
                i += 1;
            }
            TokenTree::Group(g) => {
                walk_level(&g.tokens, rel, krate, ws, classes, held, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
    held.truncate(scope_base);
}

/// The sole ident of a token list (`drop(g)`'s argument), if that's all
/// there is.
fn sole_ident(tokens: &[TokenTree]) -> Option<&str> {
    match tokens {
        [TokenTree::Ident(id)] => Some(&id.text),
        _ => None,
    }
}

/// If the expression containing position `dot` (the `.` before `lock`) is
/// `let [mut] NAME = receiver.lock()`, return `NAME`.
fn let_binding_before(tokens: &[TokenTree], dot: usize) -> Option<String> {
    let mut j = dot;
    // Walk back over the receiver chain: idents, `.`, `?`, call groups.
    while j > 0 {
        let prev = &tokens[j - 1];
        let chain = match prev {
            TokenTree::Ident(id) => id.text == "self" || !is_keyword(&id.text),
            TokenTree::Punct(p) => p.ch == '.' || p.ch == '?' || p.ch == '&' || p.ch == '*',
            TokenTree::Group(g) => g.delimiter == Delimiter::Parenthesis,
            TokenTree::Literal(_) => false,
        };
        if !chain {
            break;
        }
        j -= 1;
    }
    // Expect `= NAME [mut] let` walking further back.
    if j == 0 || tokens[j - 1].punct() != Some('=') {
        return None;
    }
    let name = tokens.get(j.checked_sub(2)?)?.ident()?;
    if is_keyword(name) {
        return None;
    }
    let mut k = j - 2;
    if k > 0 && tokens[k - 1].ident() == Some("mut") {
        k -= 1;
    }
    if k > 0 && tokens[k - 1].ident() == Some("let") {
        Some(name.to_string())
    } else {
        None
    }
}

/// Where an order edge was first observed.
enum Witness {
    /// `fun` directly acquires `to` at `line` while holding `from`.
    Direct { fun: usize, line: usize },
    /// `fun` calls `callee` at `line` holding `from`; `callee` may
    /// (transitively) acquire `to`.
    Call { fun: usize, line: usize, callee: usize },
}

struct FnInfo {
    file: usize,
    name: String,
    extract: FnExtract,
    /// Line of the first *direct* acquisition per class.
    direct_line: BTreeMap<u8, usize>,
    /// Classes this function may acquire, directly or transitively.
    may: u64,
    /// For transitively-acquired classes: the callee that introduced it.
    prov: BTreeMap<u8, usize>,
    /// Resolved callee fn ids, per call site (parallel to extract.calls).
    callees: Vec<Vec<usize>>,
}

/// Run the pass, appending findings and filling the lock/call counters of
/// `summary`.
pub fn run(
    ws: &Workspace,
    classes: &ClassTable,
    findings: &mut Vec<Finding>,
    summary: &mut Summary,
) {
    // 1. Extract every function.
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut file_rels: Vec<&str> = Vec::new();
    for (fidx, file) in ws.files.iter().enumerate() {
        file_rels.push(&file.rel);
        for f in &file.functions {
            // Test code is excluded: the runtime audit already covers the
            // interleavings tests execute, and tests/lock_order.rs
            // *deliberately* violates the hierarchy to exercise it.
            if f.is_test {
                continue;
            }
            let mut extract = FnExtract::default();
            let mut held = Vec::new();
            walk_level(&f.body, &file.rel, &file.krate, ws, classes, &mut held, &mut extract);
            let mut direct_line = BTreeMap::new();
            for a in &extract.acqs {
                direct_line.entry(a.class).or_insert(a.line);
            }
            let may = extract.acqs.iter().fold(0u64, |m, a| m | (1u64 << a.class));
            fns.push(FnInfo {
                file: fidx,
                name: f.name.clone(),
                extract,
                direct_line,
                may,
                prov: BTreeMap::new(),
                callees: Vec::new(),
            });
        }
    }
    summary.lock_sites = fns.iter().map(|f| f.extract.sites).sum();
    summary.lock_sites_resolved = fns.iter().map(|f| f.extract.resolved).sum();

    // 2. Name-resolve calls: same-crate definitions first, then a
    // globally-unique definition; anything else contributes nothing.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(id);
        let krate = &ws.files[f.file].krate;
        by_crate_name.entry((krate, &f.name)).or_default().push(id);
    }
    let mut call_edges: std::collections::BTreeSet<(usize, usize)> = Default::default();
    let mut resolved_calls: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
    for (id, f) in fns.iter().enumerate() {
        let krate: &str = &ws.files[f.file].krate;
        let mut per_fn = Vec::with_capacity(f.extract.calls.len());
        for c in &f.extract.calls {
            // A name with several same-crate definitions is ambiguous
            // (which `close`?) — resolving to all of them manufactured
            // false cycles, so ambiguity resolves to nothing, exactly
            // like ambiguous lock-field names.
            let same_crate = by_crate_name.get(&(krate, c.callee.as_str()));
            let targets: Vec<usize> = match same_crate {
                Some(ids) if ids.len() == 1 => ids.clone(),
                Some(_) => Vec::new(),
                None => match by_name.get(c.callee.as_str()) {
                    Some(ids) if ids.len() == 1 => ids.clone(),
                    _ => Vec::new(),
                },
            };
            for &t in &targets {
                if t != id {
                    call_edges.insert((id, t));
                }
            }
            per_fn.push(targets);
        }
        resolved_calls.push(per_fn);
    }
    for (f, callees) in fns.iter_mut().zip(resolved_calls) {
        f.callees = callees;
    }
    summary.call_edges = call_edges.len();

    // 3. Fixpoint: may_acquire closure over the call graph, recording
    // which callee first introduced each transitive class (for witness
    // path reconstruction).
    loop {
        let mut changed = false;
        for id in 0..fns.len() {
            let mut add: Vec<(u8, usize)> = Vec::new();
            for targets in &fns[id].callees {
                for &t in targets {
                    let new_bits = fns[t].may & !fns[id].may;
                    if new_bits != 0 {
                        for c in 0..64u8 {
                            if new_bits & (1 << c) != 0 && !add.iter().any(|(b, _)| *b == c) {
                                add.push((c, t));
                            }
                        }
                    }
                }
            }
            for (c, t) in add {
                if fns[id].may & (1 << c) == 0 {
                    fns[id].may |= 1 << c;
                    fns[id].prov.insert(c, t);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 4. Build the class-order edge set with one witness per edge.
    let mut edges: BTreeMap<(u8, u8), Witness> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        for a in &f.extract.acqs {
            for from in bits(a.held) {
                edges.entry((from, a.class)).or_insert(Witness::Direct { fun: id, line: a.line });
            }
        }
        for (c, targets) in f.extract.calls.iter().zip(&f.callees) {
            if c.held == 0 {
                continue;
            }
            for &t in targets {
                for to in bits(fns[t].may) {
                    for from in bits(c.held) {
                        edges.entry((from, to)).or_insert(Witness::Call {
                            fun: id,
                            line: c.line,
                            callee: t,
                        });
                    }
                }
            }
        }
    }
    summary.order_edges = edges.len();

    // 5. Check edges against the hierarchy.
    let path = |w: &Witness, to: u8| witness_path(w, to, &fns, &file_rels, classes);
    for (&(from, to), w) in &edges {
        let (lf, lt) = (classes.layer(from), classes.layer(to));
        let (fun, line) = match *w {
            Witness::Direct { fun, line } | Witness::Call { fun, line, .. } => (fun, line),
        };
        let file = file_rels[fns[fun].file].to_string();
        let function = fns[fun].name.clone();
        if from == to {
            findings.push(Finding {
                rule: "lock-order",
                file,
                function,
                line,
                detail: format!("{0}->{0}", classes.name(from)),
                message: format!(
                    "{} (layer {}) may be re-acquired while already held: {}",
                    classes.name(from),
                    lf,
                    path(w, to)
                ),
            });
        } else if lt < lf {
            findings.push(Finding {
                rule: "lock-order",
                file,
                function,
                line,
                detail: format!("{}->{}", classes.name(from), classes.name(to)),
                message: format!(
                    "layer inversion: acquiring {} (layer {}) while holding {} (layer {}): {}",
                    classes.name(to),
                    lt,
                    classes.name(from),
                    lf,
                    path(w, to)
                ),
            });
        }
    }

    // 6. ABBA cycles among same-layer edges.
    let same_layer: Vec<(u8, u8)> = edges
        .keys()
        .copied()
        .filter(|&(a, b)| a != b && classes.layer(a) == classes.layer(b))
        .collect();
    for cycle in cycles(&same_layer) {
        let names: Vec<&str> = cycle.iter().map(|&c| classes.name(c)).collect();
        let mut legs = Vec::new();
        for k in 0..cycle.len() {
            let (a, b) = (cycle[k], cycle[(k + 1) % cycle.len()]);
            if let Some(w) = edges.get(&(a, b)) {
                legs.push(format!("{}->{} via {}", classes.name(a), classes.name(b), path(w, b)));
            }
        }
        findings.push(Finding {
            rule: "lock-order",
            file: "(workspace)".into(),
            function: "-".into(),
            line: 0,
            detail: format!("cycle:{}", names.join("+")),
            message: format!(
                "ABBA cycle within layer {}: {} [{}]",
                classes.layer(cycle[0]),
                names.join(" -> "),
                legs.join("; ")
            ),
        });
    }
}

fn bits(mask: u64) -> impl Iterator<Item = u8> {
    (0..64u8).filter(move |c| mask & (1u64 << c) != 0)
}

/// Render a witness as a call path ending at the direct acquisition.
fn witness_path(
    w: &Witness,
    to: u8,
    fns: &[FnInfo],
    file_rels: &[&str],
    classes: &ClassTable,
) -> String {
    match *w {
        Witness::Direct { fun, line } => {
            format!("{} ({}:{})", fns[fun].name, file_rels[fns[fun].file], line)
        }
        Witness::Call { fun, line, callee } => {
            let mut parts =
                vec![format!("{} ({}:{})", fns[fun].name, file_rels[fns[fun].file], line)];
            let mut cur = callee;
            for _ in 0..12 {
                if let Some(&l) = fns[cur].direct_line.get(&to) {
                    parts.push(format!(
                        "{} (acquires {} at {}:{})",
                        fns[cur].name,
                        classes.name(to),
                        file_rels[fns[cur].file],
                        l
                    ));
                    return parts.join(" -> ");
                }
                match fns[cur].prov.get(&to) {
                    Some(&next) => {
                        parts.push(fns[cur].name.clone());
                        cur = next;
                    }
                    None => break,
                }
            }
            parts.push("...".into());
            parts.join(" -> ")
        }
    }
}

/// Elementary cycles in a small digraph, canonicalized (rotated so the
/// smallest node leads) and deduplicated; deterministic order.
fn cycles(edges: &[(u8, u8)]) -> Vec<Vec<u8>> {
    let mut adj: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut found: Vec<Vec<u8>> = Vec::new();
    let mut seen: std::collections::BTreeSet<Vec<u8>> = Default::default();
    let nodes: Vec<u8> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        dfs_cycles(start, start, &adj, &mut stack, &mut seen, &mut found, 0);
    }
    found
}

fn dfs_cycles(
    start: u8,
    at: u8,
    adj: &BTreeMap<u8, Vec<u8>>,
    stack: &mut Vec<u8>,
    seen: &mut std::collections::BTreeSet<Vec<u8>>,
    found: &mut Vec<Vec<u8>>,
    depth: usize,
) {
    if depth > 8 {
        return;
    }
    let Some(nexts) = adj.get(&at) else { return };
    for &n in nexts {
        if n == start && stack.len() > 1 {
            let mut canon = stack.clone();
            let min_pos =
                canon.iter().enumerate().min_by_key(|(_, v)| **v).map(|(i, _)| i).unwrap_or(0);
            canon.rotate_left(min_pos);
            if seen.insert(canon.clone()) {
                found.push(canon);
            }
        } else if !stack.contains(&n) && n > start {
            // Only explore nodes greater than start: each cycle is found
            // from its smallest node exactly once.
            stack.push(n);
            dfs_cycles(start, n, adj, stack, seen, found, depth + 1);
            stack.pop();
        }
    }
}

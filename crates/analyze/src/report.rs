//! Findings, the baseline/allowlist, and deterministic rendering.
//!
//! A finding's identity (its baseline key) is `rule|file|function|detail`
//! — deliberately line-free, so unrelated edits that move code do not
//! invalidate the allowlist.  Rendering sorts by key and is byte-stable
//! across runs on the same tree.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub function: String,
    pub line: usize,
    /// Stable discriminator within (rule, file, function) — e.g. the edge
    /// `TestA->TestB` or the tainted ident.
    pub detail: String,
    pub message: String,
}

impl Finding {
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.rule, self.file, self.function, self.detail)
    }
}

/// The run's aggregate counters, printed with every report so a reviewer
/// can tell "no findings" from "analyzed nothing".
#[derive(Debug, Default, Clone)]
pub struct Summary {
    pub files: usize,
    pub functions: usize,
    pub test_functions: usize,
    pub lock_decls: usize,
    pub lock_sites: usize,
    pub lock_sites_resolved: usize,
    pub call_edges: usize,
    pub order_edges: usize,
    pub atomic_ops: usize,
    pub taint_sources: usize,
    pub taint_sinks: usize,
}

/// A full analysis result.
pub struct Report {
    pub findings: Vec<Finding>,
    pub summary: Summary,
}

impl Report {
    /// Sort findings into their canonical (byte-stable) order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| a.key().cmp(&b.key()).then(a.line.cmp(&b.line)));
        self.findings.dedup_by(|a, b| a.key() == b.key());
    }

    /// Render the whole report against a baseline.  Waived findings are
    /// counted but not listed; stale baseline entries are warned about so
    /// the allowlist shrinks as code is fixed.
    pub fn render(&self, baseline: &BTreeSet<String>) -> String {
        let mut out = String::new();
        let s = &self.summary;
        let _ = writeln!(out, "vphi-analyze report");
        let _ = writeln!(out, "  files analyzed:      {}", s.files);
        let _ = writeln!(out, "  functions:           {} ({} test)", s.functions, s.test_functions);
        let _ = writeln!(out, "  lock declarations:   {}", s.lock_decls);
        let _ = writeln!(out, "  lock sites resolved: {}/{}", s.lock_sites_resolved, s.lock_sites);
        let _ = writeln!(out, "  call-graph edges:    {}", s.call_edges);
        let _ = writeln!(out, "  lock-order edges:    {}", s.order_edges);
        let _ = writeln!(out, "  atomic ops checked:  {}", s.atomic_ops);
        let _ = writeln!(out, "  taint sources:       {}", s.taint_sources);
        let _ = writeln!(out, "  taint sinks checked: {}", s.taint_sinks);
        let (new, waived, stale) = self.against(baseline);
        let _ = writeln!(
            out,
            "  findings:            {} ({} waived by baseline, {} new)",
            self.findings.len(),
            waived,
            new.len()
        );
        for f in &new {
            let _ =
                writeln!(out, "{}:{}: [{}] {} ({})", f.file, f.line, f.rule, f.message, f.key());
        }
        for k in &stale {
            let _ = writeln!(out, "warning: stale baseline entry (nothing matches): {k}");
        }
        out
    }

    /// Split findings into (new, waived-count, stale-baseline-entries).
    pub fn against<'a>(
        &'a self,
        baseline: &BTreeSet<String>,
    ) -> (Vec<&'a Finding>, usize, Vec<String>) {
        let mut waived = 0usize;
        let mut new = Vec::new();
        let mut used: BTreeSet<&str> = BTreeSet::new();
        for f in &self.findings {
            let key = f.key();
            if let Some(hit) = baseline.iter().find(|b| **b == key) {
                waived += 1;
                used.insert(hit.as_str());
            } else {
                new.push(f);
            }
        }
        let stale: Vec<String> =
            baseline.iter().filter(|b| !used.contains(b.as_str())).cloned().collect();
        (new, waived, stale)
    }
}

/// Parse a baseline file: one key per line, `#` comments and blank lines
/// ignored.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, detail: &str) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".into(),
            function: "f".into(),
            line: 3,
            detail: detail.into(),
            message: "msg".into(),
        }
    }

    #[test]
    fn baseline_waives_exact_keys_and_reports_stale_ones() {
        let mut r = Report {
            findings: vec![finding("guest-taint", "len"), finding("guest-taint", "idx")],
            summary: Summary::default(),
        };
        r.normalize();
        let base = parse_baseline(
            "# allowed\nguest-taint|crates/x/src/lib.rs|f|len\nguest-taint|crates/x/src/lib.rs|gone|old\n",
        );
        let (new, waived, stale) = r.against(&base);
        assert_eq!(waived, 1);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].detail, "idx");
        assert_eq!(stale, ["guest-taint|crates/x/src/lib.rs|gone|old"]);
    }

    #[test]
    fn rendering_is_stable_across_runs() {
        let mk = || {
            let mut r = Report {
                findings: vec![finding("b-rule", "z"), finding("a-rule", "a")],
                summary: Summary::default(),
            };
            r.normalize();
            r.render(&BTreeSet::new())
        };
        assert_eq!(mk(), mk());
        assert!(mk().contains("[a-rule]"));
    }
}

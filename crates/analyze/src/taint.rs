//! Pass 3: guest-taint dataflow.
//!
//! The trust boundary (PAPER.md): everything a guest writes into a virtio
//! descriptor table and everything `VphiRequest::decode` pulls out of a
//! request buffer is attacker-controlled.  Within the boundary files this
//! pass marks values *tainted* when they come from descriptor fields
//! (`.addr` / `.len` / `.next` / `.id` / `.flags`) or from destructuring
//! a `VphiRequest`, propagates taint through `let` rebindings to a
//! fixpoint, and then requires every tainted value to pass a sanitizer —
//! a bounds comparison, a checked helper (`idx()`, `checked_*`,
//! `try_from`, `min`/`clamp`/`%`), or the validating `with_slice` — before
//! it reaches a sink: slice indexing `[x]`, an allocation size
//! (`vec![_; x]`, `with_capacity(x)`), or a slice range.
//!
//! The lattice is deliberately small (untainted < tainted <
//! tainted-but-sanitized, per function, flow-insensitive): at token level
//! a per-path analysis would be guesswork, but "a bound was checked
//! *somewhere* in this function" is exactly the invariant the scattered
//! ad-hoc checks were already trying to encode.
//!
//! The same boundary files also get a `guest-unwrap` check: `unwrap()` /
//! `expect()` reachable from guest-controlled input is a panic the guest
//! can trigger; justified ones live in the baseline with a comment.

use std::collections::BTreeSet;

use syn::{Delimiter, TokenTree};

use crate::model::{is_keyword, Workspace};
use crate::report::{Finding, Summary};

/// Files whose input is guest-controlled.  The analyzer's own fixtures
/// opt in so seeded violations are caught by golden tests.
pub fn in_scope(rel: &str) -> bool {
    matches!(
        rel,
        "crates/virtio/src/queue.rs"
            | "crates/virtio/src/ring.rs"
            | "crates/core/src/protocol.rs"
            | "crates/core/src/backend/mod.rs"
            | "crates/core/src/backend/dispatch.rs"
    ) || rel.starts_with("crates/analyze/fixtures/")
}

/// Struct fields whose *read* yields guest-controlled data (virtio
/// descriptor-table and used-elem fields).
const SOURCE_FIELDS: &[&str] = &["addr", "len", "next", "id", "flags"];

/// Callee names that validate their argument (or perform the bounds check
/// internally and return a `Result`).
const SANITIZER_CALLS: &[&str] =
    &["idx", "checked_idx", "try_from", "min", "max", "clamp", "with_slice", "validate"];

pub fn run(ws: &Workspace, findings: &mut Vec<Finding>, summary: &mut Summary) {
    for file in &ws.files {
        if !in_scope(&file.rel) {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            analyze_fn(&f.body, &file.rel, &f.name, findings, summary);
        }
    }
}

fn analyze_fn(
    body: &[TokenTree],
    rel: &str,
    function: &str,
    findings: &mut Vec<Finding>,
    summary: &mut Summary,
) {
    // 1. Collect `let` statements (flattened over all nesting levels) as
    // (bound idents, RHS tokens), plus VphiRequest destructure bindings.
    let mut lets: Vec<(Vec<String>, Vec<TokenTree>)> = Vec::new();
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    collect_bindings(body, &mut lets, &mut tainted);

    // 2. Propagate: a binding whose RHS reads a source field or mentions
    // a tainted ident becomes tainted.  Iterate to fixpoint.
    loop {
        let mut changed = false;
        for (names, rhs) in &lets {
            if names.iter().all(|n| tainted.contains(n)) {
                continue;
            }
            if rhs_is_tainted(rhs, &tainted) {
                for n in names {
                    changed |= tainted.insert(n.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    summary.taint_sources += tainted.len();

    // 3. Sanitized idents: compared against a bound, passed to a checked
    // helper, or arithmetic-bounded, anywhere in the function.  A binding
    // whose RHS went *through* a sanitizer (`let i = st.idx(u.id)?`) is
    // sanitized at birth.
    let mut sanitized: BTreeSet<String> = BTreeSet::new();
    collect_sanitized(body, &tainted, &mut sanitized);
    for (names, rhs) in &lets {
        if rhs_sanitizes(rhs) {
            for n in names {
                sanitized.insert(n.clone());
            }
        }
    }

    // 4. Sinks.
    let mut reported: BTreeSet<String> = BTreeSet::new();
    scan_sinks(body, rel, function, &tainted, &sanitized, &mut reported, findings, summary);

    // 5. Guest-reachable panics.
    scan_unwraps(body, rel, function, findings);
}

/// Gather `let`-bindings and seed taints from `VphiRequest::X { a, b }`
/// destructuring patterns.
fn collect_bindings(
    tokens: &[TokenTree],
    lets: &mut Vec<(Vec<String>, Vec<TokenTree>)>,
    tainted: &mut BTreeSet<String>,
) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.text == "let" => {
                // Pattern = tokens up to the top-level `=`; RHS to `;`.
                let mut j = i + 1;
                let mut eq = None;
                while j < tokens.len() {
                    match &tokens[j] {
                        TokenTree::Punct(p) if p.ch == '=' => {
                            // Not `==` / `=>` / `>=`-style.
                            let nx = tokens.get(j + 1).and_then(TokenTree::punct);
                            if nx != Some('=') && nx != Some('>') {
                                eq = Some(j);
                                break;
                            }
                            j += 1;
                        }
                        TokenTree::Punct(p) if p.ch == ';' => break,
                        _ => j += 1,
                    }
                }
                let Some(eq) = eq else {
                    i += 1;
                    continue;
                };
                let mut end = eq + 1;
                while end < tokens.len() && tokens[end].punct() != Some(';') {
                    end += 1;
                }
                let names = pattern_idents(&tokens[i + 1..eq]);
                let rhs: Vec<TokenTree> = tokens[eq + 1..end].to_vec();
                lets.push((names, rhs));
                // The RHS may itself contain nested groups with lets
                // (closures); recurse over it too.
                for t in &tokens[eq + 1..end] {
                    if let TokenTree::Group(g) = t {
                        collect_bindings(&g.tokens, lets, tainted);
                    }
                }
                i = end;
            }
            TokenTree::Ident(id) if id.text == "VphiRequest" => {
                // `VphiRequest :: Variant { a, b, .. }` — in a *pattern*
                // the brace idents bind guest-decoded payload fields.
                if tokens.get(i + 1).and_then(TokenTree::punct) == Some(':')
                    && tokens.get(i + 2).and_then(TokenTree::punct) == Some(':')
                {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 4) {
                        if g.delimiter == Delimiter::Brace {
                            for n in pattern_idents(&g.tokens) {
                                tainted.insert(n);
                            }
                        }
                    }
                }
                i += 1;
            }
            TokenTree::Group(g) => {
                collect_bindings(&g.tokens, lets, tainted);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Idents bound by a pattern fragment (excluding keywords, types, and
/// struct-pattern field renames `field: binding` keep the binding side).
fn pattern_idents(tokens: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if !is_keyword(&id.text) => {
                // Skip `Path ::` segments and `name :` field labels.
                let next = tokens.get(i + 1).and_then(TokenTree::punct);
                let after = tokens.get(i + 2).and_then(TokenTree::punct);
                let is_path = next == Some(':') && after == Some(':');
                let is_label = next == Some(':') && after != Some(':');
                let is_type = id.text.chars().next().is_some_and(char::is_uppercase);
                if !is_path && !is_label && !is_type {
                    out.push(id.text.clone());
                }
                i += 1;
            }
            TokenTree::Group(g) => {
                out.extend(pattern_idents(&g.tokens));
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Whether an RHS expression carries taint: reads a source field (`.len`
/// not followed by `(`), or mentions a tainted ident.
fn rhs_is_tainted(tokens: &[TokenTree], tainted: &BTreeSet<String>) -> bool {
    for i in 0..tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let is_field_read = i > 0
                    && tokens[i - 1].punct() == Some('.')
                    && SOURCE_FIELDS.contains(&id.text.as_str())
                    && !matches!(
                        tokens.get(i + 1),
                        Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                    );
                if is_field_read {
                    return true;
                }
                let is_method = i > 0 && tokens[i - 1].punct() == Some('.');
                if !is_method && tainted.contains(&id.text) {
                    return true;
                }
            }
            TokenTree::Group(g) if rhs_is_tainted(&g.tokens, tainted) => return true,
            _ => {}
        }
    }
    false
}

/// Mark tainted idents sanitized by comparisons, checked helpers, and
/// modulo-bounding.
fn collect_sanitized(tokens: &[TokenTree], tainted: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    for i in 0..tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if tainted.contains(&id.text) => {
                let prev = if i > 0 { tokens[i - 1].punct() } else { None };
                let next = tokens.get(i + 1).and_then(TokenTree::punct);
                // `x < bound`, `bound > x`, `x >= n`, `x % n`, ...
                if matches!(prev, Some('<') | Some('>') | Some('%'))
                    || matches!(next, Some('<') | Some('>') | Some('%'))
                {
                    out.insert(id.text.clone());
                }
                // `x.min(..)`, `x.checked_add(..)`, `x.clamp(..)`.
                if next == Some('.') {
                    if let Some(m) = tokens.get(i + 2).and_then(TokenTree::ident) {
                        if SANITIZER_CALLS.contains(&m) || m.starts_with("checked_") {
                            out.insert(id.text.clone());
                        }
                    }
                }
            }
            TokenTree::Ident(id) => {
                // `idx(x)`, `with_slice(.., x, ..)`, `try_from(x)`:
                // a sanitizer call whose args mention a tainted ident.
                let sanitizes =
                    SANITIZER_CALLS.contains(&id.text.as_str()) || id.text.starts_with("checked_");
                if sanitizes {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if g.delimiter == Delimiter::Parenthesis {
                            mark_mentioned(&g.tokens, tainted, out);
                        }
                    }
                }
            }
            _ => {}
        }
        if let TokenTree::Group(g) = &tokens[i] {
            collect_sanitized(&g.tokens, tainted, out);
        }
    }
}

/// Whether an RHS routes its value through a sanitizer call.
fn rhs_sanitizes(tokens: &[TokenTree]) -> bool {
    for i in 0..tokens.len() {
        if let Some(id) = tokens[i].ident() {
            let sanitizes = SANITIZER_CALLS.contains(&id) || id.starts_with("checked_");
            if sanitizes
                && matches!(
                    tokens.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                )
            {
                return true;
            }
        }
        if let TokenTree::Group(g) = &tokens[i] {
            if rhs_sanitizes(&g.tokens) {
                return true;
            }
        }
    }
    false
}

fn mark_mentioned(tokens: &[TokenTree], tainted: &BTreeSet<String>, out: &mut BTreeSet<String>) {
    for t in tokens {
        match t {
            TokenTree::Ident(id) if tainted.contains(&id.text) => {
                out.insert(id.text.clone());
            }
            TokenTree::Group(g) => mark_mentioned(&g.tokens, tainted, out),
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_sinks(
    tokens: &[TokenTree],
    rel: &str,
    function: &str,
    tainted: &BTreeSet<String>,
    sanitized: &BTreeSet<String>,
    reported: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
    summary: &mut Summary,
) {
    for i in 0..tokens.len() {
        match &tokens[i] {
            // Indexing / slicing: `recv [ .. x .. ]` where `recv` is an
            // expression (ident or close of a call/index), not an array
            // literal or attribute.
            TokenTree::Group(g) if g.delimiter == Delimiter::Bracket && i > 0 => {
                let indexes = match &tokens[i - 1] {
                    TokenTree::Ident(id) => !is_keyword(&id.text),
                    TokenTree::Group(p) => p.delimiter != Delimiter::Bracket,
                    _ => false,
                };
                let is_macro_body = i >= 2 && tokens[i - 1].punct() == Some('!');
                if indexes && !is_macro_body {
                    summary.taint_sinks += 1;
                    report_tainted_in(
                        &g.tokens, rel, function, g.line, "index", tainted, sanitized, reported,
                        findings,
                    );
                }
                // `vec![val; x]`: allocation sized by `x`.
                if is_macro_body && tokens.get(i - 2).and_then(TokenTree::ident) == Some("vec") {
                    if let Some(semi) = g.tokens.iter().position(|t| t.punct() == Some(';')) {
                        summary.taint_sinks += 1;
                        report_tainted_in(
                            &g.tokens[semi + 1..],
                            rel,
                            function,
                            g.line,
                            "allocation size",
                            tainted,
                            sanitized,
                            reported,
                            findings,
                        );
                    }
                }
            }
            // `with_capacity(x)`.
            TokenTree::Group(g)
                if g.delimiter == Delimiter::Parenthesis
                    && i > 0
                    && tokens[i - 1].ident() == Some("with_capacity") =>
            {
                summary.taint_sinks += 1;
                report_tainted_in(
                    &g.tokens,
                    rel,
                    function,
                    g.line,
                    "allocation size",
                    tainted,
                    sanitized,
                    reported,
                    findings,
                );
            }
            _ => {}
        }
        if let TokenTree::Group(g) = &tokens[i] {
            scan_sinks(&g.tokens, rel, function, tainted, sanitized, reported, findings, summary);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_tainted_in(
    tokens: &[TokenTree],
    rel: &str,
    function: &str,
    line: usize,
    sink: &str,
    tainted: &BTreeSet<String>,
    sanitized: &BTreeSet<String>,
    reported: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for t in tokens {
        match t {
            TokenTree::Ident(id) if tainted.contains(&id.text) && !sanitized.contains(&id.text) => {
                let detail = format!("{}:{sink}", id.text);
                if reported.insert(detail.clone()) {
                    findings.push(Finding {
                        rule: "guest-taint",
                        file: rel.to_string(),
                        function: function.to_string(),
                        line,
                        detail,
                        message: format!(
                            "guest-controlled `{}` reaches a {sink} without a bounds check; validate it (checked idx()/try_from/min) first",
                            id.text
                        ),
                    });
                }
            }
            TokenTree::Group(g) => report_tainted_in(
                &g.tokens, rel, function, line, sink, tainted, sanitized, reported, findings,
            ),
            _ => {}
        }
    }
}

/// `unwrap()` / `expect()` in guest-facing code: a panic the guest can
/// reach.  Justified sites live in the analyzer baseline.
fn scan_unwraps(tokens: &[TokenTree], rel: &str, function: &str, findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if tokens[i].punct() == Some('.') {
            if let Some(m @ ("unwrap" | "expect")) = tokens.get(i + 1).and_then(TokenTree::ident) {
                if matches!(
                    tokens.get(i + 2),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                ) {
                    // Identify the site by the nearest named thing to its
                    // left so the key survives reformatting.
                    let mut j = i;
                    let mut anchor = "?";
                    while j > 0 {
                        j -= 1;
                        if let Some(name) = tokens[j].ident() {
                            anchor = name;
                            break;
                        }
                    }
                    findings.push(Finding {
                        rule: "guest-unwrap",
                        file: rel.to_string(),
                        function: function.to_string(),
                        line: tokens[i + 1].line(),
                        detail: format!("{anchor}.{m}"),
                        message: format!(
                            ".{m}() in guest-facing code panics on guest-controlled input; return a typed error (or baseline it with a justification)"
                        ),
                    });
                }
            }
        }
        if let TokenTree::Group(g) = &tokens[i] {
            scan_unwraps(&g.tokens, rel, function, findings);
        }
    }
}

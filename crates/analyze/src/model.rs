//! The analyzer's view of the workspace: every `.rs` file lexed by the
//! `syn` shim, split into functions, plus the field-name → `LockClass`
//! table recovered from `TrackedMutex::new(LockClass::X, ..)` sites.
//!
//! The shim gives us token trees, not a typed AST, so "function" here
//! means a `fn NAME .. { body }` token span and receiver resolution is by
//! field *name*.  Names are resolved per-file first, then per-crate, then
//! globally-if-unique, so a `state` field in `virtio` and a `state` field
//! in `scif` never alias each other.

use std::collections::BTreeMap;

use syn::{Delimiter, TokenTree};

/// One function's token-level extract.
pub struct Function {
    pub name: String,
    pub line: usize,
    /// Inside `#[cfg(test)]`/`#[test]` items or a tests/benches path.
    pub is_test: bool,
    pub body: Vec<TokenTree>,
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Owning crate (directory under `crates/`, or `tests`/`examples`).
    pub krate: String,
    pub functions: Vec<Function>,
}

/// The whole parsed workspace.
pub struct Workspace {
    /// Sorted by `rel`.
    pub files: Vec<SourceFile>,
    pub locks: LockFields,
}

/// Idents that can never be a binding or callee name.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Owning crate of a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        Some(first) if first.ends_with(".rs") => "?".to_string(),
        Some(first) => first.to_string(),
        None => "?".to_string(),
    }
}

/// Whether the *path* marks everything in the file as test code.
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("crates/bench/")
}

impl Workspace {
    /// Parse `(rel, source)` pairs.  Order of the input does not matter;
    /// files are sorted by path so every downstream pass is deterministic.
    pub fn parse(sources: &[(String, String)]) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut locks = LockFields::default();
        let mut sorted: Vec<&(String, String)> = sources.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (rel, src) in sorted {
            let parsed = syn::parse_file(src).map_err(|e| format!("{rel}: {e}"))?;
            let krate = crate_of(rel);
            let mut functions = Vec::new();
            extract_functions(&parsed.tokens, is_test_path(rel), &mut functions);
            scan_lock_decls(&parsed.tokens, None, rel, &krate, &mut locks);
            files.push(SourceFile { rel: rel.clone(), krate, functions });
        }
        Ok(Workspace { files, locks })
    }
}

/// Walk a token level collecting `fn NAME .. { body }` items.  `mod` items
/// carry `#[cfg(test)]` down; other groups (impl blocks, match bodies) are
/// entered transparently.
fn extract_functions(tokens: &[TokenTree], in_test: bool, out: &mut Vec<Function>) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.text == "fn" => {
                let Some(name) = tokens.get(i + 1).and_then(TokenTree::ident) else {
                    i += 1;
                    continue;
                };
                // Body = first brace group before a `;` (trait methods
                // without bodies end at the `;`).
                let mut j = i + 2;
                let mut body: Option<&syn::Group> = None;
                while j < tokens.len() {
                    match &tokens[j] {
                        TokenTree::Punct(p) if p.ch == ';' => break,
                        TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                            body = Some(g);
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let is_test = in_test || item_attr_mentions(tokens, i, "test");
                if let Some(g) = body {
                    out.push(Function {
                        name: name.to_string(),
                        line: tokens[i + 1].line(),
                        is_test,
                        body: g.tokens.clone(),
                    });
                    extract_functions(&g.tokens, is_test, out);
                }
                i = j + 1;
            }
            TokenTree::Ident(id) if id.text == "mod" => {
                // `mod name { .. }` — inline module; propagate cfg(test).
                if let (Some(_), Some(TokenTree::Group(g))) =
                    (tokens.get(i + 1).and_then(TokenTree::ident), tokens.get(i + 2))
                {
                    if g.delimiter == Delimiter::Brace {
                        let test = in_test || item_attr_mentions(tokens, i, "test");
                        extract_functions(&g.tokens, test, out);
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            TokenTree::Group(g) => {
                extract_functions(&g.tokens, in_test, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Whether the item starting at `at` has a preceding `#[..]` attribute
/// mentioning ident `what` (scanning back over visibility/qualifiers).
fn item_attr_mentions(tokens: &[TokenTree], at: usize, what: &str) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &tokens[j] {
            TokenTree::Ident(id)
                if matches!(id.text.as_str(), "pub" | "const" | "unsafe" | "async" | "crate") => {}
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {}
            TokenTree::Group(g)
                if g.delimiter == Delimiter::Bracket
                    && j > 0
                    && tokens[j - 1].punct() == Some('#') =>
            {
                if group_mentions(&g.tokens, what) {
                    return true;
                }
                j -= 1;
            }
            _ => return false,
        }
    }
    false
}

fn group_mentions(tokens: &[TokenTree], what: &str) -> bool {
    tokens.iter().any(|t| match t {
        TokenTree::Ident(id) => id.text == what,
        TokenTree::Group(g) => group_mentions(&g.tokens, what),
        _ => false,
    })
}

/// Field-name → lock-class table.  A value of `None` marks a name bound to
/// two different classes at that scope (ambiguous: never resolved there).
#[derive(Default)]
pub struct LockFields {
    by_file: BTreeMap<(String, String), Option<String>>,
    by_crate: BTreeMap<(String, String), Option<String>>,
    global: BTreeMap<String, Option<String>>,
    pub decls: usize,
}

impl LockFields {
    fn add(&mut self, rel: &str, krate: &str, field: &str, class: &str) {
        self.decls += 1;
        for (map, key) in [
            (&mut self.by_file, (rel.to_string(), field.to_string())),
            (&mut self.by_crate, (krate.to_string(), field.to_string())),
        ] {
            map.entry(key)
                .and_modify(|v| {
                    if v.as_deref() != Some(class) {
                        *v = None;
                    }
                })
                .or_insert_with(|| Some(class.to_string()));
        }
        self.global
            .entry(field.to_string())
            .and_modify(|v| {
                if v.as_deref() != Some(class) {
                    *v = None;
                }
            })
            .or_insert_with(|| Some(class.to_string()));
    }

    /// Resolve a receiver field name at a use site: file scope first, then
    /// crate, then globally-unique.
    pub fn resolve(&self, rel: &str, krate: &str, field: &str) -> Option<&str> {
        if let Some(v) = self.by_file.get(&(rel.to_string(), field.to_string())) {
            return v.as_deref();
        }
        if let Some(v) = self.by_crate.get(&(krate.to_string(), field.to_string())) {
            return v.as_deref();
        }
        self.global.get(field).and_then(|v| v.as_deref())
    }
}

const TRACKED_CTORS: &[&str] = &["TrackedMutex", "TrackedRwLock"];

/// Find `TrackedMutex::new(LockClass::X, ..)` (and the RwLock form) and
/// map the nearest enclosing binding name — `field: ..` struct init or
/// `let name = ..` — to class `X`.  `binding` carries the nearest binding
/// seen at an ancestor level, so `field: Arc::new(TrackedMutex::new(..))`
/// resolves to `field`.
fn scan_lock_decls(
    tokens: &[TokenTree],
    binding: Option<&str>,
    rel: &str,
    krate: &str,
    out: &mut LockFields,
) {
    let mut current: Option<String> = binding.map(str::to_string);
    let mut i = 0;
    while i < tokens.len() {
        if let Some(name) = tokens[i].ident() {
            if !is_keyword(name) {
                // `name :` (single colon) or `name =` (plain assignment).
                let next = tokens.get(i + 1).and_then(TokenTree::punct);
                let after = tokens.get(i + 2).and_then(TokenTree::punct);
                let binds = (next == Some(':') && after != Some(':'))
                    || (next == Some('=') && after != Some('=') && after != Some('>'));
                if binds {
                    current = Some(name.to_string());
                }
            }
            if TRACKED_CTORS.contains(&name)
                && tokens.get(i + 1).and_then(TokenTree::punct) == Some(':')
                && tokens.get(i + 2).and_then(TokenTree::punct) == Some(':')
                && tokens.get(i + 3).and_then(TokenTree::ident) == Some("new")
            {
                if let Some(TokenTree::Group(args)) = tokens.get(i + 4) {
                    if args.delimiter == Delimiter::Parenthesis {
                        if let (Some(class), Some(field)) =
                            (lock_class_in(&args.tokens), current.as_deref())
                        {
                            out.add(rel, krate, field, class);
                        }
                    }
                }
            }
        }
        if let TokenTree::Group(g) = &tokens[i] {
            scan_lock_decls(&g.tokens, current.as_deref(), rel, krate, out);
        }
        i += 1;
    }
}

/// The `X` of the first top-level `LockClass :: X` in an argument list.
fn lock_class_in(tokens: &[TokenTree]) -> Option<&str> {
    for i in 0..tokens.len() {
        if tokens[i].ident() == Some("LockClass")
            && tokens.get(i + 1).and_then(TokenTree::punct) == Some(':')
            && tokens.get(i + 2).and_then(TokenTree::punct) == Some(':')
        {
            return tokens.get(i + 3).and_then(TokenTree::ident);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(rel: &str, src: &str) -> Workspace {
        Workspace::parse(&[(rel.to_string(), src.to_string())]).unwrap()
    }

    #[test]
    fn functions_and_test_scopes_are_extracted() {
        let src = "impl Foo {\n  pub fn run(&self) { inner() }\n}\nfn inner() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n";
        let w = ws("crates/demo/src/lib.rs", src);
        let names: Vec<(&str, bool)> =
            w.files[0].functions.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(names, [("run", false), ("inner", false), ("t", true)]);
    }

    #[test]
    fn tests_dir_paths_are_all_test_code() {
        let w = ws("crates/demo/tests/it.rs", "fn helper() {}");
        assert!(w.files[0].functions[0].is_test);
    }

    #[test]
    fn lock_decls_resolve_per_file_then_crate() {
        let a = (
            "crates/a/src/lib.rs".to_string(),
            "struct S;\nimpl S { fn new() -> Self { Self { state: TrackedMutex::new(LockClass::BoardState, 0) } } }".to_string(),
        );
        let b = (
            "crates/b/src/lib.rs".to_string(),
            "fn mk() { let state = Arc::new(TrackedMutex::new(LockClass::EndpointState, 0)); }"
                .to_string(),
        );
        let w = Workspace::parse(&[a, b]).unwrap();
        assert_eq!(w.locks.resolve("crates/a/src/lib.rs", "a", "state"), Some("BoardState"));
        assert_eq!(w.locks.resolve("crates/b/src/lib.rs", "b", "state"), Some("EndpointState"));
        // Cross-crate, the name is ambiguous globally.
        assert_eq!(w.locks.resolve("crates/c/src/lib.rs", "c", "state"), None);
        assert_eq!(w.locks.decls, 2);
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/virtio/src/queue.rs"), "virtio");
        assert_eq!(crate_of("tests/chaos.rs"), "tests");
        assert_eq!(crate_of("examples/mmap_device_memory.rs"), "examples");
        assert!(is_test_path("crates/core/tests/mq_fifo.rs"));
        assert!(is_test_path("crates/bench/benches/micro_components.rs"));
        assert!(!is_test_path("crates/core/src/backend/mod.rs"));
    }
}

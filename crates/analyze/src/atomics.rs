//! Pass 2: atomics-ordering audit.
//!
//! Every atomic in the workspace is registered in [`CONTRACTS`] with the
//! *minimum* ordering its protocol requires per operation kind (load /
//! store / read-modify-write).  The pass finds every `.load(Ordering::..)`
//! style call in non-test code and flags (a) an ordering weaker than the
//! site's declared contract (`atomic-weak`) and (b) any atomic receiver
//! that is not registered at all (`atomic-unregistered`) — so adding a new
//! atomic forces a conscious decision about its protocol, exactly like
//! adding a `LockClass` does for locks.
//!
//! Two tiers exist in practice (DESIGN.md #17):
//! - **counter**: statistics observed casually; `Relaxed` suffices.
//! - **protocol**: participates in a happens-before protocol (the
//!   EVENT_IDX Dekker pair `used_event`/`used_seq` from DESIGN.md #16 is
//!   `SeqCst`-only; start/stop flags publish with `Release`/`Acquire`).

use syn::{Delimiter, TokenTree};

use crate::report::{Finding, Summary};

/// Memory orderings, with a *satisfies* relation (not a total order:
/// `Acquire` and `Release` are incomparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrd {
    Relaxed,
    Release,
    Acquire,
    AcqRel,
    SeqCst,
}

impl MemOrd {
    fn parse(s: &str) -> Option<MemOrd> {
        Some(match s {
            "Relaxed" => MemOrd::Relaxed,
            "Release" => MemOrd::Release,
            "Acquire" => MemOrd::Acquire,
            "AcqRel" => MemOrd::AcqRel,
            "SeqCst" => MemOrd::SeqCst,
            _ => return None,
        })
    }

    /// Whether `self` is at least as strong as `min`.
    fn satisfies(self, min: MemOrd) -> bool {
        use MemOrd::*;
        match min {
            Relaxed => true,
            Acquire => matches!(self, Acquire | AcqRel | SeqCst),
            Release => matches!(self, Release | AcqRel | SeqCst),
            AcqRel => matches!(self, AcqRel | SeqCst),
            SeqCst => self == SeqCst,
        }
    }
}

/// One registered atomic: `field` is the receiver ident at use sites;
/// `scope` (a path substring, empty = anywhere) disambiguates same-named
/// atomics in different subsystems.
pub struct AtomicContract {
    pub field: &'static str,
    pub scope: &'static str,
    pub load: MemOrd,
    pub store: MemOrd,
    pub rmw: MemOrd,
}

const fn counter(field: &'static str) -> AtomicContract {
    AtomicContract {
        field,
        scope: "",
        load: MemOrd::Relaxed,
        store: MemOrd::Relaxed,
        rmw: MemOrd::Relaxed,
    }
}

const fn flag(field: &'static str, scope: &'static str) -> AtomicContract {
    AtomicContract {
        field,
        scope,
        load: MemOrd::Acquire,
        store: MemOrd::Release,
        rmw: MemOrd::AcqRel,
    }
}

/// The workspace's atomics, by protocol.  Scoped entries win over
/// unscoped ones.
pub const CONTRACTS: &[AtomicContract] = &[
    // EVENT_IDX Dekker pair (DESIGN.md #16): the guest publishes
    // `used_event`, the device publishes `used_seq`, and each then reads
    // the other side; both stores and both loads must be SeqCst or the
    // "both sides sleep" interleaving reappears.
    AtomicContract {
        field: "used_event",
        scope: "crates/virtio",
        load: MemOrd::SeqCst,
        store: MemOrd::SeqCst,
        rmw: MemOrd::SeqCst,
    },
    AtomicContract {
        field: "used_seq",
        scope: "crates/virtio",
        load: MemOrd::SeqCst,
        store: MemOrd::SeqCst,
        rmw: MemOrd::SeqCst,
    },
    // Lifecycle / publication flags: Release store publishes, Acquire
    // load observes.
    flag("shutdown", "core/src/frontend"),
    flag("running", ""),
    flag("closed", ""),
    flag("unmapped", "crates/core"),
    flag("stop", "crates/vmm"),
    flag("flag", "crates/vmm"),
    flag("done", "crates/vmm"),
    flag("timed_rx", "crates/scif"),
    flag("active_threads", "crates/phi-device"),
    AtomicContract {
        field: "ready",
        scope: "crates/vmm",
        load: MemOrd::Acquire,
        store: MemOrd::Release,
        rmw: MemOrd::Release,
    },
    // The simulated clock publishes time with Release/Acquire; its
    // advance CAS is AcqRel.
    flag("now_ns", "crates/sim-core"),
    flag("free_at_ns", "crates/sim-core"),
    // Plain counters and id allocators: Relaxed is the contract.
    counter("launches"),
    counter("endpoints_gced"),
    counter("endpoints_quarantined"),
    counter("guest_deaths"),
    counter("msi_lost"),
    counter("pages_translated"),
    counter("requests"),
    counter("windows_gced"),
    counter("worker_dispatches"),
    counter("irqs_injected"),
    counter("irqs_suppressed"),
    counter("evictions"),
    counter("hits"),
    counter("invalidations"),
    counter("misses"),
    counter("next_token"),
    counter("next_packet_id"),
    counter("uploads"),
    counter("bytes_total"),
    counter("next_channel"),
    counter("transfers"),
    counter("raised"),
    counter("resets"),
    counter("jobs_completed"),
    counter("next_ephemeral"),
    counter("next_ep_id"),
    counter("kicks"),
    counter("chains_popped"),
    counter("burst_drains"),
    counter("burst_chains"),
    counter("queue_worker_dispatches"),
    counter("batch_hist"),
    counter("crossings"),
    counter("suppress_windows"),
    counter("blocking_events"),
    counter("live_workers"),
    counter("live"),
    counter("vm_paused_ns"),
    counter("worker_events"),
    counter("wakeups"),
    counter("sleeps"),
    counter("spurious"),
    counter("broadcasts"),
    counter("NEXT_VM_ID"),
    counter("next_trace"),
    counter("next_span"),
    counter("open_spans"),
    counter("spans_dropped"),
    counter("spans_recorded"),
    counter("traces_finished"),
    counter("traces_started"),
    counter("grants"),
    counter("busy_total_ns"),
    // `defused` is a one-shot fault-plan disarm, observed casually: the
    // injector tolerates a stale read (the fault fires once more).
    counter("defused"),
    counter("fired"),
    // Zero-copy RMA statistics (DESIGN.md #19): mapping-table consistency
    // is the ApertureWindows lock's job; these only count.
    counter("windows_mapped"),
    counter("map_hits"),
    counter("sg_descriptors"),
    counter("staging_bytes_avoided"),
];

fn contract_for(rel: &str, field: &str) -> Option<&'static AtomicContract> {
    CONTRACTS
        .iter()
        .find(|c| c.field == field && !c.scope.is_empty() && rel.contains(c.scope))
        .or_else(|| CONTRACTS.iter().find(|c| c.field == field && c.scope.is_empty()))
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Run the pass over every non-test function.
pub fn run(ws: &crate::model::Workspace, findings: &mut Vec<Finding>, summary: &mut Summary) {
    for file in &ws.files {
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            scan(&f.body, &file.rel, &f.name, findings, summary);
        }
    }
}

fn scan(
    tokens: &[TokenTree],
    rel: &str,
    function: &str,
    findings: &mut Vec<Finding>,
    summary: &mut Summary,
) {
    for i in 0..tokens.len() {
        if tokens[i].punct() == Some('.') {
            let method = tokens.get(i + 1).and_then(TokenTree::ident);
            let args = match tokens.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis => Some(g),
                _ => None,
            };
            if let (Some(m), Some(args)) = (method, args) {
                if ATOMIC_METHODS.contains(&m) {
                    // Orderings named at the *top level* of the argument
                    // list (nested calls carry their own).
                    let ords = top_level_orderings(&args.tokens);
                    if !ords.is_empty() {
                        summary.atomic_ops += 1;
                        let receiver = receiver_ident(tokens, i);
                        check_op(rel, function, receiver, m, &ords, tokens[i + 1].line(), findings);
                    }
                }
            }
        }
        if let TokenTree::Group(g) = &tokens[i] {
            scan(&g.tokens, rel, function, findings, summary);
        }
    }
}

/// The atomic's name at a `.method(..)` site: the ident before the dot,
/// looking through one indexing group (`self.fired[i].load(..)` → `fired`).
fn receiver_ident(tokens: &[TokenTree], dot: usize) -> Option<&str> {
    match tokens.get(dot.checked_sub(1)?)? {
        TokenTree::Ident(id) => Some(&id.text),
        TokenTree::Group(g) if g.delimiter == Delimiter::Bracket => {
            tokens.get(dot.checked_sub(2)?)?.ident()
        }
        _ => None,
    }
}

/// `Ordering :: X` occurrences at one nesting level, in arg order.
fn top_level_orderings(tokens: &[TokenTree]) -> Vec<MemOrd> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].ident() == Some("Ordering")
            && tokens.get(i + 1).and_then(TokenTree::punct) == Some(':')
            && tokens.get(i + 2).and_then(TokenTree::punct) == Some(':')
        {
            if let Some(o) = tokens.get(i + 3).and_then(TokenTree::ident).and_then(MemOrd::parse) {
                out.push(o);
            }
        }
    }
    out
}

fn check_op(
    rel: &str,
    function: &str,
    receiver: Option<&str>,
    method: &str,
    ords: &[MemOrd],
    line: usize,
    findings: &mut Vec<Finding>,
) {
    let Some(recv) = receiver else {
        findings.push(Finding {
            rule: "atomic-unregistered",
            file: rel.to_string(),
            function: function.to_string(),
            line,
            detail: format!("?.{method}"),
            message: format!(".{method}() on an unnamed receiver; name the atomic so it can be registered in the contract table"),
        });
        return;
    };
    let Some(c) = contract_for(rel, recv) else {
        findings.push(Finding {
            rule: "atomic-unregistered",
            file: rel.to_string(),
            function: function.to_string(),
            line,
            detail: format!("{recv}.{method}"),
            message: format!(
                "atomic `{recv}` is not in the contract table; register it (counter or protocol tier) in vphi-analyze::atomics::CONTRACTS"
            ),
        });
        return;
    };
    // Slot minimums by operation kind; CAS-style ops carry a second
    // (failure-load) ordering.
    let slots: Vec<(MemOrd, &str)> = match method {
        "load" => vec![(c.load, "load")],
        "store" => vec![(c.store, "store")],
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => {
            vec![(c.rmw, "rmw"), (c.load, "failure load")]
        }
        _ => vec![(c.rmw, "rmw")],
    };
    for (k, &actual) in ords.iter().enumerate() {
        let Some(&(min, kind)) = slots.get(k) else { break };
        if !actual.satisfies(min) {
            findings.push(Finding {
                rule: "atomic-weak",
                file: rel.to_string(),
                function: function.to_string(),
                line,
                detail: format!("{recv}.{method}:{actual:?}<{min:?}"),
                message: format!(
                    "{recv}.{method}() uses Ordering::{actual:?} but the declared {kind} contract for `{recv}` requires at least {min:?}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfies_is_the_standard_strength_lattice() {
        use MemOrd::*;
        assert!(SeqCst.satisfies(Acquire));
        assert!(AcqRel.satisfies(Release));
        assert!(Acquire.satisfies(Relaxed));
        assert!(!Relaxed.satisfies(Acquire));
        assert!(!Acquire.satisfies(Release));
        assert!(!Release.satisfies(Acquire));
        assert!(!AcqRel.satisfies(SeqCst));
    }

    #[test]
    fn scoped_contracts_win_over_unscoped() {
        let c = contract_for("crates/virtio/src/queue.rs", "used_event").unwrap();
        assert_eq!(c.store, MemOrd::SeqCst);
        let c = contract_for("crates/core/src/backend/mod.rs", "running").unwrap();
        assert_eq!(c.store, MemOrd::Release);
        assert!(contract_for("crates/foo/src/lib.rs", "no_such_atomic").is_none());
    }
}

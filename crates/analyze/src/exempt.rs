//! The workspace's path-scoping tables, shared by `xtask lint` and
//! `vphi-analyze`.
//!
//! Before this module existed, each lint rule carried its own ad-hoc
//! exemption function (`queue_submit_exempt`, `irq_inject_exempt`, the
//! per-file scoping of the opctx/protocol/event-loop rules).  Keeping them
//! in one declarative table means a new tool (or a new rule) reuses the
//! same path semantics instead of growing another slightly-different copy.

use std::path::Path;

/// Directories (relative to the workspace root) every scanner skips.
/// `crates/sync` implements the tracked types on top of the raw
/// primitives; `shims/` vendors external crates verbatim-ish; the fixture
/// directories exist to fail.
pub const SKIP_DIRS: &[&str] =
    &["target", ".git", "shims", "crates/sync", "crates/xtask/fixtures", "crates/analyze/fixtures"];

/// A path predicate attached to a rule name: the rule matches a file when
/// its workspace-relative path starts with any `prefixes` entry, contains
/// any `contains` entry, or ends with any `suffixes` entry.
pub struct PathRule {
    pub rule: &'static str,
    pub prefixes: &'static [&'static str],
    pub contains: &'static [&'static str],
    pub suffixes: &'static [&'static str],
}

impl PathRule {
    fn matches(&self, rel: &str) -> bool {
        self.prefixes.iter().any(|p| rel.starts_with(p))
            || self.contains.iter().any(|c| rel.contains(c))
            || self.suffixes.iter().any(|s| rel.ends_with(s))
    }
}

/// Files exempt from a rule that otherwise applies everywhere.
///
/// - `queue-router`: the queue implementation itself (and its tests), the
///   frontend (which owns the router), the ring microbenchmark, and the
///   FIFO property test drive rings directly on purpose.  The notifier's
///   unit tests stage completions on a bare queue to exercise the
///   suppression decision in isolation.
/// - `msi-notifier`: the `IrqChip` crate itself (and its tests) and the
///   `LaneNotifier`, which owns the suppression decision every completion
///   MSI must pass through.
/// - `kick-doorbell`: the queue implementation itself (and its tests), the
///   frontend (whose batch submitter owns the one-doorbell-per-lane
///   decision, DESIGN.md #18), and the FIFO property test which rings
///   doorbells by hand on purpose.
/// - `staging-buffer`: `pcie::dma` owns the one sanctioned bounce
///   (`gather_copy`'s fixed 16 KiB block), and the backend's cold paths
///   (`Recv`, the small/feature-off RMA arms) legitimately stage — the
///   rule guards the zero-copy RMA path (DESIGN.md #19) against staging
///   vecs creeping back in.
pub const EXEMPTIONS: &[PathRule] = &[
    PathRule {
        rule: "queue-router",
        prefixes: &["crates/virtio/"],
        contains: &["core/src/frontend"],
        suffixes: &[
            "crates/bench/benches/micro_components.rs",
            "crates/core/tests/mq_fifo.rs",
            "core/src/backend/notify.rs",
        ],
    },
    PathRule {
        rule: "msi-notifier",
        prefixes: &["crates/vmm/"],
        contains: &[],
        suffixes: &["core/src/backend/notify.rs"],
    },
    PathRule {
        rule: "kick-doorbell",
        prefixes: &["crates/virtio/"],
        contains: &["core/src/frontend"],
        suffixes: &["crates/core/tests/mq_fifo.rs"],
    },
    PathRule {
        rule: "staging-buffer",
        prefixes: &[],
        contains: &[],
        suffixes: &["pcie/src/dma.rs", "core/src/backend/mod.rs"],
    },
];

/// Rules that apply *only* to specific files (the inverse of an
/// exemption): the protocol-exhaustiveness check, the event-loop blocking
/// check, and the OpCtx calling-convention check are each scoped to the
/// one file that defines the discipline.
pub const SCOPES: &[PathRule] = &[
    PathRule {
        rule: "protocol-exhaustive",
        prefixes: &[],
        contains: &[],
        suffixes: &["core/src/protocol.rs"],
    },
    PathRule {
        rule: "event-loop-blocking",
        prefixes: &[],
        contains: &[],
        suffixes: &["vmm/src/event_loop.rs"],
    },
    PathRule { rule: "opctx-api", prefixes: &[], contains: &[], suffixes: &["scif/src/api.rs"] },
    PathRule {
        rule: "staging-buffer",
        prefixes: &["crates/core/src/backend/", "crates/pcie/src/"],
        contains: &[],
        suffixes: &["scif/src/rma.rs"],
    },
];

/// Whether `rel` is exempt from `rule`.  Rules with no exemption entry are
/// never exempt.
pub fn is_exempt(rule: &str, rel: &Path) -> bool {
    let rel = rel.to_string_lossy();
    EXEMPTIONS.iter().any(|r| r.rule == rule && r.matches(&rel))
}

/// Whether `rule` applies to `rel` at all.  Rules with no scope entry
/// apply everywhere.
pub fn in_scope(rule: &str, rel: &Path) -> bool {
    let rel = rel.to_string_lossy();
    let mut scoped = SCOPES.iter().filter(|r| r.rule == rule).peekable();
    if scoped.peek().is_none() {
        return true;
    }
    scoped.any(|r| r.matches(&rel))
}

/// Whether the workspace walker skips `rel` (a directory) entirely.
pub fn skip_dir(rel: &Path) -> bool {
    SKIP_DIRS.iter().any(|s| rel == Path::new(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_router_exemptions_cover_the_ring_drivers() {
        for ok in [
            "crates/virtio/src/queue.rs",
            "crates/virtio/tests/prop_queue.rs",
            "crates/core/src/frontend/mod.rs",
            "crates/bench/benches/micro_components.rs",
            "crates/core/tests/mq_fifo.rs",
            "crates/core/src/backend/notify.rs",
        ] {
            assert!(is_exempt("queue-router", Path::new(ok)), "{ok} should be exempt");
        }
        for bad in ["crates/core/src/backend/mod.rs", "tests/concurrency.rs"] {
            assert!(!is_exempt("queue-router", Path::new(bad)), "{bad} must not be exempt");
        }
    }

    #[test]
    fn msi_notifier_exemptions_cover_the_chip_and_the_notifier() {
        for ok in [
            "crates/vmm/src/irq.rs",
            "crates/vmm/tests/irq_props.rs",
            "crates/core/src/backend/notify.rs",
        ] {
            assert!(is_exempt("msi-notifier", Path::new(ok)), "{ok} should be exempt");
        }
        for bad in ["crates/core/src/backend/mod.rs", "crates/core/src/frontend/mod.rs"] {
            assert!(!is_exempt("msi-notifier", Path::new(bad)), "{bad} must not be exempt");
        }
    }

    #[test]
    fn kick_doorbell_exemptions_cover_the_batch_submitter() {
        for ok in [
            "crates/virtio/src/queue.rs",
            "crates/core/src/frontend/mod.rs",
            "crates/core/tests/mq_fifo.rs",
        ] {
            assert!(is_exempt("kick-doorbell", Path::new(ok)), "{ok} should be exempt");
        }
        for bad in [
            "crates/core/src/backend/mod.rs",
            "crates/core/src/guest.rs",
            "crates/bench/src/experiments/open_loop.rs",
        ] {
            assert!(!is_exempt("kick-doorbell", Path::new(bad)), "{bad} must not be exempt");
        }
    }

    #[test]
    fn staging_buffer_scoping_guards_the_zero_copy_path() {
        // In scope: the RMA engine and the backend, where staging used to
        // live; out of scope: unrelated crates.
        assert!(in_scope("staging-buffer", Path::new("crates/scif/src/rma.rs")));
        assert!(in_scope("staging-buffer", Path::new("crates/core/src/backend/mod.rs")));
        assert!(in_scope("staging-buffer", Path::new("crates/pcie/src/dma.rs")));
        assert!(!in_scope("staging-buffer", Path::new("crates/core/src/frontend/mod.rs")));
        assert!(!in_scope("staging-buffer", Path::new("crates/bench/src/support.rs")));
        // Exempt: the sanctioned bounce in pcie::dma and the backend's
        // cold paths; NOT exempt: the zero-copy RMA engine itself.
        assert!(is_exempt("staging-buffer", Path::new("crates/pcie/src/dma.rs")));
        assert!(is_exempt("staging-buffer", Path::new("crates/core/src/backend/mod.rs")));
        assert!(!is_exempt("staging-buffer", Path::new("crates/scif/src/rma.rs")));
    }

    #[test]
    fn scoped_rules_apply_only_to_their_files() {
        assert!(in_scope("protocol-exhaustive", Path::new("crates/core/src/protocol.rs")));
        assert!(!in_scope("protocol-exhaustive", Path::new("crates/core/src/backend/mod.rs")));
        assert!(in_scope("event-loop-blocking", Path::new("crates/vmm/src/event_loop.rs")));
        assert!(!in_scope("event-loop-blocking", Path::new("crates/vmm/src/kvm.rs")));
        assert!(in_scope("opctx-api", Path::new("crates/scif/src/api.rs")));
        assert!(!in_scope("opctx-api", Path::new("crates/core/src/guest.rs")));
        // Rules without a scope entry apply everywhere.
        assert!(in_scope("raw-sync", Path::new("anything.rs")));
    }

    #[test]
    fn fixture_dirs_are_skipped() {
        assert!(skip_dir(Path::new("crates/xtask/fixtures")));
        assert!(skip_dir(Path::new("crates/analyze/fixtures")));
        assert!(skip_dir(Path::new("shims")));
        assert!(!skip_dir(Path::new("crates/virtio")));
    }
}

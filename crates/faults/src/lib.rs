//! Deterministic fault injection for the vPHI stack.
//!
//! The production stack the paper describes had to survive real failure
//! modes — guests dying mid-RMA, dropped doorbells and MSIs on the PCIe
//! link, card lockups requiring a reset while other VMs keep running.  The
//! simulation exercises those paths through this crate: a [`FaultPlan`]
//! (seed + schedule of [`FaultPoint`]s) is *armed* onto the [`FaultHook`]s
//! embedded at each injection site, and every chaos run is then exactly
//! reproducible from the plan alone.
//!
//! Determinism does **not** come from wall time or thread scheduling.  A
//! fault fires when its site's *crossing counter* — an atomic bumped once
//! per traversal of the instrumented code path — reaches the `nth` value
//! the plan assigned.  Two runs with the same seed therefore produce the
//! same `encode()` bytes and the same per-site firing schedule, no matter
//! how the OS interleaves threads.
//!
//! When no plan is armed a [`FaultHook::fire`] is a single atomic load of
//! an unset `OnceLock` — effectively free, so the hooks stay compiled into
//! production paths.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use vphi_sim_core::SplitMix64;

/// Number of distinct injection sites across the stack.
pub const SITE_COUNT: usize = 10;

/// Where in the stack a fault strikes.  Each variant maps to exactly one
/// instrumented code path (see DESIGN.md #13 for the full map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// PCIe link retrain: the transaction stalls for `param` microseconds.
    PcieRetrainStall = 0,
    /// DMA transfer error on the link: the RMA fails with a retryable error.
    PcieDmaError = 1,
    /// A doorbell ring is silently dropped.
    PcieDoorbellDrop = 2,
    /// A completion MSI is lost between backend and guest.
    PcieMsiLost = 3,
    /// A device core locks up: the board goes to `Failed` until reset.
    PhiCoreLockup = 4,
    /// Uncorrectable ECC error in device memory: the RMA fails fatally.
    PhiEccError = 5,
    /// The card's uOS panics: the board goes to `Failed` until reset.
    PhiUosPanic = 6,
    /// A virtqueue kick never reaches the backend.
    VirtioKickLost = 7,
    /// The used-ring completion is delayed by `param` microseconds.
    VirtioUsedDelay = 8,
    /// The guest dies abruptly mid-request.
    VmmGuestDeath = 9,
}

impl FaultSite {
    /// Every site, in wire order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::PcieRetrainStall,
        FaultSite::PcieDmaError,
        FaultSite::PcieDoorbellDrop,
        FaultSite::PcieMsiLost,
        FaultSite::PhiCoreLockup,
        FaultSite::PhiEccError,
        FaultSite::PhiUosPanic,
        FaultSite::VirtioKickLost,
        FaultSite::VirtioUsedDelay,
        FaultSite::VmmGuestDeath,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PcieRetrainStall => "pcie-retrain-stall",
            FaultSite::PcieDmaError => "pcie-dma-error",
            FaultSite::PcieDoorbellDrop => "pcie-doorbell-drop",
            FaultSite::PcieMsiLost => "pcie-msi-lost",
            FaultSite::PhiCoreLockup => "phi-core-lockup",
            FaultSite::PhiEccError => "phi-ecc-error",
            FaultSite::PhiUosPanic => "phi-uos-panic",
            FaultSite::VirtioKickLost => "virtio-kick-lost",
            FaultSite::VirtioUsedDelay => "virtio-used-delay",
            FaultSite::VmmGuestDeath => "vmm-guest-death",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    /// Whether `param` carries a duration in microseconds for this site.
    fn takes_param(self) -> bool {
        matches!(self, FaultSite::PcieRetrainStall | FaultSite::VirtioUsedDelay)
    }
}

/// One scheduled fault: strike `site` on its `nth` crossing (1-based),
/// with a site-specific `param` (µs for stall/delay sites, 0 otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    pub site: FaultSite,
    pub nth: u64,
    pub param: u64,
}

/// A complete, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// Derive `n_points` faults from `seed`.  The same seed always yields
    /// a byte-identical [`encode`](Self::encode) output.
    pub fn from_seed(seed: u64, n_points: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let points = (0..n_points)
            .map(|_| {
                let site = FaultSite::ALL[rng.next_below(SITE_COUNT as u64) as usize];
                let nth = 1 + rng.next_below(6);
                let param = if site.takes_param() { 50 + rng.next_below(450) } else { 0 };
                FaultPoint { site, nth, param }
            })
            .collect();
        FaultPlan { seed, points }
    }

    /// A plan with exactly one fault — handy for targeted tests.
    pub fn single(site: FaultSite, nth: u64, param: u64) -> Self {
        FaultPlan { seed: 0, points: vec![FaultPoint { site, nth, param }] }
    }

    /// Canonical byte encoding: `seed` then `(site, nth, param)` per point.
    /// Chaos tests pin "same seed ⇒ byte-identical schedule" on this.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.points.len() * 17);
        out.extend_from_slice(&self.seed.to_le_bytes());
        for p in &self.points {
            out.push(p.site as u8);
            out.extend_from_slice(&p.nth.to_le_bytes());
            out.extend_from_slice(&p.param.to_le_bytes());
        }
        out
    }
}

/// An armed plan: immutable per-site schedules plus the live counters.
///
/// Lock-free by construction — the schedule is read-only after `new`, and
/// all mutation goes through atomics, so `crossing` is safe to call from
/// any thread including backend workers holding tracked locks.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per site: sorted, nth-deduplicated `(nth, param)` pairs.
    schedule: [Vec<(u64, u64)>; SITE_COUNT],
    crossings: [AtomicU64; SITE_COUNT],
    fired: [AtomicU64; SITE_COUNT],
    defused: AtomicBool,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let mut schedule: [Vec<(u64, u64)>; SITE_COUNT] = Default::default();
        for p in &plan.points {
            schedule[p.site.index()].push((p.nth, p.param));
        }
        for s in &mut schedule {
            s.sort_unstable();
            s.dedup_by_key(|&mut (nth, _)| nth);
        }
        FaultInjector {
            plan,
            schedule,
            crossings: Default::default(),
            fired: Default::default(),
            defused: AtomicBool::new(false),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record one traversal of `site`'s instrumented path.  Returns
    /// `Some(param)` if the plan schedules a fault on this crossing.
    pub fn crossing(&self, site: FaultSite) -> Option<u64> {
        let i = site.index();
        let nth = self.crossings[i].fetch_add(1, Ordering::Relaxed) + 1;
        if self.defused.load(Ordering::Relaxed) {
            return None;
        }
        let param = self.schedule[i]
            .binary_search_by_key(&nth, |&(n, _)| n)
            .ok()
            .map(|at| self.schedule[i][at].1)?;
        self.fired[i].fetch_add(1, Ordering::Relaxed);
        Some(param)
    }

    /// Permanently stop firing (crossings keep counting).  A `OnceLock`ed
    /// hook cannot be disarmed, so chaos tests defuse the injector instead
    /// before running their clean bystander phase.
    pub fn defuse(&self) {
        self.defused.store(true, Ordering::Relaxed);
    }

    pub fn crossings_at(&self, site: FaultSite) -> u64 {
        self.crossings[site.index()].load(Ordering::Relaxed)
    }

    pub fn fired_at(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    pub fn fired_total(&self) -> u64 {
        self.fired.iter().map(|fired| fired.load(Ordering::Relaxed)).sum()
    }
}

/// The per-site arming point embedded in production structs.
///
/// Disarmed (the default, and the only state outside chaos runs) the hook
/// is a single relaxed atomic load — the `OnceLock` fast path — so the
/// instrumented code costs nothing measurable in steady state.
#[derive(Debug, Default)]
pub struct FaultHook {
    slot: OnceLock<Arc<FaultInjector>>,
}

impl FaultHook {
    pub const fn new() -> Self {
        FaultHook { slot: OnceLock::new() }
    }

    /// Arm this hook.  Returns `false` if it was already armed (the first
    /// plan wins; re-arming requires a fresh stack).
    pub fn arm(&self, injector: Arc<FaultInjector>) -> bool {
        self.slot.set(injector).is_ok()
    }

    pub fn armed(&self) -> bool {
        self.slot.get().is_some()
    }

    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.slot.get()
    }

    /// The injection-site call: count a crossing and report whether a
    /// fault strikes here, with its parameter.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> Option<u64> {
        match self.slot.get() {
            None => None,
            Some(inj) => inj.crossing(site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let a = FaultPlan::from_seed(0xD00D, 16);
        let b = FaultPlan::from_seed(0xD00D, 16);
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
        assert_ne!(a.encode(), FaultPlan::from_seed(0xD00E, 16).encode());
    }

    #[test]
    fn params_only_on_duration_sites() {
        let plan = FaultPlan::from_seed(7, 200);
        for p in &plan.points {
            if p.site.takes_param() {
                assert!((50..500).contains(&p.param), "{p:?}");
            } else {
                assert_eq!(p.param, 0, "{p:?}");
            }
            assert!((1..=6).contains(&p.nth), "{p:?}");
        }
        // 200 draws over 10 sites should cover every site.
        for site in FaultSite::ALL {
            assert!(plan.points.iter().any(|p| p.site == site), "missing {}", site.name());
        }
    }

    #[test]
    fn fires_on_the_nth_crossing_only() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            points: vec![
                FaultPoint { site: FaultSite::PcieDmaError, nth: 3, param: 0 },
                FaultPoint { site: FaultSite::VirtioUsedDelay, nth: 1, param: 99 },
            ],
        });
        assert_eq!(inj.crossing(FaultSite::PcieDmaError), None);
        assert_eq!(inj.crossing(FaultSite::PcieDmaError), None);
        assert_eq!(inj.crossing(FaultSite::PcieDmaError), Some(0));
        assert_eq!(inj.crossing(FaultSite::PcieDmaError), None);
        assert_eq!(inj.crossing(FaultSite::VirtioUsedDelay), Some(99));
        assert_eq!(inj.fired_at(FaultSite::PcieDmaError), 1);
        assert_eq!(inj.crossings_at(FaultSite::PcieDmaError), 4);
        assert_eq!(inj.fired_total(), 2);
        // Other sites never fire.
        assert_eq!(inj.crossing(FaultSite::VmmGuestDeath), None);
    }

    #[test]
    fn defuse_stops_firing_but_keeps_counting() {
        let inj = FaultInjector::new(FaultPlan::single(FaultSite::PcieDoorbellDrop, 2, 0));
        assert_eq!(inj.crossing(FaultSite::PcieDoorbellDrop), None);
        inj.defuse();
        assert_eq!(inj.crossing(FaultSite::PcieDoorbellDrop), None);
        assert_eq!(inj.crossings_at(FaultSite::PcieDoorbellDrop), 2);
        assert_eq!(inj.fired_total(), 0);
    }

    #[test]
    fn disarmed_hook_is_inert_and_arms_once() {
        let hook = FaultHook::new();
        assert!(!hook.armed());
        assert_eq!(hook.fire(FaultSite::VmmGuestDeath), None);
        let first = Arc::new(FaultInjector::new(FaultPlan::single(FaultSite::VmmGuestDeath, 1, 0)));
        assert!(hook.arm(Arc::clone(&first)));
        let second = Arc::new(FaultInjector::new(FaultPlan::from_seed(1, 4)));
        assert!(!hook.arm(second), "second arm must lose");
        assert_eq!(hook.fire(FaultSite::VmmGuestDeath), Some(0));
        assert_eq!(first.fired_total(), 1);
    }

    #[test]
    fn duplicate_nth_keeps_one_firing() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            points: vec![
                FaultPoint { site: FaultSite::PhiEccError, nth: 2, param: 0 },
                FaultPoint { site: FaultSite::PhiEccError, nth: 2, param: 7 },
            ],
        });
        assert_eq!(inj.crossing(FaultSite::PhiEccError), None);
        assert!(inj.crossing(FaultSite::PhiEccError).is_some());
        assert_eq!(inj.fired_total(), 1);
    }
}

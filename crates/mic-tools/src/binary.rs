//! MIC binaries and their dependency closures.
//!
//! micnativeloadex ships not just the executable but every `.so` in its
//! MIC-side dependency closure — for an MKL dgemm that is >100 MB, and
//! that bulk is what makes the launch phase sensitive to transport
//! throughput (Figs. 6–8).

use crate::workload::Workload;

/// One shared library shipped with a binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    pub name: &'static str,
    pub bytes: u64,
}

/// A k1om (MIC) executable.
#[derive(Debug, Clone, PartialEq)]
pub struct MicBinary {
    pub name: String,
    pub image_bytes: u64,
    pub libraries: Vec<Library>,
    pub workload: Workload,
}

/// The MIC-side MKL closure an MKL-linked sample drags in (sizes match
/// the MPSS 3.x `lib/mic` shipment to the order the model cares about).
pub fn mkl_closure() -> Vec<Library> {
    vec![
        Library { name: "libmkl_core.so", bytes: 59 << 20 },
        Library { name: "libmkl_intel_lp64.so", bytes: 28 << 20 },
        Library { name: "libmkl_intel_thread.so", bytes: 43 << 20 },
        Library { name: "libiomp5.so", bytes: 2 << 20 },
        Library { name: "libimf.so", bytes: 3 << 20 },
        Library { name: "libsvml.so", bytes: 5 << 20 },
        Library { name: "libintlc.so.5", bytes: 1 << 20 },
    ]
}

/// A minimal runtime closure (no MKL).
pub fn minimal_closure() -> Vec<Library> {
    vec![
        Library { name: "libiomp5.so", bytes: 2 << 20 },
        Library { name: "libimf.so", bytes: 3 << 20 },
    ]
}

impl MicBinary {
    /// The paper's application binary: the MKL `cblas_dgemm` sample.
    pub fn dgemm_sample(n: u64) -> Self {
        MicBinary {
            name: "dgemm_mic".to_string(),
            image_bytes: 1 << 20,
            libraries: mkl_closure(),
            workload: Workload::Dgemm { n },
        }
    }

    /// A STREAM binary (minimal closure).
    pub fn stream(elems: u64, iters: u64) -> Self {
        MicBinary {
            name: "stream_mic".to_string(),
            image_bytes: 256 << 10,
            libraries: minimal_closure(),
            workload: Workload::Stream { elems, iters },
        }
    }

    /// An n-body binary (minimal closure).
    pub fn nbody(bodies: u64, steps: u64) -> Self {
        MicBinary {
            name: "nbody_mic".to_string(),
            image_bytes: 512 << 10,
            libraries: minimal_closure(),
            workload: Workload::NBody { bodies, steps },
        }
    }

    /// Bytes of shipped libraries.
    pub fn lib_bytes(&self) -> u64 {
        self.libraries.iter().map(|l| l.bytes).sum()
    }

    /// Total shipped bytes (image + closure).
    pub fn total_transfer_bytes(&self) -> u64 {
        self.image_bytes + self.lib_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkl_closure_is_realistically_heavy() {
        let b = MicBinary::dgemm_sample(4096);
        // The MKL closure dominates: well north of 100 MB.
        assert!(b.lib_bytes() > 100 << 20, "lib closure = {} bytes", b.lib_bytes());
        assert!(b.total_transfer_bytes() > b.image_bytes);
        assert_eq!(b.workload, Workload::Dgemm { n: 4096 });
    }

    #[test]
    fn minimal_closure_is_light() {
        let b = MicBinary::stream(1 << 20, 10);
        assert!(b.lib_bytes() < 10 << 20);
        assert_eq!(b.name, "stream_mic");
    }

    #[test]
    fn closures_name_their_libraries() {
        let names: Vec<&str> = mkl_closure().iter().map(|l| l.name).collect();
        assert!(names.contains(&"libmkl_core.so"));
        assert!(names.contains(&"libiomp5.so"));
    }
}

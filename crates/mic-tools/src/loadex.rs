//! `micnativeloadex` — launch a MIC binary on the card from the host (or
//! the VM) and wait for it.
//!
//! The paper (§IV-C): "we execute micnativeloadex with dgemm as the
//! supplied binary on the host and on the VM … we also measure the total
//! time of execution from the moment that micnativeloadex is launched …
//! until the final results are produced and the tool finishes execution."
//! [`LoadexReport`] carries exactly that total plus its decomposition.

use std::sync::Arc;

use vphi_coi::process::LaunchSpec;
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiEngine, CoiProcess};
use vphi_scif::{ScifError, ScifResult};
use vphi_sim_core::{SimDuration, Timeline};

use crate::binary::MicBinary;

/// The tool's report for one launch.
#[derive(Debug, Clone)]
pub struct LoadexReport {
    /// Environment the tool ran in ("native" / "vmN").
    pub env: String,
    pub binary: String,
    pub threads: u32,
    pub exit_code: i32,
    pub stdout: String,
    /// Wall-to-wall virtual time: preflight + transfer + execution + exit
    /// collection — the Y axis of Figs. 6–8.
    pub total_time: SimDuration,
    /// Time the binary actually ran on the card (identical native vs VM —
    /// the paper "observed no performance degradation … concerning actual
    /// execution time on the device").
    pub device_time: SimDuration,
    /// Everything except device execution: the launch/teardown overhead
    /// the virtualization tax applies to.
    pub launch_time: SimDuration,
    /// Bytes shipped (binary + library closure).
    pub shipped_bytes: u64,
    /// The tool's full timeline, for breakdowns.
    pub timeline: Timeline,
}

/// Run `binary` on card `mic` with `threads` threads through `env`.
///
/// `MIC_OMP_NUM_THREADS`-style thread selection is the `threads`
/// parameter; the sysfs preflight and the COI dialogue mirror the real
/// tool's behaviour.
pub fn micnativeloadex(
    env: &Arc<dyn CoiEnv>,
    mic: usize,
    binary: &MicBinary,
    threads: u32,
) -> ScifResult<LoadexReport> {
    let mut tl = Timeline::new();

    // Preflight: the tool reads /sys/class/mic/micN and refuses cards that
    // are not online x100 parts.
    if !env.card_usable(mic as u32, &mut tl) {
        return Err(ScifError::NoDev);
    }

    let engine = CoiEngine::get(Arc::clone(env), mic)?;
    let spec = LaunchSpec {
        name: binary.name.clone(),
        binary_bytes: binary.image_bytes,
        lib_bytes: binary.lib_bytes(),
        env_count: 4, // LD_LIBRARY_PATH, OMP threads, affinity, locale
        manifest: binary.workload.manifest(threads),
    };
    let process = CoiProcess::launch(&engine, &spec, &mut tl)?;
    let exit = process.wait(&mut tl)?;
    process.destroy();

    let total_time = tl.total();
    Ok(LoadexReport {
        env: env.label(),
        binary: binary.name.clone(),
        threads,
        exit_code: exit.code,
        stdout: exit.stdout,
        total_time,
        device_time: exit.device_time,
        launch_time: total_time.saturating_sub(exit.device_time),
        shipped_bytes: binary.total_transfer_bytes(),
        timeline: tl,
    })
}

impl LoadexReport {
    /// Launch overhead relative to total (the quantity Figs. 6–8 show
    /// shrinking as input size grows).
    pub fn launch_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.launch_time.as_nanos() as f64 / self.total_time.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi::builder::{VmConfig, VphiHost};
    use vphi_coi::{CoiDaemon, GuestEnv, NativeEnv};

    #[test]
    fn native_loadex_runs_dgemm() {
        let host = VphiHost::new(1);
        let daemon = CoiDaemon::spawn(&host, 0).unwrap();
        let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
        let binary = MicBinary::dgemm_sample(2048);
        let report = micnativeloadex(&env, 0, &binary, 224).unwrap();
        assert_eq!(report.exit_code, 0);
        assert!(report.stdout.contains("dgemm_mic"));
        assert!(report.device_time > SimDuration::ZERO);
        assert!(report.total_time > report.device_time);
        assert!(report.launch_fraction() > 0.0 && report.launch_fraction() < 1.0);
        assert_eq!(report.shipped_bytes, binary.total_transfer_bytes());
        daemon.shutdown();
    }

    #[test]
    fn loadex_refuses_missing_card() {
        let host = VphiHost::new(1);
        let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
        let binary = MicBinary::stream(1 << 16, 1);
        assert_eq!(micnativeloadex(&env, 3, &binary, 56).err(), Some(ScifError::NoDev));
    }

    #[test]
    fn vm_loadex_same_device_time_higher_total() {
        let host = VphiHost::new(1);
        let daemon = CoiDaemon::spawn(&host, 0).unwrap();
        let binary = MicBinary::dgemm_sample(1024);

        let native: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
        let native_report = micnativeloadex(&native, 0, &binary, 112).unwrap();

        let vm = host.spawn_vm(VmConfig::default());
        let guest: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
        let vm_report = micnativeloadex(&guest, 0, &binary, 112).unwrap();

        assert_eq!(vm_report.device_time, native_report.device_time);
        assert!(vm_report.total_time > native_report.total_time);
        assert!(vm_report.env.starts_with("vm"));
        assert_eq!(native_report.env, "native");

        vm.shutdown();
        daemon.shutdown();
    }
}

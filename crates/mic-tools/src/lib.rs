//! # vphi-mic-tools — the MPSS tool layer
//!
//! The paper evaluates vPHI with Intel's own tooling: **micnativeloadex**
//! launches a MIC binary (the MKL `cblas_dgemm` sample) on the card
//! directly from the host or the VM, shipping the binary and its library
//! closure over COI/SCIF (Figs. 6–8).  This crate provides the analogues:
//!
//! * [`binary::MicBinary`] — a MIC executable: image size, dependency
//!   closure (the realistic MKL/OpenMP library sizes that dominate launch
//!   traffic), and the workload it performs.
//! * [`workload::Workload`] — dgemm / STREAM / n-body / sleep kernels with
//!   FLOP+byte characterizations for the uOS roofline, plus *real*
//!   computation at validation scale ([`dgemm`]).
//! * [`loadex`] — `micnativeloadex`: sysfs preflight, COI launch, stdout
//!   proxy, total-time report.  Runs identically over the native and
//!   guest environments.
//! * [`micinfo`] — the `micinfo` board report.
//! * [`mpilite`] — a minimal MPI-style communicator over SCIF for the
//!   *symmetric* execution mode (ranks on host/VM and on the card).

pub mod binary;
pub mod dgemm;
pub mod loadex;
pub mod micinfo;
pub mod micnet;
pub mod mpilite;
pub mod workload;

pub use binary::{Library, MicBinary};
pub use loadex::{micnativeloadex, LoadexReport};
pub use workload::Workload;

//! micnet — the emulated `mic0` network path and a remote shell.
//!
//! MPSS "includes an emulated network driver as part of the uOS, that
//! uses SCIF, and enables users to utilize network tools (e.g. ssh) and
//! remotely connect to the Xeon Phi device … they can execute
//! applications on the coprocessor using a shell" (paper §II-B).  This is
//! the paper's *first* native-mode option (§IV-A): ssh in, after
//! explicitly copying executables and libraries over — the option the
//! paper rejects for clouds ("many users logged in a shared accelerator
//! environment ruining the isolation characteristics").  We implement it
//! anyway, both for completeness and so the trade-off is measurable.
//!
//! * [`EthFrame`] — ethernet-ish frames carried over a SCIF stream (the
//!   mic0 virtual NIC).
//! * [`MicShellDaemon`] — the card-side sshd-alike: accepts sessions,
//!   stores uploaded files, runs uploaded binaries on the uOS.
//! * [`MicShell`] — the client: `scp`-style upload plus `run`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vphi::builder::VphiHost;
use vphi_coi::transport::{CoiEnv, CoiTransport};
use vphi_coi::wire::{read_frame, write_frame, ByteReader, ByteWriter};
use vphi_phi::ComputeJob;
use vphi_scif::{Port, ScifEndpoint, ScifError, ScifResult};
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

/// The well-known port of the mic0 shell daemon (sshd on the uOS).
pub const MIC_SHELL_PORT: Port = Port(22);

/// An ethernet-style frame on the emulated mic0 link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthFrame {
    pub src: [u8; 6],
    pub dst: [u8; 6],
    pub ethertype: u16,
    pub payload: Vec<u8>,
}

impl EthFrame {
    /// Standard MTU of the mic0 interface.
    pub const MTU: usize = 64 * 1024; // MPSS uses a jumbo 64K MTU over SCIF

    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for b in self.src.iter().chain(&self.dst) {
            w.u8(*b);
        }
        w.u32(self.ethertype as u32);
        w.u32(self.payload.len() as u32);
        let mut out = w.finish();
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> ScifResult<EthFrame> {
        let mut r = ByteReader::new(buf);
        let mut src = [0u8; 6];
        let mut dst = [0u8; 6];
        for b in &mut src {
            *b = r.u8()?;
        }
        for b in &mut dst {
            *b = r.u8()?;
        }
        let ethertype = r.u32()? as u16;
        let len = r.u32()? as usize;
        if r.remaining() < len {
            return Err(ScifError::Inval);
        }
        let at = buf.len() - r.remaining();
        Ok(EthFrame { src, dst, ethertype, payload: buf[at..at + len].to_vec() })
    }
}

// ---- shell protocol ---------------------------------------------------

enum ShellMsg {
    Upload { name: String, bytes: u64 },
    Run { name: String, threads: u32, flops: f64, mem_bytes: u64 },
    Ok { stdout: String },
    Err { errno: i32 },
}

impl ShellMsg {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ShellMsg::Upload { name, bytes } => {
                w.u8(1).str(name).u64(*bytes);
            }
            ShellMsg::Run { name, threads, flops, mem_bytes } => {
                w.u8(2).str(name).u32(*threads).f64(*flops).u64(*mem_bytes);
            }
            ShellMsg::Ok { stdout } => {
                w.u8(65).str(stdout);
            }
            ShellMsg::Err { errno } => {
                w.u8(66).u32(*errno as u32);
            }
        }
        w.finish()
    }

    fn decode(buf: &[u8]) -> ScifResult<ShellMsg> {
        let mut r = ByteReader::new(buf);
        Ok(match r.u8()? {
            1 => ShellMsg::Upload { name: r.str()?, bytes: r.u64()? },
            2 => ShellMsg::Run {
                name: r.str()?,
                threads: r.u32()?,
                flops: r.f64()?,
                mem_bytes: r.u64()?,
            },
            65 => ShellMsg::Ok { stdout: r.str()? },
            66 => ShellMsg::Err { errno: r.u32()? as i32 },
            _ => return Err(ScifError::Inval),
        })
    }
}

/// The card-side shell daemon ("sshd" reachable through mic0).
pub struct MicShellDaemon {
    listener: Arc<ScifEndpoint>,
    accept_thread: TrackedMutex<Option<std::thread::JoinHandle<()>>>,
    sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>>,
    running: Arc<AtomicBool>,
    uploads: Arc<AtomicU64>,
}

impl MicShellDaemon {
    pub fn spawn(host: &VphiHost, mic: usize) -> ScifResult<MicShellDaemon> {
        let board = Arc::clone(host.board(mic));
        let listener = Arc::new(host.device_endpoint(mic)?);
        let mut tl = Timeline::new();
        listener.bind(MIC_SHELL_PORT, &mut tl)?;
        listener.listen(8, &mut tl)?;

        let running = Arc::new(AtomicBool::new(true));
        let uploads = Arc::new(AtomicU64::new(0));
        let sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(TrackedMutex::new(LockClass::ServerSessions, Vec::new()));
        let (l2, s2, u2) = (Arc::clone(&listener), Arc::clone(&sessions), Arc::clone(&uploads));
        let accept_running = Arc::clone(&running);
        let board2 = Arc::clone(&board);
        let accept_thread = std::thread::Builder::new()
            .name(format!("mic-sshd-{mic}"))
            .spawn(move || {
                let running = accept_running;
                while running.load(Ordering::Acquire) {
                    let mut tl = Timeline::new();
                    match l2.accept(&mut tl) {
                        Ok(conn) => {
                            let board = Arc::clone(&board2);
                            let uploads = Arc::clone(&u2);
                            s2.lock().push(std::thread::spawn(move || {
                                shell_session(conn, board, uploads);
                            }));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn mic sshd");

        Ok(MicShellDaemon {
            listener,
            accept_thread: TrackedMutex::new(LockClass::ServerAccept, Some(accept_thread)),
            sessions,
            running,
            uploads,
        })
    }

    pub fn upload_count(&self) -> u64 {
        self.uploads.load(Ordering::Relaxed)
    }

    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        self.listener.close();
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for MicShellDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::while_let_loop)]
fn shell_session(conn: ScifEndpoint, board: Arc<vphi_phi::PhiBoard>, uploads: Arc<AtomicU64>) {
    let mut tl = Timeline::new();
    // The card's "filesystem": name → size of files scp'd over.
    let mut files: HashMap<String, u64> = HashMap::new();
    loop {
        let frame = match read_frame(&conn, &mut tl) {
            Ok(Some(f)) => f,
            _ => break,
        };
        let msg = match ShellMsg::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                let _ = write_frame(&conn, &ShellMsg::Err { errno: e.errno() }.encode(), &mut tl);
                continue;
            }
        };
        let result: ScifResult<()> = (|| {
            match msg {
                ShellMsg::Upload { name, bytes } => {
                    conn.recv_timed(bytes, &mut tl)?;
                    files.insert(name.clone(), bytes);
                    uploads.fetch_add(1, Ordering::Relaxed);
                    write_frame(
                        &conn,
                        &ShellMsg::Ok { stdout: format!("{name}: {bytes} bytes\n") }.encode(),
                        &mut tl,
                    )?;
                }
                ShellMsg::Run { name, threads, flops, mem_bytes } => {
                    if !files.contains_key(&name) {
                        // "No such file or directory" — the user forgot to
                        // scp the binary first.
                        write_frame(&conn, &ShellMsg::Err { errno: 2 }.encode(), &mut tl)?;
                        return Ok(());
                    }
                    let job = ComputeJob::new(name.clone(), threads, flops, mem_bytes);
                    let out = board.uos().run(&job, &mut tl);
                    write_frame(
                        &conn,
                        &ShellMsg::Ok {
                            stdout: format!(
                                "{name}: ran {threads} threads in {} on {} cores\n",
                                out.duration, out.cores_used
                            ),
                        }
                        .encode(),
                        &mut tl,
                    )?;
                }
                _ => {
                    write_frame(
                        &conn,
                        &ShellMsg::Err { errno: ScifError::Inval.errno() }.encode(),
                        &mut tl,
                    )?;
                }
            }
            Ok(())
        })();
        if result.is_err() {
            break;
        }
    }
    conn.close();
}

/// An "ssh session" to the card from any environment (host or VM — in a
/// VM, this requires the network-bridge configuration the paper §IV-A
/// describes, which vPHI's SCIF virtualization provides for free).
pub struct MicShell {
    conn: Box<dyn CoiTransport>,
}

impl MicShell {
    /// Open the session.
    pub fn connect(env: &dyn CoiEnv, mic: usize, tl: &mut Timeline) -> ScifResult<MicShell> {
        let conn = env.connect(vphi_scif::NodeId(mic as u16 + 1), MIC_SHELL_PORT, tl)?;
        Ok(MicShell { conn })
    }

    fn request(&self, msg: &ShellMsg, tl: &mut Timeline) -> ScifResult<String> {
        write_frame(self.conn.as_ref(), &msg.encode(), tl)?;
        let frame = read_frame(self.conn.as_ref(), tl)?.ok_or(ScifError::ConnReset)?;
        match ShellMsg::decode(&frame)? {
            ShellMsg::Ok { stdout } => Ok(stdout),
            ShellMsg::Err { errno } => {
                Err(ScifError::from_errno(errno).unwrap_or(ScifError::Inval))
            }
            _ => Err(ScifError::Inval),
        }
    }

    /// `scp binary mic0:` — upload a file of `bytes`.
    pub fn upload(&self, name: &str, bytes: u64, tl: &mut Timeline) -> ScifResult<String> {
        write_frame(
            self.conn.as_ref(),
            &ShellMsg::Upload { name: name.to_string(), bytes }.encode(),
            tl,
        )?;
        self.conn.send_timed(bytes, tl)?;
        let frame = read_frame(self.conn.as_ref(), tl)?.ok_or(ScifError::ConnReset)?;
        match ShellMsg::decode(&frame)? {
            ShellMsg::Ok { stdout } => Ok(stdout),
            ShellMsg::Err { errno } => {
                Err(ScifError::from_errno(errno).unwrap_or(ScifError::Inval))
            }
            _ => Err(ScifError::Inval),
        }
    }

    /// `ssh mic0 ./binary` — run a previously uploaded binary.  Returns
    /// stdout; the device execution time is charged to `tl`.
    pub fn run(
        &self,
        name: &str,
        threads: u32,
        flops: f64,
        mem_bytes: u64,
        tl: &mut Timeline,
    ) -> ScifResult<String> {
        let before = tl.total_for(SpanLabel::DeviceCompute);
        let out =
            self.request(&ShellMsg::Run { name: name.to_string(), threads, flops, mem_bytes }, tl)?;
        // The shell blocks for the run; the daemon's uOS charge happens on
        // its own timeline, so mirror it here from the reported duration.
        let _ = before;
        Ok(out)
    }

    /// Close the session (exit).
    pub fn exit(self) {
        self.conn.close();
    }
}

// ---- the mic0 link layer ------------------------------------------------

/// Ethertype used for our ping protocol.
pub const ETHERTYPE_PING: u16 = 0x88B5; // local experimental ethertype
/// Port of the device-side network responder ("netd" behind mic0).
pub const MIC_NET_PORT: Port = Port(23);

/// A packet above frame size is fragmented; each fragment carries this
/// little header inside the frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FragHeader {
    packet_id: u32,
    index: u16,
    count: u16,
}

impl FragHeader {
    const SIZE: usize = 8;

    fn encode(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0..4].copy_from_slice(&self.packet_id.to_le_bytes());
        b[4..6].copy_from_slice(&self.index.to_le_bytes());
        b[6..8].copy_from_slice(&self.count.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> ScifResult<FragHeader> {
        if b.len() < 8 {
            return Err(ScifError::Inval);
        }
        Ok(FragHeader {
            packet_id: u32::from_le_bytes(b[0..4].try_into().expect("4")),
            index: u16::from_le_bytes(b[4..6].try_into().expect("2")),
            count: u16::from_le_bytes(b[6..8].try_into().expect("2")),
        })
    }
}

/// One end of the emulated mic0 ethernet link, carried over a SCIF
/// connection (what the MPSS virtual network driver does under the hood).
pub struct Mic0Link {
    conn: Box<dyn CoiTransport>,
    mac: [u8; 6],
    peer_mac: [u8; 6],
    next_packet_id: std::sync::atomic::AtomicU32,
}

impl Mic0Link {
    pub fn new(conn: Box<dyn CoiTransport>, mac: [u8; 6], peer_mac: [u8; 6]) -> Self {
        Mic0Link { conn, mac, peer_mac, next_packet_id: std::sync::atomic::AtomicU32::new(1) }
    }

    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    fn send_eth(&self, frame: &EthFrame, tl: &mut Timeline) -> ScifResult<()> {
        write_frame(self.conn.as_ref(), &frame.encode(), tl)
    }

    fn recv_eth(&self, tl: &mut Timeline) -> ScifResult<EthFrame> {
        let buf = read_frame(self.conn.as_ref(), tl)?.ok_or(ScifError::ConnReset)?;
        EthFrame::decode(&buf)
    }

    /// Send a packet of arbitrary size, fragmenting at the MTU.
    pub fn send_packet(
        &self,
        ethertype: u16,
        payload: &[u8],
        tl: &mut Timeline,
    ) -> ScifResult<u16> {
        let budget = EthFrame::MTU - FragHeader::SIZE;
        let count = payload.len().div_ceil(budget).max(1) as u16;
        let packet_id = self.next_packet_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for (index, chunk) in payload.chunks(budget.max(1)).enumerate() {
            let hdr = FragHeader { packet_id, index: index as u16, count };
            let mut body = hdr.encode().to_vec();
            body.extend_from_slice(chunk);
            self.send_eth(
                &EthFrame { src: self.mac, dst: self.peer_mac, ethertype, payload: body },
                tl,
            )?;
        }
        if payload.is_empty() {
            let hdr = FragHeader { packet_id, index: 0, count: 1 };
            self.send_eth(
                &EthFrame {
                    src: self.mac,
                    dst: self.peer_mac,
                    ethertype,
                    payload: hdr.encode().to_vec(),
                },
                tl,
            )?;
        }
        Ok(count)
    }

    /// Receive and reassemble one packet (blocking).
    pub fn recv_packet(&self, tl: &mut Timeline) -> ScifResult<(u16, Vec<u8>)> {
        let mut payload = Vec::new();
        let mut expected: Option<(u32, u16, u16)> = None; // (id, next index, count)
        loop {
            let frame = self.recv_eth(tl)?;
            let hdr = FragHeader::decode(&frame.payload)?;
            let body = &frame.payload[FragHeader::SIZE..];
            match expected {
                None => {
                    if hdr.index != 0 {
                        return Err(ScifError::Inval); // mid-packet start
                    }
                    expected = Some((hdr.packet_id, 1, hdr.count));
                }
                Some((id, next, count)) => {
                    if hdr.packet_id != id || hdr.index != next || hdr.count != count {
                        return Err(ScifError::Inval); // interleaving not modeled
                    }
                    expected = Some((id, next + 1, count));
                }
            }
            payload.extend_from_slice(body);
            let (_, next, count) = expected.expect("set above");
            if next >= count {
                return Ok((frame.ethertype, payload));
            }
        }
    }

    /// ICMP-echo-style ping: returns the round-trip virtual time.
    pub fn ping(&self, payload_len: usize, tl: &mut Timeline) -> ScifResult<SimDuration> {
        let before = tl.total();
        let payload = vec![0x70u8; payload_len];
        self.send_packet(ETHERTYPE_PING, &payload, tl)?;
        let (ethertype, echoed) = self.recv_packet(tl)?;
        if ethertype != ETHERTYPE_PING || echoed != payload {
            return Err(ScifError::Inval);
        }
        Ok(tl.total().saturating_sub(before))
    }

    pub fn close(self) {
        self.conn.close();
    }
}

/// The device-side network responder: answers ping packets (the uOS side
/// of the emulated network driver).
pub struct MicNetDaemon {
    listener: Arc<ScifEndpoint>,
    accept_thread: TrackedMutex<Option<std::thread::JoinHandle<()>>>,
    sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>>,
    running: Arc<AtomicBool>,
}

impl MicNetDaemon {
    /// The card's mic0 MAC address (locally administered).
    pub const DEVICE_MAC: [u8; 6] = [0x02, 0x4D, 0x49, 0x43, 0x00, 0x00]; // 02:"MIC":00:00

    pub fn spawn(host: &VphiHost, mic: usize) -> ScifResult<MicNetDaemon> {
        let listener = Arc::new(host.device_endpoint(mic)?);
        let mut tl = Timeline::new();
        listener.bind(MIC_NET_PORT, &mut tl)?;
        listener.listen(8, &mut tl)?;
        let running = Arc::new(AtomicBool::new(true));
        let sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(TrackedMutex::new(LockClass::ServerSessions, Vec::new()));
        let (l2, s2) = (Arc::clone(&listener), Arc::clone(&sessions));
        let accept_running = Arc::clone(&running);
        let accept_thread = std::thread::Builder::new()
            .name(format!("mic-netd-{mic}"))
            .spawn(move || {
                let running = accept_running;
                while running.load(Ordering::Acquire) {
                    let mut tl = Timeline::new();
                    match l2.accept(&mut tl) {
                        Ok(conn) => {
                            s2.lock().push(std::thread::spawn(move || netd_session(conn)));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn mic netd");
        Ok(MicNetDaemon {
            listener,
            accept_thread: TrackedMutex::new(LockClass::ServerAccept, Some(accept_thread)),
            sessions,
            running,
        })
    }

    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        self.listener.close();
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for MicNetDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::while_let_loop)]
fn netd_session(conn: ScifEndpoint) {
    let mut tl = Timeline::new();
    loop {
        let buf = match read_frame(&conn, &mut tl) {
            Ok(Some(b)) => b,
            _ => break,
        };
        let frame = match EthFrame::decode(&buf) {
            Ok(f) => f,
            Err(_) => continue,
        };
        if frame.ethertype != ETHERTYPE_PING {
            continue; // unknown protocol: drop, as a NIC would
        }
        // Echo back with src/dst swapped — fragment headers ride along
        // untouched, so multi-fragment pings echo correctly.
        let reply = EthFrame {
            src: frame.dst,
            dst: frame.src,
            ethertype: frame.ethertype,
            payload: frame.payload,
        };
        if write_frame(&conn, &reply.encode(), &mut tl).is_err() {
            break;
        }
    }
    conn.close();
}

/// Bring up a mic0 link from any environment (the client side of the
/// emulated interface).
pub fn mic0_up(env: &dyn CoiEnv, mic: usize, tl: &mut Timeline) -> ScifResult<Mic0Link> {
    let conn = env.connect(vphi_scif::NodeId(mic as u16 + 1), MIC_NET_PORT, tl)?;
    // Host-side MAC, also locally administered.
    let mac = [0x02, 0x48, 0x4F, 0x53, 0x54, mic as u8]; // 02:"HOST":<mic>
    Ok(Mic0Link::new(conn, mac, MicNetDaemon::DEVICE_MAC))
}

/// Convenience: the whole §IV-A option-one flow — scp the binary and its
/// libraries, then run it; returns (stdout, total virtual time).
pub fn ssh_native_mode(
    env: &dyn CoiEnv,
    mic: usize,
    binary: &crate::binary::MicBinary,
    threads: u32,
) -> ScifResult<(String, SimDuration)> {
    let mut tl = Timeline::new();
    let shell = MicShell::connect(env, mic, &mut tl)?;
    shell.upload(&binary.name, binary.image_bytes, &mut tl)?;
    for lib in &binary.libraries {
        shell.upload(lib.name, lib.bytes, &mut tl)?;
    }
    let stdout = shell.run(
        &binary.name,
        threads,
        binary.workload.flops(),
        binary.workload.bytes(),
        &mut tl,
    )?;
    shell.exit();
    Ok((stdout, tl.total()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::MicBinary;
    use std::sync::Arc as StdArc;
    use vphi::builder::VmConfig;
    use vphi_coi::{GuestEnv, NativeEnv};

    #[test]
    fn eth_frames_round_trip() {
        let f = EthFrame {
            src: [0xAA; 6],
            dst: [2, 3, 4, 5, 6, 7],
            ethertype: 0x0800,
            payload: vec![9u8; 1500],
        };
        let decoded = EthFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert!(EthFrame::decode(&f.encode()[..10]).is_err());
    }

    #[test]
    fn ssh_flow_from_the_host() {
        let host = VphiHost::new(1);
        let daemon = MicShellDaemon::spawn(&host, 0).unwrap();
        let env = NativeEnv::new(&host);
        let binary = MicBinary::stream(1 << 20, 4);
        let (stdout, total) = ssh_native_mode(&env, 0, &binary, 112).unwrap();
        assert!(stdout.contains("stream_mic"));
        assert!(total > SimDuration::ZERO);
        // Binary + 2 libraries uploaded.
        assert_eq!(daemon.upload_count(), 3);
        daemon.shutdown();
    }

    #[test]
    fn ssh_flow_from_a_vm_via_vphi() {
        let host = VphiHost::new(1);
        let daemon = MicShellDaemon::spawn(&host, 0).unwrap();
        let vm = host.spawn_vm(VmConfig::default());
        let env = GuestEnv::new(&vm);
        let binary = MicBinary::stream(1 << 20, 4);
        let (stdout, vm_total) = ssh_native_mode(&env, 0, &binary, 112).unwrap();
        assert!(stdout.contains("stream_mic"));

        // Against the host flow: same result, higher cost.
        let native = NativeEnv::new(&host);
        let (_, host_total) = ssh_native_mode(&native, 0, &binary, 112).unwrap();
        assert!(vm_total > host_total);
        vm.shutdown();
        daemon.shutdown();
    }

    #[test]
    fn running_without_uploading_is_enoent_like() {
        let host = VphiHost::new(1);
        let daemon = MicShellDaemon::spawn(&host, 0).unwrap();
        let env = NativeEnv::new(&host);
        let mut tl = Timeline::new();
        let shell = MicShell::connect(&env, 0, &mut tl).unwrap();
        let err = shell.run("not_uploaded", 56, 1e9, 0, &mut tl).unwrap_err();
        // errno 2 (ENOENT) has no ScifError mapping → degraded to Inval.
        assert_eq!(err, ScifError::Inval);
        // Upload then run succeeds.
        shell.upload("now_here", 1 << 20, &mut tl).unwrap();
        let out = shell.run("now_here", 56, 1e9, 0, &mut tl).unwrap();
        assert!(out.contains("now_here"));
        shell.exit();
        daemon.shutdown();
    }

    #[test]
    fn ping_over_mic0_native_and_vm() {
        let host = VphiHost::new(1);
        let netd = MicNetDaemon::spawn(&host, 0).unwrap();

        // Native ping.
        let env = NativeEnv::new(&host);
        let mut tl = Timeline::new();
        let link = mic0_up(&env, 0, &mut tl).unwrap();
        let rtt_native = link.ping(56, &mut tl).unwrap();
        assert!(rtt_native > SimDuration::ZERO);
        link.close();

        // Ping from a VM, through vPHI: same semantics, higher RTT.
        let vm = host.spawn_vm(VmConfig::default());
        let genv = GuestEnv::new(&vm);
        let mut gtl = Timeline::new();
        let glink = mic0_up(&genv, 0, &mut gtl).unwrap();
        let rtt_vm = glink.ping(56, &mut gtl).unwrap();
        assert!(
            rtt_vm > rtt_native * 10,
            "VM ping should be much slower: {rtt_vm} vs {rtt_native}"
        );
        glink.close();
        vm.shutdown();
        netd.shutdown();
    }

    #[test]
    fn packets_fragment_and_reassemble_at_the_mtu() {
        let host = VphiHost::new(1);
        let netd = MicNetDaemon::spawn(&host, 0).unwrap();
        let env = NativeEnv::new(&host);
        let mut tl = Timeline::new();
        let link = mic0_up(&env, 0, &mut tl).unwrap();

        // 3.5 MTUs of payload → 4 fragments, echoed and reassembled.
        let payload_len = EthFrame::MTU * 3 + EthFrame::MTU / 2;
        let frags = link.send_packet(ETHERTYPE_PING, &vec![0x42u8; payload_len], &mut tl).unwrap();
        assert_eq!(frags, 4);
        let (ethertype, echoed) = link.recv_packet(&mut tl).unwrap();
        assert_eq!(ethertype, ETHERTYPE_PING);
        assert_eq!(echoed.len(), payload_len);
        assert!(echoed.iter().all(|&b| b == 0x42));

        // Empty packets work too.
        link.send_packet(ETHERTYPE_PING, &[], &mut tl).unwrap();
        let (_, empty) = link.recv_packet(&mut tl).unwrap();
        assert!(empty.is_empty());
        link.close();
        netd.shutdown();
    }

    #[test]
    fn netd_drops_unknown_ethertypes() {
        let host = VphiHost::new(1);
        let netd = MicNetDaemon::spawn(&host, 0).unwrap();
        let env = NativeEnv::new(&host);
        let mut tl = Timeline::new();
        let link = mic0_up(&env, 0, &mut tl).unwrap();
        // An IPv4 frame gets dropped; the following ping still answers —
        // proving the daemon skipped rather than died.
        link.send_packet(0x0800, b"not-our-protocol", &mut tl).unwrap();
        let rtt = link.ping(8, &mut tl).unwrap();
        assert!(rtt > SimDuration::ZERO);
        link.close();
        netd.shutdown();
    }

    #[test]
    fn concurrent_ssh_sessions() {
        let host = StdArc::new(VphiHost::new(1));
        let daemon = MicShellDaemon::spawn(&host, 0).unwrap();
        let mut handles = Vec::new();
        for i in 0..3 {
            let host = StdArc::clone(&host);
            handles.push(std::thread::spawn(move || {
                let env = NativeEnv::new(&host);
                let mut tl = Timeline::new();
                let shell = MicShell::connect(&env, 0, &mut tl).unwrap();
                shell.upload(&format!("bin{i}"), 1 << 20, &mut tl).unwrap();
                let out = shell.run(&format!("bin{i}"), 56, 1e9, 0, &mut tl).unwrap();
                shell.exit();
                out
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert!(h.join().unwrap().contains(&format!("bin{i}")));
        }
        daemon.shutdown();
    }
}

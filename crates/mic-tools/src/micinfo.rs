//! `micinfo` — the board report tool.

use std::sync::Arc;

use vphi::builder::{VphiHost, VphiVm};
use vphi::sysfs::GuestSysfs;
use vphi_scif::ScifResult;
use vphi_sim_core::Timeline;

/// Render one card's report from a key→value lookup.
fn render(get: impl Fn(&str) -> Option<String>, mic: u32) -> String {
    let g = |k: &str| get(k).unwrap_or_else(|| "unknown".to_string());
    format!(
        "mic{mic} ({sku}, family {family}, stepping {stepping})\n\
         \x20 State .............. {state}\n\
         \x20 Cores .............. {cores} @ {freq} MHz ({tpc} threads/core)\n\
         \x20 GDDR ............... {mem} bytes\n\
         \x20 DMA channels ....... {dma}\n",
        sku = g("sku"),
        family = g("family"),
        stepping = g("stepping"),
        state = g("state"),
        cores = g("active_cores"),
        freq = g("frequency_mhz"),
        tpc = g("threads_per_core"),
        mem = g("memsize"),
        dma = g("dma_channels"),
    )
}

/// micinfo on the host.
pub fn micinfo_native(host: &VphiHost) -> String {
    let mut out = String::new();
    for (i, board) in host.boards().iter().enumerate() {
        let sysfs = board.sysfs();
        out.push_str(&render(|k| sysfs.get(k).map(str::to_string), i as u32));
    }
    out
}

/// micinfo inside a VM (reads the vPHI-exported sysfs).
pub fn micinfo_guest(vm: &VphiVm, cards: u32) -> ScifResult<String> {
    let mut out = String::new();
    for mic in 0..cards {
        let mut tl = Timeline::new();
        let sysfs = GuestSysfs::fetch(&Arc::clone(vm.frontend()), mic, &mut tl)?;
        out.push_str(&render(|k| sysfs.get(k).map(str::to_string), mic));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vphi::builder::VmConfig;

    #[test]
    fn native_and_guest_reports_match() {
        let host = VphiHost::new(1);
        let native = micinfo_native(&host);
        assert!(native.contains("3120P"));
        assert!(native.contains("online"));
        assert!(native.contains("57 @ 1100 MHz"));

        let vm = host.spawn_vm(VmConfig::default());
        let guest = micinfo_guest(&vm, 1).unwrap();
        assert_eq!(native, guest, "the VM must see exactly the host's card info");
        vm.shutdown();
    }

    #[test]
    fn two_cards_two_sections() {
        let host = VphiHost::new(2);
        let report = micinfo_native(&host);
        assert!(report.contains("mic0"));
        assert!(report.contains("mic1"));
    }
}

//! Workload kernels and their compute characterizations.

use vphi_coi::ComputeManifest;

/// A kernel a MIC binary runs on the card.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// `cblas_dgemm`: C = alpha·A·B + beta·C with N×N matrices — the
    /// paper's application benchmark (MKL sample).
    Dgemm { n: u64 },
    /// STREAM triad over arrays of `elems` f64s, `iters` passes.
    Stream { elems: u64, iters: u64 },
    /// All-pairs n-body, `steps` timesteps.
    NBody { bodies: u64, steps: u64 },
    /// Park for a fixed virtual time (expressed as flops at 1 GFLOPS).
    Spin { gflop: f64 },
}

impl Workload {
    /// Total floating-point operations.
    pub fn flops(&self) -> f64 {
        match *self {
            // 2N³ multiply-adds (the standard dgemm count).
            Workload::Dgemm { n } => 2.0 * (n as f64).powi(3),
            // Triad: 2 flops per element per iteration.
            Workload::Stream { elems, iters } => 2.0 * elems as f64 * iters as f64,
            // ~20 flops per pair interaction.
            Workload::NBody { bodies, steps } => {
                20.0 * (bodies as f64) * (bodies as f64) * steps as f64
            }
            Workload::Spin { gflop } => gflop * 1e9,
        }
    }

    /// Total GDDR traffic (for the roofline's memory-bound side).
    pub fn bytes(&self) -> u64 {
        match *self {
            // Three matrices streamed once per blocked pass; blocking keeps
            // dgemm compute-bound, so count each matrix once.
            Workload::Dgemm { n } => 3 * n * n * 8,
            // Triad reads two arrays and writes one, per iteration.
            Workload::Stream { elems, iters } => 3 * elems * 8 * iters,
            Workload::NBody { bodies, .. } => bodies * 64,
            Workload::Spin { .. } => 0,
        }
    }

    /// Input-data footprint as the paper's Figs. 6–8 x-axis defines it:
    /// "the total size of the two input arrays".
    pub fn input_bytes(&self) -> u64 {
        match *self {
            Workload::Dgemm { n } => 2 * n * n * 8,
            Workload::Stream { elems, .. } => 2 * elems * 8,
            Workload::NBody { bodies, .. } => bodies * 32,
            Workload::Spin { .. } => 0,
        }
    }

    /// The COI manifest for running this workload with `threads`.
    pub fn manifest(&self, threads: u32) -> ComputeManifest {
        ComputeManifest::new(self.flops(), self.bytes(), threads)
    }

    pub fn name(&self) -> &'static str {
        match self {
            Workload::Dgemm { .. } => "dgemm_mic",
            Workload::Stream { .. } => "stream_mic",
            Workload::NBody { .. } => "nbody_mic",
            Workload::Spin { .. } => "spin_mic",
        }
    }

    /// Execute the workload *for real* on the uOS (validation scale) and
    /// return a checksum of the result alongside the modeled outcome.
    /// This is how the test suite proves the timing model sits on top of a
    /// kernel that actually computes the right answer.
    pub fn execute_real(
        &self,
        uos: &vphi_phi::UosScheduler,
        threads: u32,
        tl: &mut vphi_sim_core::Timeline,
    ) -> (vphi_phi::JobOutcome, f64) {
        let job = vphi_phi::ComputeJob::new(self.name(), threads, self.flops(), self.bytes());
        let work = self.clone();
        let (outcome, checksum) = uos.run_with(&job, tl, move || match work {
            Workload::Dgemm { n } => {
                let n = n as usize;
                let a = crate::dgemm::init_matrix(n, 1);
                let b = crate::dgemm::init_matrix(n, 2);
                let mut c = vec![0.0; n * n];
                crate::dgemm::dgemm(n, 1.0, &a, &b, 0.0, &mut c);
                c.iter().sum::<f64>()
            }
            Workload::Stream { elems, iters } => {
                let n = elems as usize;
                let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
                let mut c = vec![0.0; n];
                for _ in 0..iters {
                    // STREAM triad: c = a + 3.0 * b
                    for i in 0..n {
                        c[i] = a[i] + 3.0 * b[i];
                    }
                }
                c.iter().sum::<f64>()
            }
            Workload::NBody { bodies, steps } => {
                let n = bodies as usize;
                let mut pos: Vec<(f64, f64)> =
                    (0..n).map(|i| (i as f64, (i * 7 % 11) as f64)).collect();
                let mut vel = vec![(0.0f64, 0.0f64); n];
                for _ in 0..steps {
                    for i in 0..n {
                        let (mut ax, mut ay) = (0.0, 0.0);
                        for j in 0..n {
                            if i == j {
                                continue;
                            }
                            let dx = pos[j].0 - pos[i].0;
                            let dy = pos[j].1 - pos[i].1;
                            let d2 = dx * dx + dy * dy + 1e-9;
                            let inv = 1.0 / (d2 * d2.sqrt());
                            ax += dx * inv;
                            ay += dy * inv;
                        }
                        vel[i].0 += ax * 1e-3;
                        vel[i].1 += ay * 1e-3;
                    }
                    for i in 0..n {
                        pos[i].0 += vel[i].0;
                        pos[i].1 += vel[i].1;
                    }
                }
                pos.iter().map(|p| p.0 + p.1).sum::<f64>()
            }
            Workload::Spin { gflop } => gflop,
        });
        (outcome, checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_flop_count() {
        let w = Workload::Dgemm { n: 1024 };
        assert_eq!(w.flops(), 2.0 * 1024f64.powi(3));
        assert_eq!(w.bytes(), 3 * 1024 * 1024 * 8);
        assert_eq!(w.input_bytes(), 2 * 1024 * 1024 * 8);
        assert_eq!(w.name(), "dgemm_mic");
    }

    #[test]
    fn stream_is_memory_bound() {
        // Arithmetic intensity of the triad is 2 flops / 24 bytes << the
        // machine balance, so bytes must dominate the manifest.
        let w = Workload::Stream { elems: 1 << 20, iters: 10 };
        let intensity = w.flops() / w.bytes() as f64;
        assert!(intensity < 0.1, "triad intensity = {intensity}");
    }

    #[test]
    fn manifests_carry_threads() {
        let m = Workload::Dgemm { n: 512 }.manifest(224);
        assert_eq!(m.threads, 224);
        assert_eq!(m.flops, 2.0 * 512f64.powi(3));
    }

    #[test]
    fn nbody_quadratic_in_bodies() {
        let small = Workload::NBody { bodies: 100, steps: 1 }.flops();
        let big = Workload::NBody { bodies: 200, steps: 1 }.flops();
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn spin_has_no_memory_traffic() {
        let w = Workload::Spin { gflop: 2.0 };
        assert_eq!(w.bytes(), 0);
        assert_eq!(w.flops(), 2e9);
    }

    #[test]
    fn real_execution_on_the_uos_is_deterministic_and_timed() {
        use std::sync::Arc;
        use vphi_phi::{PhiSpec, UosScheduler};
        use vphi_sim_core::{CostModel, Timeline, VirtualClock};

        let uos = UosScheduler::new(
            PhiSpec::phi_3120p(),
            Arc::new(CostModel::paper_calibrated()),
            Arc::new(VirtualClock::new()),
        );
        // dgemm at validation scale: real math + modeled time.
        let w = Workload::Dgemm { n: 64 };
        let mut tl = Timeline::new();
        let (out, sum1) = w.execute_real(&uos, 112, &mut tl);
        assert!(out.duration > vphi_sim_core::SimDuration::ZERO);
        let mut tl2 = Timeline::new();
        let (_, sum2) = w.execute_real(&uos, 112, &mut tl2);
        assert_eq!(sum1, sum2, "real dgemm must be deterministic");
        assert!(sum1.is_finite() && sum1 != 0.0);

        // The checksum matches the reference kernel.
        let n = 64usize;
        let a = crate::dgemm::init_matrix(n, 1);
        let b = crate::dgemm::init_matrix(n, 2);
        let mut c = vec![0.0; n * n];
        crate::dgemm::dgemm_reference(n, 1.0, &a, &b, 0.0, &mut c);
        let reference: f64 = c.iter().sum();
        assert!((sum1 - reference).abs() < 1e-6, "{sum1} vs {reference}");

        // The other kernels run too.
        let (_, triad) = Workload::Stream { elems: 1000, iters: 2 }.execute_real(&uos, 56, &mut tl);
        // c[i] = i + 3*(i%13): closed-form checkable.
        let expected: f64 = (0..1000).map(|i| i as f64 + 3.0 * ((i % 13) as f64)).sum();
        assert_eq!(triad, expected);
        let (_, nbody) = Workload::NBody { bodies: 16, steps: 2 }.execute_real(&uos, 56, &mut tl);
        assert!(nbody.is_finite());
    }
}
